#!/usr/bin/env python3
"""Self-test for tools/coverage_report.py's ratchet gate.

Feeds synthetic reports/baselines (and a synthetic gcov JSONL export)
through the real CLI and asserts:

 * aggregate reduces per-line gcov records to the per-directory report,
   taking the max hit count per (file, line) across translation units,
   and fails when a tracked directory has no instrumented lines;
 * compare passes on identical coverage and on drops inside tolerance;
 * compare FAILS (exit 1) on a simulated regression beyond tolerance —
   the property the CI gate relies on;
 * compare fails when a baselined directory is missing from the report;
 * update-baseline rewrites the baseline so a subsequent compare passes.

Registered as the `coverage_ratchet_selftest` ctest by
tools/CMakeLists.txt.
"""

import json
import os
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
CLI = os.path.join(TOOLS_DIR, "coverage_report.py")


def run(*argv):
    return subprocess.run([sys.executable, CLI, *argv],
                          capture_output=True, text=True, check=False)


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f)
    return path


def report(percents):
    return {
        "tool": "gcov",
        "directories": {
            directory: {"covered": int(p * 10), "total": 1000,
                        "percent": p}
            for directory, p in percents.items()
        },
    }


def gcov_doc(filename, line_counts):
    return {"files": [{"file": filename,
                       "lines": [{"line_number": n, "count": c}
                                 for n, c in line_counts]}]}


def main():
    failures = []

    def expect(ok, what):
        if not ok:
            failures.append(what)

    dirs = {"src/mdl": 90.0, "src/msa": 85.0, "src/text": 95.0,
            "src/io": 88.0}

    with tempfile.TemporaryDirectory() as tmp:
        # --- aggregate: max-per-line dedup across TUs + all-dirs check.
        jsonl = os.path.join(tmp, "gcov.jsonl")
        docs = [
            # Same header lines seen from two TUs: one executes line 2.
            gcov_doc("/x/src/mdl/universal_code.h",
                     [(1, 1), (2, 0), (3, 4)]),
            gcov_doc("/x/src/mdl/universal_code.h",
                     [(1, 0), (2, 7), (3, 0)]),
            gcov_doc("/x/src/msa/poa.cc", [(10, 2), (11, 0)]),
            gcov_doc("/x/src/text/tokenizer.cc", [(5, 1)]),
            gcov_doc("/x/src/io/csv.cc", [(7, 0), (8, 3)]),
            gcov_doc("/x/src/coarse/untracked.cc", [(1, 1)]),
        ]
        with open(jsonl, "w", encoding="utf-8") as f:
            for doc in docs:
                f.write(json.dumps(doc) + "\n")
        out = os.path.join(tmp, "agg_report.json")
        proc = run("aggregate", "--tool", "gcov", "--input", jsonl,
                   "--output", out)
        expect(proc.returncode == 0,
               f"aggregate: expected exit 0, got {proc.returncode}: "
               f"{proc.stdout}")
        with open(out, encoding="utf-8") as f:
            agg = json.load(f)["directories"]
        expect(agg["src/mdl"] == {"covered": 3, "total": 3,
                                  "percent": 100.0},
               f"aggregate: mdl max-per-line dedup wrong: {agg['src/mdl']}")
        expect(agg["src/io"] == {"covered": 1, "total": 2, "percent": 50.0},
               f"aggregate: io reduction wrong: {agg['src/io']}")
        expect("src/coarse" not in agg,
               "aggregate: untracked directory leaked into the report")

        # Aggregate must fail when a tracked directory has no lines.
        sparse = os.path.join(tmp, "sparse.jsonl")
        with open(sparse, "w", encoding="utf-8") as f:
            f.write(json.dumps(docs[0]) + "\n")
        proc = run("aggregate", "--tool", "gcov", "--input", sparse,
                   "--output", os.path.join(tmp, "sparse_report.json"))
        expect(proc.returncode == 1,
               "aggregate: expected exit 1 when tracked dirs have no "
               f"instrumented lines, got {proc.returncode}")

        # --- compare: identical coverage passes.
        base = write_json(tmp, "baseline.json", report(dirs))
        same = write_json(tmp, "same.json", report(dirs))
        proc = run("compare", "--report", same, "--baseline", base)
        expect(proc.returncode == 0,
               f"compare: identical coverage must pass: {proc.stdout}")

        # Drop inside tolerance passes.
        slight = dict(dirs, **{"src/mdl": 89.9})
        slight_path = write_json(tmp, "slight.json", report(slight))
        proc = run("compare", "--report", slight_path, "--baseline", base,
                   "--tolerance", "0.25")
        expect(proc.returncode == 0,
               f"compare: -0.1pp is inside tolerance: {proc.stdout}")

        # Simulated regression beyond tolerance FAILS — the CI gate.
        dropped = dict(dirs, **{"src/msa": 80.0})
        dropped_path = write_json(tmp, "dropped.json", report(dropped))
        proc = run("compare", "--report", dropped_path, "--baseline", base)
        expect(proc.returncode == 1,
               "compare: a 5pp regression must exit 1, got "
               f"{proc.returncode}")
        expect("src/msa" in proc.stdout and "FAIL" in proc.stdout,
               f"compare: regression output names the directory: "
               f"{proc.stdout}")

        # A baselined directory missing from the report fails.
        partial = report(dirs)
        del partial["directories"]["src/io"]
        partial_path = write_json(tmp, "partial.json", partial)
        proc = run("compare", "--report", partial_path, "--baseline", base)
        expect(proc.returncode == 1,
               "compare: missing baselined directory must exit 1, got "
               f"{proc.returncode}")

        # --- update-baseline: ratchet moves, then compare passes.
        proc = run("update-baseline", "--report", dropped_path,
                   "--baseline", base)
        expect(proc.returncode == 0,
               f"update-baseline failed: {proc.stdout}{proc.stderr}")
        proc = run("compare", "--report", dropped_path, "--baseline", base)
        expect(proc.returncode == 0,
               "compare after update-baseline must pass: "
               f"{proc.stdout}")

    if failures:
        for f in failures:
            print(f"coverage_selftest: FAIL: {f}")
        return 1
    print("coverage_selftest: ratchet gate behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
