// Lint fixture (never compiled): a fuzz harness with no seed corpus
// directory at all — the replay ctest would exit 2.
