// Lint fixture (never compiled): a fuzz harness whose corpus directory
// exists but holds no seeds (dotfiles such as .gitkeep do not count).
