// Lint fixture (never compiled): a fuzz harness with a populated seed
// corpus — the fuzz-corpus rule must stay silent.
