// Lint fixture (never compiled): a file none of the rules fire on.

int Add(int a, int b) { return a + b; }
