// Lint fixture (never compiled): calling a Status/Result-returning
// function as a bare statement drops the error on the floor.

#include "util/status.h"

void Fixture() {
  SaveThing(1);  // finding: discarded Status
  LoadThing(2);  // finding: discarded Result
  {
    SaveThing(3);  // finding: block position does not consume the value
  }

  Status kept = SaveThing(4);   // consumed: no finding
  (void) SaveThing(5);          // deliberate discard spelling: no finding
  Status wrapped =
      SaveThing(6);             // continuation line: no finding
  (void) kept;
  (void) wrapped;
}
