// Lint fixture (never compiled): every line below must trip the
// raw-concurrency rule — std primitives outside src/util/.

#include <condition_variable>
#include <mutex>
#include <thread>

void Fixture() {
  std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::condition_variable cv;
  std::thread worker;
}
