// Lint fixture (never compiled): mutable globals outside the allowlist
// must trip the mutable-global rule; constants and Mutex globals must
// not.

int g_counter = 0;
static bool g_flag = false;
static double accumulator = 0.0;

Mutex g_mu;
static const char* kName = "fixture";
constexpr int kMax = 3;

static int HelperFunction(int x) { return x + kMax; }

int Use() { return HelperFunction(g_counter); }
