// Lint fixture (never compiled): stands in for the real util/status.h
// so the discarded-status fixture has Status/Result-returning free
// functions for the linter to discover. Lives at util/status.h inside
// the fixture tree because that path is exempt from the
// include-util-status half of the status-contract rule.

#ifndef INFOSHIELD_UTIL_STATUS_H_
#define INFOSHIELD_UTIL_STATUS_H_

class Status;
template <typename T>
class Result;

Status SaveThing(int id);
Result<int> LoadThing(int id);

#endif  // INFOSHIELD_UTIL_STATUS_H_
