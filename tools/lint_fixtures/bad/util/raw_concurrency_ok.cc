// Lint fixture (never compiled): the same primitives are legal under
// util/ — that is where the annotated wrappers live.

#include <mutex>

void Fixture() {
  std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
}
