// Lint fixture (never compiled): unordered iteration without a
// determinism justification must trip the unordered-determinism rule;
// marked loops and ordered containers must not.

#include <map>
#include <unordered_map>
#include <vector>

std::vector<int> Emit() {
  std::unordered_map<int, int> table;
  std::vector<int> out;
  for (const auto& [k, v] : table) {
    out.push_back(k);
  }
  // determinism: commutative integer sum; order cannot matter.
  for (const auto& [k, v] : table) {
    out[0] += v;
  }
  std::map<int, int> ordered;
  for (const auto& [k, v] : ordered) {
    out.push_back(v);
  }
  std::vector<int> copied(table.begin(), table.end());
  return out;
}
