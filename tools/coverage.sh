#!/usr/bin/env bash
# Line-coverage report + ratchet gate for the InfoShield core.
#
#   tools/coverage.sh                    instrumented build, full test
#                                        suite, per-directory report for
#                                        src/{mdl,msa,text,io}, then the
#                                        ratchet: exits non-zero if any
#                                        tracked directory regressed
#                                        beyond tolerance against
#                                        tools/coverage_baseline.json.
#   tools/coverage.sh --update-baseline  same, then rewrites the baseline
#                                        from this run (commit the diff).
#   tools/coverage.sh --fast             skips the slow sweep/pipeline
#                                        suites. Iteration aid only —
#                                        never compare or re-baseline a
#                                        --fast run against a full one.
#
# Toolchains: prefers clang++ with source-based coverage
# (-fprofile-instr-generate -fcoverage-mapping + llvm-profdata/llvm-cov
# export); falls back to g++ --coverage + `gcov --json-format`. Either
# way the raw export is reduced by tools/coverage_report.py, so the
# report format (and the ratchet) is toolchain-independent.
#
# The build tree is build-cov/ (gitignored), reconfigured from scratch
# each run so stale instrumentation never leaks into the numbers.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

UPDATE_BASELINE=0
FAST=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE_BASELINE=1 ;;
    --fast) FAST=1 ;;
    -h|--help)
      sed -n '2,24p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "unknown argument: $arg (try --help)" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2> /dev/null || echo 4)"
BUILD="$ROOT/build-cov"
BASELINE="$ROOT/tools/coverage_baseline.json"
REPORT="$BUILD/coverage_report.json"

step() { printf '\n=== %s ===\n' "$*"; }

CTEST_ARGS=(--test-dir "$BUILD" --output-on-failure -j "$JOBS")
if [[ "$FAST" == "1" ]]; then
  CTEST_ARGS+=(-E 'Sweep|Pipeline|Integration|EndToEnd')
fi

rm -rf "$BUILD"

if command -v clang++ > /dev/null 2>&1 && \
   command -v llvm-profdata > /dev/null 2>&1 && \
   command -v llvm-cov > /dev/null 2>&1; then
  step "instrumented build (clang++, source-based coverage)"
  cmake -B "$BUILD" -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fprofile-instr-generate -fcoverage-mapping" \
    -DCMAKE_EXE_LINKER_FLAGS="-fprofile-instr-generate" \
    > /dev/null
  cmake --build "$BUILD" -j "$JOBS"

  step "test suite (profiles to build-cov/profiles/)"
  mkdir -p "$BUILD/profiles"
  LLVM_PROFILE_FILE="$BUILD/profiles/%p-%m.profraw" ctest "${CTEST_ARGS[@]}"

  step "llvm-cov export"
  llvm-profdata merge -sparse -o "$BUILD/merged.profdata" \
    "$BUILD"/profiles/*.profraw
  # Every test binary contributes coverage mapping; collect them all.
  OBJECTS=()
  while IFS= read -r bin; do
    OBJECTS+=(-object "$bin")
  done < <(find "$BUILD" -type f -perm -u+x \
             \( -name '*_test' -o -name 'fuzz_*_replay' \) | sort)
  if [[ "${#OBJECTS[@]}" -eq 0 ]]; then
    echo "coverage: no test binaries found under $BUILD" >&2
    exit 1
  fi
  llvm-cov export -format=text -instr-profile "$BUILD/merged.profdata" \
    "${OBJECTS[@]:1}" > "$BUILD/llvm_export.json"
  python3 tools/coverage_report.py aggregate --tool llvm-cov \
    --input "$BUILD/llvm_export.json" --output "$REPORT"
else
  step "instrumented build (g++ --coverage; clang++/llvm-cov not found)"
  cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="--coverage" \
    -DCMAKE_EXE_LINKER_FLAGS="--coverage" \
    > /dev/null
  cmake --build "$BUILD" -j "$JOBS"

  step "test suite (.gcda counters accumulate in build-cov/)"
  ctest "${CTEST_ARGS[@]}"

  step "gcov export"
  : > "$BUILD/gcov.jsonl"
  # One JSON document per .gcda, one per line (gcov emits compact JSON).
  find "$BUILD" -name '*.gcda' -print0 | sort -z | \
    while IFS= read -r -d '' gcda; do
      gcov --json-format --stdout "$gcda" 2> /dev/null | tr -d '\n' \
        >> "$BUILD/gcov.jsonl"
      echo >> "$BUILD/gcov.jsonl"
    done
  python3 tools/coverage_report.py aggregate --tool gcov \
    --input "$BUILD/gcov.jsonl" --output "$REPORT"
fi

if [[ "$UPDATE_BASELINE" == "1" ]]; then
  step "rewriting coverage baseline"
  python3 tools/coverage_report.py update-baseline \
    --report "$REPORT" --baseline "$BASELINE"
  exit 0
fi

step "ratchet against tools/coverage_baseline.json"
python3 tools/coverage_report.py compare --report "$REPORT" \
  --baseline "$BASELINE"

step "coverage gate passed"
