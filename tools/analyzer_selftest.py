#!/usr/bin/env python3
"""Self-test for the AST-grounded analyzer (tools/analyzer/).

Runs the analyzer over the fixture trees in tools/analyzer/fixtures/
and over the real tree, asserting:

 * each bad fixture trips exactly the check it was written for, the
   expected number of times — including the seeded lock-order cycle,
   which must fail the run (the acceptance criterion that a cycle
   fails the build);
 * the clean fixtures — by-value snapshots, consistent lock order,
   reserve/hoist discipline, determinism markers, reasoned allow()
   suppressions — trip nothing, and a clean tree exits 0;
 * an allow() without a `-- reason` is itself reported;
 * baseline semantics: matching counts pass, counts above baseline
   fail, counts below baseline fail as stale (the ratchet only
   shrinks), and --write-baseline round-trips;
 * the race-inference stack (DESIGN.md §14): the seeded races carry
   verdict `racy` in race_report.json, the consistently-locked field
   demands its GUARDED_BY, the clean concurrent idioms (pre-launch
   writes, post-Wait writes, owned accumulators, REQUIRES chains,
   sorted sinks) stay silent, --checks filters to exactly the race
   legs, and — when a clang driver exists — the seeded races are
   caught under clang lowering too;
 * the lifetime pass (DESIGN.md §17): seeded dangling views —
   including one laundered through a helper's borrow summary —
   iterator invalidations, and contract violations all fire;
   lifetime_report.json carries the schema tag, per-function borrow
   verdicts, and the per-field contract inventory; the clean
   counterparts (param/field/global/static borrows, erase-refresh
   loops, reasoned borrows() contracts) stay silent; and — when a
   clang driver exists — the seeded dangling views are caught under
   clang lowering too;
 * the shrink-only ratchet helper (tools/analyzer/ratchet.py) at the
   unit level: grandfather counts, stale detection, check filtering,
   and the load/write round-trip;
 * AST-dump cache eviction: stale keys pruned, stray .tmp files
   cleaned, live entries LRU-capped;
 * the real tree has zero unsuppressed findings, its lock-order
   graph names the mutexes of every current Mutex user (thread_pool,
   logging, sharded_counter, audit), and its race report carries the
   schema tag, the pipeline's thread roots, and the annotated
   shared-state surface;
 * a failing run exits 1, not the violation count (a raw count would
   wrap modulo 256 on POSIX).

The fixture runs pin --frontend internal so results do not depend on
whether a clang driver happens to be installed; fixture sources are
parse targets, not compile targets. Registered as the
`analyzer_selftest` ctest by tools/CMakeLists.txt.
"""

import collections
import json
import os
import re
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
ANALYZE = os.path.join(TOOLS_DIR, "analyzer", "analyze.py")
FIXTURES = os.path.join(TOOLS_DIR, "analyzer", "fixtures")
REPO_ROOT = os.path.dirname(TOOLS_DIR)

FINDING_RE = re.compile(r"^(?P<path>\S+?):(?P<line>\d+): \[(?P<check>[\w-]+)\]")

# (fixture file, check) -> expected number of findings. Files in the bad
# tree absent here must produce zero findings.
EXPECTED = {
    ("guarded_escape_bad.cc", "guarded-ref-escape"): 3,
    ("lock_cycle_bad.cc", "lock-order-cycle"): 1,
    ("hot_alloc_bad.cc", "hot-loop-alloc"): 5,
    ("unordered_bad.cc", "unordered-iter"): 2,
    ("discarded_bad.cc", "discarded-status"): 3,
    ("allow_noreason_bad.cc", "allow-syntax"): 1,
    ("race_infer_bad.cc", "race-infer"): 4,
    ("missing_guard_bad.cc", "missing-guarded-by"): 1,
    ("blocking_bad.cc", "blocking-under-lock"): 3,
    ("output_flow_bad.cc", "unordered-output-flow"): 2,
    ("dangling_view_bad.cc", "dangling-view"): 5,
    ("view_launder_bad.cc", "dangling-view"): 2,
    ("lambda_escape_bad.cc", "dangling-view"): 3,
    ("iter_invalid_bad.cc", "iter-invalidation"): 5,
    ("view_escape_bad.cc", "view-escape"): 6,
}

# The four seeded races by field, as they must appear in the race
# report (and under BOTH frontends when a clang driver is available).
SEEDED_RACES = ("Telemetry::dropped_", "Ledger::balance_",
                "Journal::entries_", "Pipeline::pending_")

# Mutex nodes the real-tree lock graph must name (acceptance criterion:
# coverage of every current Mutex user).
REQUIRED_GRAPH_NODES = (
    "ThreadPool::mutex_",
    "logging::g_severity_mu",
    "ShardedPhraseCounter::stats_mu_",
    "Shard::mu",
    "audit::g_stats_mu",
)


def run_analyze(extra_args, frontend="internal"):
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--frontend", frontend, "--quiet"] +
        extra_args,
        capture_output=True, text=True, check=False)
    findings = collections.Counter()
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings[(os.path.basename(match.group("path")),
                      match.group("check"))] += 1
    return proc, findings


def main():
    failures = []

    def expect(ok, what):
        if not ok:
            failures.append(what)

    # --- bad fixtures: every check fires, run fails (capped exit) ------
    proc, findings = run_analyze(
        ["--repo-root", FIXTURES, "--roots", "bad", "--no-baseline"])
    expect(proc.returncode == 1,
           f"bad tree: expected exit 1 (capped), got {proc.returncode}")
    for key, want in EXPECTED.items():
        got = findings.pop(key, 0)
        expect(got == want,
               f"{key[0]}: expected {want} [{key[1]}], got {got}")
    expect(not findings,
           f"bad tree: unexpected findings {dict(findings)}")
    expect("lock-order-cycle" in proc.stdout and
           "g_mu_a" in proc.stdout and "g_mu_b" in proc.stdout,
           "seeded cycle: expected both mutexes named in the cycle report")

    # --- clean fixtures: nothing fires -------------------------------
    proc, findings = run_analyze(
        ["--repo-root", FIXTURES, "--roots", "clean", "--no-baseline"])
    expect(proc.returncode == 0,
           f"clean tree: expected exit 0, got {proc.returncode}")
    expect(not findings,
           f"clean tree: unexpected findings {dict(findings)} (reserve "
           "discipline, determinism marker, allow(reason), or by-value "
           "snapshot handling regressed)")

    # --- race report: schema, seeded verdicts, check filtering --------
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "race_report.json")
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad", "--no-baseline",
             "--race-report", report_path,
             "--checks", "race-infer,missing-guarded-by,"
                         "blocking-under-lock,unordered-output-flow"])
        expect(proc.returncode == 1,
               f"--checks races leg: expected exit 1, got {proc.returncode}")
        # allow-syntax always rides along: a broken suppression must
        # never be filtered out of view.
        race_checks = {"race-infer", "missing-guarded-by",
                       "blocking-under-lock", "unordered-output-flow",
                       "allow-syntax"}
        expect(all(check in race_checks for (_f, check) in findings),
               f"--checks filter leaked other checks: {dict(findings)}")
        got = sum(n for (f, c), n in EXPECTED.items() if c in race_checks)
        expect(sum(findings.values()) == got,
               f"--checks races leg: expected {got} findings, got "
               f"{sum(findings.values())}")
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
        expect(report.get("schema") == "infoshield-race-report/1",
               f"race report schema: got {report.get('schema')!r}")
        expect(report.get("thread_roots"),
               "race report: expected at least one thread root in the "
               "bad fixture tree")
        verdicts = {e["field"]: e["verdict"] for e in report["fields"]}
        for field in SEEDED_RACES:
            expect(verdicts.get(field) == "racy",
                   f"race report: {field} should be racy, got "
                   f"{verdicts.get(field)!r}")
        expect(verdicts.get("Registry::published_") ==
               "guarded-unannotated",
               "race report: Registry::published_ should be "
               f"guarded-unannotated, got "
               f"{verdicts.get('Registry::published_')!r}")
        expect(report["summary"].get("racy", 0) == len(SEEDED_RACES),
               f"race report summary: expected {len(SEEDED_RACES)} racy, "
               f"got {report['summary'].get('racy')}")
        comp = report.get("tu_completeness", {})
        expect(any(v["unannotated_shared"] > 0 for v in comp.values()),
               "race report: completeness should count the unannotated "
               "shared fields of the bad tree")

    # --- lifetime pass: report schema, verdicts, contract inventory ---
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "lifetime_report.json")
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad", "--no-baseline",
             "--lifetime-report", report_path,
             "--checks", "dangling-view,iter-invalidation,view-escape"])
        expect(proc.returncode == 1,
               f"--checks lifetimes leg: expected exit 1, got "
               f"{proc.returncode}")
        lifetime_checks = {"dangling-view", "iter-invalidation",
                           "view-escape", "allow-syntax"}
        expect(all(check in lifetime_checks for (_f, check) in findings),
               f"--checks lifetime filter leaked other checks: "
               f"{dict(findings)}")
        want = sum(n for (_f, c), n in EXPECTED.items()
                   if c in lifetime_checks)
        expect(sum(findings.values()) == want,
               f"--checks lifetimes leg: expected {want} findings, got "
               f"{sum(findings.values())}")
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
        expect(report.get("schema") == "infoshield-lifetime-report/1",
               f"lifetime report schema: got {report.get('schema')!r}")
        launder = report["tus"].get("bad/view_launder_bad.cc", {})
        verdicts = {e["function"]: e["verdict"]
                    for e in launder.get("view_returning_functions", [])}
        expect(verdicts.get("Trim") == "borrows-params",
               "lifetime report: Trim should summarize as borrows-params, "
               f"got {verdicts.get('Trim')!r}")
        expect(verdicts.get("TrimmedLocal") == "dangling",
               "lifetime report: TrimmedLocal should be dangling, got "
               f"{verdicts.get('TrimmedLocal')!r}")
        contracts = {e["field"]: e["contract"]
                     for e in report["tus"].get(
                         "bad/view_escape_bad.cc", {}).get(
                         "view_fields", [])}
        expect(contracts.get("Unannotated::name_") == "unannotated" and
               contracts.get("OwnsView::label_") == "owns" and
               contracts.get("BadName::ptr_") == "borrows",
               f"lifetime report: contract inventory wrong: {contracts}")

    # --- clean fixtures under the lifetime checks: FP guards hold -----
    proc, findings = run_analyze(
        ["--repo-root", FIXTURES, "--roots", "clean", "--no-baseline",
         "--checks", "dangling-view,iter-invalidation,view-escape"])
    expect(proc.returncode == 0 and not findings,
           "clean tree under lifetime checks: expected silence (param/"
           "field/global/static borrows, erase-refresh, element copies, "
           "reasoned contracts), got "
           f"{proc.returncode} / {dict(findings)}")

    # --- clean fixtures under the race checks: FP guards hold ---------
    proc, findings = run_analyze(
        ["--repo-root", FIXTURES, "--roots", "clean", "--no-baseline",
         "--checks", "race-infer,missing-guarded-by,blocking-under-lock,"
                     "unordered-output-flow"])
    expect(proc.returncode == 0 and not findings,
           "clean tree under race checks: expected silence (pre-launch "
           "writes, post-Wait writes, owned accumulators, REQUIRES "
           "chains, sorted sinks), got "
           f"{proc.returncode} / {dict(findings)}")

    # --- dual frontend: the seeded races survive clang lowering -------
    sys.path.insert(0, os.path.join(TOOLS_DIR, "analyzer"))
    import clang_frontend
    if clang_frontend.find_clang() is None:
        print("analyzer_selftest: note: no clang++ driver found; "
              "skipping the clang-frontend race and lifetime legs")
    else:
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad", "--no-baseline",
             "--checks", "race-infer,missing-guarded-by"],
            frontend="clang")
        expect(findings.get(("race_infer_bad.cc", "race-infer")) == 4 and
               findings.get(("missing_guard_bad.cc",
                             "missing-guarded-by")) == 1,
               "clang frontend: seeded races must be caught under clang "
               f"lowering too, got {dict(findings)}")
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad", "--no-baseline",
             "--checks", "dangling-view"],
            frontend="clang")
        expect(findings.get(("dangling_view_bad.cc",
                             "dangling-view")) == 5 and
               findings.get(("view_launder_bad.cc",
                             "dangling-view")) == 2 and
               findings.get(("lambda_escape_bad.cc",
                             "dangling-view")) == 3,
               "clang frontend: seeded dangling views must be caught "
               f"under clang lowering too, got {dict(findings)}")

    # --- cache eviction: stale prune + LRU cap ------------------------
    with tempfile.TemporaryDirectory() as tmp:
        suffix = clang_frontend.CACHE_SUFFIX
        live_keys = set()
        for i in range(6):
            key = f"live{i}"
            path = os.path.join(tmp, key + suffix)
            with open(path, "wb") as f:
                f.write(b"x")
            # Deterministic, strictly increasing mtimes: live0 oldest.
            os.utime(path, (1000 + i, 1000 + i))
            live_keys.add(key)
        with open(os.path.join(tmp, "stale" + suffix), "wb") as f:
            f.write(b"x")
        with open(os.path.join(tmp, "junk" + suffix + ".tmp"), "wb") as f:
            f.write(b"x")
        removed = clang_frontend.evict_cache(tmp, live_keys, cap=4)
        left = sorted(os.listdir(tmp))
        expect(removed == 3,
               f"evict_cache: expected 3 removals (1 stale + 2 over "
               f"cap), got {removed}")
        expect(left == [f"live{i}{suffix}" for i in range(2, 6)],
               f"evict_cache: expected the 4 newest live entries, got "
               f"{left}")

    # --- ratchet helper: shrink-only semantics at the unit level ------
    import ratchet
    from model import Finding
    acts = [Finding("a.cc", line, "x", "m") for line in (1, 5, 9)]
    new, stale, base = ratchet.check(acts, {"a.cc:x": 2})
    expect([f.line for f in new] == [9] and not stale and
           [f.line for f in base] == [1, 5],
           "ratchet.check: the newest finding above baseline should "
           f"escape, got new={[f.line for f in new]} stale={stale}")
    new, stale, base = ratchet.check(acts[:1], {"a.cc:x": 2})
    expect(stale == ["a.cc:x"] and not new,
           f"ratchet.check: below-baseline count must be stale, got "
           f"{stale} / {[f.line for f in new]}")
    expect(ratchet.filter_to_checks(
               {"a.cc:x": 1, "b.cc:y": 2}, {"y"}) == {"b.cc:y": 2} and
           ratchet.filter_to_checks({"a.cc:x": 1}, set()) == {"a.cc:x": 1},
           "ratchet.filter_to_checks: subset filtering regressed")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "b.json")
        expect(ratchet.load(path) == {},
               "ratchet.load: a missing baseline should read as empty")
        total = ratchet.write(path, acts)
        expect(total == 3 and ratchet.load(path) == {"a.cc:x": 3},
               f"ratchet write/load round-trip failed: {total} / "
               f"{ratchet.load(path)}")

    # --- baseline semantics -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        baseline = os.path.join(tmp, "baseline.json")
        # --write-baseline captures the bad tree, then a normal run with
        # that baseline passes with everything baselined.
        proc, _ = run_analyze(["--repo-root", FIXTURES, "--roots", "bad",
                               "--baseline", baseline, "--write-baseline"])
        expect(proc.returncode == 0,
               f"write-baseline: expected exit 0, got {proc.returncode}")
        with open(baseline, encoding="utf-8") as f:
            captured = json.load(f)
        expect(sum(captured.values()) == sum(EXPECTED.values()),
               f"write-baseline: expected {sum(EXPECTED.values())} "
               f"entries, captured {sum(captured.values())}")
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad",
             "--baseline", baseline])
        expect(proc.returncode == 0 and not findings,
               "baselined run: expected exit 0 with no printed findings, "
               f"got {proc.returncode} / {dict(findings)}")

        # Growth: shrink one baseline entry — the newest finding escapes
        # the baseline and fails the run.
        grown = dict(captured)
        key = "bad/hot_alloc_bad.cc:hot-loop-alloc"
        grown[key] = grown[key] - 1
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump(grown, f)
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad",
             "--baseline", baseline])
        expect(proc.returncode == 1 and
               findings.get(("hot_alloc_bad.cc", "hot-loop-alloc")) == 1,
               "baseline growth: expected exactly the one above-baseline "
               f"finding to fail, got {proc.returncode} / {dict(findings)}")

        # Staleness: inflate an entry — fewer findings than baselined
        # must fail until the baseline is re-shrunk.
        stale = dict(captured)
        stale[key] = stale[key] + 2
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump(stale, f)
        proc, _ = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad",
             "--baseline", baseline])
        expect(proc.returncode == 1 and "stale baseline" in proc.stdout,
               f"stale baseline: expected failure, got {proc.returncode}")

    # --- real tree: zero unsuppressed findings + full mutex coverage --
    with tempfile.TemporaryDirectory() as tmp:
        dot = os.path.join(tmp, "lock_order.dot")
        report_path = os.path.join(tmp, "race_report.json")
        lifetime_path = os.path.join(tmp, "lifetime_report.json")
        proc, findings = run_analyze(
            ["--repo-root", REPO_ROOT, "--roots", "src", "tools", "fuzz",
             "--dot-out", dot, "--race-report", report_path,
             "--lifetime-report", lifetime_path])
        expect(proc.returncode == 0,
               f"real tree: expected exit 0, got {proc.returncode}:\n"
               f"{proc.stdout}")
        expect(not findings,
               f"real tree: unsuppressed findings {dict(findings)}")
        with open(dot, encoding="utf-8") as f:
            graph = f.read()
        for node in REQUIRED_GRAPH_NODES:
            expect(f'"{node}"' in graph,
                   f"lock graph: missing required mutex node {node}")
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
        expect(report.get("schema") == "infoshield-race-report/1" and
               report.get("thread_roots"),
               "real tree: race report should carry the schema tag and "
               "the pipeline's thread roots")
        expect(report["summary"].get("annotated", 0) >= 10,
               "real tree: expected the annotated shared-state surface "
               f"in the report, got {report['summary']}")
        with open(lifetime_path, encoding="utf-8") as f:
            lifetime = json.load(f)
        expect(lifetime.get("schema") == "infoshield-lifetime-report/1",
               "real tree: lifetime report should carry the schema tag, "
               f"got {lifetime.get('schema')!r}")
        lsum = lifetime.get("summary", {})
        expect(lsum.get("field_borrows", 0) >= 3 and
               lsum.get("field_unannotated", 0) == 0 and
               lsum.get("field_owns", 0) == 0,
               "real tree: every view field must carry a reasoned "
               f"borrows() contract, got {lsum}")

    if failures:
        for f in failures:
            print(f"analyzer_selftest: FAIL: {f}")
        return 1
    print("analyzer_selftest: all check fixtures, baseline semantics, and "
          "the real-tree gate behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
