#!/usr/bin/env python3
"""Self-test for the AST-grounded analyzer (tools/analyzer/).

Runs the analyzer over the fixture trees in tools/analyzer/fixtures/
and over the real tree, asserting:

 * each bad fixture trips exactly the check it was written for, the
   expected number of times — including the seeded lock-order cycle,
   which must fail the run (the acceptance criterion that a cycle
   fails the build);
 * the clean fixtures — by-value snapshots, consistent lock order,
   reserve/hoist discipline, determinism markers, reasoned allow()
   suppressions — trip nothing, and a clean tree exits 0;
 * an allow() without a `-- reason` is itself reported;
 * baseline semantics: matching counts pass, counts above baseline
   fail, counts below baseline fail as stale (the ratchet only
   shrinks), and --write-baseline round-trips;
 * the real tree has zero unsuppressed findings and its lock-order
   graph names the mutexes of every current Mutex user (thread_pool,
   logging, sharded_counter, audit);
 * a failing run exits 1, not the violation count (a raw count would
   wrap modulo 256 on POSIX).

The fixture runs pin --frontend internal so results do not depend on
whether a clang driver happens to be installed; fixture sources are
parse targets, not compile targets. Registered as the
`analyzer_selftest` ctest by tools/CMakeLists.txt.
"""

import collections
import json
import os
import re
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
ANALYZE = os.path.join(TOOLS_DIR, "analyzer", "analyze.py")
FIXTURES = os.path.join(TOOLS_DIR, "analyzer", "fixtures")
REPO_ROOT = os.path.dirname(TOOLS_DIR)

FINDING_RE = re.compile(r"^(?P<path>\S+?):(?P<line>\d+): \[(?P<check>[\w-]+)\]")

# (fixture file, check) -> expected number of findings. Files in the bad
# tree absent here must produce zero findings.
EXPECTED = {
    ("guarded_escape_bad.cc", "guarded-ref-escape"): 3,
    ("lock_cycle_bad.cc", "lock-order-cycle"): 1,
    ("hot_alloc_bad.cc", "hot-loop-alloc"): 5,
    ("unordered_bad.cc", "unordered-iter"): 2,
    ("discarded_bad.cc", "discarded-status"): 3,
    ("allow_noreason_bad.cc", "allow-syntax"): 1,
}

# Mutex nodes the real-tree lock graph must name (acceptance criterion:
# coverage of every current Mutex user).
REQUIRED_GRAPH_NODES = (
    "ThreadPool::mutex_",
    "logging::g_severity_mu",
    "ShardedPhraseCounter::stats_mu_",
    "Shard::mu",
    "audit::g_stats_mu",
)


def run_analyze(extra_args):
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--frontend", "internal", "--quiet"] +
        extra_args,
        capture_output=True, text=True, check=False)
    findings = collections.Counter()
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings[(os.path.basename(match.group("path")),
                      match.group("check"))] += 1
    return proc, findings


def main():
    failures = []

    def expect(ok, what):
        if not ok:
            failures.append(what)

    # --- bad fixtures: every check fires, run fails (capped exit) ------
    proc, findings = run_analyze(
        ["--repo-root", FIXTURES, "--roots", "bad", "--no-baseline"])
    expect(proc.returncode == 1,
           f"bad tree: expected exit 1 (capped), got {proc.returncode}")
    for key, want in EXPECTED.items():
        got = findings.pop(key, 0)
        expect(got == want,
               f"{key[0]}: expected {want} [{key[1]}], got {got}")
    expect(not findings,
           f"bad tree: unexpected findings {dict(findings)}")
    expect("lock-order-cycle" in proc.stdout and
           "g_mu_a" in proc.stdout and "g_mu_b" in proc.stdout,
           "seeded cycle: expected both mutexes named in the cycle report")

    # --- clean fixtures: nothing fires -------------------------------
    proc, findings = run_analyze(
        ["--repo-root", FIXTURES, "--roots", "clean", "--no-baseline"])
    expect(proc.returncode == 0,
           f"clean tree: expected exit 0, got {proc.returncode}")
    expect(not findings,
           f"clean tree: unexpected findings {dict(findings)} (reserve "
           "discipline, determinism marker, allow(reason), or by-value "
           "snapshot handling regressed)")

    # --- baseline semantics -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        baseline = os.path.join(tmp, "baseline.json")
        # --write-baseline captures the bad tree, then a normal run with
        # that baseline passes with everything baselined.
        proc, _ = run_analyze(["--repo-root", FIXTURES, "--roots", "bad",
                               "--baseline", baseline, "--write-baseline"])
        expect(proc.returncode == 0,
               f"write-baseline: expected exit 0, got {proc.returncode}")
        with open(baseline, encoding="utf-8") as f:
            captured = json.load(f)
        expect(sum(captured.values()) == sum(EXPECTED.values()),
               f"write-baseline: expected {sum(EXPECTED.values())} "
               f"entries, captured {sum(captured.values())}")
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad",
             "--baseline", baseline])
        expect(proc.returncode == 0 and not findings,
               "baselined run: expected exit 0 with no printed findings, "
               f"got {proc.returncode} / {dict(findings)}")

        # Growth: shrink one baseline entry — the newest finding escapes
        # the baseline and fails the run.
        grown = dict(captured)
        key = "bad/hot_alloc_bad.cc:hot-loop-alloc"
        grown[key] = grown[key] - 1
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump(grown, f)
        proc, findings = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad",
             "--baseline", baseline])
        expect(proc.returncode == 1 and
               findings.get(("hot_alloc_bad.cc", "hot-loop-alloc")) == 1,
               "baseline growth: expected exactly the one above-baseline "
               f"finding to fail, got {proc.returncode} / {dict(findings)}")

        # Staleness: inflate an entry — fewer findings than baselined
        # must fail until the baseline is re-shrunk.
        stale = dict(captured)
        stale[key] = stale[key] + 2
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump(stale, f)
        proc, _ = run_analyze(
            ["--repo-root", FIXTURES, "--roots", "bad",
             "--baseline", baseline])
        expect(proc.returncode == 1 and "stale baseline" in proc.stdout,
               f"stale baseline: expected failure, got {proc.returncode}")

    # --- real tree: zero unsuppressed findings + full mutex coverage --
    with tempfile.TemporaryDirectory() as tmp:
        dot = os.path.join(tmp, "lock_order.dot")
        proc, findings = run_analyze(
            ["--repo-root", REPO_ROOT, "--roots", "src", "tools",
             "--dot-out", dot])
        expect(proc.returncode == 0,
               f"real tree: expected exit 0, got {proc.returncode}:\n"
               f"{proc.stdout}")
        expect(not findings,
               f"real tree: unsuppressed findings {dict(findings)}")
        with open(dot, encoding="utf-8") as f:
            graph = f.read()
        for node in REQUIRED_GRAPH_NODES:
            expect(f'"{node}"' in graph,
                   f"lock graph: missing required mutex node {node}")

    if failures:
        for f in failures:
            print(f"analyzer_selftest: FAIL: {f}")
        return 1
    print("analyzer_selftest: all check fixtures, baseline semantics, and "
          "the real-tree gate behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
