"""Per-function lockset/access walker — the dataflow substrate shared by
lock-order analysis (lockgraph.py), race inference (raceinfer.py), and
the blocking-under-lock check (dataflow.py).

One walk over every function body produces a FnWalk: the locks acquired
(with the held-set at each acquisition site — lockgraph replays these
into the acquired-while-held graph), every field/global access with the
lockset held at that point, every call site with its held-set and a
resolved receiver class when the type resolver can prove one, and nested
lambda walks. Keeping a single walker is what stops the lock-order and
race analyses from drifting: they cannot disagree about where a lock is
held because they read the same events.

Modeling decisions, shared with (and lifted from) lockgraph.py:

  * `MutexLock lock(&mu)` scopes release at block end; explicit
    Lock/TryLock/Unlock mutate the running held list.
  * REQUIRES(mu) annotations seed the entry held-set.
  * Lambda bodies get a fresh held-set (the closure may run later on
    another thread) and become child FnWalks. A lambda is `launched`
    when its statement hands it to a thread boundary: ThreadPool::Submit,
    ThreadPool::ParallelFor, a std::thread constructor, or an emplace
    into a std::vector<std::thread>. Launched lambdas are the thread
    roots of the race inference (callgraph.py).
  * Constructors/destructors are walked (their lock edges are real) but
    their field accesses are marked so race inference can treat them as
    single-threaded: an object under construction is not yet shared.

Ownership (the RacerD idea that kills index-disjoint false positives):
a locality map classifies names the current context can vouch for —
a by-value class local is *owned* (accesses through it are private to
this thread until it escapes), a function parameter is *param*
(pointer/reference arguments bind caller-owned state; the concurrent
event to flag is the address-of at the callsite), and a
reference/pointer local whose initializer draws only on owned/param
names is an *alias* inheriting the weaker of its sources (the
`AlignmentWorkspace& ws = workspace ? *workspace : local;` idiom).
Launched lambdas do NOT inherit the enclosing function's locality map
(captured-by-reference locals and parameters are shared across
workers); same-thread lambdas do. Element writes through a subscript (`v_[i] = x`) are
recorded as element accesses, not container writes: the repo's fork-join
idiom gives each worker a disjoint index range, and the serial/parallel
byte-identity oracles are the check on that claim.
"""

import re

from cpputil import Scope, extract_calls, split_top_level, type_head
from model import (Block, ExprStmt, If, LocalClass, Loop, Return, VarDecl)

LOCK_CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*(?:\.|->)\s*"
    r"(Lock|TryLock|Unlock)\s*\(")

REQUIRES_RE = re.compile(
    r"\b(?:REQUIRES|EXCLUSIVE_LOCKS_REQUIRED)\s*\(")

LOG_PSEUDO_LOCK = "logging::g_severity_mu"

MUTEX_TYPE_HEADS = ("Mutex", "util::Mutex", "infoshield::Mutex")
MUTEXLOCK_TYPE_HEADS = ("MutexLock", "util::MutexLock",
                        "infoshield::MutexLock")

# Types that synchronize internally (or are the synchronization): field
# accesses on them are never data races at this level of abstraction.
SYNC_TYPE_HEADS = ("Mutex", "util::Mutex", "infoshield::Mutex",
                   "MutexLock", "CondVar", "util::CondVar",
                   "infoshield::CondVar", "ThreadPool",
                   "infoshield::ThreadPool", "std::atomic",
                   "std::once_flag", "std::mutex",
                   "std::condition_variable", "std::thread")

# Container entry points that mutate the container object itself (as
# opposed to reading through it). A call `field_.push_back(x)` is a
# write access to `field_`.
MUTATING_METHODS = {"push_back", "emplace_back", "push_front",
                    "emplace_front", "insert", "emplace", "push", "pop",
                    "pop_back", "pop_front", "append", "assign", "resize",
                    "reserve", "clear", "erase", "swap", "shrink_to_fit",
                    "Union", "Increment", "MergeFrom"}

# Thread-boundary spellings that launch a lambda onto another thread.
LAUNCH_RE = re.compile(r"\b(?:Submit|ParallelFor)\s*\(|\bstd::thread\b")

EXCLUDED_FILES = ("util/mutex.h", "util/mutex.cc",
                  "util/thread_annotations.h")

FUZZ_ENTRY = "LLVMFuzzerTestOneInput"

CHAIN_RE = re.compile(
    r"(?:this\s*->\s*)?[A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*")

COMPOUND_ASSIGN_RE = re.compile(r"(\+|-|\*|/|%|&&?|\|\|?|\^|<<|>>)=(?!=)")

IDENT_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                  "new", "delete", "true", "false", "nullptr", "this",
                  "const", "static", "auto", "void", "int", "bool",
                  "size_t", "double", "float", "char", "else", "do",
                  "case", "default", "break", "continue", "std"}


def is_excluded(path):
    return any(path.endswith(e) for e in EXCLUDED_FILES)


class Access:
    """One field/global access with its lockset.

    kind: 'read' | 'write' | 'elem' (subscripted element access —
    assumed index-disjoint, see module docstring).
    root: 'this' (owner-field rooted), 'global', 'var' (through a
    local/capture), 'param' (through a pointer/reference parameter of
    the enclosing function), or 'owned' (through a by-value local of
    the current context).
    via_guarded: the chain passed through a container field that
    carries its own GUARDED_BY — TSA already polices every path to the
    leaf, so inference defers to the aggregate's annotation.
    """

    __slots__ = ("key", "line", "kind", "held", "window", "root",
                 "via_guarded")

    def __init__(self, key, line, kind, held, window, root,
                 via_guarded=False):
        self.key = key
        self.line = line
        self.kind = kind
        self.held = held
        self.window = window
        self.root = root
        self.via_guarded = via_guarded

    def __repr__(self):
        return (f"Access({self.key}@{self.line} {self.kind} "
                f"held={sorted(self.held)})")


class CallSite:
    """One call with the held-set at the site. recv_class is the callee
    owner class name when the receiver's type resolved ('' otherwise);
    recv_root mirrors Access.root for the receiver chain."""

    __slots__ = ("name", "path", "recv_class", "recv_root", "held",
                 "line", "window")

    def __init__(self, name, path, recv_class, recv_root, held, line,
                 window):
        self.name = name
        self.path = path
        self.recv_class = recv_class
        self.recv_root = recv_root
        self.held = held
        self.line = line
        self.window = window


class Acquire:
    __slots__ = ("name", "held_before", "line", "detail")

    def __init__(self, name, held_before, line, detail):
        self.name = name
        self.held_before = held_before
        self.line = line
        self.detail = detail


class Op:
    """A potentially-blocking operation (I/O, sleep) with the lockset at
    the site — consumed by the blocking-under-lock check."""

    __slots__ = ("desc", "held", "line")

    def __init__(self, desc, held, line):
        self.desc = desc
        self.held = held
        self.line = line


# Direct blocking calls: stdio and sleeps. CHECK/LOG are deliberately
# NOT here (see dataflow.py); CondVar::Wait is excluded by receiver
# type.
BLOCKING_CALL_NAMES = {"fopen", "fclose", "fread", "fwrite", "fprintf",
                       "printf", "fputs", "fputc", "fgets", "fflush",
                       "getline", "perror", "system", "sleep", "usleep",
                       "sleep_for", "sleep_until"}

OSTREAM_HEADS = ("std::ostream", "std::ofstream", "std::fstream")

STD_STREAM_WRITE_RE = re.compile(r"\bstd::c(?:out|err|log)\b\s*<<")

STREAM_LHS_RE = re.compile(
    r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*<<")


class FnWalk:
    """Everything the downstream analyses need to know about one
    function (or lambda) body."""

    def __init__(self, fn, tu, owner, node_id, is_lambda=False,
                 launched=False, in_ctor=False):
        self.fn = fn
        self.tu = tu
        self.owner = owner
        self.node_id = node_id
        self.is_lambda = is_lambda
        self.launched = launched       # handed to a thread boundary
        self.in_ctor = in_ctor         # ctor/dtor body (or lambda herein)
        self.entry_held = []           # canonical mutexes from REQUIRES
        self.acquires = []             # [Acquire]
        self.accesses = []             # [Access]
        self.callsites = []            # [CallSite]
        self.calls_log = False
        self.log_under_lock = []       # [(held tuple, line, callee)]
        self.ops = []                  # [Op] blocking operations
        self.lambdas = []              # [FnWalk]

    # --- aggregation over this walk plus nested lambdas (the summary
    # shape lockgraph's transitive pass consumes) ---------------------

    def walks(self):
        yield self
        for lam in self.lambdas:
            yield from lam.walks()

    def walks_same_thread(self):
        """Like walks(), but stops at launched lambdas: their bodies run
        on another thread, so their blocking ops are not the caller's."""
        yield self
        for lam in self.lambdas:
            if not lam.launched:
                yield from lam.walks_same_thread()

    def all_acquired(self):
        out = set(self.entry_held)
        for w in self.walks():
            out.update(a.name for a in w.acquires)
        return out

    def all_callee_names(self):
        return {c.name for w in self.walks() for c in w.callsites}

    def all_callsites(self):
        return [c for w in self.walks() for c in w.callsites]

    def any_calls_log(self):
        return any(w.calls_log for w in self.walks())

    def all_log_under_lock(self):
        return [s for w in self.walks() for s in w.log_under_lock]

    def all_acquires(self):
        return [a for w in self.walks() for a in w.acquires]


class Canonicalizer:
    """Maps a mutex (or field) expression to a stable node name:
    Class::field for members, <filestem>::<name> for file-scope
    globals — shared verbatim with the lock-order graph so a GUARDED_BY
    suggestion names the same node the dot graph does."""

    def __init__(self, ctx, tu, fn, owner, scope):
        self.ctx = ctx
        self.tu = tu
        self.fn = fn
        self.owner = owner
        self.scope = scope

    def canon(self, expr):
        e = expr.strip().lstrip("&*").strip()
        e = re.sub(r"^this\s*->\s*", "", e)
        m = re.match(r"^(.*?)(?:\.|->)\s*([A-Za-z_]\w*)$", e, re.DOTALL)
        if m:
            obj, field = m.group(1).strip(), m.group(2)
            t = self.scope.resolve(obj)
            cls = self.ctx.class_of_type(t)
            if cls is not None:
                return f"{cls.name}::{field}"
            return f"?::{e}"
        name = e
        if self.owner is not None and name in self.owner.fields:
            return f"{self.owner.name}::{name}"
        if name in self.tu.globals:
            return f"{file_stem(self.tu.path)}::{name}"
        if name in self.scope.vars:
            return f"{self.fn.qname}::{name}"
        return f"?::{name}"


def file_stem(path):
    import posixpath
    return posixpath.basename(path).rsplit(".", 1)[0]


def is_log_call(name):
    return name.startswith("CHECK") or name == "LOG" or \
        name.startswith("LOG_")


def _is_sync_type(type_text):
    head = type_head(type_text or "")
    if head.startswith("std::atomic"):
        return True
    return head in SYNC_TYPE_HEADS


def _is_const_type(type_text):
    return bool(re.match(r"\s*(?:static\s+)?const\b", type_text or "")) or \
        "constexpr" in (type_text or "")


def _split_chain(chain):
    """['a', 'b', 'c'] for 'a.b->c', with this-> stripped (returns
    (parts, had_this))."""
    c = re.sub(r"\s+", "", chain)
    had_this = False
    if c.startswith("this->"):
        had_this = True
        c = c[len("this->"):]
    parts = re.split(r"\.|->", c)
    return [p for p in parts if p], had_this


class _AccessScanner:
    """Extracts field/global accesses from one statement's text."""

    def __init__(self, walk, scope, ctx, owned):
        self.walk = walk
        self.scope = scope
        self.ctx = ctx
        self.owned = owned

    def scan(self, text, line, held, window):
        if not text:
            return
        held_f = frozenset(held)
        eq = _top_level_assign_pos(text)
        compound = None
        if eq < 0:
            m = _top_level_compound(text)
            if m is not None:
                compound = m
        write_spans = []
        if eq >= 0:
            write_spans.append((0, eq))
        elif compound is not None:
            write_spans.append((0, compound))
        for m in CHAIN_RE.finditer(text):
            chain = m.group(0)
            parts, had_this = _split_chain(chain)
            if not parts or parts[0] in IDENT_KEYWORDS:
                continue
            start, end = m.start(), m.end()
            after = text[end:end + 24]
            # A call: the last component is the method/function name.
            is_call = bool(re.match(r"\s*\(", after))
            method = parts[-1] if is_call and len(parts) > 1 else None
            obj_parts = parts[:-1] if is_call else parts
            if is_call and len(parts) == 1:
                continue  # free function call, no receiver access
            if not obj_parts:
                continue
            kind = "read"
            if is_call and method in MUTATING_METHODS:
                kind = "write"
            elif self._in_spans(start, end, write_spans, text):
                kind = "write"
            elif self._incdec(text, start, end):
                kind = "write"
            elif start > 0 and text[start - 1] == "&" and \
                    (start < 2 or text[start - 2] != "&"):
                kind = "write"  # address taken: the alias can write
            if re.match(r"\s*\[", after) and kind == "write" and \
                    not is_call:
                kind = "elem"  # subscripted element write
            self._record(obj_parts, had_this, kind, line, held_f, window,
                         text, start)

    def _in_spans(self, start, end, spans, text):
        for lo, hi in spans:
            if start >= lo and end <= hi:
                # Only the trailing chain of the LHS is the target.
                rest = text[end:hi]
                if not re.search(r"[A-Za-z_]", rest):
                    return True
        return False

    def _incdec(self, text, start, end):
        before = text[:start].rstrip()
        after = text[end:].lstrip()
        return before.endswith("++") or before.endswith("--") or \
            after.startswith("++") or after.startswith("--")

    def _record(self, parts, had_this, kind, line, held, window, text,
                start):
        """Resolves a member chain to per-step field keys. All steps but
        the last are reads; the last carries `kind`."""
        root = parts[0]
        owner = self.walk.owner
        scope = self.scope
        # Where does the chain start?
        if not had_this and root in self.owned:
            root_kind = self.owned[root]
            cls = self.ctx.class_of_type(scope.type_of_name(root))
            steps = parts[1:]
        elif not had_this and (root in scope.vars):
            root_kind = "var"
            cls = self.ctx.class_of_type(scope.type_of_name(root))
            steps = parts[1:]
        elif owner is not None and root in owner.fields:
            root_kind = "this"
            self._emit(owner, root, parts[1:], kind, line, held, window,
                       root_kind)
            return
        elif not had_this and root in self.walk.tu.globals:
            root_kind = "global"
            key = f"{file_stem(self.walk.tu.path)}::{root}"
            gtype = self.walk.tu.globals.get(root, "")
            if not _is_sync_type(gtype) and not _is_const_type(gtype):
                self.walk.accesses.append(Access(
                    key, line, kind if len(parts) == 1 else "read",
                    held, window, root_kind))
            # Member steps under a global struct: resolve onward.
            cls = self.ctx.class_of_type(gtype)
            steps = parts[1:]
            if steps and cls is not None:
                self._emit_steps(
                    cls, steps, kind, line, held, window, root_kind,
                    via_guarded=bool(
                        self.walk.tu.global_guards.get(root)))
            return
        else:
            return  # unknown root: resolver gap -> silent (no FP)
        if steps and cls is not None:
            self._emit_steps(cls, steps, kind, line, held, window,
                             root_kind)

    def _emit(self, owner, root, rest, kind, line, held, window,
              root_kind):
        field = owner.fields.get(root)
        if field is None:
            return
        final = not rest
        if not (_is_sync_type(field.type_text) or
                _is_const_type(field.type_text)):
            self.walk.accesses.append(Access(
                f"{owner.name}::{root}", line,
                kind if final else "read", held, window, root_kind))
        if rest:
            cls = self.ctx.class_of_type(field.type_text)
            if cls is not None:
                self._emit_steps(cls, rest, kind, line, held, window,
                                 root_kind,
                                 via_guarded=bool(field.guarded_by))

    def _emit_steps(self, cls, steps, kind, line, held, window, root_kind,
                    via_guarded=False):
        cur = cls
        for i, member in enumerate(steps):
            if cur is None:
                return
            field = cur.fields.get(member)
            if field is None:
                return  # method or unknown member: stop the chain
            final = (i == len(steps) - 1)
            if not (_is_sync_type(field.type_text) or
                    _is_const_type(field.type_text)):
                self.walk.accesses.append(Access(
                    f"{cur.name}::{member}", line,
                    kind if final else "read", held, window, root_kind,
                    via_guarded=via_guarded))
            if field.guarded_by:
                via_guarded = True
            cur = self.ctx.class_of_type(field.type_text)


def _top_level_assign_pos(text):
    depth = 0
    angle = 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "=" and depth == 0 and angle == 0:
            prev = text[i - 1] if i else ""
            nxt = text[i + 1] if i + 1 < len(text) else ""
            if prev not in "=!<>+-*/%&|^" and nxt != "=":
                return i
    return -1


def _top_level_compound(text):
    depth = 0
    angle = 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "=" and depth == 0 and angle == 0 and i > 0:
            if text[i - 1] in "+-*/%&|^" or text[max(0, i - 2):i] in \
                    ("<<", ">>"):
                nxt = text[i + 1] if i + 1 < len(text) else ""
                if nxt != "=":
                    return i
    return None


LAMBDA_OPEN_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:->\s*[\w:<>&*\s]+?\s*)?\{")


def strip_lambda_bodies(text):
    """Returns `text` with the bodies of inline lambdas emptied to `{}`.
    Capture lists and the surrounding call survive (launch detection and
    window tracking still see `Submit(` / `ParallelFor(`), but the body
    statements do not leak into the enclosing function's scan."""
    spans = []
    pos = 0
    while True:
        m = LAMBDA_OPEN_RE.search(text, pos)
        if m is None:
            break
        depth = 0
        end = None
        for i in range(m.end() - 1, len(text)):
            c = text[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end is None:
            spans.append((m.end(), len(text)))
            break
        spans.append((m.end(), end))
        pos = end
    if not spans:
        return text
    out = []
    last = 0
    for lo, hi in spans:
        out.append(text[last:lo])
        last = hi
    out.append(text[last:])
    return "".join(out)


def _is_ctor_dtor(fn, owner):
    if owner is None:
        return False
    return fn.name == owner.name or fn.name == f"~{owner.name}"


def walk_function(fn, tu, ctx, owner):
    """Walks one function definition; returns its FnWalk (with nested
    lambda FnWalks attached)."""
    scope = Scope(ctx, tu, fn, owner)
    canon = Canonicalizer(ctx, tu, fn, owner, scope)
    node_id = f"{tu.path}::{fn.qname}@{fn.line}"
    top = FnWalk(fn, tu, owner, node_id,
                 in_ctor=_is_ctor_dtor(fn, owner))

    for ann in fn.annotations:
        m = REQUIRES_RE.search(ann)
        if m:
            inner = ann[m.end():ann.rfind(")")]
            for arg in split_top_level(inner):
                if arg.strip():
                    top.entry_held.append(canon.canon(arg))

    state = {"window": False}

    def scan_text(walk, owned, text, held, line):
        """Lock events + calls + accesses for one statement text. Inline
        lambda bodies are stripped first: their statements are walked as
        child FnWalks with their own held-set and concurrency level, and
        double-counting them here would attribute a worker's accesses to
        the launching thread."""
        text = strip_lambda_bodies(text)
        for m in LOCK_CALL_RE.finditer(text):
            obj, op = m.group(1), m.group(2)
            name = canon.canon(obj)
            if op == "Unlock":
                if name in held:
                    held.remove(name)
            else:
                walk.acquires.append(Acquire(name, tuple(held), line,
                                             f"{obj}.{op}()"))
                held.append(name)
        for path_, _args, _pos in extract_calls(text):
            callee = re.split(r"::|\.|->", path_)[-1]
            if callee in ("Lock", "TryLock", "Unlock"):
                continue
            if is_log_call(callee):
                walk.calls_log = True
                if held:
                    walk.log_under_lock.append((tuple(held), line, callee))
                continue
            recv_class, recv_root = _receiver(path_, callee, scope, ctx,
                                              owner, owned)
            walk.callsites.append(CallSite(
                callee, path_, recv_class, recv_root, tuple(held), line,
                state["window"]))
            if callee in BLOCKING_CALL_NAMES:
                walk.ops.append(Op(f"{callee}()", tuple(held), line))
        if STD_STREAM_WRITE_RE.search(text):
            walk.ops.append(Op("console stream output", tuple(held), line))
        else:
            m = STREAM_LHS_RE.search(text)
            if m and type_head(scope.resolve(m.group(1))) in OSTREAM_HEADS:
                walk.ops.append(Op(f"stream output to {m.group(1)}",
                                   tuple(held), line))
        if not walk.in_ctor:
            _AccessScanner(walk, scope, ctx, owned).scan(
                text, line, held, state["window"])
        _update_window(text, scope, ctx, state)

    def walk_block(walk, owned, block, held):
        held = list(held)
        for s in block.stmts:
            if isinstance(s, VarDecl):
                if type_head(s.type_text) in MUTEXLOCK_TYPE_HEADS:
                    arg = s.init_text.strip().lstrip("(").rstrip(")")
                    arg = arg.split(",")[0]
                    name = canon.canon(arg)
                    walk.acquires.append(Acquire(
                        name, tuple(held), s.line,
                        f"MutexLock in {fn.qname}"))
                    held.append(name)
                else:
                    if "&" not in s.type_text and "*" not in s.type_text:
                        if ctx.class_of_type(s.type_text) is not None:
                            owned[s.name] = "owned"
                    else:
                        kind = _alias_kind(s.init_text, scope, owner,
                                           owned, tu)
                        if kind is not None:
                            owned[s.name] = kind
                    scan_text(walk, owned, s.text, held, s.line)
                _child_lambdas(walk, owned, s, held)
            elif isinstance(s, ExprStmt):
                scan_text(walk, owned, s.text, held, s.line)
                _child_lambdas(walk, owned, s, held)
            elif isinstance(s, Return):
                if s.expr_text:
                    scan_text(walk, owned, s.expr_text, held, s.line)
            elif isinstance(s, If):
                scan_text(walk, owned, s.cond_text, held, s.line)
                walk_block(walk, owned, s.then_block, held)
                if s.else_block is not None:
                    walk_block(walk, owned, s.else_block, held)
            elif isinstance(s, Loop):
                scan_text(walk, owned, s.header_text, held, s.line)
                walk_block(walk, owned, s.body, held)
            elif isinstance(s, Block):
                walk_block(walk, owned, s, held)
            elif isinstance(s, LocalClass):
                pass  # its methods are walked as their own functions

    def _child_lambdas(walk, owned, s, held):
        if not s.children:
            return
        launched = bool(LAUNCH_RE.search(s.text)) or \
            _thread_vector_launch(s.text, scope, ctx)
        for ch in s.children:
            lam = FnWalk(fn, tu, owner,
                         f"{walk.node_id}#lambda@{ch.line}",
                         is_lambda=True, launched=launched,
                         in_ctor=walk.in_ctor and not launched)
            walk.lambdas.append(lam)
            # Launched lambdas run on another thread: fresh held-set and
            # no inherited ownership (captured locals are shared).
            lam_owned = {} if launched else dict(owned)
            walk_block(lam, lam_owned, ch, [])

    if fn.body is not None:
        # The locality map: name -> 'owned' | 'param'. Params are the
        # caller-owned bet; by-value class locals and safe aliases join
        # as the body is walked.
        locality = {p.name: "param" for p in fn.params if p.name}
        walk_block(top, locality, fn.body, list(top.entry_held))
    return top


def _alias_kind(init_text, scope, owner, owned, tu):
    """Locality of a reference/pointer local, judged by its initializer:
    if every identifier that names in-scope state (a local, a field of
    the owner, a global) is itself owned/param, the alias inherits the
    weaker of those kinds; any shared-rooted or unresolved source makes
    the alias untracked (root 'var'). Handles the scratch-buffer idiom
    `AlignmentWorkspace& ws = workspace != nullptr ? *workspace : local;`
    and summary handles like `EncodingSummary& s = enc.summary;`."""
    if not init_text:
        return None
    kinds = set()
    for m in re.finditer(r"[A-Za-z_]\w*", init_text):
        name = m.group(0)
        if name in IDENT_KEYWORDS:
            continue
        prev = init_text[:m.start()].rstrip()
        if prev.endswith((".", "->", "::")):
            continue  # member/namespace step, not a chain root
        if name in owned:
            kinds.add(owned[name])
        elif name in scope.vars or name in tu.globals or \
                (owner is not None and name in owner.fields):
            return None
    if not kinds:
        return None
    return "param" if "param" in kinds else "owned"


def _thread_vector_launch(text, scope, ctx):
    """True when the statement emplaces into a std::vector<std::thread>
    — the `workers_.emplace_back([this] { WorkerLoop(); })` launch
    idiom."""
    for m in re.finditer(r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*"
                         r"(?:\.|->)\s*(?:emplace_back|push_back)\s*\(",
                         text):
        t = scope.resolve(m.group(1))
        if type_head(t) == "std::vector" and "std::thread" in t:
            return True
    return False


def _receiver(path, callee, scope, ctx, owner, owned):
    """(receiver class name, receiver root kind) for a call path like
    'counter.Flush' / 'ShardedPhraseCounter::Flush' / 'Flush'."""
    prefix = path[: len(path) - len(callee)]
    prefix = prefix.rstrip(".:->")
    prefix = re.sub(r"\s+", "", prefix)
    if not prefix:
        if owner is not None and any(m.name == callee
                                     for m in owner.methods):
            return owner.name, "this"
        return "", ""
    if "::" in path and "." not in prefix and "->" not in prefix:
        cls = ctx.class_by_name(prefix)
        if cls is not None:
            return cls.name, "static"
        return "", ""
    parts, had_this = _split_chain(prefix)
    root_kind = "var"
    if had_this or (owner is not None and parts and
                    parts[0] in owner.fields and
                    parts[0] not in scope.vars):
        root_kind = "this"
    elif parts and parts[0] in owned:
        root_kind = owned[parts[0]]
    t = scope.resolve(prefix)
    cls = ctx.class_of_type(t)
    if cls is not None:
        return cls.name, root_kind
    return "", root_kind


def _update_window(text, scope, ctx, state):
    """Tracks the Submit..Wait concurrency window in a launching
    function: after a Submit the submitted task may run concurrently
    with the remainder of the function until a pool Wait joins it.
    ParallelFor joins internally and opens no window."""
    for m in re.finditer(r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)"
                         r"\s*(?:\.|->)\s*(Submit|Wait)\s*\(", text):
        obj, op = m.group(1), m.group(2)
        t = scope.resolve(obj)
        cls = ctx.class_of_type(t)
        head = type_head(t)
        is_pool = (cls is not None and cls.name == "ThreadPool") or \
            head.endswith("ThreadPool")
        if not is_pool:
            continue
        state["window"] = (op == "Submit")


def walk_tree(tus, ctx):
    """Walks every function definition in the analyzed tree (minus the
    primitive mutex layer). Returns a list of top-level FnWalks."""
    walks = []
    for tu in tus:
        if is_excluded(tu.path):
            continue
        for fn in tu.all_functions():
            if fn.body is None:
                continue
            owner = ctx.class_by_name(fn.owner) if fn.owner else None
            walks.append(walk_function(fn, tu, ctx, owner))
    return walks
