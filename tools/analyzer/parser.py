"""Built-in structural C++ frontend for the analyzer.

Parses the repo's disciplined C++ subset (see tools/lint.py for the
conventions that make this tractable: no exceptions, column-0 namespace
scope, annotated concurrency primitives) into the normalized AST model
of tools/analyzer/model.py. Used when no clang driver is installed; when
clang++ is available, tools/analyzer/clang_frontend.py produces the same
model from exact `-ast-dump=json` ASTs instead.

The parser is deliberately forgiving: segments it cannot classify are
skipped, never fatal, so an exotic construct degrades to a missed
statement rather than a crashed gate.
"""

import re

from model import (Block, ClassDecl, ExprStmt, Field, FunctionDecl, If,
                   LocalClass, Loop, Param, Return, Stmt, TU, VarDecl,
                   scan_annotation_comments)

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "do", "else", "return",
                    "case", "default", "break", "continue", "goto", "try",
                    "catch", "sizeof", "new", "delete", "throw", "using",
                    "typedef", "friend", "template", "public", "private",
                    "protected", "static_assert", "operator"}

TYPE_QUALIFIERS = ("const ", "static ", "constexpr ", "mutable ",
                   "inline ", "volatile ", "extern ")

GUARDED_BY_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\(\s*([^)]*?)\s*\)")

CLASS_HEAD_RE = re.compile(
    r"^(?:template\s*<.*>\s*)?(?:class|struct)\b(?!.*\benum\b)", re.DOTALL)

ACCESS_LABEL_RE = re.compile(r"^\s*(?:public|private|protected)\s*:")
CASE_LABEL_RE = re.compile(r"^\s*(?:case\b[^:]*|default\s*):(?!:)")

# Trailing function annotations worth keeping (TSA contracts + const).
ANNOTATION_RE = re.compile(
    r"\b(REQUIRES|REQUIRES_SHARED|EXCLUDES|ACQUIRE|RELEASE|TRY_ACQUIRE|"
    r"ASSERT_CAPABILITY|NO_THREAD_SAFETY_ANALYSIS|const|override|noexcept)"
    r"\b(\s*\([^)]*\))?")

# `using Name = Type;` at any scope. Alias names are unique across the
# repo's disciplined subset, so a flat per-TU map suffices; the resolver
# (cpputil.dealias) chases chains like `using Views = SlotList;`.
USING_ALIAS_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;=]+?)\s*;")

VAR_DECL_RE = re.compile(
    r"^(?:(?:const|static|constexpr|mutable|inline|volatile)\s+)*"
    r"(?P<type>[A-Za-z_][\w]*(?:::[A-Za-z_]\w*)*(?:\s*<.*>)?"
    r"(?:::[A-Za-z_]\w*)*(?:\s*(?:const)?\s*[&*])*)"
    r"\s+(?P<name>[A-Za-z_]\w*)\s*(?P<rest>[;({=\[].*)?$",
    re.DOTALL)


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines and
    column positions (same contract as tools/lint.py's helper)."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_preprocessor(text):
    """Blanks preprocessor directive lines (including backslash
    continuations) so #define bodies are never parsed as code."""
    lines = text.split("\n")
    in_directive = False
    for i, line in enumerate(lines):
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            lines[i] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


class _Cursor:
    """Offset/line bookkeeping over the stripped text."""

    def __init__(self, text):
        self.text = text
        # newline offsets for O(log n) offset->line
        self.nl = [i for i, c in enumerate(text) if c == "\n"]

    def line_of(self, offset):
        import bisect
        return bisect.bisect_right(self.nl, offset - 1) + 1


def match_brace(text, open_pos):
    """Offset of the '}' matching the '{' at open_pos (strings already
    blanked). Returns len(text)-1 when unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def match_paren(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def split_top_level(text, sep=","):
    """Splits on `sep` at zero paren/brace/bracket/angle depth."""
    parts = []
    depth_round = depth_brace = depth_sq = depth_angle = 0
    cur = []
    for c in text:
        if c == "(":
            depth_round += 1
        elif c == ")":
            depth_round -= 1
        elif c == "{":
            depth_brace += 1
        elif c == "}":
            depth_brace -= 1
        elif c == "[":
            depth_sq += 1
        elif c == "]":
            depth_sq -= 1
        elif c == "<":
            depth_angle += 1
        elif c == ">":
            depth_angle = max(0, depth_angle - 1)
        if (c == sep and depth_round == 0 and depth_brace == 0 and
                depth_sq == 0 and depth_angle <= 0):
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


class Parser:
    def __init__(self, path, raw_text):
        self.path = path
        self.raw = raw_text
        stripped = strip_comments_and_strings(raw_text)
        self.text = blank_preprocessor(stripped)
        self.cur = _Cursor(self.text)
        self.tu = TU(path)
        scan_annotation_comments(raw_text, self.tu)
        # Type aliases feed the resolver of BOTH frontends: the clang
        # lowerer wraps this parser, so the scan happens exactly once.
        for m in USING_ALIAS_RE.finditer(self.text):
            self.tu.aliases.setdefault(m.group(1), m.group(2).strip())

    def parse(self):
        self.parse_decl_region(0, len(self.text), class_ctx=None)
        self._mark_hot_functions()
        return self.tu

    # ----- declaration-level parsing -------------------------------------

    def parse_decl_region(self, lo, hi, class_ctx):
        """Scans [lo, hi) for namespace-scope or class-scope declarations.
        class_ctx is the enclosing ClassDecl or None."""
        i = lo
        text = self.text
        while i < hi:
            c = text[i]
            if c in " \t\n;":
                i += 1
                continue
            # Segment: up to the first top-level ';' or a '{' body.
            seg_start = i
            paren = 0
            body_open = -1
            j = i
            while j < hi:
                ch = text[j]
                if ch == "(":
                    paren += 1
                elif ch == ")":
                    paren -= 1
                elif ch == "=" and paren == 0:
                    # `= default;`, `= delete;`, or an initializer — any
                    # '{' after a top-level '=' is an initializer brace,
                    # not a body. Scan on to the terminating ';'.
                    j = self._skip_initializer(j, hi)
                    body_open = -1
                    break
                elif ch == "{" and paren == 0:
                    body_open = j
                    break
                elif ch == ";" and paren == 0:
                    break
                j += 1
            if body_open >= 0:
                body_close = match_brace(text, body_open)
                head = text[seg_start:body_open]
                self.classify_body_segment(head, seg_start, body_open,
                                           body_close, class_ctx)
                i = body_close + 1
                # consume a trailing `;` (class) if present
                while i < hi and text[i] in " \t\n":
                    i += 1
                if i < hi and text[i] == ";":
                    i += 1
            else:
                seg_end = min(j, hi)
                head = text[seg_start:seg_end]
                self.classify_plain_segment(head, seg_start, class_ctx)
                i = seg_end + 1

    def _skip_initializer(self, eq_pos, hi):
        """From a top-level '=', returns the offset of the terminating
        ';' (skipping initializer braces/parens)."""
        depth = 0
        j = eq_pos
        text = self.text
        while j < hi:
            ch = text[j]
            if ch in "({[":
                depth += 1
            elif ch in ")}]":
                depth -= 1
            elif ch == ";" and depth <= 0:
                return j
            j += 1
        return hi - 1

    def classify_body_segment(self, head, seg_start, body_open, body_close,
                              class_ctx):
        head_clean = ACCESS_LABEL_RE.sub("", head).strip()
        blanked = ACCESS_LABEL_RE.sub(lambda m: " " * len(m.group(0)),
                                      head)
        lead_ws = len(blanked) - len(blanked.lstrip())
        line = self.cur.line_of(seg_start + lead_ws)
        if head_clean.startswith("namespace"):
            self.parse_decl_region(body_open + 1, body_close, class_ctx)
            return
        if re.match(r"^enum\b", head_clean):
            return  # enumerators carry no analyzer-relevant structure
        if CLASS_HEAD_RE.match(head_clean) and \
                self._looks_like_class_head(head_clean):
            decl = self.parse_class(head_clean, body_open, body_close, line,
                                    outer=class_ctx)
            if decl is not None:
                if class_ctx is not None:
                    class_ctx.inner.append(decl)
                else:
                    self.tu.classes.append(decl)
            return
        if "(" in head_clean:
            fn = self.parse_function(head_clean, body_open, body_close, line,
                                     class_ctx)
            if fn is not None:
                if class_ctx is not None:
                    class_ctx.methods.append(fn)
                else:
                    self.tu.functions.append(fn)
            return
        # `struct X { ... } instance;` and other exotica: skip.

    def _looks_like_class_head(self, head):
        # `class X`, `struct X : public Y`, `class MACRO("x") X` — but not
        # a function returning `class X*` etc. (absent from the repo).
        sig = head.split(":")[0]
        return "(" not in re.sub(r"\([^)]*\)", "", sig) or True

    def classify_plain_segment(self, head, seg_start, class_ctx):
        head_clean = ACCESS_LABEL_RE.sub("", head).strip()
        if not head_clean:
            return
        # Line of the declaration itself, not of the segment start: the
        # segment begins right after the previous ';' and may open with
        # whitespace, blanked comments, or an access label — the
        # contract/suppression comment geometry anchors on the decl.
        blanked = ACCESS_LABEL_RE.sub(lambda m: " " * len(m.group(0)),
                                      head)
        lead_ws = len(blanked) - len(blanked.lstrip())
        line = self.cur.line_of(seg_start + lead_ws)
        first = re.match(r"[A-Za-z_~]\w*", head_clean)
        first_word = first.group(0) if first else ""
        if first_word in ("using", "typedef", "friend", "namespace",
                          "static_assert", "extern"):
            return
        # Fields may legally contain parens: GUARDED_BY(mu) annotations,
        # template args like std::function<void()>. Strip the guard and
        # any top-level initializer first, then route on whether a
        # parameter-list '(' remains at angle-bracket depth 0.
        guard = None
        m = GUARDED_BY_RE.search(head_clean)
        if m:
            guard = m.group(1).strip()
            head_clean = GUARDED_BY_RE.sub("", head_clean)
        head_decl = self._strip_top_level_init(head_clean).strip()
        if guard is None and _paren_at_angle_depth0(head_decl) >= 0:
            # Function/method declaration (no body) or var with ctor init.
            fn = self.parse_signature(head_decl, line, class_ctx)
            if fn is not None:
                if class_ctx is not None:
                    class_ctx.methods.append(fn)
                else:
                    self.tu.functions.append(fn)
            return
        # Field (class scope) or global variable (namespace scope).
        dm = VAR_DECL_RE.match(head_decl + ";")
        if not dm:
            return
        type_text = dm.group("type").strip()
        name = dm.group("name")
        if type_text.split("<")[0].split("::")[-1].strip("&* ") in \
                CONTROL_KEYWORDS or first_word in CONTROL_KEYWORDS:
            return
        if class_ctx is not None:
            if "static" in head.split(name)[0] and "constexpr" in head:
                return  # compile-time constant, not a data member
            class_ctx.fields[name] = Field(name, type_text, guard, line)
        else:
            self.tu.globals[name] = type_text
            if guard:
                self.tu.global_guards[name] = guard

    def _strip_top_level_init(self, text):
        """Drops `= initializer...` at paren/angle depth 0 (keeps
        `= default` / `= delete`, which mark special member functions)."""
        stripped = text.strip()
        if stripped.endswith("default") or stripped.endswith("delete"):
            return text
        depth = 0
        angle = 0
        for i, c in enumerate(text):
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
            elif c == "<":
                angle += 1
            elif c == ">":
                angle = max(0, angle - 1)
            elif c == "=" and depth == 0 and angle == 0:
                prev = text[i - 1] if i else ""
                nxt = text[i + 1] if i + 1 < len(text) else ""
                if prev not in "=!<>+-*/&|^" and nxt != "=":
                    return text[:i]
        return text

    def parse_class(self, head, body_open, body_close, line, outer):
        sig = head.split(":")[0]
        sig = re.sub(r"^template\s*<.*>", "", sig, flags=re.DOTALL)
        sig = re.sub(r"\([^)]*\)", "", sig)  # CAPABILITY("mutex") etc.
        idents = re.findall(r"[A-Za-z_]\w*", sig)
        idents = [w for w in idents if w not in
                  ("class", "struct", "final", "CAPABILITY",
                   "SCOPED_CAPABILITY", "alignas")]
        if not idents:
            return None
        name = idents[-1]
        qname = f"{outer.qname}::{name}" if outer is not None else name
        decl = ClassDecl(name, qname, self.path, line)
        self.parse_decl_region(body_open + 1, body_close, class_ctx=decl)
        return decl

    def parse_function(self, head, body_open, body_close, line, class_ctx):
        fn = self.parse_signature(head, line, class_ctx)
        if fn is None:
            return None
        fn.body = self.parse_block(body_open + 1, body_close)
        return fn

    def parse_signature(self, head, line, class_ctx):
        paren = head.find("(")
        if paren < 0:
            return None
        # Find the parameter-list '(': the first one following the final
        # identifier of the declarator. `operator()` is skipped outright.
        close = match_paren(head, paren)
        before = head[:paren].strip()
        before = re.sub(r"^template\s*<.*>", "", before, flags=re.DOTALL)
        before = re.sub(r"\[\[[^\]]*\]\]", "", before).strip()
        m = re.search(r"((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*|operator\s*..?)$",
                      before)
        if not m:
            return None
        declarator = m.group(1)
        if declarator.startswith("operator"):
            return None
        return_type = before[:m.start()].strip()
        parts = declarator.split("::")
        name = parts[-1]
        owner = parts[-2] if len(parts) >= 2 else ""
        if class_ctx is not None and not owner:
            owner = class_ctx.name
        if name.startswith("~"):
            name = name  # destructor; keep the tilde, body still analyzed
        if not return_type and not owner:
            # Not a function: probably a macro invocation or var with
            # ctor-style init at namespace scope.
            if name == name.upper():
                return None
        params = self.parse_params(head[paren + 1:close])
        trailer = head[close + 1:]
        annotations = [mm.group(0) for mm in ANNOTATION_RE.finditer(trailer)]
        return FunctionDecl(name, owner, return_type, params, None,
                            self.path, line, annotations)

    def parse_params(self, params_text):
        params = []
        for part in split_top_level(params_text):
            part = part.strip()
            if not part or part == "void":
                continue
            part = part.split("=")[0].strip()  # default args
            m = re.search(r"([A-Za-z_]\w*)$", part)
            if not m:
                params.append(Param("", part))
                continue
            name = m.group(1)
            type_text = part[:m.start()].strip()
            if not type_text:  # unnamed param of a plain type
                params.append(Param("", part))
            else:
                params.append(Param(name, type_text))
        return params

    def _mark_hot_functions(self):
        raw_lines = self.raw.splitlines()
        for fn in self.tu.all_functions():
            if fn.body is None:
                continue
            # `// analyzer: hot` sits in the comment run directly above
            # the definition's first line.
            j = fn.line - 1
            while j >= 1 and raw_lines[j - 1].lstrip().startswith("//"):
                if j in self.tu.hot_lines:
                    fn.is_hot = True
                    break
                j -= 1

    # ----- statement-level parsing ---------------------------------------

    def parse_block(self, lo, hi, kind="plain"):
        block = Block(self.cur.line_of(lo), kind=kind)
        text = self.text
        i = lo
        while i < hi:
            c = text[i]
            if c in " \t\n;":
                i += 1
                continue
            i = self._strip_labels(i, hi)
            if i >= hi:
                break
            line = self.cur.line_of(i)
            word = re.match(r"[A-Za-z_]\w*", text[i:i + 32])
            kw = word.group(0) if word else ""
            if text[i] == "{":
                close = match_brace(text, i)
                block.stmts.append(self.parse_block(i + 1, close))
                i = close + 1
            elif kw in ("for", "while", "switch", "if"):
                i = self._parse_control(kw, i, hi, line, block)
            elif kw == "do":
                i = self._parse_do(i, hi, line, block)
            elif kw == "else":
                # bare else at this level means the matching if was parsed
                # as a single statement; treat the else arm as a block.
                i += 4
                i = self._skip_ws(i, hi)
                if text[i:i + 2] == "if":
                    continue  # loop re-dispatches as `if`
                i = self._parse_stmt_or_block_into(i, hi, block)
            elif kw == "return":
                end = self._stmt_end(i, hi)
                block.stmts.append(
                    Return(line, text[i + 6:end].strip()))
                i = end + 1
            elif kw in ("class", "struct") and \
                    self._local_class_ahead(i, hi):
                i = self._parse_local_class(kw, i, hi, line, block)
            else:
                end = self._stmt_end(i, hi)
                stmt_text = text[i:end]
                children = self._extract_lambda_blocks(i, end)
                block.stmts.append(
                    self._classify_stmt(stmt_text, line, children))
                i = end + 1
        return block

    def _skip_ws(self, i, hi):
        while i < hi and self.text[i] in " \t\n":
            i += 1
        return i

    def _strip_labels(self, i, hi):
        """Skips `case X:` / `default:` / `public:` labels."""
        text = self.text
        while True:
            m = CASE_LABEL_RE.match(text[i:hi]) or \
                ACCESS_LABEL_RE.match(text[i:hi])
            if not m:
                return i
            i += m.end()
            i = self._skip_ws(i, hi)

    def _local_class_ahead(self, i, hi):
        # `struct X { ... };` inside a function body — a '{' occurs
        # before any '(' or ';'.
        text = self.text
        for j in range(i, hi):
            if text[j] == "{":
                return True
            if text[j] in "(;=":
                return False
        return False

    def _parse_local_class(self, kw, i, hi, line, block):
        text = self.text
        open_pos = text.find("{", i)
        close = match_brace(text, open_pos)
        head = text[i:open_pos]
        decl = self.parse_class(head, open_pos, close, line, outer=None)
        if decl is not None:
            block.stmts.append(LocalClass(line, decl))
        i = close + 1
        end = self._stmt_end(i, hi)  # skip `;` (and any declarator)
        return end + 1

    def _parse_control(self, kw, i, hi, line, block):
        text = self.text
        paren = text.find("(", i)
        if paren < 0 or paren > hi:
            return self._stmt_end(i, hi) + 1
        close = match_paren(text, paren)
        header = text[paren + 1:close]
        body_start = self._skip_ws(close + 1, hi)
        if kw == "if":
            then_block, i = self._parse_stmt_or_block(body_start, hi)
            else_block = None
            j = self._skip_ws(i, hi)
            if text[j:j + 4] == "else" and not re.match(r"\w", text[j + 4:
                                                                   j + 5]):
                j = self._skip_ws(j + 4, hi)
                else_block, i = self._parse_stmt_or_block(j, hi)
            block.stmts.append(If(line, header, then_block, else_block))
            return i
        body, i = self._parse_stmt_or_block(body_start, hi)
        if kw == "switch":
            block.stmts.append(body)  # cases become plain statements
            return i
        colon_split = None
        if kw == "for":
            parts = split_top_level(header, ";")
            if len(parts) == 1:
                bind_range = split_top_level(header, ":")
                if len(bind_range) >= 2:
                    colon_split = (bind_range[0], ":".join(bind_range[1:]))
        if colon_split is not None:
            block.stmts.append(Loop(line, "range_for", header, body,
                                    binding=colon_split[0],
                                    range_expr=colon_split[1]))
        else:
            block.stmts.append(Loop(line, kw, header, body))
        return i

    def _parse_do(self, i, hi, line, block):
        text = self.text
        body_start = self._skip_ws(i + 2, hi)
        body, i = self._parse_stmt_or_block(body_start, hi)
        # consume `while (...);`
        j = self._skip_ws(i, hi)
        if text[j:j + 5] == "while":
            paren = text.find("(", j)
            close = match_paren(text, paren)
            header = text[paren + 1:close]
            i = self._stmt_end(close, hi) + 1
        else:
            header = ""
        block.stmts.append(Loop(line, "do", header, body))
        return i

    def _parse_stmt_or_block(self, i, hi):
        """Parses one statement or one braced block; returns (Block, next)."""
        text = self.text
        i = self._skip_ws(i, hi)
        if i < hi and text[i] == "{":
            close = match_brace(text, i)
            return self.parse_block(i + 1, close), close + 1
        holder = Block(self.cur.line_of(i))
        nxt = self._parse_one_into(i, hi, holder)
        return holder, nxt

    def _parse_stmt_or_block_into(self, i, hi, block):
        inner, nxt = self._parse_stmt_or_block(i, hi)
        block.stmts.append(inner)
        return nxt

    def _parse_one_into(self, i, hi, block):
        """Parses exactly one statement (possibly a nested control
        statement) into `block`; returns the next offset."""
        text = self.text
        i = self._skip_ws(i, hi)
        if i >= hi:
            return i
        line = self.cur.line_of(i)
        word = re.match(r"[A-Za-z_]\w*", text[i:i + 32])
        kw = word.group(0) if word else ""
        if kw in ("for", "while", "switch", "if"):
            return self._parse_control(kw, i, hi, line, block)
        if kw == "do":
            return self._parse_do(i, hi, line, block)
        if kw == "return":
            end = self._stmt_end(i, hi)
            block.stmts.append(Return(line, text[i + 6:end].strip()))
            return end + 1
        end = self._stmt_end(i, hi)
        children = self._extract_lambda_blocks(i, end)
        block.stmts.append(self._classify_stmt(text[i:end], line, children))
        return end + 1

    def _stmt_end(self, i, hi):
        """Offset of the ';' ending the statement starting at i. Skips ';'
        inside parens, brackets, and brace groups (lambda bodies,
        initializer lists)."""
        text = self.text
        depth = 0
        j = i
        while j < hi:
            c = text[j]
            if c in "({[":
                depth += 1
            elif c in ")}]":
                depth -= 1
            elif c == ";" and depth <= 0:
                return j
            j += 1
        return hi

    def _extract_lambda_blocks(self, i, end):
        """Parses `{...}` groups inside a statement as lambda bodies when
        they follow `)` or `]` (a lambda introducer/param list); brace
        initializers after identifiers are left alone."""
        text = self.text
        children = []
        j = i
        while j < end:
            if text[j] == "{":
                k = j - 1
                while k >= i and text[k] in " \t\n":
                    k -= 1
                if k >= i and text[k] in ")]":
                    close = match_brace(text, j)
                    children.append(
                        self.parse_block(j + 1, min(close, end),
                                         kind="lambda"))
                    j = close + 1
                    continue
                # initializer brace: skip the whole group
                j = match_brace(text, j) + 1
                continue
            j += 1
        return children

    def _classify_stmt(self, stmt_text, line, children):
        s = stmt_text.strip()
        s_flat = " ".join(s.split())
        m = VAR_DECL_RE.match(s_flat)
        if m:
            first = s_flat.split("<")[0].split()[0].rstrip("&*")
            tword = m.group("type").split("<")[0].split("::")[0].strip("&* ")
            if first not in CONTROL_KEYWORDS and tword not in \
                    CONTROL_KEYWORDS and not s_flat.startswith("return"):
                rest = m.group("rest") or ""
                # A call like `foo.bar(x)` must not classify as a decl;
                # real decls have a type token with no '.' and the name
                # directly follows the (possibly templated) type.
                if "." not in m.group("type"):
                    type_text = m.group("type")
                    if re.match(r"(?:(?:const|constexpr|inline|volatile|"
                                r"mutable)\s+)*static\b", s_flat):
                        # Keep the storage class: the lifetime pass
                        # treats static locals as program-lifetime.
                        type_text = "static " + type_text
                    return VarDecl(line, m.group("name"), type_text,
                                   rest, children)
        return ExprStmt(line, s, children)


def _paren_at_angle_depth0(text):
    """Offset of the first '(' outside template angle brackets, or -1."""
    angle = 0
    for i, c in enumerate(text):
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "(" and angle == 0:
            return i
    return -1


def parse_file(path, repo_rel):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    tu = Parser(repo_rel, raw).parse()
    tu.raw_lines = raw.splitlines()
    return tu
