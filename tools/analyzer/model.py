"""Normalized AST model shared by the analyzer's two frontends.

The checks in tools/analyzer/checks.py consume this model only — they
never look at raw source text or raw clang JSON. Two producers build it:

 * tools/analyzer/clang_frontend.py lowers `clang++ -Xclang
   -ast-dump=json` output (exact ASTs, used whenever a clang driver is
   installed — the same clang the TSA CI leg already requires);
 * tools/analyzer/parser.py is a built-in structural parser for the
   repo's disciplined C++ subset, used when no clang driver exists so
   the local gate still runs on gcc-only toolchains.

The model is deliberately small: classes with their fields (and
GUARDED_BY contracts), functions with parameter lists and a statement
tree (blocks, loops, ifs, returns, variable declarations, expression
statements), plus the raw text of every statement for expression-level
helpers. Statement text is always comment- and string-stripped.
"""

import re


class Field:
    """A class data member. guarded_by holds the raw GUARDED_BY argument
    (e.g. "mu_", "stats_mu_") or None."""

    def __init__(self, name, type_text, guarded_by, line):
        self.name = name
        self.type_text = type_text.strip()
        self.guarded_by = guarded_by
        self.line = line

    def __repr__(self):
        g = f" GUARDED_BY({self.guarded_by})" if self.guarded_by else ""
        return f"Field({self.type_text} {self.name}{g})"


class ClassDecl:
    def __init__(self, name, qname, file, line):
        self.name = name
        self.qname = qname  # Outer::Inner for nested classes
        self.file = file
        self.line = line
        self.fields = {}    # name -> Field
        self.methods = []   # FunctionDecl
        self.inner = []     # nested ClassDecl

    def guarded_fields(self):
        return {n: f for n, f in self.fields.items() if f.guarded_by}

    def __repr__(self):
        return f"ClassDecl({self.qname}, {len(self.fields)} fields)"


class Param:
    def __init__(self, name, type_text):
        self.name = name
        self.type_text = type_text.strip()

    def __repr__(self):
        return f"Param({self.type_text} {self.name})"


class FunctionDecl:
    """A function or method definition (body != None) or declaration."""

    def __init__(self, name, owner, return_type, params, body, file, line,
                 annotations=None):
        self.name = name            # unqualified (Flush, NeedlemanWunsch)
        self.owner = owner          # owning class name ("" for free fns)
        self.return_type = return_type.strip()
        self.params = params        # [Param]
        self.body = body            # Block or None
        self.file = file
        self.line = line
        # Raw trailing annotations: REQUIRES(mu), EXCLUDES(mu), const, ...
        self.annotations = annotations or []
        self.is_hot = False         # set from `// analyzer: hot` comments

    @property
    def qname(self):
        return f"{self.owner}::{self.name}" if self.owner else self.name

    def __repr__(self):
        return f"FunctionDecl({self.qname})"


class Stmt:
    def __init__(self, line):
        self.line = line


class Block(Stmt):
    """kind: 'plain' for ordinary scopes, 'lambda' for lambda bodies
    (lambda bodies do not inherit the enclosing lock-held set: the
    closure runs later, possibly on another thread)."""

    def __init__(self, line, stmts=None, kind="plain"):
        super().__init__(line)
        self.stmts = stmts if stmts is not None else []
        self.kind = kind


class Loop(Stmt):
    """kind: 'for' | 'while' | 'do' | 'range_for'. For range_for, binding
    and range_expr carry the two halves of the header."""

    def __init__(self, line, kind, header_text, body, binding="",
                 range_expr=""):
        super().__init__(line)
        self.kind = kind
        self.header_text = header_text.strip()
        self.body = body
        self.binding = binding.strip()
        self.range_expr = range_expr.strip()


class If(Stmt):
    def __init__(self, line, cond_text, then_block, else_block=None):
        super().__init__(line)
        self.cond_text = cond_text.strip()
        self.then_block = then_block
        self.else_block = else_block


class Return(Stmt):
    def __init__(self, line, expr_text):
        super().__init__(line)
        self.expr_text = expr_text.strip()


class VarDecl(Stmt):
    def __init__(self, line, name, type_text, init_text, children=None):
        super().__init__(line)
        self.name = name
        self.type_text = type_text.strip()
        self.init_text = init_text.strip()
        self.children = children or []  # lambda Blocks inside the init

    @property
    def text(self):
        # Uniform access for expression-level helpers.
        return f"{self.type_text} {self.name} {self.init_text}"


class ExprStmt(Stmt):
    def __init__(self, line, text, children=None):
        super().__init__(line)
        self.text = text.strip()
        self.children = children or []  # lambda Blocks inside the stmt


class LocalClass(Stmt):
    """A class/struct defined inside a function body (e.g. FineProgress
    in core/infoshield.cc). Its fields can carry GUARDED_BY like any
    other class."""

    def __init__(self, line, decl):
        super().__init__(line)
        self.decl = decl


class TU:
    """One parse unit (a .cc or .h file) in normalized form."""

    def __init__(self, path):
        self.path = path            # repo-relative, '/'-separated
        self.classes = []           # top-level ClassDecl (nested inside)
        self.functions = []         # FunctionDecl at namespace scope
        self.globals = {}           # name -> type_text (namespace-scope vars)
        self.global_guards = {}     # global var name -> GUARDED_BY arg
        self.aliases = {}           # `using Name = Type;` -> Name: Type
        # Comment-derived line maps (1-based), shared by both frontends:
        self.hot_lines = set()      # lines whose comment says analyzer: hot
        self.allow = {}             # line -> set of allowed check names
        self.determinism_lines = set()
        # Lifetime contracts (DESIGN.md §17): line -> set of member names
        # declared as owning / borrowing storage. A borrows() without a
        # `-- reason` lands its line in borrows_noreason instead.
        self.owns = {}
        self.borrows = {}
        self.borrows_noreason = set()
        self.frontend = "internal"  # or "clang"
        self.raw_lines = []         # unstripped source, for comment geometry

    def all_classes(self):
        out = []

        def walk(c):
            out.append(c)
            for i in c.inner:
                walk(i)
        for c in self.classes:
            walk(c)
        for f in self.functions:
            if f.body is not None:
                for lc in iter_local_classes(f.body):
                    walk(lc.decl)
        return out

    def all_functions(self):
        out = list(self.functions)
        for c in self.all_classes():
            out.extend(c.methods)
        return out


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def iter_stmts(block):
    """Yields every Stmt in a block subtree, including lambda bodies and
    loop/if bodies, in source order."""
    for s in block.stmts:
        yield s
        if isinstance(s, Block):
            yield from iter_stmts(s)
        elif isinstance(s, Loop):
            yield from iter_stmts(s.body)
        elif isinstance(s, If):
            yield from iter_stmts(s.then_block)
            if s.else_block is not None:
                yield from iter_stmts(s.else_block)
        elif isinstance(s, (ExprStmt, VarDecl)):
            for child in s.children:
                yield child
                yield from iter_stmts(child)


def iter_local_classes(block):
    for s in iter_stmts(block):
        if isinstance(s, LocalClass):
            yield s


ANNOT_COMMENT_RE = re.compile(
    r"analyzer:\s*(?:(?P<hot>hot\b)"
    r"|allow\(\s*(?P<allow>[\w\-, ]+?)\s*\)(?:\s*--\s*(?P<reason>.*))?"
    r"|owns\(\s*(?P<owns>[\w, ]+?)\s*\)"
    r"|borrows\(\s*(?P<borrows>[\w, ]+?)\s*\)"
    r"(?:\s*--\s*(?P<borrow_reason>.*))?)")


def scan_annotation_comments(raw_text, tu):
    """Populates tu.hot_lines / tu.allow / tu.determinism_lines and the
    lifetime-contract maps (tu.owns / tu.borrows) from the comments of
    raw (unstripped) source text. Shared by both frontends so suppression
    and contract semantics cannot drift between them.

    Syntax:
      // analyzer: hot                      (function annotation)
      // analyzer: allow(<check>[, ...]) -- <reason>
      // analyzer: owns(<field>)            (field owns its storage)
      // analyzer: borrows(<member>) -- <why the owner outlives it>
      // determinism: <why order cannot leak>   (unordered-iter only;
                                                 carried over from lint.py)
    """
    for i, line in enumerate(raw_text.splitlines(), start=1):
        comment = _comment_part(line)
        if comment is None:
            continue
        if "determinism:" in comment:
            tu.determinism_lines.add(i)
        m = ANNOT_COMMENT_RE.search(comment)
        if not m:
            continue
        if m.group("hot"):
            tu.hot_lines.add(i)
        elif m.group("owns"):
            names = {n.strip() for n in m.group("owns").split(",")
                     if n.strip()}
            tu.owns.setdefault(i, set()).update(names)
        elif m.group("borrows"):
            names = {n.strip() for n in m.group("borrows").split(",")
                     if n.strip()}
            tu.borrows.setdefault(i, set()).update(names)
            if not (m.group("borrow_reason") or "").strip():
                # A borrows() without a reason is reported by the
                # view-escape check: the why is the contract.
                tu.borrows_noreason.add(i)
        else:
            checks = {c.strip() for c in m.group("allow").split(",")
                      if c.strip()}
            reason = (m.group("reason") or "").strip()
            if not reason:
                # An allow without a reason is itself a finding; mark it
                # with the reserved pseudo-check so the driver reports it.
                checks = {"__missing_reason__"} | checks
            tu.allow.setdefault(i, set()).update(checks)


def _comment_part(line):
    """Returns the // comment text of a line, or None. Quote-aware enough
    for the repo's style (no multi-line string literals)."""
    in_str = None
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
        elif c in "\"'":
            in_str = c
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            return line[i + 2:]
        i += 1
    return None


def contract_names_for(line, line_map, raw_lines):
    """Union of the member names annotated on `line` itself or in the
    unbroken //-comment run directly above it — the same geometry as
    allow() — from a {line: set(names)} map (tu.owns / tu.borrows)."""
    out = set()
    out |= line_map.get(line, set())
    j = line - 1
    while j >= 1 and j <= len(raw_lines) and \
            raw_lines[j - 1].lstrip().startswith("//"):
        out |= line_map.get(j, set())
        j -= 1
    return out


def comment_run_covers(line, marker_lines, raw_lines):
    """True if `marker_lines` contains `line` itself or any line of the
    unbroken //-comment run directly above it — the same suppression
    geometry tools/lint.py uses for `determinism:` markers."""
    if line in marker_lines:
        return True
    j = line - 1
    while j >= 1 and j <= len(raw_lines) and \
            raw_lines[j - 1].lstrip().startswith("//"):
        if j in marker_lines:
            return True
        j -= 1
    return False
