"""Race inference: classifies every field/global access collected by
locksets.py against the concurrency levels computed by callgraph.py.

Verdicts per field (DESIGN.md §14):

  annotated           carries GUARDED_BY, or is reachable only through
                      container fields that do — TSA owns enforcement;
  single-threaded     never touched from a concurrent context;
  read-shared         concurrent accesses exist but none writes;
  guarded-unannotated every concurrent access holds one common lock but
                      the field has no GUARDED_BY  -> missing-guarded-by;
  racy                concurrently written with no common lock
                      (possibly *different* locks)  -> race-infer.

The lockset of an access is the locally-held set at that point, which
already folds in REQUIRES entry sets and MutexLock scopes
interprocedurally: a helper called under a lock is walked with its
REQUIRES set, and the callsite's held set was checked when lockgraph
replayed the acquisition — so the intersection over concurrent accesses
is the standard RacerD meet.

Findings land on the field's *declaration* line so a
`// analyzer: allow(race-infer) -- <reason>` sits next to the field it
excuses (globals fall back to the first offending access site — the
model does not record global declaration lines).

The same pass emits the machine-readable race report
(build/race_report.json, schema "infoshield-race-report/1"): every
analyzed field with its verdict, access counts, common locks, and a
per-TU annotation-completeness score — the number CI trend-watches as
ROADMAP items 1 and 3 multiply the shared-state surface.
"""

import collections

from callgraph import NONE, access_is_concurrent
from model import Finding

REPORT_SCHEMA = "infoshield-race-report/1"

# How many access sites to list per field in the report / messages.
SITE_CAP = 8


class FieldInfo:
    __slots__ = ("key", "path", "line", "guarded_by", "type_text")

    def __init__(self, key, path, line, guarded_by, type_text):
        self.key = key
        self.path = path
        self.line = line
        self.guarded_by = guarded_by
        self.type_text = type_text


def _field_index(tus):
    """Canonical key -> FieldInfo for every class field and global in
    the analyzed tree (first declaration wins, matching Context)."""
    import locksets
    index = {}
    for tu in tus:
        if locksets.is_excluded(tu.path):
            continue
        for cls in tu.all_classes():
            for name, field in cls.fields.items():
                key = f"{cls.name}::{name}"
                index.setdefault(key, FieldInfo(
                    key, tu.path, field.line, field.guarded_by,
                    field.type_text))
        for name, type_text in tu.globals.items():
            key = f"{locksets.file_stem(tu.path)}::{name}"
            index.setdefault(key, FieldInfo(
                key, tu.path, None, tu.global_guards.get(name), type_text))
    return index


def _fmt_lockset(held):
    return "{" + ", ".join(sorted(held)) + "}" if held else "{no lock}"


def _fmt_site(tu_path, access):
    rw = {"write": "w", "elem": "w[i]"}.get(access.kind, "r")
    return f"{tu_path}:{access.line} {rw} {_fmt_lockset(access.held)}"


def infer(walks, graph, tus, ctx):
    """Returns (findings, report_dict). `graph` is the CallGraph over
    `walks`; concurrency levels are computed here."""
    levels = graph.concurrency()
    index = _field_index(tus)

    # key -> [(tu_path, Access, level)]
    by_field = collections.defaultdict(list)
    for top in walks:
        for w in top.walks():
            level = levels.get(w.node_id, NONE)
            for a in w.accesses:
                by_field[a.key].append((w.tu.path, a, level))

    findings = []
    fields_out = []
    verdict_by_key = {}
    summary = collections.Counter()

    for key in sorted(by_field):
        info = index.get(key)
        if info is None:
            continue  # resolver named a class outside the analyzed tree
        sites = by_field[key]
        conc = [(p, a) for (p, a, lvl) in sites
                if access_is_concurrent(a, lvl)]
        conc_writes = [(p, a) for (p, a) in conc if a.kind == "write"]
        if info.guarded_by:
            verdict = "annotated"
        elif not conc:
            verdict = "single-threaded"
        elif all(a.via_guarded for (_p, a) in conc):
            # Every concurrent path to this leaf runs through a container
            # field that carries its own GUARDED_BY (e.g. Stats fields
            # reached only as `stats_.flushes` where stats_ is
            # GUARDED_BY(stats_mu_)): TSA polices those paths already,
            # and the inner struct cannot name the outer mutex anyway.
            verdict = "annotated"
        elif not conc_writes:
            verdict = "read-shared"
        else:
            common = frozenset.intersection(
                *[a.held for (_p, a) in conc])
            if common:
                verdict = "guarded-unannotated"
            else:
                verdict = "racy"
        verdict_by_key[key] = verdict
        summary[verdict] += 1

        locks_common = []
        if conc:
            locks_common = sorted(frozenset.intersection(
                *[a.held for (_p, a) in conc]))

        if verdict == "guarded-unannotated":
            guard = locks_common[0]
            line = info.line if info.line is not None else conc[0][1].line
            path = info.path if info.line is not None else conc[0][0]
            findings.append(Finding(
                path, line, "missing-guarded-by",
                f"field {key} is consistently protected by {guard} at "
                f"every concurrent access but carries no GUARDED_BY — "
                f"annotate it GUARDED_BY({guard.split('::')[-1]}) so the "
                "compiler enforces what inference found"))
        elif verdict == "racy":
            locksets_seen = sorted({_fmt_lockset(a.held)
                                    for (_p, a) in conc})
            first_bad = min(conc_writes, key=lambda s: (s[0], s[1].line))
            line = info.line if info.line is not None else first_bad[1].line
            path = info.path if info.line is not None else first_bad[0]
            detail = ("written under inconsistent locks "
                      f"({' vs '.join(locksets_seen)})"
                      if len(locksets_seen) > 1 and
                      any(a.held for (_p, a) in conc)
                      else "written from a concurrent context with no lock")
            site_strs = [_fmt_site(p, a) for (p, a) in sorted(
                conc, key=lambda s: (s[0], s[1].line))[:SITE_CAP]]
            findings.append(Finding(
                path, line, "race-infer",
                f"shared field {key} is {detail}; sites: "
                f"{'; '.join(site_strs)} — pick one mutex, hold it at "
                "every access, and annotate GUARDED_BY"))

        all_sorted = sorted(sites, key=lambda s: (s[0], s[1].line))
        fields_out.append({
            "field": key,
            "declared": (f"{info.path}:{info.line}"
                         if info.line is not None else info.path),
            "guarded_by": info.guarded_by,
            "verdict": verdict,
            "accesses": len(sites),
            "concurrent_accesses": len(conc),
            "concurrent_writes": len(conc_writes),
            "locks_common": locks_common,
            "sites": [_fmt_site(p, a) for (p, a, _l) in all_sorted[:SITE_CAP]],
        })

    report = {
        "schema": REPORT_SCHEMA,
        "frontends": dict(collections.Counter(
            tu.frontend for tu in tus)),
        "thread_roots": sorted(
            f"{graph.walk_by_id[nid].tu.path}:"
            f"{graph.walk_by_id[nid].fn.line} ({kind}) {nid}"
            for nid, kind in graph.roots),
        "fields": fields_out,
        "tu_completeness": _completeness(tus, verdict_by_key),
        "summary": dict(summary),
    }
    return findings, report


def _completeness(tus, verdict_by_key):
    """Per-TU annotation completeness: of the fields inference says need
    a guard (guarded-unannotated + racy) plus those already annotated,
    what fraction is annotated? 1.0 is the steady state the gate holds
    the tree at; the score exists so the report shows *where* new shared
    state is accumulating."""
    import locksets
    out = {}
    for tu in tus:
        if locksets.is_excluded(tu.path):
            continue
        annotated = 0
        needs = 0
        for cls in tu.all_classes():
            for name, field in cls.fields.items():
                if field.guarded_by:
                    annotated += 1
                elif verdict_by_key.get(f"{cls.name}::{name}") in (
                        "guarded-unannotated", "racy"):
                    needs += 1
        for name in tu.globals:
            key = f"{locksets.file_stem(tu.path)}::{name}"
            if tu.global_guards.get(name):
                annotated += 1
            elif verdict_by_key.get(key) in ("guarded-unannotated", "racy"):
                needs += 1
        if annotated + needs == 0:
            continue  # no shared state in this TU: omit, don't report 1.0
        out[tu.path] = {
            "annotated": annotated,
            "unannotated_shared": needs,
            "score": round(annotated / (annotated + needs), 4),
        }
    return out
