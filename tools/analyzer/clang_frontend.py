"""Clang frontend: lowers `clang++ -Xclang -ast-dump=json` output into
the normalized model.

Division of labor: clang provides exact declaration segmentation (which
byte ranges are classes, fields, methods, globals — immune to macro or
template surprises), exact field types (`qualType`), and exact
GUARDED_BY contracts (`GuardedByAttr` nodes, from the real attribute
after preprocessing rather than a textual match). Statement bodies are
then parsed by the same statement parser the internal frontend uses,
over the clang-reported body byte range, so both frontends produce
byte-identical statement trees and the checks cannot drift between
them.

AST dumps are cached under --cache-dir as gzipped JSON keyed on a
content hash of (clang version, the TU's bytes, every header under
src/). CI restores this cache keyed the same way, so unchanged TUs
never re-run the frontend.

Any failure — clang missing, TU failing to compile, JSON shape we do
not recognize — raises ClangFrontendError; the driver falls back to
the internal frontend per-TU and reports that it did.
"""

import gzip
import hashlib
import json
import os
import re
import shutil
import subprocess

from model import Field, ClassDecl
from parser import Parser, match_brace

CLANG_CANDIDATES = ("clang++", "clang++-20", "clang++-19", "clang++-18",
                    "clang++-17", "clang++-16", "clang++-15", "clang++-14")


class ClangFrontendError(Exception):
    pass


def find_clang():
    for cand in CLANG_CANDIDATES:
        path = shutil.which(cand)
        if path:
            return path
    return None


_version_cache = {}


def clang_version(clang):
    if clang not in _version_cache:
        out = subprocess.run([clang, "--version"], capture_output=True,
                            text=True, check=False)
        _version_cache[clang] = out.stdout.splitlines()[0] if out.stdout \
            else "unknown"
    return _version_cache[clang]


def headers_digest(repo_root):
    """One hash over every header under src/ — any header edit
    invalidates every cached dump, which is the conservative and simple
    key (per-TU include graphs are not worth the bookkeeping here)."""
    h = hashlib.sha256()
    src = os.path.join(repo_root, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".h"):
                p = os.path.join(dirpath, name)
                h.update(os.path.relpath(p, repo_root).encode())
                with open(p, "rb") as f:
                    h.update(f.read())
    return h.hexdigest()


CACHE_SUFFIX = ".json.gz"

# Default ceiling on cached dumps. The tree is ~200 TUs; 512 leaves
# room for a few branches' worth of rewrites in one persisted CI cache
# without letting it grow without bound.
DEFAULT_CACHE_CAP = 512


def dump_ast(clang, src_path, repo_root, cache_dir, hdr_digest,
             live_keys=None):
    with open(src_path, "rb") as f:
        content = f.read()
    key = hashlib.sha256(
        (clang_version(clang) + "|" + hdr_digest).encode() + b"|" +
        content).hexdigest()
    if live_keys is not None:
        live_keys.add(key)
    cache_file = None
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        cache_file = os.path.join(cache_dir, key + CACHE_SUFFIX)
        if os.path.exists(cache_file):
            try:
                with gzip.open(cache_file, "rt", encoding="utf-8") as f:
                    root = json.load(f)
                # Refresh mtime so the LRU cull (evict_cache) ranks this
                # entry as recently used.
                os.utime(cache_file)
                return root
            except (OSError, json.JSONDecodeError):
                pass  # corrupt cache entry: re-dump below
    cmd = [clang, "-x", "c++", "-std=c++20", "-fsyntax-only",
           "-Xclang", "-ast-dump=json",
           "-I", os.path.join(repo_root, "src"), src_path]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    if not proc.stdout.strip():
        raise ClangFrontendError(
            f"{os.path.basename(src_path)}: clang produced no AST "
            f"({proc.stderr.strip().splitlines()[:1]})")
    try:
        root = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        raise ClangFrontendError(
            f"{os.path.basename(src_path)}: AST JSON undecodable: {e}")
    if cache_file:
        tmp = cache_file + ".tmp"
        with gzip.open(tmp, "wt", encoding="utf-8") as f:
            json.dump(root, f)
        os.replace(tmp, cache_file)
    return root


def evict_cache(cache_dir, live_keys, cap=None):
    """Prunes the AST-dump cache after a parse pass. Two rules:

      1. staleness — an entry whose content key was not produced by any
         TU in the current tree corresponds to a source version that no
         longer exists (the key hashes clang version + headers digest +
         TU bytes), so it can never be hit again by this tree; drop it.
      2. LRU cap — among live entries, keep at most `cap`, evicting the
         least recently *used* (dump_ast touches mtime on every hit).

    Without this, CI's persisted cache grew monotonically: every edit
    minted a new key and the old one stayed forever. Returns the number
    of files removed; tolerates concurrent removal races."""
    if cap is None:
        cap = DEFAULT_CACHE_CAP
    if not cache_dir or not os.path.isdir(cache_dir):
        return 0
    removed = 0
    live = []
    for name in os.listdir(cache_dir):
        if not name.endswith(CACHE_SUFFIX):
            if name.endswith(CACHE_SUFFIX + ".tmp"):
                _remove_quiet(os.path.join(cache_dir, name))
            continue
        path = os.path.join(cache_dir, name)
        key = name[: -len(CACHE_SUFFIX)]
        if key not in live_keys:
            removed += _remove_quiet(path)
            continue
        try:
            live.append((os.path.getmtime(path), path))
        except OSError:
            continue
    if len(live) > cap:
        live.sort()  # oldest mtime first
        for _mtime, path in live[: len(live) - cap]:
            removed += _remove_quiet(path)
    return removed


def _remove_quiet(path):
    try:
        os.remove(path)
        return 1
    except OSError:
        return 0


def _loc_dict(loc):
    """clang nests macro locations: prefer the expansion site, which is
    an offset into the file being analyzed."""
    if not isinstance(loc, dict):
        return {}
    if "expansionLoc" in loc:
        return loc["expansionLoc"]
    return loc


class _Lowerer:
    def __init__(self, abs_path, repo_rel, raw_text):
        # Reuse the internal frontend's stripped text, cursor, and
        # comment-annotation scan; only decl discovery is clang-driven.
        self.p = Parser(repo_rel, raw_text)
        self.tu = self.p.tu
        self.abs_path = abs_path
        self.base = os.path.basename(abs_path)
        self.in_main = False  # current file per clang's delta encoding

    def _track_file(self, node):
        loc = _loc_dict(node.get("loc", {}))
        if "file" in loc:
            f = loc["file"]
            self.in_main = os.path.basename(f) == self.base and \
                (f.endswith(self.abs_path) or self.abs_path.endswith(f) or
                 f == self.base)
        return self.in_main

    def _offset(self, loclike):
        d = _loc_dict(loclike)
        return d.get("offset")

    def lower(self, root):
        for node in root.get("inner", []):
            self._visit(node, class_ctx=None)
        self.p._mark_hot_functions()
        self.tu.frontend = "clang"
        return self.tu

    def _visit(self, node, class_ctx):
        kind = node.get("kind", "")
        if node.get("isImplicit"):
            return
        self._track_file(node)
        if kind in ("NamespaceDecl", "LinkageSpecDecl", "ExportDecl"):
            for ch in node.get("inner", []):
                self._visit(ch, class_ctx)
            return
        if not self.in_main:
            return
        if kind == "CXXRecordDecl":
            if not node.get("completeDefinition"):
                return
            self._lower_record(node, class_ctx)
            return
        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl", "CXXConversionDecl"):
            self._lower_function(node, class_ctx)
            return
        if kind == "VarDecl" and class_ctx is None:
            self._lower_global(node)
            return
        if kind == "FieldDecl" and class_ctx is not None:
            self._lower_field(node, class_ctx)
            return

    def _guard_from_attrs(self, node):
        for ch in node.get("inner", []):
            if ch.get("kind") == "GuardedByAttr":
                name = _first_declref_name(ch)
                if name:
                    return name
                # Fallback: slice the attribute's source range.
                b = self._offset(ch.get("range", {}).get("begin", {}))
                e = self._offset(ch.get("range", {}).get("end", {}))
                if b is not None and e is not None:
                    frag = self.p.text[b:e + 16]
                    m = re.search(r"\(\s*([^)]*?)\s*\)", frag)
                    if m:
                        return m.group(1)
        return None

    def _lower_record(self, node, class_ctx):
        name = node.get("name")
        if not name:
            return
        line = self._line_of_node(node)
        qname = f"{class_ctx.qname}::{name}" if class_ctx else name
        decl = ClassDecl(name, qname, self.tu.path, line or 0)
        for ch in node.get("inner", []):
            self._visit(ch, decl)
        if class_ctx is not None:
            class_ctx.inner.append(decl)
        else:
            self.tu.classes.append(decl)

    def _lower_field(self, node, class_ctx):
        name = node.get("name")
        if not name:
            return
        qual = node.get("type", {}).get("qualType", "")
        guard = self._guard_from_attrs(node)
        class_ctx.fields[name] = Field(name, qual, guard,
                                       self._line_of_node(node) or 0)

    def _lower_global(self, node):
        name = node.get("name")
        if not name:
            return
        qual = node.get("type", {}).get("qualType", "")
        self.tu.globals[name] = qual
        guard = self._guard_from_attrs(node)
        if guard:
            self.tu.global_guards[name] = guard

    def _line_of_node(self, node):
        off = self._offset(node.get("loc", {}))
        if off is None:
            off = self._offset(node.get("range", {}).get("begin", {}))
        return self.p.cur.line_of(off) if off is not None else None

    def _lower_function(self, node, class_ctx):
        body_node = None
        for ch in node.get("inner", []):
            if ch.get("kind") == "CompoundStmt":
                body_node = ch
                break
        begin = self._offset(node.get("range", {}).get("begin", {}))
        if begin is None:
            return
        if body_node is None:
            # Pure declaration: textual signature parse of the range.
            end = self._offset(node.get("range", {}).get("end", {}))
            if end is None:
                return
            head = self.p.text[begin:end + 1]
            fn = self.p.parse_signature(head.strip().rstrip(";").strip(),
                                        self.p.cur.line_of(begin), class_ctx)
            if fn is not None:
                self._attach(fn, class_ctx)
            return
        body_open = self._offset(body_node.get("range", {}).get("begin", {}))
        if body_open is None or self.p.text[body_open] != "{":
            # Macro-mangled offsets: bail to the caller's fallback.
            raise ClangFrontendError(
                f"{self.base}: body offset for {node.get('name')} does not "
                "land on '{'")
        body_close = match_brace(self.p.text, body_open)
        head = self.p.text[begin:body_open]
        # Constructor init lists confuse the declarator scan: cut at the
        # first top-level ':' that is not '::'.
        head = _cut_ctor_inits(head)
        fn = self.p.parse_function(head.strip(), body_open, body_close,
                                   self.p.cur.line_of(begin), class_ctx)
        if fn is not None:
            self._attach(fn, class_ctx)

    def _attach(self, fn, class_ctx):
        if class_ctx is not None:
            class_ctx.methods.append(fn)
        else:
            self.tu.functions.append(fn)


def _cut_ctor_inits(head):
    depth = 0
    i = 0
    n = len(head)
    while i < n:
        c = head[i]
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < n and head[i + 1] == ":":
                i += 2
                continue
            if i > 0 and head[i - 1] == ":":
                i += 1
                continue
            return head[:i]
        i += 1
    return head


def _first_declref_name(node):
    if isinstance(node, dict):
        if node.get("kind") in ("DeclRefExpr", "MemberExpr"):
            ref = node.get("referencedDecl", {})
            if ref.get("name"):
                return ref["name"]
            if node.get("name"):
                return node["name"]
        for ch in node.get("inner", []):
            name = _first_declref_name(ch)
            if name:
                return name
    return None


def parse_file_clang(clang, abs_path, repo_rel, repo_root, cache_dir,
                     hdr_digest, live_keys=None):
    with open(abs_path, encoding="utf-8") as f:
        raw = f.read()
    root = dump_ast(clang, abs_path, repo_root, cache_dir, hdr_digest,
                    live_keys=live_keys)
    try:
        tu = _Lowerer(abs_path, repo_rel, raw).lower(root)
    except ClangFrontendError:
        raise
    except Exception as e:  # malformed/unexpected JSON shape
        raise ClangFrontendError(f"{os.path.basename(abs_path)}: "
                                 f"lowering failed: {e}")
    tu.raw_lines = raw.splitlines()
    return tu
