"""Interprocedural lifetime pass (DESIGN.md §17): dangling views,
iterator invalidation, and view-escape contracts.

Three checks over the normalized AST shared by both frontends:

  dangling-view     a view (string_view, span, iterator, reference,
                    pointer) bound to a temporary, a local, or a
                    by-value parameter and then returned or stored in a
                    field. Borrow summaries propagate through the call
                    graph (callgraph.py resolution when available,
                    Context otherwise), so a helper that merely forwards
                    a view — `string_view Trim(const string& s)` — is
                    transparent and `return Trim(local)` is caught at
                    the caller.
  iter-invalidation a live iterator/reference into a container across a
                    call that may mutate it: the std container mutators
                    and any non-const method of a known user class
                    (cpputil.is_mutating_method), interprocedurally
                    through one call level via per-function
                    parameter-mutation summaries. Range-for and
                    iterator-for loops are checked against mutations of
                    the iterated container inside the loop body.
  view-escape       the contract language for long-lived structures:
                    every view-typed field must carry
                    `// analyzer: borrows(<member>) -- <reason>` (the
                    reason is mandatory, exactly like allow()), an
                    owns() on a view field is a contradiction, and a
                    contract naming an unknown member is reported.
                    Registered per-TU via checks.PER_TU_CHECKS.

The storage lattice classifies what a view expression points into:

  safe < field < param < unknown | local < param-value < temporary

The left group never dangles on escape (globals, this-fields, caller
storage through reference/view parameters); the right group always does.
`unknown` stays silent — resolver gaps cause missed findings, never
false positives, matching every other check in this analyzer.

run() also assembles build/lifetime_report.json
(schema "infoshield-lifetime-report/1"): a per-TU view inventory —
view fields with their contract state, view-returning functions with
their borrow summaries — plus verdict counts, mirroring the race
report's shape.
"""

import collections
import re

from cpputil import (CHAIN_TOKEN_RE, CONTAINER_MUTATORS, Scope, bare_type,
                     chain_root, dealias, element_type, extract_calls,
                     find_balanced, is_heap_container, is_map_like,
                     is_mutating_method, is_owning, is_view,
                     split_top_level, std_method_return, top_level_assign,
                     type_head)
from model import (ExprStmt, Finding, If, Loop, Return, VarDecl,
                   contract_names_for, iter_stmts)

REPORT_SCHEMA = "infoshield-lifetime-report/1"

# Storage classes for the bytes a view expression aliases.
SAFE = "safe"              # globals, static storage
FIELD = "field"            # `this`-rooted: lives as long as the object
PARAM = "param"            # caller storage through a ref/ptr/view param
LOCAL = "local"            # this frame's storage: dies on return
PARAM_VALUE = "param-value"  # by-value parameter: dies on return
TEMPORARY = "temporary"    # dies at the end of the full expression
UNKNOWN = "unknown"

ESCAPING = (LOCAL, PARAM_VALUE, TEMPORARY)

# Severity order for merging classifications through a call summary.
_RANK = {SAFE: 0, FIELD: 1, PARAM: 2, UNKNOWN: 3, LOCAL: 4,
         PARAM_VALUE: 5, TEMPORARY: 6}

# std methods that alias the receiver's storage even when the return
# type cannot be resolved.
ALIAS_STEPS = {"begin", "end", "cbegin", "cend", "rbegin", "rend",
               "data", "c_str", "front", "back", "at", "substr"}

ITER_BIND_RE = re.compile(
    r"^((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*(?:\.|->)\s*"
    r"(begin|cbegin|end|cend|rbegin|rend|front|back|data|at)\s*\(")

FOR_HEADER_BIND_RE = re.compile(
    r"\(\s*(?:const\s+)?(?:auto|[\w:<>, ]+?)[&*\s]*([A-Za-z_]\w*)\s*=\s*"
    r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")

LAMBDA_REF_CAPTURE_RE = re.compile(r"^\s*\[\s*([^\]]*&[^\]]*)\]")


class Origin:
    """Where a view over an expression would point."""

    __slots__ = ("kind", "name", "type_text")

    def __init__(self, kind, name="", type_text=""):
        self.kind = kind
        self.name = name
        self.type_text = type_text


def iter_stmts_no_lambda(block):
    """Like model.iter_stmts but does not descend into lambda bodies: a
    statement inside a closure belongs to the closure's frame, not the
    enclosing function's (its returns are the lambda's returns, its
    locals die with the lambda call). Lambda escape itself is handled
    expression-side by the ref-capture checks."""
    from model import Block, If
    for s in block.stmts:
        if isinstance(s, Block) and s.kind == "lambda":
            continue
        yield s
        if isinstance(s, Block):
            yield from iter_stmts_no_lambda(s)
        elif isinstance(s, Loop):
            yield from iter_stmts_no_lambda(s.body)
        elif isinstance(s, If):
            yield from iter_stmts_no_lambda(s.then_block)
            if s.else_block is not None:
                yield from iter_stmts_no_lambda(s.else_block)
        # ExprStmt/VarDecl children are lambda blocks: skipped.


def _worst(origins):
    best = None
    for o in origins:
        if best is None or _RANK[o.kind] > _RANK[best.kind]:
            best = o
    return best or Origin(UNKNOWN)


def _is_ref_or_ptr(type_text):
    t = (type_text or "").rstrip()
    return t.endswith("&") or t.endswith("*")


def _returns_viewish(return_type):
    return is_view(return_type) or _is_ref_or_ptr(
        re.sub(r"\bconst\b", " ", return_type or "").strip())


class _Classifier:
    """Chain-walking storage classifier. `summaries` maps function keys
    (unqualified free-function names) to borrow summaries so call
    results classify as whatever the callee's return borrows."""

    def __init__(self, ctx, summaries, cg=None):
        self.ctx = ctx
        self.summaries = summaries
        self.cg = cg

    def classify(self, expr, scope, depth=0):
        if depth > 6 or not expr:
            return Origin(UNKNOWN)
        e = expr.strip()
        while e.startswith("(") and find_balanced(e, 0) == len(e) - 1:
            e = e[1:-1].strip()
        # Explicit view construction aliases its first argument:
        # std::string_view(s), std::span<T>(buf).
        m = re.match(r"^(?:std::)?(?:string_view|span)\s*(?:<[^<>]*>)?"
                     r"\s*\(", e)
        if m:
            close = find_balanced(e, m.end() - 1)
            if close == len(e) - 1:
                args = split_top_level(e[m.end():close])
                if args and args[0].strip():
                    return self.classify(args[0], scope, depth + 1)
        e = e.lstrip("&*!").strip()
        m = CHAIN_TOKEN_RE.match(e)
        if not m:
            return Origin(UNKNOWN)
        root = m.group(1)
        i = m.end()
        rest = e[i:].lstrip()
        origin = self._root_origin(root, scope, depth)
        if origin is None:
            if rest.startswith("("):
                open_pos = e.find("(", i)
                close = find_balanced(e, open_pos)
                if close < 0:
                    return Origin(UNKNOWN)
                args = split_top_level(e[open_pos + 1:close])
                origin = self._call_origin(root, args, scope, depth)
                i = close + 1
            else:
                return Origin(UNKNOWN)
        return self._walk_chain(e, i, origin, scope, depth)

    def _root_origin(self, root, scope, depth):
        """Origin of a bare identifier, or None when it is not a
        variable in scope (likely a function name)."""
        if root == "this":
            return Origin(FIELD, "this")
        for p in scope.fn.params:
            if p.name == root:
                t = dealias(p.type_text, scope.tu.aliases)
                if is_view(t) or "&" in t or "*" in t:
                    # Views and references bind caller storage.
                    return Origin(PARAM, root, t)
                return Origin(PARAM_VALUE, root, t)
        if root in scope.vars:
            raw = scope.vars[root]
            t = dealias(raw, scope.tu.aliases)
            if re.search(r"\bstatic\b", raw):
                # Static locals have program lifetime.
                return Origin(SAFE, root, t)
            if t.startswith("__range_elem__:"):
                # Range-for binding: aliases the iterated range.
                rng = t.split(":", 1)[1]
                inner = self.classify(rng, scope, depth + 1)
                elem = element_type(scope.resolve(rng))
                return Origin(inner.kind, inner.name or root, elem)
            if is_view(t) or "&" in t or "*" in t or \
                    bare_type(t).startswith("auto"):
                resolved = scope.type_of_name(root)
                if bare_type(t).startswith("auto") and \
                        "&" not in t and "*" not in t and \
                        resolved and not is_view(resolved):
                    # `auto copy = f();` with a resolvable by-value
                    # type owns its value; unresolvable auto falls
                    # through to the init (miss toward silence).
                    return Origin(LOCAL, root, resolved)
                init = scope.inits.get(root, "")
                if not init:
                    return Origin(UNKNOWN, root, resolved)
                inner = self.classify(init, scope, depth + 1)
                return Origin(inner.kind, inner.name or root, resolved)
            return Origin(LOCAL, root, t)
        if scope.owner is not None and root in scope.owner.fields:
            t = dealias(scope.owner.fields[root].type_text,
                        scope.tu.aliases)
            return Origin(FIELD, root, t)
        if root in scope.tu.globals:
            return Origin(SAFE, root,
                          dealias(scope.tu.globals[root],
                                  scope.tu.aliases))
        return None

    def _call_origin(self, name, args, scope, depth):
        """Origin of `name(args...)` — a free-function call at the root
        of a chain, resolved through the call graph summaries."""
        if self.cg is not None and name in self.cg.by_name:
            # Call-graph resolution: exactly the nodes the lockset pass
            # walks, so laundering helpers resolve the same way there
            # and here.
            fns = [self.cg.walk_by_id[nid].fn
                   for nid in self.cg.by_name[name]]
        else:
            fns = self.ctx.functions_named(name)
        rets = {dealias(f.return_type, scope.tu.aliases)
                for f in fns if f.return_type}
        rt = rets.pop() if len(rets) == 1 else ""
        if not rt:
            return Origin(UNKNOWN, name)
        if _returns_viewish(rt) or is_view(rt):
            summ = self.summaries.get(name)
            if summ is None:
                return Origin(UNKNOWN, name, rt)
            origins = []
            for idx in sorted(summ["borrows_params"]):
                if idx < len(args):
                    inner = self.classify(args[idx], scope, depth + 1)
                    origins.append(Origin(inner.kind,
                                          inner.name or name, rt))
            if summ["borrows_other"]:
                # Fields/globals of the callee outlive this frame.
                origins.append(Origin(SAFE, name, rt))
            if summ["dangles"]:
                # The callee is flagged at its own definition; do not
                # double-report every caller.
                origins.append(Origin(UNKNOWN, name, rt))
            return _worst(origins) if origins else Origin(UNKNOWN, name, rt)
        # Any by-value result is a temporary of this full expression.
        return Origin(TEMPORARY, name, rt)

    def _walk_chain(self, e, i, origin, scope, depth):
        pending = None
        while i < len(e):
            c = e[i]
            if c in " \t\n":
                i += 1
                continue
            if c in ".-":
                skip = 1 if c == "." else 2
                mm = re.match(r"\s*([A-Za-z_]\w*)", e[i + skip:])
                if not mm:
                    return Origin(UNKNOWN, origin.name)
                pending = mm.group(1)
                i += skip + mm.end()
                continue
            if c == "(":
                close = find_balanced(e, i)
                if close < 0:
                    return Origin(UNKNOWN, origin.name)
                if pending is not None:
                    origin = self._method_step(origin, pending, scope)
                    pending = None
                i = close + 1
                continue
            if c == "[":
                close = find_balanced(e, i, "[", "]")
                if close < 0:
                    return Origin(UNKNOWN, origin.name)
                if pending is not None:
                    origin = self._member_step(origin, pending, scope)
                    pending = None
                elem = element_type(origin.type_text) \
                    if origin.type_text else ""
                origin = Origin(origin.kind, origin.name, elem)
                i = close + 1
                continue
            break  # an operator ends the alias chain
        if pending is not None:
            origin = self._member_step(origin, pending, scope)
        return origin

    def _method_step(self, origin, method, scope):
        if origin.kind == UNKNOWN and not origin.type_text:
            return Origin(UNKNOWN, origin.name)
        rt = self.ctx.method_return(origin.type_text, method) or \
            std_method_return(origin.type_text, method)
        rt = dealias(rt, scope.tu.aliases) if rt else ""
        if not rt:
            if method in ALIAS_STEPS:
                # Alias-producing method with an unresolved return type:
                # same storage, unknown type.
                return Origin(origin.kind, origin.name)
            return Origin(UNKNOWN, origin.name)
        if is_view(rt) or _is_ref_or_ptr(rt):
            return Origin(origin.kind, origin.name, rt)
        if is_owning(rt):
            # A by-value owning result (`s.substr(...)` on std::string)
            # is a temporary regardless of the receiver's storage.
            return Origin(TEMPORARY, origin.name, rt)
        return Origin(TEMPORARY, origin.name, rt)

    def _member_step(self, origin, member, scope):
        t = scope._member_type(origin.type_text, member) \
            if origin.type_text else ""
        if not t:
            return Origin(UNKNOWN, origin.name)
        return Origin(origin.kind, origin.name, t)


def _owner_class(ctx, fn):
    if not fn.owner:
        return None
    return ctx.class_by_name(fn.owner)


def build_view_summaries(tus, ctx, cg=None):
    """Borrow summaries for every view/reference-returning free function
    with a body: which parameters its return value borrows, whether it
    returns views of longer-lived storage, and whether it dangles
    outright. Two rounds so a summary can see summaries one call level
    down (the laundering chain the issue names). Call-graph resolution
    (cg.by_name) narrows the candidate set when available."""
    targets = []
    for tu in tus:
        for fn in tu.all_functions():
            if fn.body is None or fn.owner:
                continue
            rt = dealias(fn.return_type, tu.aliases)
            if not _returns_viewish(rt):
                continue
            targets.append((tu, fn))
    summaries = {}
    for _round in range(2):
        for tu, fn in targets:
            scope = Scope(ctx, tu, fn, _owner_class(ctx, fn))
            clf = _Classifier(ctx, summaries, cg)
            param_index = {p.name: i for i, p in enumerate(fn.params)
                           if p.name}
            borrows_params = set()
            borrows_other = False
            dangles = False
            for s in iter_stmts_no_lambda(fn.body):
                if not isinstance(s, Return) or not s.expr_text:
                    continue
                o = clf.classify(s.expr_text, scope)
                if o.kind == PARAM and o.name in param_index:
                    borrows_params.add(param_index[o.name])
                elif o.kind in (SAFE, FIELD):
                    borrows_other = True
                elif o.kind in ESCAPING:
                    dangles = True
            summaries[fn.name] = {
                "borrows_params": borrows_params,
                "borrows_other": borrows_other,
                "dangles": dangles,
                "qname": fn.qname,
                "return_type": dealias(fn.return_type, tu.aliases),
            }
    return summaries


def _norm_path(expr):
    """Canonical container identity for invalidation matching: the full
    member path with whitespace squeezed and -> folded to `.` — so
    `result.labels` and `result.suspicious` are distinct containers but
    `p->v` and `p . v` are the same one."""
    return re.sub(r"\s+", "", expr or "").replace("->", ".")


def _stmt_use_texts(s):
    """Expression texts of one statement, for liveness scanning."""
    if isinstance(s, ExprStmt):
        return [s.text]
    if isinstance(s, VarDecl):
        return [s.init_text]
    if isinstance(s, Return):
        return [s.expr_text] if s.expr_text else []
    if isinstance(s, If):
        return [s.cond_text]
    if isinstance(s, Loop):
        return [s.header_text]
    return []


def check_dangling_view(tu, ctx, summaries, cg=None):
    """Per-function dangling-view findings: escaping returns, view
    locals bound to temporaries, and view/pointer fields assigned
    frame-local storage."""
    findings = []
    clf = _Classifier(ctx, summaries, cg)
    for fn in tu.all_functions():
        if fn.body is None:
            continue
        owner = _owner_class(ctx, fn)
        scope = Scope(ctx, tu, fn, owner)
        rt = dealias(fn.return_type, tu.aliases)
        viewish_ret = _returns_viewish(rt)
        for s in iter_stmts_no_lambda(fn.body):
            if isinstance(s, Return) and s.expr_text:
                cap = LAMBDA_REF_CAPTURE_RE.match(s.expr_text)
                if cap is not None and ("function" in rt or rt == "auto"):
                    findings.append(Finding(
                        tu.path, s.line, "dangling-view",
                        f"{fn.qname} returns a lambda capturing "
                        f"[{cap.group(1).strip()}] by reference — the "
                        "captured frame dies with this call; capture by "
                        "value"))
                    continue
                if not viewish_ret:
                    continue
                o = clf.classify(s.expr_text, scope)
                if o.kind in ESCAPING:
                    what = {LOCAL: f"local `{o.name}`",
                            PARAM_VALUE: f"by-value parameter `{o.name}`",
                            TEMPORARY: f"a temporary (via {o.name})"}
                    findings.append(Finding(
                        tu.path, s.line, "dangling-view",
                        f"{fn.qname} returns {rt} aliasing "
                        f"{what[o.kind]} — the storage dies when this "
                        "frame unwinds; return an owning value or borrow "
                        "caller storage"))
            elif isinstance(s, VarDecl):
                t = dealias(s.type_text, tu.aliases)
                if not is_view(t) or "&" in t or "*" in t:
                    continue  # const-ref binding extends temporaries
                init = scope.inits.get(s.name, "")
                if not init:
                    continue
                o = clf.classify(init, scope)
                if o.kind == TEMPORARY:
                    findings.append(Finding(
                        tu.path, s.line, "dangling-view",
                        f"{fn.qname} binds {type_head(t)} `{s.name}` to "
                        f"a temporary (via {o.name}) that dies at the "
                        "end of this statement — bind the owning value "
                        "to a named local first"))
            elif isinstance(s, ExprStmt) and owner is not None:
                eq = top_level_assign(s.text)
                if eq < 0:
                    continue
                lhs = s.text[:eq].strip()
                rhs = s.text[eq + 1:].strip()
                froot = chain_root(lhs)
                field = owner.fields.get(froot)
                if field is None:
                    continue
                ft = dealias(field.type_text, tu.aliases)
                if not (is_view(ft) or _is_ref_or_ptr(ft) or
                        "function" in ft):
                    continue
                cap = LAMBDA_REF_CAPTURE_RE.match(rhs)
                if cap is not None and "function" in ft:
                    findings.append(Finding(
                        tu.path, s.line, "dangling-view",
                        f"{fn.qname} stores a lambda capturing "
                        f"[{cap.group(1).strip()}] by reference into "
                        f"field {owner.name}::{froot} — the closure "
                        "outlives the captured frame"))
                    continue
                o = clf.classify(rhs, scope)
                if o.kind in ESCAPING:
                    what = {LOCAL: f"local `{o.name}`",
                            PARAM_VALUE: f"by-value parameter `{o.name}`",
                            TEMPORARY: f"a temporary (via {o.name})"}
                    findings.append(Finding(
                        tu.path, s.line, "dangling-view",
                        f"{fn.qname} stores a view of {what[o.kind]} "
                        f"into field {owner.name}::{froot} — the field "
                        "outlives the storage it points at"))
    return findings


def build_mutation_summaries(tus, ctx):
    """fn name -> set of parameter indices whose container the body
    mutates through a non-const reference/pointer. One call level, per
    the contract in the module docstring; ambiguous overloads union
    (conservative toward reporting, exercised only when an iterator into
    the argument is live across the call)."""
    out = {}
    for tu in tus:
        for fn in tu.all_functions():
            if fn.body is None:
                continue
            muts = set()
            for idx, p in enumerate(fn.params):
                if not p.name:
                    continue
                t = dealias(p.type_text, tu.aliases)
                if "&" not in t and "*" not in t:
                    continue
                if re.search(r"\bconst\b", t) and "*" not in t:
                    continue
                pat = re.compile(rf"\b{re.escape(p.name)}\s*"
                                 rf"(?:\.|->)\s*(\w+)\s*\(")
                for s in iter_stmts_no_lambda(fn.body):
                    for text in _stmt_use_texts(s):
                        for m in pat.finditer(text):
                            if m.group(1) in CONTAINER_MUTATORS:
                                muts.add(idx)
            if muts:
                out.setdefault(fn.name, set()).update(muts)
    return out


def _mutations_in(text, scope, ctx, mut_summaries):
    """Yields (container_root, how) for every mutation `text` performs
    on a container visible in `scope` — direct mutator calls, map
    operator[], and one-level calls that mutate a by-reference
    argument."""
    for path, args_text, _pos in extract_calls(text):
        parts = re.split(r"\.|->", path)
        method = parts[-1]
        if len(parts) > 1:
            obj = path[: len(path) - len(method)].rstrip(".->")
            if not chain_root(obj):
                continue
            t = scope.resolve(obj)
            if is_mutating_method(t, method, ctx):
                yield _norm_path(obj), f"{method}() on {obj}"
        else:
            summ = mut_summaries.get(method)
            if not summ:
                continue
            args = split_top_level(args_text)
            for idx in sorted(summ):
                if idx < len(args):
                    arg = args[idx].strip().lstrip("&")
                    if chain_root(arg):
                        yield _norm_path(arg), \
                            f"{method}() mutating argument {idx + 1}"
    # Map operator[] default-constructs on miss: a mutation.
    for m in re.finditer(r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*\[",
                         text):
        t = scope.resolve(m.group(1))
        if is_map_like(t):
            yield _norm_path(m.group(1)), f"operator[] on map {m.group(1)}"


def check_iter_invalidation(tu, ctx, mut_summaries):
    findings = []
    for fn in tu.all_functions():
        if fn.body is None:
            continue
        scope = Scope(ctx, tu, fn, _owner_class(ctx, fn))
        seen = set()

        def report(line, msg):
            key = (line, msg)
            if key not in seen:
                seen.add(key)
                findings.append(Finding(tu.path, line,
                                        "iter-invalidation", msg))

        # Loops: mutations of the iterated container inside the body.
        for s in iter_stmts_no_lambda(fn.body):
            if not isinstance(s, Loop):
                continue
            bindings = []  # (alias or "", container path)
            if s.kind == "range_for":
                if chain_root(s.range_expr) and \
                        is_heap_container(scope.resolve(s.range_expr)):
                    bindings.append(("", _norm_path(s.range_expr),
                                     "range-for"))
            else:
                m = FOR_HEADER_BIND_RE.search(s.header_text)
                if m and is_heap_container(scope.resolve(m.group(2))):
                    bindings.append((m.group(1), _norm_path(m.group(2)),
                                     "iterator-for"))
            for alias, root, loop_kind in bindings:
                for inner in iter_stmts_no_lambda(s.body):
                    for text in _stmt_use_texts(inner):
                        if alias and re.match(
                                rf"^\s*{re.escape(alias)}\s*=[^=]", text):
                            continue  # `it = c.erase(it)` refreshes
                        for mroot, how in _mutations_in(
                                text, scope, ctx, mut_summaries):
                            if mroot == root:
                                report(inner.line,
                                       f"{fn.qname} mutates `{root}` "
                                       f"({how}) while the {loop_kind} "
                                       f"at line {s.line} iterates it — "
                                       "iterators/references into it "
                                       "are invalidated")

        # Straight-line: iterator/reference bindings live across a
        # mutation of their container, in source order.
        ordered = list(iter_stmts_no_lambda(fn.body))
        bindings = []  # (alias, container path, stmt index, line)
        for idx, s in enumerate(ordered):
            if not isinstance(s, VarDecl):
                continue
            # Per-statement init, NOT scope.inits: that map is name-
            # flattened and a reused local name across disjoint scopes
            # would pick up the wrong initializer.
            init = s.init_text
            if init.startswith("="):
                init = init[1:]
            elif init.startswith("(") or init.startswith("{"):
                init = init[1:-1] if len(init) >= 2 else ""
            init = init.strip()
            is_ref = "&" in s.type_text or "*" in s.type_text
            m = ITER_BIND_RE.match(init)
            if m is not None and m.group(2) in ("front", "back", "data",
                                                "at") and not is_ref:
                m = None  # `int v = s.back();` copies the element
            ref_bind = None
            if m is None and is_ref:
                sub = re.match(r"^((?:[A-Za-z_]\w*(?:\.|->))*"
                               r"[A-Za-z_]\w*)\s*\[", init)
                if sub:
                    ref_bind = sub.group(1)
            target = m.group(1) if m else ref_bind
            if target is None:
                continue
            if not is_heap_container(scope.resolve(target)):
                continue
            if chain_root(target):
                bindings.append((s.name, _norm_path(target), idx, s.line))
        for alias, root, bind_idx, bind_line in bindings:
            use_re = re.compile(rf"\b{re.escape(alias)}\b")
            rebind_re = re.compile(rf"^\s*{re.escape(alias)}\s*=[^=]")
            for midx in range(bind_idx + 1, len(ordered)):
                mstmt = ordered[midx]
                hit = None
                for text in _stmt_use_texts(mstmt):
                    if rebind_re.match(text):
                        hit = "rebind"
                        break
                    for mroot, how in _mutations_in(
                            text, scope, ctx, mut_summaries):
                        if mroot == root:
                            hit = how
                            break
                    if hit:
                        break
                if hit == "rebind":
                    break  # alias reseated; this binding is dead
                if hit is None:
                    continue
                # Mutation found: is the alias used afterwards?
                for uidx in range(midx + 1, len(ordered)):
                    used = None
                    for text in _stmt_use_texts(ordered[uidx]):
                        if rebind_re.match(text):
                            used = "rebind"
                            break
                        if use_re.search(text):
                            used = "use"
                            break
                    if used == "rebind":
                        break
                    if used == "use":
                        report(mstmt.line,
                               f"{fn.qname}: `{alias}` (bound into "
                               f"`{root}` at line {bind_line}) is used "
                               f"at line {ordered[uidx].line} after "
                               f"{hit} may invalidate it")
                        break
                break  # first live mutation is the finding; move on
    return findings


def view_field_inventory(tu, ctx):
    """[(cls, field, dealiased type, contract)] for every view-typed
    field in the TU; contract is 'borrows', 'owns', or 'unannotated'."""
    out = []
    for cls in tu.all_classes():
        for name in sorted(cls.fields):
            field = cls.fields[name]
            t = dealias(field.type_text, tu.aliases)
            bare = re.sub(r"\bconst\b", " ", t).strip()
            if not (is_view(t) or bare.endswith("&") or bare.endswith("*")):
                continue
            borrows = contract_names_for(field.line, tu.borrows,
                                         tu.raw_lines)
            owns = contract_names_for(field.line, tu.owns, tu.raw_lines)
            if name in owns:
                contract = "owns"
            elif name in borrows:
                contract = "borrows"
            else:
                contract = "unannotated"
            out.append((cls, field, t, contract))
    return out


def check_view_escape(tu, ctx):
    """Per-TU contract check (registered in checks.PER_TU_CHECKS): view
    fields need a borrows() contract, owns() on a view is a
    contradiction, contracts must name real members, and borrows()
    carries a mandatory reason."""
    findings = []
    for cls, field, t, contract in view_field_inventory(tu, ctx):
        if contract == "owns":
            findings.append(Finding(
                tu.path, field.line, "view-escape",
                f"{cls.name}::{field.name} ({t}) is a non-owning view "
                "declared owns() — a view cannot own its storage; "
                "declare borrows(...) or store an owning type"))
        elif contract == "unannotated":
            findings.append(Finding(
                tu.path, field.line, "view-escape",
                f"{cls.name}::{field.name} ({t}) is a non-owning view "
                "with no lifetime contract — annotate `// analyzer: "
                f"borrows({field.name}) -- <why the owner outlives it>` "
                "or own the storage"))
    # Contract hygiene: names must exist, borrows() must say why.
    known = set()
    for cls in tu.all_classes():
        known.update(cls.fields)
    for fn in tu.all_functions():
        known.update(p.name for p in fn.params if p.name)
    for line, names in sorted(tu.owns.items()):
        for name in sorted(names - known):
            findings.append(Finding(
                tu.path, line, "view-escape",
                f"owns({name}) names no field or parameter in this TU"))
    for line, names in sorted(tu.borrows.items()):
        for name in sorted(names - known):
            findings.append(Finding(
                tu.path, line, "view-escape",
                f"borrows({name}) names no field or parameter in this "
                "TU"))
    for line in sorted(tu.borrows_noreason):
        findings.append(Finding(
            tu.path, line, "view-escape",
            "borrows(...) without `-- <reason>`; the reason is the "
            "contract — say why the owner outlives the view"))
    return findings


def run(tus, ctx, cg=None):
    """Whole-program lifetime pass: dangling-view + iter-invalidation
    findings and the lifetime report. view-escape runs per-TU through
    the ordinary check registry; its inventory is folded into the
    report here."""
    summaries = build_view_summaries(tus, ctx, cg)
    mut_summaries = build_mutation_summaries(tus, ctx)
    findings = []
    tus_out = {}
    summary = collections.Counter()
    for tu in tus:
        dv = check_dangling_view(tu, ctx, summaries, cg)
        ii = check_iter_invalidation(tu, ctx, mut_summaries)
        findings.extend(dv)
        findings.extend(ii)
        fields = view_field_inventory(tu, ctx)
        fns = []
        for fn in tu.all_functions():
            if fn.owner or fn.body is None:
                continue
            summ = summaries.get(fn.name)
            if summ is None:
                continue
            verdict = "dangling" if summ["dangles"] else (
                "borrows-params" if summ["borrows_params"] else (
                    "borrows-longer-lived" if summ["borrows_other"]
                    else "unknown"))
            fns.append({
                "function": summ["qname"],
                "return_type": summ["return_type"],
                "borrows_params": sorted(summ["borrows_params"]),
                "verdict": verdict,
            })
            summary[f"fn_{verdict.replace('-', '_')}"] += 1
        for _cls, _field, _t, contract in fields:
            summary[f"field_{contract}"] += 1
        summary["dangling_view"] += len(dv)
        summary["iter_invalidation"] += len(ii)
        if not fields and not fns and not dv and not ii:
            continue
        tus_out[tu.path] = {
            "view_fields": [{
                "field": f"{cls.name}::{field.name}",
                "type": t,
                "line": field.line,
                "contract": contract,
            } for cls, field, t, contract in fields],
            "view_returning_functions": fns,
            "findings": [f"{f.line}: [{f.check}] {f.message}"
                         for f in sorted(dv + ii,
                                         key=lambda f: f.line)],
        }
    report = {
        "schema": REPORT_SCHEMA,
        "frontends": dict(collections.Counter(tu.frontend for tu in tus)),
        "tus": tus_out,
        "summary": dict(sorted(summary.items())),
    }
    return findings, report
