"""The two companion checks that ride the lockset dataflow.

blocking-under-lock (whole-program): anything that can stall the thread
for unbounded time while a mutex is held serializes every other waiter —
the latency killer for the serving path (ROADMAP item 3). Flagged while
holding a lock: direct I/O (stdio calls, writes to file/console
streams), sleeps, ThreadPool Submit/Wait/ParallelFor (Submit can block
on the queue lock of a loaded pool; Wait blocks by design), calls into
`// analyzer: hot` functions (allocation-heavy by contract), and calls
whose *transitive* same-thread callees do any of the above. Deliberate
exclusions: CHECK/LOG (ThreadPool::Submit legitimately CHECKs its
invariants under mutex_ — the lock-order analysis already models the
logging mutex), CondVar::Wait (waiting on a condition under its mutex
is the idiom, not a bug), and anything inside a launched lambda body
relative to the launching function (the task's I/O happens on another
thread after the caller released its locks).

unordered-output-flow (per-TU taint): hash-table iteration order
reaching a serialization sink breaks the repo's byte-identical output
contract. Loop bindings over unordered containers are taint sources;
taint propagates through locals (including the launder-through-a-vector
pattern: push_back of a tainted binding taints the vector);
std::sort/std::stable_sort over a tainted value clears it; sinks are
Write*/Emit*/Print*/Serialize*/Dump*/*Json*/*Csv*/*Html* calls and <<
into a file/console stream. Unlike the regex lint (tools/lint.py rule
"unordered-determinism") this check deliberately ignores
`// determinism:` comments: those justify *iterating*; this check
verifies the justification's usual claim — "sorted before output" —
actually holds on the path to the sink. Suppress with
`// analyzer: allow(unordered-output-flow) -- <reason>` when order
provably cannot reach bytes (e.g. the sink input is re-sorted by the
callee)."""

import re

import locksets
from cpputil import (Scope, chain_root, extract_calls, is_unordered,
                     type_head)
from model import (Block, ExprStmt, Finding, If, Loop, Return, VarDecl)

# --- blocking-under-lock ------------------------------------------------

POOL_BLOCKING_METHODS = ("Submit", "Wait", "ParallelFor")


def check_blocking_under_lock(walks, ctx):
    findings = []
    seen = set()
    hot_names = {w.fn.name for top in walks for w in top.walks()
                 if w.fn.is_hot}

    def report(path, line, msg):
        key = (path, line, msg)
        if key not in seen:
            seen.add(key)
            findings.append(Finding(path, line, "blocking-under-lock", msg))

    # Transitive same-thread blocking summaries by unqualified name.
    # Launched lambdas are excluded from their parent's summary: their
    # work happens on another thread, after the caller's locks drop.
    direct = {}
    calls = {}
    for top in walks:
        name = top.fn.name
        ops = [op for w in top.walks_same_thread() for op in w.ops]
        direct.setdefault(name, set()).update(op.desc for op in ops)
        cs_names = {c.name for w in top.walks_same_thread()
                    for c in w.callsites}
        calls.setdefault(name, set()).update(cs_names)
        if any(w.fn.is_hot for w in top.walks_same_thread()):
            direct[name].add(f"hot function {name}()")
    trans = {n: set(d) for n, d in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in trans:
            add = set()
            for callee in calls.get(name, ()):
                add.update(trans.get(callee, ()))
            if not add <= trans[name]:
                trans[name] |= add
                changed = True

    for top in walks:
        for w in top.walks():
            for op in w.ops:
                if op.held:
                    report(w.tu.path, op.line,
                           f"{w.fn.qname} does {op.desc} while holding "
                           f"{_locks(op.held)} — move it outside the "
                           "critical section")
            for cs in w.callsites:
                if not cs.held:
                    continue
                if cs.recv_class == "ThreadPool" and \
                        cs.name in POOL_BLOCKING_METHODS:
                    report(w.tu.path, cs.line,
                           f"{w.fn.qname} calls ThreadPool::{cs.name} "
                           f"while holding {_locks(cs.held)} — "
                           f"{cs.name} can block on pool state")
                    continue
                if cs.name in hot_names:
                    report(w.tu.path, cs.line,
                           f"{w.fn.qname} calls hot function {cs.name}() "
                           f"while holding {_locks(cs.held)} — "
                           "allocation-heavy work belongs outside the "
                           "lock")
                    continue
                blocked = trans.get(cs.name, ())
                if blocked:
                    sample = sorted(blocked)[0]
                    report(w.tu.path, cs.line,
                           f"{w.fn.qname} calls {cs.name}() while holding "
                           f"{_locks(cs.held)}, and {cs.name} transitively "
                           f"does {sample}")
    return findings


def _locks(held):
    return "{" + ", ".join(sorted(held)) + "}"


# --- unordered-output-flow ----------------------------------------------

SINK_NAME_RE = re.compile(
    r"^(?:Write|Emit|Print|Serialize|Dump)\w*$|Json|Csv|Html")

SORT_RE = re.compile(r"\bstd::(?:stable_)?sort\s*\(")

STREAM_HEADS = ("std::ostream", "std::ofstream", "std::fstream")

STD_STREAMS_RE = re.compile(r"\bstd::c(?:out|err|log)\b")

MUTATING_APPEND = ("push_back", "emplace_back", "insert", "emplace",
                   "append", "push", "push_front", "emplace_front")


def _binding_names(binding):
    """'const auto& [k, v]' -> ['k', 'v']; 'const Row& row' -> ['row']."""
    m = re.search(r"\[([^\]]*)\]\s*$", binding)
    if m:
        return [n.strip() for n in m.group(1).split(",") if n.strip()]
    m = re.search(r"([A-Za-z_]\w*)\s*$", binding)
    return [m.group(1)] if m else []


def _ident_in(name, text):
    return re.search(rf"(?<![\w.]){re.escape(name)}\b", text) is not None


def check_unordered_output_flow(tu, ctx):
    findings = []
    for fn in tu.all_functions():
        if fn.body is None:
            continue
        owner = ctx.class_by_name(fn.owner) if fn.owner else None
        scope = Scope(ctx, tu, fn, owner)
        tainted = {}   # local name -> human description of the source

        def sink_hits(text, line, bindings):
            live = dict(tainted)
            live.update(bindings)
            if not live:
                return
            for path_, args, _pos in extract_calls(text):
                callee = re.split(r"::|\.|->", path_)[-1]
                if not SINK_NAME_RE.search(callee):
                    continue
                for name, src in sorted(live.items()):
                    if _ident_in(name, args):
                        findings.append(Finding(
                            tu.path, line, "unordered-output-flow",
                            f"{fn.qname} passes {name} (carrying "
                            f"iteration order of {src}) to sink "
                            f"{callee}() without an intervening sort — "
                            "hash-table order reaches serialized bytes"))
                        break
            if "<<" in text:
                lhs = text.split("<<", 1)[0].strip()
                rhs = text.split("<<", 1)[1]
                is_stream = bool(STD_STREAMS_RE.search(lhs)) or \
                    type_head(scope.resolve(lhs)) in STREAM_HEADS
                if is_stream:
                    for name, src in sorted(live.items()):
                        if _ident_in(name, rhs):
                            findings.append(Finding(
                                tu.path, line, "unordered-output-flow",
                                f"{fn.qname} streams {name} (carrying "
                                f"iteration order of {src}) to "
                                f"{lhs or 'a stream'} without an "
                                "intervening sort"))
                            break

        def flow(text, line, bindings, decl_name=None):
            if SORT_RE.search(text):
                for name in list(tainted):
                    if _ident_in(name, text):
                        del tainted[name]
                return
            m = re.match(r"\s*([A-Za-z_]\w*)\s*\.\s*sort\s*\(", text)
            if m:
                tainted.pop(m.group(1), None)
                return
            sink_hits(text, line, bindings)
            live = dict(tainted)
            live.update(bindings)
            # Propagation: a decl initialized from taint, an append of a
            # tainted value, or a plain assignment from taint.
            if decl_name:
                init = text
                for name, src in live.items():
                    if name != decl_name and _ident_in(name, init):
                        tainted[decl_name] = src
                        break
                return
            for path_, args, _pos in extract_calls(text):
                parts = re.split(r"\.|->", path_)
                if len(parts) >= 2 and parts[-1] in MUTATING_APPEND:
                    target = parts[0]
                    for name, src in live.items():
                        if name != target and _ident_in(name, args):
                            tainted[target] = src
                            break
            eq = _assign_pos(text)
            if eq >= 0:
                target = chain_root(text[:eq])
                rhs = text[eq + 1:]
                hit = None
                for name, src in live.items():
                    if name != target and _ident_in(name, rhs):
                        hit = src
                        break
                if target:
                    if hit:
                        tainted[target] = hit
                    else:
                        tainted.pop(target, None)  # overwritten clean

        def visit(block, bindings):
            for s in block.stmts:
                if isinstance(s, Loop) and s.kind == "range_for":
                    t = scope.resolve(s.range_expr)
                    root = chain_root(s.range_expr)
                    src = None
                    if is_unordered(t):
                        src = f"{type_head(t)} ({s.range_expr})"
                    elif root in tainted:
                        src = tainted[root]
                    elif root in bindings:
                        src = bindings[root]
                    nb = dict(bindings)
                    if src:
                        for b in _binding_names(s.binding):
                            nb[b] = src
                    visit(s.body, nb)
                elif isinstance(s, Loop):
                    flow(s.header_text, s.line, bindings)
                    nb = dict(bindings)
                    m = re.search(
                        r"(?:auto|[\w:]+)\s*&?\s*([A-Za-z_]\w*)\s*=\s*"
                        r"([\w.>-]+)\s*\.\s*c?begin\s*\(",
                        s.header_text)
                    if m and is_unordered(scope.resolve(m.group(2))):
                        nb[m.group(1)] = (
                            f"{type_head(scope.resolve(m.group(2)))} "
                            f"({m.group(2)})")
                    visit(s.body, nb)
                elif isinstance(s, If):
                    flow(s.cond_text, s.line, bindings)
                    visit(s.then_block, bindings)
                    if s.else_block is not None:
                        visit(s.else_block, bindings)
                elif isinstance(s, Block):
                    visit(s, bindings)
                elif isinstance(s, VarDecl):
                    flow(s.text, s.line, bindings, decl_name=s.name)
                    for ch in s.children:
                        visit(ch, bindings)
                elif isinstance(s, ExprStmt):
                    flow(s.text, s.line, bindings)
                    for ch in s.children:
                        visit(ch, bindings)
                elif isinstance(s, Return):
                    pass  # callers may sort; returning taint is not a sink

        visit(fn.body, {})
    return findings


def _assign_pos(text):
    depth = 0
    angle = 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "=" and depth == 0 and angle == 0:
            prev = text[i - 1] if i else ""
            nxt = text[i + 1] if i + 1 < len(text) else ""
            if prev not in "=!<>+-*/%&|^" and nxt != "=":
                return i
    return -1
