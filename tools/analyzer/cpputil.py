"""Expression-level helpers over the normalized AST: call extraction,
member-chain parsing, and a small type resolver.

The resolver answers the questions the checks ask — "is this expression
an unordered container?", "which class does this mutex member belong
to?", "is this variable a std::string?" — by chaining declared types
through member accesses, subscripts, and known method return types. It
returns "" whenever it cannot prove a type; checks treat "" as
"unknown" and stay silent, so resolver gaps cause missed findings, not
false positives.
"""

import re

CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*[A-Za-z_]\w*)\s*\(")

CALL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                 "static_cast", "const_cast", "reinterpret_cast",
                 "dynamic_cast", "decltype", "alignof", "noexcept",
                 "catch", "new", "delete", "assert", "defined"}

CHAIN_TOKEN_RE = re.compile(r"^\s*(?:this\s*->\s*)?([A-Za-z_]\w*)")

CONTAINER_HEADS = ("std::vector", "std::string", "std::unordered_map",
                   "std::unordered_set", "std::map", "std::set",
                   "std::deque", "std::queue", "std::priority_queue",
                   "std::list", "std::stringstream", "std::ostringstream")

# Non-owning view types: the object does not own the bytes it exposes
# (DESIGN.md §17). Iterators are views too, matched by name suffix.
VIEW_HEADS = ("std::string_view", "std::span")

# Container entry points that may invalidate live iterators/references
# into the container (grow, shrink, rehash, or reseat storage).
CONTAINER_MUTATORS = {"push_back", "emplace_back", "pop_back",
                      "push_front", "emplace_front", "pop_front",
                      "insert", "emplace", "emplace_hint", "erase",
                      "clear", "resize", "reserve", "assign",
                      "shrink_to_fit", "swap", "push", "pop", "append",
                      "rehash", "merge", "extract"}


def find_balanced(text, open_pos, open_ch="(", close_ch=")"):
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def extract_calls(text):
    """Yields (path, args_text, start) for every call-looking site.
    `path` is whitespace-free, e.g. "index.TopPhrases" or "CHECK_EQ"."""
    for m in CALL_RE.finditer(text):
        path = re.sub(r"\s+", "", m.group(1))
        last = path.split("::")[-1].split(".")[-1].split("->")[-1]
        if last in CALL_KEYWORDS or path.split("::")[0] in CALL_KEYWORDS:
            continue
        close = find_balanced(text, m.end() - 1)
        if close < 0:
            continue
        yield path, text[m.end():close], m.start()


def split_top_level(text, sep=","):
    parts = []
    depth = 0
    angle = 0
    cur = []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        if c == sep and depth == 0 and angle == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def template_args(type_text):
    """["K", "V"] for "std::unordered_map<K, V>"; [] when not templated."""
    lt = type_text.find("<")
    if lt < 0:
        return []
    gt = type_text.rfind(">")
    if gt < lt:
        return []
    return [a.strip() for a in split_top_level(type_text[lt + 1:gt])]


def bare_type(type_text):
    """Strips const/&/*/whitespace — "const Shard&" -> "Shard"."""
    t = re.sub(r"\b(?:const|volatile|mutable|static|constexpr)\b", " ",
               type_text)
    return t.replace("&", " ").replace("*", " ").strip()


def type_head(type_text):
    return bare_type(type_text).split("<")[0].strip()


def is_unordered(type_text):
    # Head-based on purpose: std::array<std::unordered_map<...>, N>
    # iterates deterministically even though an unordered type appears
    # in its arguments.
    return type_head(type_text or "") in ("std::unordered_map",
                                          "std::unordered_set")


def is_map_like(type_text):
    return type_head(type_text or "") in ("std::unordered_map", "std::map")


def is_string(type_text):
    return type_head(type_text or "") == "std::string"


def is_heap_container(type_text):
    head = type_head(type_text or "")
    return head in CONTAINER_HEADS


def element_type(type_text):
    """The type produced by operator[] / iteration on a container."""
    head = type_head(type_text)
    args = template_args(bare_type(type_text))
    if not args:
        return ""
    if head in ("std::vector", "std::array", "std::deque", "std::set",
                "std::unordered_set", "std::queue", "std::priority_queue",
                "std::list"):
        return args[0]
    if head in ("std::map", "std::unordered_map"):
        return args[1] if len(args) > 1 else ""
    return ""


def dealias(type_text, aliases, depth=0):
    """Chases `using Name = Type;` aliases through the head of a type:
    "Views" -> "std::vector<std::string_view>". Qualifiers and &/* are
    re-applied so "const Views&" dealiases to
    "const std::vector<std::string_view>&"."""
    if not type_text or not aliases or depth > 4:
        return type_text
    head = type_head(type_text)
    target = aliases.get(head) or aliases.get(head.split("::")[-1])
    if target is None:
        return type_text
    suffix = ""
    stripped = type_text.rstrip()
    while stripped and stripped[-1] in "&*":
        suffix = stripped[-1] + suffix
        stripped = stripped[:-1].rstrip()
    prefix = "const " if re.search(r"\bconst\b", type_text) and \
        "const" not in target else ""
    return dealias(prefix + target + suffix, aliases, depth + 1)


def is_view(type_text):
    """True for non-owning view types: string_view, span, iterators.
    Callers dealias first (Scope does so automatically)."""
    head = type_head(type_text or "")
    if head in VIEW_HEADS:
        return True
    # type_head cuts at '<', losing member suffixes like
    # `std::vector<int>::iterator` — check the full bare type too.
    return head.endswith("iterator") or \
        bare_type(type_text or "").endswith("iterator")


def is_owning(type_text):
    """True when the (dealiased) type owns heap storage that a view can
    dangle into: the std containers plus std::pair/tuple/array/optional
    of them. User types are deliberately excluded — miss toward
    silence."""
    head = type_head(type_text or "")
    if head in CONTAINER_HEADS:
        return True
    if head in ("std::pair", "std::tuple", "std::array", "std::optional"):
        return any(is_owning(a) for a in template_args(bare_type(type_text)))
    return False


def std_method_return(obj_type, method):
    """Return types of the std methods the lifetime checks care about;
    "" when unknown. `substr` on std::string returns a *temporary*
    std::string — the distinction the dangling-view check turns on."""
    head = type_head(obj_type or "")
    if head == "std::string":
        if method == "substr":
            return "std::string"
        if method in ("data", "c_str"):
            return "const char*"
    elif head == "std::string_view":
        if method == "substr":
            return "std::string_view"
        if method == "data":
            return "const char*"
    if head in CONTAINER_HEADS or head in VIEW_HEADS:
        if method in ("begin", "end", "cbegin", "cend", "rbegin", "rend"):
            return f"{head}::iterator"
        if method in ("front", "back"):
            elem = element_type(obj_type)
            return elem + "&" if elem else ""
        if method == "data":
            elem = element_type(obj_type)
            return elem + "*" if elem else ""
        if method == "at":
            elem = element_type(obj_type)
            return elem + "&" if elem else ""
    return ""


def is_mutating_method(obj_type, method, ctx):
    """True when calling `method` on an object of (dealiased) `obj_type`
    may invalidate iterators/references into it: the std container
    mutators, or any non-const method of a known user class. Unknown
    types and methods answer False — miss toward silence."""
    head = type_head(obj_type or "")
    if not head:
        return False
    if head.startswith("std::"):
        return head in CONTAINER_HEADS and method in CONTAINER_MUTATORS
    cls = ctx.class_of_type(obj_type)
    if cls is None:
        return False
    decls = [m for m in cls.methods if m.name == method]
    if not decls:
        return False
    return not any(
        any(a.split("(")[0].strip() == "const" for a in m.annotations)
        for m in decls)


class Scope:
    """Name -> type lookup for one function body: parameters, local
    declarations (flattened — good enough for the repo's unique local
    names), the owner class's fields, and the TU's globals."""

    def __init__(self, ctx, tu, fn, owner_class):
        self.ctx = ctx
        self.tu = tu
        self.fn = fn
        self.owner = owner_class
        self.vars = {}
        self.inits = {}  # name -> init text, for resolving `auto`
        for p in fn.params:
            if p.name:
                self.vars[p.name] = p.type_text
        if fn.body is not None:
            from model import VarDecl, iter_stmts, Loop
            for s in iter_stmts(fn.body):
                if isinstance(s, VarDecl):
                    self.vars.setdefault(s.name, s.type_text)
                    init = s.init_text
                    if init.startswith("="):
                        init = init[1:]
                    elif init.startswith("(") or init.startswith("{"):
                        init = init[1:-1] if len(init) >= 2 else ""
                    self.inits.setdefault(s.name, init.strip())
                elif isinstance(s, Loop) and s.kind == "range_for":
                    m = re.search(r"([A-Za-z_]\w*)\s*$", s.binding)
                    if m and "[" not in s.binding:
                        self.vars.setdefault(m.group(1),
                                             "__range_elem__:" +
                                             s.range_expr)

    def type_of_name(self, name, depth=0):
        if depth > 6:
            return ""
        t = self.vars.get(name, "")
        if t.startswith("__range_elem__:"):
            rt = self.resolve(t.split(":", 1)[1], depth + 1)
            return element_type(rt) if rt else ""
        if t and bare_type(t).startswith("auto"):
            init = self.inits.get(name, "")
            return self.resolve(init, depth + 1) if init else ""
        if t:
            return dealias(t, self.tu.aliases)
        if self.owner is not None:
            f = self.owner.fields.get(name)
            if f is not None:
                return dealias(f.type_text, self.tu.aliases)
        t = self.tu.globals.get(name, "")
        if t:
            return dealias(t, self.tu.aliases)
        return ""

    def resolve(self, expr, depth=0):
        """Best-effort type of an expression chain; "" when unknown."""
        if depth > 8 or not expr:
            return ""
        e = expr.strip()
        # strip one layer of wrapping parens
        while e.startswith("(") and find_balanced(e, 0) == len(e) - 1:
            e = e[1:-1].strip()
        e = e.lstrip("&*").strip()
        m = CHAIN_TOKEN_RE.match(e)
        if not m:
            return ""
        root = m.group(1)
        i = m.end()
        cur = self.type_of_name(root, depth)
        # A root-level free-function call: Fn(...)....
        if cur == "" and i < len(e) and e[i:].lstrip().startswith("("):
            fns = self.ctx.functions_named(root)
            rets = {f.return_type for f in fns if f.return_type}
            cur = dealias(rets.pop(), self.tu.aliases) \
                if len(rets) == 1 else ""
            close = find_balanced(e, e.find("(", i))
            if close < 0:
                return ""
            i = close + 1
        pending_member = None
        while i < len(e):
            c = e[i]
            if c in " \t\n":
                i += 1
                continue
            if c in ".-":
                skip = 1 if c == "." else 2
                mm = re.match(r"\s*([A-Za-z_]\w*)", e[i + skip:])
                if not mm:
                    return cur if pending_member is None else ""
                pending_member = mm.group(1)
                i += skip + mm.end()
                continue
            if c == "(":
                close = find_balanced(e, i)
                if close < 0:
                    return ""
                if pending_member is not None:
                    cur = self.ctx.method_return(cur, pending_member) or \
                        std_method_return(cur, pending_member)
                    cur = dealias(cur, self.tu.aliases)
                    pending_member = None
                i = close + 1
                continue
            if c == "[":
                close = find_balanced(e, i, "[", "]")
                if close < 0:
                    return ""
                if pending_member is not None:
                    cur = self._member_type(cur, pending_member)
                    pending_member = None
                cur = element_type(cur) if cur else ""
                i = close + 1
                continue
            break  # operator (+, ==, ...) ends the chain
        if pending_member is not None:
            cur = self._member_type(cur, pending_member)
        return cur or ""

    def _member_type(self, cur_type, member):
        # Element types pulled out of templated containers (e.g. `Row`
        # from `std::vector<Row>`) have not been dealiased yet.
        cur_type = dealias(cur_type or "", self.tu.aliases)
        head = type_head(cur_type)
        if head in ("std::pair", "std::tuple"):
            args = template_args(bare_type(cur_type))
            if member == "first" and args:
                return args[0]
            if member == "second" and len(args) > 1:
                return args[1]
            return ""
        cls = self.ctx.class_of_type(cur_type)
        if cls is None:
            return ""
        f = cls.fields.get(member)
        if f is None:
            return ""
        return dealias(f.type_text, self.tu.aliases)


def top_level_assign(text):
    """Position of a plain top-level `=` (not ==, <=, +=, ...), or -1."""
    depth = 0
    angle = 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "=" and depth == 0 and angle == 0:
            prev = text[i - 1] if i else ""
            nxt = text[i + 1] if i + 1 < len(text) else ""
            if prev not in "=!<>+-*/%&|^" and nxt != "=":
                return i
    return -1


def chain_root(expr):
    """Leading identifier of an expression, stripping &, *, parens, and
    this->; "" when the expression does not start with a name."""
    e = expr.strip()
    while e.startswith("(") and find_balanced(e, 0) == len(e) - 1:
        e = e[1:-1].strip()
    e = e.lstrip("&*!").strip()
    if e.startswith("std::move") or e.startswith("std::cref") or \
            e.startswith("std::ref"):
        inner = e[e.find("("):]
        if inner and find_balanced(inner, 0) >= 0:
            return chain_root(inner[1:find_balanced(inner, 0)])
    m = CHAIN_TOKEN_RE.match(e)
    return m.group(1) if m else ""
