// Fixture: four fields written from concurrent contexts without a
// consistent lock — the seeded races the interprocedural lockset
// inference must catch. Self-contained (stub Mutex/ThreadPool, real
// attribute spelling) so the clang frontend can parse it too.
#include <functional>

#define GUARDED_BY(x) __attribute__((guarded_by(x)))

class Mutex {
 public:
  void Lock();
  void Unlock();
  bool TryLock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class ThreadPool {
 public:
  void Submit(std::function<void()> fn);
  void Wait();
};

// Race 1: unlocked write from a launched lambda (two workers bump the
// same counter through the captured `this`).
class Telemetry {
 public:
  void Start(ThreadPool* pool) {
    pool->Submit([this] { ++dropped_; });
    pool->Submit([this] { ++dropped_; });
  }

 private:
  long dropped_ = 0;
};

// Race 2: every write holds *a* lock, but not the same one — the
// lockset intersection over concurrent accesses is empty.
class Ledger {
 public:
  void Churn(ThreadPool* pool) {
    pool->Submit([this] {
      MutexLock lock(&mu_);
      balance_ += 1;
    });
    pool->Submit([this] {
      MutexLock lock(&alt_mu_);
      balance_ -= 1;
    });
  }

 private:
  Mutex mu_;
  Mutex alt_mu_;
  long balance_ = 0;
};

// Race 3: the write hides one call deep — the launched lambda looks
// innocent, the helper it calls touches the field with no lock. TSA
// cannot see this without annotations; inference must.
class Journal {
 public:
  void Start(ThreadPool* pool) {
    pool->Submit([this] { Append(); });
    pool->Submit([this] { Append(); });
  }

 private:
  void Append() { ++entries_; }
  long entries_ = 0;
};

// Race 4: a main-thread write inside the Submit..Wait window races the
// in-flight task that also writes the field.
class Pipeline {
 public:
  void Run() {
    pending_ = 0;  // pre-launch: still single-threaded
    pool_.Submit([this] { ++pending_; });
    pending_ = 1;  // in the window: races the submitted task
    pool_.Wait();
  }

 private:
  ThreadPool pool_;
  long pending_ = 0;
};
