// Fixture: view fields with missing, contradictory, malformed, or
// unreasoned lifetime contracts.
#include <string_view>

// Two view fields with no contract at all.
class Unannotated {
 private:
  std::string_view name_;
  const int* data_;
};

// owns() on a view is a contradiction: a view cannot own its storage.
class OwnsView {
 private:
  // analyzer: owns(label_)
  std::string_view label_;
};

// borrows() without a reason: the why IS the contract.
class NoReason {
 private:
  // analyzer: borrows(src_)
  const char* src_;
};

// A contract naming a member that does not exist.
class BadName {
 private:
  // analyzer: borrows(missing_)
  // analyzer: borrows(ptr_) -- fixture: reason present, field known.
  const char* ptr_;
};
