// Fixture: views escaping their storage — returns of locals,
// temporaries, and by-value parameters, and a view field pointing at a
// dead frame. Each marked line is one dangling-view finding.
#include <string>
#include <string_view>

std::string MakeName();

// A view of a local returned: the buffer dies with the frame.
std::string_view LocalView() {
  std::string buf = MakeName();
  return buf;
}

// A reference to a local returned.
const std::string& LocalRef() {
  std::string tmp = MakeName();
  return tmp;
}

// A view of a by-value parameter returned: the copy dies on return.
std::string_view ParamView(std::string owned) {
  return owned;
}

// A view local bound to a temporary: dead at the semicolon.
int TemporaryView() {
  std::string_view v = MakeName();
  return static_cast<int>(v.size());
}

// A view of a frame-local stored into a field that outlives it.
class Cache {
 public:
  void Fill() {
    std::string local = MakeName();
    view_ = local;
  }

 private:
  // analyzer: borrows(view_) -- fixture: contract present so only the
  // dangling store in Fill() is reported, not the field itself.
  std::string_view view_;
};
