// Fixture: a field that every concurrent access protects with the same
// mutex, but the declaration never says so — inference should demand
// the GUARDED_BY so TSA takes over enforcement.
#include <functional>

#define GUARDED_BY(x) __attribute__((guarded_by(x)))

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class ThreadPool {
 public:
  void Submit(std::function<void()> fn);
  void Wait();
};

class Registry {
 public:
  void Publish(ThreadPool* pool) {
    pool->Submit([this] {
      MutexLock lock(&mu_);
      ++published_;
    });
    pool->Submit([this] {
      MutexLock lock(&mu_);
      ++published_;
    });
  }

 private:
  Mutex mu_;
  long published_ = 0;  // consistently under mu_, never annotated
};
