// Fixture: a helper that forwards views of its parameter launders
// frame-local storage through one call level. The helper itself is
// correct; both dangling returns are at the callers, which is where
// the interprocedural borrow summaries must place them.
#include <string>
#include <string_view>

// Fine on its own: the returned view borrows the caller's string.
std::string_view Trim(const std::string& s) {
  std::string_view v = s;
  return v;
}

// Launders a local through Trim: dangling at this return.
std::string_view TrimmedLocal() {
  std::string local = "abc";
  return Trim(local);
}

// Launders a by-value parameter through Trim: same story.
std::string_view TrimmedParam(std::string by_value) {
  return Trim(by_value);
}
