// Fixture: blocking work done while holding a mutex — directly, via
// the pool, and hidden one call deep. Every other thread that wants
// the lock stalls behind I/O it never asked for.
#include <cstdio>
#include <functional>

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class ThreadPool {
 public:
  void Submit(std::function<void()> fn);
  void Wait();
};

class Flusher {
 public:
  // Direct: stdio under the lock.
  void FlushDirect() {
    MutexLock lock(&mu_);
    std::fprintf(stderr, "flushing\n");
  }

  // Pool: Wait() parks the caller for as long as the queue is deep,
  // with the lock pinned the whole time.
  void Drain(ThreadPool* pool) {
    MutexLock lock(&mu_);
    pool->Wait();
  }

  // Transitive: the callee does the blocking; the caller holds the
  // lock. Same dataflow, one hop removed.
  void FlushViaHelper() {
    MutexLock lock(&mu_);
    WriteOut();
  }

 private:
  void WriteOut() { std::fprintf(stderr, "x\n"); }

  Mutex mu_;
};
