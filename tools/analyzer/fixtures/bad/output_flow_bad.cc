// Fixture: unordered iteration order flowing into serialization sinks.
// The `determinism:` markers keep the coarse unordered-iter lint quiet
// on purpose: the flow check must catch what a claimed-but-wrong
// comment waves through, so only unordered-output-flow may fire here.
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

void WriteCsv(const std::vector<std::string>& rows);

// Flow 1: hash-order elements straight into the console stream.
void DumpCounts(const std::unordered_map<std::string, int>& counts) {
  // determinism: output is machine-diffed downstream (it is not).
  for (const auto& kv : counts) {
    std::cout << kv.first << "=" << kv.second << "\n";
  }
}

// Flow 2: hash order laundered through a vector that is never sorted
// before reaching the serialization sink.
void EmitNames(const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> names;
  // determinism: names are sorted before use (they are not).
  for (const auto& kv : counts) {
    names.push_back(kv.first);
  }
  WriteCsv(names);
}
