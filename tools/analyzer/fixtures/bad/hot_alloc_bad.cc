// Fixture: every allocating construct the hot-loop check knows about,
// inside the loop of a `// analyzer: hot` function.
#include <map>
#include <string>
#include <vector>

// analyzer: hot
void Transform(const std::vector<int>& xs, std::vector<int>& out,
               std::map<int, int>& counts, std::string& label) {
  for (size_t i = 0; i < xs.size(); ++i) {
    int* p = new int(3);
    out.push_back(xs[i]);
    std::string name;
    counts[xs[i]] += 1;
    label += "x";
    delete p;
    (void)name;
  }
}
