// Fixture: a suppression without a reason is itself a finding — the
// underlying unordered-iter finding is suppressed, but the bare
// allow() must be reported.
#include <unordered_map>

class Table {
 public:
  void Dump(int* out) const {
    // analyzer: allow(unordered-iter)
    for (const auto& kv : m_) {
      *out += kv.second;
    }
  }

 private:
  std::unordered_map<int, int> m_;
};
