// Fixture: hash-table iteration order leaking, with no determinism
// justification.
#include <unordered_map>
#include <unordered_set>

class Histogram {
 public:
  int Sum() const {
    int total = 0;
    for (const auto& kv : counts_) {
      total += kv.second;
    }
    return total;
  }

  int First() const {
    auto it = seen_.begin();
    return it != seen_.end() ? *it : 0;
  }

 private:
  std::unordered_map<int, int> counts_;
  std::unordered_set<int> seen_;
};
