// Fixture: two scopes acquire the same pair of mutexes in opposite
// orders — the seeded lock-order cycle the analyzer must fail on.
class Mutex {
 public:
  void Lock();
  void Unlock();
  bool TryLock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

Mutex g_mu_a;
Mutex g_mu_b;

void TransferForward() {
  MutexLock a(&g_mu_a);
  MutexLock b(&g_mu_b);
}

void TransferBackward() {
  MutexLock b(&g_mu_b);
  MutexLock a(&g_mu_a);
}
