// Fixture: Status values dropped through the escapes the old regex
// rule cannot see — plus the plain bare call.
class Status {
 public:
  bool ok() const;
};

Status Flush();

void Caller() {
  Flush();
  (Flush(), 0);
  static_cast<Status>(Flush());
}
