// Fixture: reference-capturing lambdas escaping the frame they
// capture — returned (through std::function and auto) and stored into
// a field. Expected: 3 dangling-view findings.
#include <functional>

std::function<int()> CountedReader() {
  int count = 0;
  return [&count]() { return count; };
}

auto MakeAdder() {
  int base = 5;
  return [&base](int x) { return base + x; };
}

class Scheduler {
 public:
  void Arm() {
    int ticks = 0;
    callback_ = [&ticks]() { return ticks; };
  }

 private:
  std::function<int()> callback_;
};
