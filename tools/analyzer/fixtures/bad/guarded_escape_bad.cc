// Fixture: every accessor here leaks an alias to GUARDED_BY state.
#include <vector>

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class StatTable {
 public:
  // Reference return: the alias outlives the lock.
  const std::vector<int>& rows() const { return rows_; }

  // Pointer into the guarded buffer.
  const int* FirstRow() const { return rows_.data(); }

  // Out-parameter binding of the guarded field's address.
  void Export(std::vector<int>** out) { *out = &rows_; }

 private:
  mutable Mutex mu_;
  std::vector<int> rows_ GUARDED_BY(mu_);
};
