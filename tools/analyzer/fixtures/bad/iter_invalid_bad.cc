// Fixture: iterators and references into containers that are mutated
// while live — directly, through a range-for over the same container,
// via map operator[], and through a mutating helper one call away.
#include <map>
#include <vector>

// Helper for the interprocedural leg: mutates its by-ref argument.
void Grow(std::vector<int>& v) {
  v.push_back(1);
}

int StraightLine() {
  std::vector<int> v(4, 0);
  auto it = v.begin();
  v.push_back(5);
  return *it;
}

int RefBind() {
  std::vector<int> v(4, 0);
  int& front = v[0];
  v.push_back(5);
  return front;
}

int RangeFor() {
  std::vector<int> v(4, 0);
  int total = 0;
  for (int x : v) {
    v.push_back(x);
    total += x;
  }
  return total;
}

int ThroughCall() {
  std::vector<int> v(4, 0);
  auto it = v.begin();
  Grow(v);
  return *it;
}

int MapBracket() {
  std::map<int, int> m;
  m[1] = 2;
  auto it = m.begin();
  m[3] = 4;
  return it->second;
}
