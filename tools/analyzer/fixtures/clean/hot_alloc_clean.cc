// Fixture: a hot function with proper reserve/hoist discipline, and a
// non-annotated function whose loop allocations are out of scope.
#include <string>
#include <vector>

// analyzer: hot
void Transform(const std::vector<int>& xs, std::vector<int>* out) {
  out->reserve(xs.size());
  // Scratch hoisted out of the loop and reused.
  std::string scratch;
  scratch.reserve(64);
  for (int x : xs) {
    out->push_back(x * 2);
    scratch.clear();
  }
}

void NotAnnotated(std::vector<int>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(i);
  }
}
