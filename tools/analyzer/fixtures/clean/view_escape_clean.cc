// Fixture: the contract language used correctly — a reasoned borrows()
// on every view field, owns() documenting owning storage. All silent.
#include <cstddef>
#include <string_view>
#include <vector>

class Slice {
 private:
  // analyzer: borrows(data_) -- fixture: the host vector is owned by
  // the caller and outlives every Slice by construction.
  const int* data_;
  std::size_t size_;
};

class Arena {
 private:
  // analyzer: owns(block_)
  std::vector<char> block_;
  // analyzer: borrows(cursor_) -- fixture: points into block_ above,
  // which lives exactly as long as this object.
  const char* cursor_;
};

class Label {
 private:
  // analyzer: borrows(text_) -- fixture: aliases the immortal string
  // table.
  std::string_view text_;
  // analyzer: borrows(alt_) -- fixture: same table as text_.
  std::string_view alt_;
};
