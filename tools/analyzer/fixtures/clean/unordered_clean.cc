// Fixture: justified unordered iteration, ordered containers, and an
// ordered wrapper over unordered element types — none may be flagged.
#include <array>
#include <unordered_map>
#include <vector>

class Histogram {
 public:
  int Sum() const {
    int total = 0;
    // determinism: commutative integer sum; iteration order cannot
    // change the total.
    for (const auto& kv : counts_) {
      total += kv.second;
    }
    return total;
  }

  int VectorWalk(const std::vector<int>& xs) const {
    int total = 0;
    for (int x : xs) {
      total += x;
    }
    return total;
  }

  // Iterating the std::array is deterministic even though its elements
  // are unordered maps.
  size_t Shards() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      n += shard.size();
    }
    return n;
  }

 private:
  std::unordered_map<int, int> counts_;
  std::array<std::unordered_map<int, int>, 4> shards_;
};
