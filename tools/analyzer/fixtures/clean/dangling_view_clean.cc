// Fixture: views that borrow storage which outlives them — parameters,
// fields, globals, statics — plus in-frame view use. All silent.
#include <string>
#include <string_view>

std::string g_name = "global";

// A subview of a view parameter borrows the caller's storage.
std::string_view StripPrefix(std::string_view s) {
  return s.substr(1);
}

// A reference parameter's storage belongs to the caller.
std::string_view Whole(const std::string& s) {
  return s;
}

// Static locals have program lifetime.
const std::string& Fallback() {
  static const std::string kEmpty;
  return kEmpty;
}

// Globals outlive every frame.
std::string_view GlobalView() {
  return g_name;
}

// A view of a field lives as long as the object: the standard
// accessor contract.
class Holder {
 public:
  std::string_view name() const { return name_; }

 private:
  std::string name_;
};

// Binding a view to an owning local and using it inside the frame is
// fine; only escapes are flagged.
int LocalUse() {
  std::string s = "abc";
  std::string_view v = s;
  return static_cast<int>(v.size());
}
