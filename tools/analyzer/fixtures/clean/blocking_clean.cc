// Fixture: the sanctioned shape — copy state out under the lock,
// release, then do the slow thing. Nothing blocks while a mutex is
// held.
#include <cstdio>
#include <functional>

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class ThreadPool {
 public:
  void Submit(std::function<void()> fn);
  void Wait();
};

class CleanFlusher {
 public:
  void Flush() {
    long n = 0;
    {
      MutexLock lock(&mu_);
      n = count_;
    }
    std::fprintf(stderr, "count=%ld\n", n);  // lock already released
  }

  void Drain(ThreadPool* pool) {
    {
      MutexLock lock(&mu_);
      count_ = 0;
    }
    pool->Wait();  // no lock held across the park
  }

 private:
  Mutex mu_;
  long count_ = 0;
};
