// Fixture: the interprocedural borrow summaries in the benign
// direction — helpers forwarding caller storage stay transparent when
// the storage outlives the view.
#include <string>
#include <string_view>

std::string g_text = "text";

std::string_view Trim(const std::string& s) {
  std::string_view v = s;
  return v;
}

// Borrows a global through the helper: fine.
std::string_view TrimmedGlobal() {
  return Trim(g_text);
}

// Borrows a field through the helper: lives as long as the object.
class Doc {
 public:
  std::string_view Title() const { return Trim(title_); }

 private:
  std::string title_;
};

// Borrows the caller's storage through the helper: the summary
// propagates borrows(s) outward instead of flagging here.
std::string_view Trimmed(const std::string& s) {
  return Trim(s);
}
