// Fixture: live-iterator discipline — erase-refresh loops, element
// copies, mutation after last use, reseated iterators, and range-for
// over one container while growing another. All silent.
#include <vector>

int EraseRefresh() {
  std::vector<int> v(4, 0);
  auto it = v.begin();
  while (it != v.end()) {
    if (*it == 0) {
      it = v.erase(it);
    } else {
      ++it;
    }
  }
  return static_cast<int>(v.size());
}

int CopyElement() {
  std::vector<int> v(4, 7);
  int first = v.front();
  v.push_back(1);
  return first;
}

int MutateAfterLastUse() {
  std::vector<int> v(4, 7);
  auto it = v.begin();
  int out = *it;
  v.push_back(1);
  return out;
}

int Reseat() {
  std::vector<int> v(4, 7);
  auto it = v.begin();
  v.push_back(1);
  it = v.begin();
  return *it;
}

int GrowThenScan(const std::vector<int>& src) {
  std::vector<int> dst;
  dst.reserve(src.size());
  for (int x : src) {
    dst.push_back(x);
  }
  return static_cast<int>(dst.size());
}
