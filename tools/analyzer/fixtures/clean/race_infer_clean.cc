// Fixture: the concurrent idioms the race inference must NOT flag —
// annotated state behind a REQUIRES helper chain, fields retired
// before launch or after Wait, read-only sharing, per-worker owned
// accumulators, and caller-owned out-params.
#include <functional>

#define GUARDED_BY(x) __attribute__((guarded_by(x)))
#define REQUIRES(...) __attribute__((exclusive_locks_required(__VA_ARGS__)))

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class ThreadPool {
 public:
  void Submit(std::function<void()> fn);
  void Wait();
};

// A worker's private tally: by-value local in the lambda, merged under
// the lock through a pointer parameter. Nothing here is shared state.
struct LocalTally {
  long n = 0;
};

class CleanCounter {
 public:
  void Run(ThreadPool* pool) {
    seed_ = 7;  // written before any launch: single-threaded
    pool->Submit([this] {
      LocalTally tally;
      tally.n += seed_;  // concurrent *read* of seed_ only
      Absorb(&tally);
    });
    pool->Submit([this] {
      LocalTally tally;
      tally.n += seed_;
      Absorb(&tally);
    });
    pool->Wait();
    finished_ = true;  // after Wait: the workers are gone
  }

 private:
  // Lockset propagation through the helper chain: Absorb takes the
  // lock, BumpLocked inherits it via REQUIRES.
  void Absorb(LocalTally* tally) {
    MutexLock lock(&mu_);
    BumpLocked(tally->n);
  }
  void BumpLocked(long n) REQUIRES(mu_) { total_ += n; }

  Mutex mu_;
  long total_ GUARDED_BY(mu_) = 0;
  int seed_ = 0;
  bool finished_ = false;
};
