// Fixture: by-value snapshots of GUARDED_BY state are the sanctioned
// pattern and must not be flagged.
#include <vector>

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class StatTable {
 public:
  // Copy under the lock: no alias escapes.
  std::vector<int> snapshot() const {
    MutexLock lock(&mu_);
    return rows_;
  }

  // Out-parameter receives a copy, not an address.
  void Export(std::vector<int>* out) const {
    MutexLock lock(&mu_);
    *out = rows_;
  }

  // Scalar by value.
  int count() const {
    MutexLock lock(&mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  std::vector<int> rows_ GUARDED_BY(mu_);
  int count_ GUARDED_BY(mu_) = 0;
};
