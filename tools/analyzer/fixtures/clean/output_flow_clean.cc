// Fixture: unordered containers feeding sinks the sanctioned way — the
// order is laundered through a sort (or never observed) before any
// serialization boundary.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

void WriteCsv(const std::vector<std::string>& rows);

// Collected in hash order, sorted, then emitted: deterministic.
void EmitSortedNames(const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> names;
  // determinism: names are sorted below before emission.
  for (const auto& kv : counts) {
    names.push_back(kv.first);
  }
  std::sort(names.begin(), names.end());
  WriteCsv(names);
}

// Ordered container straight to the sink: nothing unordered in the
// flow at all.
void DumpOrdered(const std::map<std::string, int>& counts) {
  for (const auto& kv : counts) {
    std::cout << kv.first << "=" << kv.second << "\n";
  }
}

// Order-insensitive reduction of an unordered container may reach a
// sink: the sum does not observe iteration order.
void DumpTotal(const std::unordered_map<std::string, int>& counts) {
  long total = 0;
  // determinism: commutative sum; element order never observed.
  for (const auto& kv : counts) {
    total += kv.second;
  }
  std::cout << "total=" << total << "\n";
}
