// Fixture: lambdas used within the rules — value captures may escape
// the frame, reference captures stay inside it. All silent.
#include <functional>
#include <vector>

std::function<int()> Constant() {
  int count = 42;
  return [count]() { return count; };
}

int SumWith(const std::vector<int>& v) {
  int total = 0;
  auto add = [&total](int x) { total += x; };
  for (int x : v) add(x);
  return total;
}

class Dispatcher {
 public:
  void Set(int base) {
    handler_ = [base](int x) { return base + x; };
  }

 private:
  std::function<int(int)> handler_;
};
