// Fixture: a suppression with a reason silences its check entirely.
#include <unordered_map>

class Table {
 public:
  void Dump(int* out) const {
    // analyzer: allow(unordered-iter) -- histogram merge is commutative,
    // so hash order cannot reach the output.
    for (const auto& kv : m_) {
      *out += kv.second;
    }
  }

 private:
  std::unordered_map<int, int> m_;
};
