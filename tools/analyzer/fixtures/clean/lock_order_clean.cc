// Fixture: consistent acquisition order everywhere, plus the
// TryLock-then-Lock retry idiom (a self edge, which is not an ordering
// fact) — none of this may be flagged.
class Mutex {
 public:
  void Lock();
  void Unlock();
  bool TryLock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

Mutex g_mu_a;
Mutex g_mu_b;

void Both() {
  MutexLock a(&g_mu_a);
  MutexLock b(&g_mu_b);
}

void BothNested() {
  MutexLock a(&g_mu_a);
  {
    MutexLock b(&g_mu_b);
  }
}

void SelfRetry() {
  if (!g_mu_a.TryLock()) {
    g_mu_a.Lock();
  }
  g_mu_a.Unlock();
}

void InnerOnly() {
  MutexLock b(&g_mu_b);
}
