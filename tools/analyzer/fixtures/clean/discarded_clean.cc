// Fixture: every sanctioned way of consuming (or deliberately
// discarding) a Status.
class Status {
 public:
  bool ok() const;
};

Status Flush();
void Fail();

Status Propagate() {
  Status st = Flush();
  if (!st.ok()) {
    return st;
  }
  st = Flush();
  (void)Flush();
  static_cast<void>(Flush());
  if (!Flush().ok()) {
    Fail();
  }
  return st;
}
