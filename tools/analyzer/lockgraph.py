"""Whole-program lock-order analysis (the `lock-order-cycle` check).

Builds the acquired-while-held graph: a directed edge A -> B means some
code path acquires mutex B while already holding mutex A. Acquisition
sites come from three sources:

  * `MutexLock lock(&mu)` scoped acquisitions (released at block end);
  * explicit `mu.Lock()` / `mu.TryLock()` / `mu.Unlock()` calls;
  * `REQUIRES(mu)` annotations (the mutex is held on entry).

Mutexes are canonicalized to stable node names: `Class::field` for
members (the class is recovered through the type resolver, so
`shard.mu` names `Shard::mu`) and `<filestem>::<name>` for file-scope
globals (`logging::g_severity_mu`, `audit::g_stats_mu`).

Two deliberate modeling decisions:

  * CHECK*/LOG* sites pseudo-acquire `logging::g_severity_mu` — the
    LogMessage destructor really does take it via MinLogSeverity(), so a
    CHECK under a lock is a genuine lock-order edge, and one that has
    bitten real systems (logging inside a hot lock).
  * Calls made while holding a lock pull in the callee's *transitive*
    acquisition set, resolved by unqualified name across the whole
    parse (an over-approximation that errs toward reporting edges).

Lambda bodies do not inherit the enclosing held set (the closure may
run later on another thread), but their acquisitions do count toward
the enclosing function's summary: calling the function still triggers
them via ThreadPool::ParallelFor and friends.

src/util/mutex.{h,cc} and thread_annotations.h are excluded: they are
the primitive layer whose internal std::mutex is below this analysis.

Self-edges (re-acquiring the mutex you hold, e.g. the TryLock-then-Lock
fallback in ShardedPhraseCounter::Flush) are not recorded: TSA already
rejects true double-acquisition, and the idiomatic fallback is not an
ordering fact.

Since the race-inference PR, this module no longer walks function
bodies itself: it replays the acquisition/call/log events collected by
the shared lockset walker (locksets.py) — the same events race
inference and blocking-under-lock consume, so the analyses cannot
disagree about where a lock is held.
"""

import posixpath
import re

import locksets
from locksets import (EXCLUDED_FILES, LOG_PSEUDO_LOCK, MUTEX_TYPE_HEADS,
                      is_excluded as _is_excluded)
from cpputil import type_head
from model import Finding


def _file_stem(path):
    return posixpath.basename(path).rsplit(".", 1)[0]


class LockGraph:
    def __init__(self):
        self.nodes = set()
        self.edges = {}  # (held, acquired) -> first "path:line (detail)"

    def add_edge(self, held, acquired, site):
        if held == acquired:
            return
        self.nodes.add(held)
        self.nodes.add(acquired)
        self.edges.setdefault((held, acquired), site)

    def to_dot(self):
        lines = ["digraph lock_order {",
                 '  rankdir=LR;',
                 '  node [shape=box, fontname="monospace"];']
        for n in sorted(self.nodes):
            lines.append(f'  "{n}";')
        for (a, b) in sorted(self.edges):
            site = self.edges[(a, b)]
            lines.append(f'  "{a}" -> "{b}" [label="{site}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def cycles(self):
        """Strongly connected components with more than one node (self
        edges are never recorded), as sorted node lists."""
        # Tarjan, iterative.
        adj = {}
        for (a, b) in self.edges:
            adj.setdefault(a, []).append(b)
        for n in self.nodes:
            adj.setdefault(n, [])
        index = {}
        low = {}
        on_stack = set()
        stack = []
        sccs = []
        counter = [0]

        for root in sorted(adj):
            if root in index:
                continue
            work = [(root, iter(sorted(adj[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(adj[nxt]))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        sccs.append(sorted(comp))
        return sorted(sccs)


class _FnSummary:
    def __init__(self, fn, tu):
        self.fn = fn
        self.tu = tu
        self.direct = set()      # canonical mutexes acquired anywhere
        self.calls = set()       # unqualified callee names
        self.callsites = []      # (callee, held tuple, path, line)
        self.calls_log = False


def _summarize(top, graph):
    """Replays one top-level FnWalk (plus its nested lambdas) into the
    graph and a _FnSummary — the exact semantics the pre-refactor
    body walker had: lambda acquisitions count toward the enclosing
    function's summary, CHECK/LOG under a held lock pseudo-acquires the
    logging mutex, and every acquisition adds edges from the locks held
    at that site."""
    s = _FnSummary(top.fn, top.tu)
    s.direct.update(top.entry_held)
    s.calls = top.all_callee_names()
    s.calls_log = top.any_calls_log()
    for w in top.walks():
        for a in w.acquires:
            s.direct.add(a.name)
            graph.nodes.add(a.name)
            for h in a.held_before:
                graph.add_edge(h, a.name,
                               f"{w.tu.path}:{a.line} ({a.detail})")
        for held, line, callee in w.log_under_lock:
            s.direct.add(LOG_PSEUDO_LOCK)
            graph.nodes.add(LOG_PSEUDO_LOCK)
            for h in held:
                graph.add_edge(h, LOG_PSEUDO_LOCK,
                               f"{w.tu.path}:{line} "
                               f"({callee} logs under lock)")
        for c in w.callsites:
            if c.held:
                s.callsites.append((c.name, c.held, w.tu.path, c.line))
    return s


def declared_mutex_nodes(tus):
    """Every Mutex-typed declaration in the analyzed tree, so the graph
    names all mutex users even when an edge never touches them."""
    nodes = set()
    for tu in tus:
        if _is_excluded(tu.path):
            continue
        for cls in tu.all_classes():
            for name, field in cls.fields.items():
                if type_head(field.type_text) in MUTEX_TYPE_HEADS:
                    nodes.add(f"{cls.name}::{name}")
        for name, type_text in tu.globals.items():
            if type_head(type_text) in MUTEX_TYPE_HEADS:
                nodes.add(f"{_file_stem(tu.path)}::{name}")
    return nodes


def build_lock_graph(tus, ctx, walks=None):
    """Returns (graph, findings). Pass the FnWalk list from
    locksets.walk_tree to share one walk with the race inference; it is
    computed here when omitted."""
    graph = LockGraph()
    graph.nodes.update(declared_mutex_nodes(tus))

    if walks is None:
        walks = locksets.walk_tree(tus, ctx)
    summaries = [_summarize(top, graph) for top in walks]

    # Transitive acquisition sets by unqualified function name.
    trans = {}
    calls_by_name = {}
    logs_by_name = {}
    for s in summaries:
        trans.setdefault(s.fn.name, set()).update(s.direct)
        calls_by_name.setdefault(s.fn.name, set()).update(s.calls)
        logs_by_name[s.fn.name] = logs_by_name.get(s.fn.name, False) or \
            s.calls_log
    changed = True
    while changed:
        changed = False
        for name in trans:
            add = set()
            if logs_by_name.get(name):
                add.add(LOG_PSEUDO_LOCK)
            for callee in calls_by_name.get(name, ()):
                add.update(trans.get(callee, ()))
                if logs_by_name.get(callee):
                    add.add(LOG_PSEUDO_LOCK)
            if not add <= trans[name]:
                trans[name] |= add
                changed = True

    for s in summaries:
        for callee, held, path, line in s.callsites:
            for acquired in sorted(trans.get(callee, ())):
                for h in held:
                    graph.add_edge(h, acquired,
                                   f"{path}:{line} (via {callee}())")

    findings = []
    for comp in graph.cycles():
        witness = []
        for (a, b), site in sorted(graph.edges.items()):
            if a in comp and b in comp:
                witness.append(f"{a} -> {b} at {site}")
        path, line = "src", 0
        if witness:
            m = re.search(r"at ([^:]+):(\d+)", witness[0])
            if m:
                path, line = m.group(1), int(m.group(2))
        findings.append(Finding(
            path, line, "lock-order-cycle",
            "lock acquisition cycle: " + " <-> ".join(comp) +
            "; edges: " + "; ".join(witness)))
    return graph, findings
