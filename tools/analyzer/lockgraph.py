"""Whole-program lock-order analysis (the `lock-order-cycle` check).

Builds the acquired-while-held graph: a directed edge A -> B means some
code path acquires mutex B while already holding mutex A. Acquisition
sites come from three sources:

  * `MutexLock lock(&mu)` scoped acquisitions (released at block end);
  * explicit `mu.Lock()` / `mu.TryLock()` / `mu.Unlock()` calls;
  * `REQUIRES(mu)` annotations (the mutex is held on entry).

Mutexes are canonicalized to stable node names: `Class::field` for
members (the class is recovered through the type resolver, so
`shard.mu` names `Shard::mu`) and `<filestem>::<name>` for file-scope
globals (`logging::g_severity_mu`, `audit::g_stats_mu`).

Two deliberate modeling decisions:

  * CHECK*/LOG* sites pseudo-acquire `logging::g_severity_mu` — the
    LogMessage destructor really does take it via MinLogSeverity(), so a
    CHECK under a lock is a genuine lock-order edge, and one that has
    bitten real systems (logging inside a hot lock).
  * Calls made while holding a lock pull in the callee's *transitive*
    acquisition set, resolved by unqualified name across the whole
    parse (an over-approximation that errs toward reporting edges).

Lambda bodies do not inherit the enclosing held set (the closure may
run later on another thread), but their acquisitions do count toward
the enclosing function's summary: calling the function still triggers
them via ThreadPool::ParallelFor and friends.

src/util/mutex.{h,cc} and thread_annotations.h are excluded: they are
the primitive layer whose internal std::mutex is below this analysis.

Self-edges (re-acquiring the mutex you hold, e.g. the TryLock-then-Lock
fallback in ShardedPhraseCounter::Flush) are not recorded: TSA already
rejects true double-acquisition, and the idiomatic fallback is not an
ordering fact.
"""

import posixpath
import re

from cpputil import Scope, extract_calls, type_head
from model import (Block, ExprStmt, Finding, If, LocalClass, Loop, Return,
                   VarDecl)

EXCLUDED_FILES = ("util/mutex.h", "util/mutex.cc",
                  "util/thread_annotations.h")

LOCK_CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*(?:\.|->)\s*"
    r"(Lock|TryLock|Unlock)\s*\(")

REQUIRES_RE = re.compile(
    r"\b(?:REQUIRES|EXCLUSIVE_LOCKS_REQUIRED)\s*\(")

LOG_PSEUDO_LOCK = "logging::g_severity_mu"

MUTEX_TYPE_HEADS = ("Mutex", "util::Mutex", "infoshield::Mutex")
MUTEXLOCK_TYPE_HEADS = ("MutexLock", "util::MutexLock",
                        "infoshield::MutexLock")


def _is_excluded(path):
    return any(path.endswith(e) for e in EXCLUDED_FILES)


def _file_stem(path):
    return posixpath.basename(path).rsplit(".", 1)[0]


def _is_log_call(name):
    return name.startswith("CHECK") or name == "LOG" or \
        name.startswith("LOG_")


class LockGraph:
    def __init__(self):
        self.nodes = set()
        self.edges = {}  # (held, acquired) -> first "path:line (detail)"

    def add_edge(self, held, acquired, site):
        if held == acquired:
            return
        self.nodes.add(held)
        self.nodes.add(acquired)
        self.edges.setdefault((held, acquired), site)

    def to_dot(self):
        lines = ["digraph lock_order {",
                 '  rankdir=LR;',
                 '  node [shape=box, fontname="monospace"];']
        for n in sorted(self.nodes):
            lines.append(f'  "{n}";')
        for (a, b) in sorted(self.edges):
            site = self.edges[(a, b)]
            lines.append(f'  "{a}" -> "{b}" [label="{site}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def cycles(self):
        """Strongly connected components with more than one node (self
        edges are never recorded), as sorted node lists."""
        # Tarjan, iterative.
        adj = {}
        for (a, b) in self.edges:
            adj.setdefault(a, []).append(b)
        for n in self.nodes:
            adj.setdefault(n, [])
        index = {}
        low = {}
        on_stack = set()
        stack = []
        sccs = []
        counter = [0]

        for root in sorted(adj):
            if root in index:
                continue
            work = [(root, iter(sorted(adj[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(adj[nxt]))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        sccs.append(sorted(comp))
        return sorted(sccs)


class _FnSummary:
    def __init__(self, fn, tu):
        self.fn = fn
        self.tu = tu
        self.direct = set()      # canonical mutexes acquired anywhere
        self.calls = set()       # unqualified callee names
        self.callsites = []      # (callee, held tuple, path, line)
        self.calls_log = False


class Canonicalizer:
    def __init__(self, ctx, tu, fn, owner, scope):
        self.ctx = ctx
        self.tu = tu
        self.fn = fn
        self.owner = owner
        self.scope = scope

    def canon(self, expr):
        e = expr.strip().lstrip("&*").strip()
        e = re.sub(r"^this\s*->\s*", "", e)
        # Split off the final member on the last top-level . or ->
        m = re.match(r"^(.*?)(?:\.|->)\s*([A-Za-z_]\w*)$", e, re.DOTALL)
        if m:
            obj, field = m.group(1).strip(), m.group(2)
            t = self.scope.resolve(obj)
            cls = self.ctx.class_of_type(t)
            if cls is not None:
                return f"{cls.name}::{field}"
            return f"?::{e}"
        name = e
        if self.owner is not None and name in self.owner.fields:
            return f"{self.owner.name}::{name}"
        if name in self.tu.globals:
            return f"{_file_stem(self.tu.path)}::{name}"
        if name in self.scope.vars:
            return f"{self.fn.qname}::{name}"
        return f"?::{name}"


def _walk_function(fn, tu, ctx, owner, summary, graph):
    scope = Scope(ctx, tu, fn, owner)
    canon = Canonicalizer(ctx, tu, fn, owner, scope)

    entry_held = []
    for ann in fn.annotations:
        m = REQUIRES_RE.search(ann)
        if m:
            inner = ann[m.end():ann.rfind(")")]
            from cpputil import split_top_level
            for arg in split_top_level(inner):
                if arg.strip():
                    entry_held.append(canon.canon(arg))
    summary.direct.update(entry_held)

    def acquire(name, held, path, line, detail):
        summary.direct.add(name)
        graph.nodes.add(name)
        for h in held:
            graph.add_edge(h, name, f"{path}:{line} ({detail})")

    def scan_text(text, held, line):
        consumed = set()
        for m in LOCK_CALL_RE.finditer(text):
            obj, op = m.group(1), m.group(2)
            consumed.add(f"{obj}.{op}")
            name = canon.canon(obj)
            if op == "Unlock":
                if name in held:
                    held.remove(name)
            else:
                acquire(name, held, tu.path, line, f"{obj}.{op}()")
                held.append(name)
        for path_, _args, _pos in extract_calls(text):
            callee = re.split(r"::|\.|->", path_)[-1]
            if callee in ("Lock", "TryLock", "Unlock"):
                continue
            if _is_log_call(callee):
                summary.calls_log = True
                if held:
                    acquire(LOG_PSEUDO_LOCK, held, tu.path, line,
                            f"{callee} logs under lock")
                continue
            summary.calls.add(callee)
            if held:
                summary.callsites.append(
                    (callee, tuple(held), tu.path, line))

    def walk(block, held):
        held = list(held)
        for s in block.stmts:
            if isinstance(s, VarDecl):
                if type_head(s.type_text) in MUTEXLOCK_TYPE_HEADS:
                    arg = s.init_text.strip().lstrip("(").rstrip(")")
                    arg = arg.split(",")[0]
                    name = canon.canon(arg)
                    acquire(name, held, tu.path, s.line,
                            f"MutexLock in {fn.qname}")
                    held.append(name)
                else:
                    scan_text(s.text, held, s.line)
                for ch in s.children:
                    walk(ch, [])  # lambda: fresh held set
            elif isinstance(s, ExprStmt):
                scan_text(s.text, held, s.line)
                for ch in s.children:
                    walk(ch, [])
            elif isinstance(s, Return):
                if s.expr_text:
                    scan_text(s.expr_text, held, s.line)
            elif isinstance(s, If):
                scan_text(s.cond_text, held, s.line)
                walk(s.then_block, held)
                if s.else_block is not None:
                    walk(s.else_block, held)
            elif isinstance(s, Loop):
                scan_text(s.header_text, held, s.line)
                walk(s.body, held)
            elif isinstance(s, Block):
                walk(s, held)
            elif isinstance(s, LocalClass):
                pass  # its methods are walked as their own functions

    if fn.body is not None:
        walk(fn.body, entry_held)


def declared_mutex_nodes(tus):
    """Every Mutex-typed declaration in the analyzed tree, so the graph
    names all mutex users even when an edge never touches them."""
    nodes = set()
    for tu in tus:
        if _is_excluded(tu.path):
            continue
        for cls in tu.all_classes():
            for name, field in cls.fields.items():
                if type_head(field.type_text) in MUTEX_TYPE_HEADS:
                    nodes.add(f"{cls.name}::{name}")
        for name, type_text in tu.globals.items():
            if type_head(type_text) in MUTEX_TYPE_HEADS:
                nodes.add(f"{_file_stem(tu.path)}::{name}")
    return nodes


def build_lock_graph(tus, ctx):
    """Returns (graph, findings)."""
    graph = LockGraph()
    graph.nodes.update(declared_mutex_nodes(tus))

    summaries = []
    for tu in tus:
        if _is_excluded(tu.path):
            continue
        for fn in tu.all_functions():
            if fn.body is None:
                continue
            owner = ctx.class_by_name(fn.owner) if fn.owner else None
            summary = _FnSummary(fn, tu)
            _walk_function(fn, tu, ctx, owner, summary, graph)
            summaries.append(summary)

    # Transitive acquisition sets by unqualified function name.
    trans = {}
    calls_by_name = {}
    logs_by_name = {}
    for s in summaries:
        trans.setdefault(s.fn.name, set()).update(s.direct)
        calls_by_name.setdefault(s.fn.name, set()).update(s.calls)
        logs_by_name[s.fn.name] = logs_by_name.get(s.fn.name, False) or \
            s.calls_log
    changed = True
    while changed:
        changed = False
        for name in trans:
            add = set()
            if logs_by_name.get(name):
                add.add(LOG_PSEUDO_LOCK)
            for callee in calls_by_name.get(name, ()):
                add.update(trans.get(callee, ()))
                if logs_by_name.get(callee):
                    add.add(LOG_PSEUDO_LOCK)
            if not add <= trans[name]:
                trans[name] |= add
                changed = True

    for s in summaries:
        for callee, held, path, line in s.callsites:
            for acquired in sorted(trans.get(callee, ())):
                for h in held:
                    graph.add_edge(h, acquired,
                                   f"{path}:{line} (via {callee}())")

    findings = []
    for comp in graph.cycles():
        witness = []
        for (a, b), site in sorted(graph.edges.items()):
            if a in comp and b in comp:
                witness.append(f"{a} -> {b} at {site}")
        path, line = "src", 0
        if witness:
            m = re.search(r"at ([^:]+):(\d+)", witness[0])
            if m:
                path, line = m.group(1), int(m.group(2))
        findings.append(Finding(
            path, line, "lock-order-cycle",
            "lock acquisition cycle: " + " <-> ".join(comp) +
            "; edges: " + "; ".join(witness)))
    return graph, findings
