"""Call graph over FnWalks, rooted at thread-entry points, answering one
question for the race inference: *which code executes concurrently, and
does it see a shared `this`?*

Thread-entry roots (DESIGN.md §14):

  * lambdas handed to `ThreadPool::Submit` / `ThreadPool::ParallelFor`;
  * lambdas handed to a `std::thread` constructor or emplaced into a
    `std::vector<std::thread>` (the pool's own
    `workers_.emplace_back([this] { WorkerLoop(); })`);
  * `LLVMFuzzerTestOneInput` (the fuzz harness entry — libFuzzer value
    profiling and forked modes can run it in parallel, and treating it
    as a root makes every harness-reachable field part of the audit).

Reachability carries a two-level lattice per node:

  ANY     the code runs on (or is indistinguishable from) a concurrent
          context, but its receiver object is thread-private — the call
          chain started at an owned local, a by-value parameter chain,
          or the single-threaded fuzz harness;
  SHARED  the code runs on a worker thread and its receiver (`this`) is
          an object other workers can also see.

Edge rules: an owned-local or parameter receiver demotes the callee to
ANY (arguments are ownership-agnostic: a reference parameter usually
binds a caller-owned object, and the serial/parallel byte-identity
oracles back that bet); a `this` or captured-local receiver inherits
the caller's level; a receiver chain the type resolver cannot prove is
a *gap* — the edge is dropped (miss-toward-silence) rather than fanned
out to every same-named function, because a name like Run or Write
would otherwise mark half the tree concurrent. Receiver-free calls
(free functions, own-class methods) inherit.

Access rules (access_is_concurrent): at SHARED everything but
owned-local and parameter-rooted accesses is concurrent; at ANY only
globals are (the receiver chain was thread-private, so `this`- and
local-rooted state is too); on the main thread only accesses inside a
Submit..Wait window are. Parameter-rooted accesses are demoted for
the same reason parameter receivers are: a pointer/reference argument
almost always binds caller-owned state (a per-worker stats struct, a
scratch workspace), and when it does not, the flagged event is the
address-of at the concurrent callsite — `&shared.field` is a write
access on the caller's side of the call. This is the ownership split
that keeps the per-worker accumulator idiom (`Local local; ...
local.Increment(h)` inside a ParallelFor body), out-param plumbing
(`FineStageStats* stats`), and the fuzz harness's value-semantics
code out of the race report while still catching the same method
called on a captured object.
"""

NONE, ANY, SHARED = 0, 1, 2

FUZZ_ENTRY = "LLVMFuzzerTestOneInput"


class CallGraph:
    def __init__(self, walks, ctx):
        self.ctx = ctx
        self.top_walks = walks
        self.walk_by_id = {}
        self.by_name = {}       # unqualified fn name -> [node ids]
        self.by_method = {}     # (class name, method name) -> [node ids]
        self.roots = []         # [(node id, kind)]
        for top in walks:
            for w in top.walks():
                self.walk_by_id[w.node_id] = w
                if not w.is_lambda:
                    self.by_name.setdefault(w.fn.name, []).append(w.node_id)
                    if w.owner is not None:
                        self.by_method.setdefault(
                            (w.owner.name, w.fn.name), []).append(w.node_id)
                if w.is_lambda and w.launched:
                    self.roots.append((w.node_id, "launched-lambda"))
            if top.fn.name == FUZZ_ENTRY:
                self.roots.append((top.node_id, "fuzz-entry"))

    def resolve(self, cs):
        """Node ids a callsite may reach. Receiver-class resolution
        wins. A receiver chain that failed to resolve (recv_root set but
        recv_class empty) is a resolver gap: the edge is dropped.
        Receiver-free calls resolve by unqualified name."""
        if cs.recv_class:
            return self.by_method.get((cs.recv_class, cs.name), [])
        if cs.recv_root:
            return []
        return self.by_name.get(cs.name, [])

    def concurrency(self):
        """node id -> ANY | SHARED for every node reachable from a
        thread root. A launched lambda starts SHARED: its captures (and
        captured `this`) refer to objects other workers see too."""
        state = {}
        work = []

        def mark(node_id, level):
            if state.get(node_id, NONE) >= level:
                return
            state[node_id] = level
            work.append(node_id)

        for node_id, kind in self.roots:
            # The fuzz harness is single-threaded per instance: it roots
            # reachability (its globals are audited) but its locals and
            # everything derived from them stay thread-private.
            mark(node_id, ANY if kind == "fuzz-entry" else SHARED)
        while work:
            node_id = work.pop()
            w = self.walk_by_id[node_id]
            level = state[node_id]
            for lam in w.lambdas:
                # Same-thread closures inherit; launched ones are roots.
                if not lam.launched:
                    mark(lam.node_id, level)
            for cs in w.callsites:
                if cs.recv_root in ("owned", "param"):
                    callee_level = ANY
                else:
                    callee_level = level
                for target in self.resolve(cs):
                    mark(target, callee_level)
        return state


def access_is_concurrent(access, level):
    """Applies the ownership lattice to one access in a node reached at
    `level` (NONE for main-thread nodes). Main-thread accesses are
    concurrent only inside a Submit..Wait window, where they genuinely
    overlap the submitted tasks."""
    if access.root == "owned":
        return False
    if level == NONE:
        return access.window
    if level == ANY:
        return access.root == "global"
    return access.root != "param"
