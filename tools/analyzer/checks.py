"""The analyzer's per-TU checks and the cross-TU symbol context.

Checks implemented here (check name -> function):

  guarded-ref-escape  aliases to GUARDED_BY state escaping their lock
  hot-loop-alloc      allocation inside loops of `// analyzer: hot` fns
  unordered-iter      iteration order of unordered containers leaking
  discarded-status    Status/Result values dropped on the floor

The fifth check, lock-order-cycle, needs the whole-program acquisition
graph and lives in tools/analyzer/lockgraph.py.

Every check consumes only the normalized model (model.py) plus the
Scope type resolver (cpputil.py); nothing here looks at raw source
except for comment-run suppression geometry, which intentionally shares
model.comment_run_covers with lint.py's semantics.
"""

import re

from cpputil import (Scope, chain_root, extract_calls, find_balanced,
                     is_heap_container, is_map_like, is_string,
                     is_unordered, split_top_level, top_level_assign,
                     type_head)
from model import (Block, ExprStmt, Finding, If, Loop, Return, VarDecl,
                   comment_run_covers, iter_stmts)

STATUS_RETURN_RE = re.compile(
    r"^(?:\[\[nodiscard\]\]\s*)?(?:static\s+)?(?:util::|infoshield::)?"
    r"(?:Status|StatusOr|Result)\b")

# Mutating container entry points that may reallocate per call.
GROW_METHODS = {"push_back", "emplace_back", "push_front", "emplace_front",
                "insert", "emplace", "push", "append", "resize"}

ALIAS_METHODS = ("begin", "end", "cbegin", "cend", "rbegin", "rend",
                 "data", "c_str", "front", "back")


class Context:
    """Cross-TU symbol tables: every class (including nested and
    function-local ones) and every function declaration/definition seen
    across the parsed tree."""

    def __init__(self, tus):
        self.tus = tus
        self._classes = {}     # name and qname -> ClassDecl
        self._functions = {}   # unqualified name -> [FunctionDecl]
        self.status_names = set()
        for tu in tus:
            for cls in tu.all_classes():
                self._classes.setdefault(cls.name, cls)
                self._classes.setdefault(cls.qname, cls)
            for fn in tu.all_functions():
                self._functions.setdefault(fn.name, []).append(fn)
                if STATUS_RETURN_RE.match(fn.return_type):
                    self.status_names.add(fn.name)

    def class_by_name(self, name):
        return self._classes.get(name)

    def class_of_type(self, type_text):
        if not type_text:
            return None
        head = type_head(type_text)
        if not head or head.startswith("std::"):
            return None
        cls = self._classes.get(head)
        if cls is None:
            cls = self._classes.get(head.split("::")[-1])
        return cls

    def functions_named(self, name):
        return self._functions.get(name, [])

    def method_return(self, obj_type, method):
        cls = self.class_of_type(obj_type)
        if cls is not None:
            rets = {m.return_type for m in cls.methods
                    if m.name == method and m.return_type}
            if len(rets) == 1:
                return rets.pop()
        # Fall back to a unique global answer (covers out-of-line
        # definitions when the header declaration wasn't matched).
        rets = {f.return_type for f in self.functions_named(method)
                if f.return_type}
        return rets.pop() if len(rets) == 1 else ""


def _stmt_texts(body):
    """Yields (line, text) for every expression-bearing statement in a
    body subtree: expression statements, declarations (with inits),
    return expressions, if conditions, and loop headers."""
    for s in iter_stmts(body):
        if isinstance(s, ExprStmt):
            yield s.line, s.text
        elif isinstance(s, VarDecl):
            yield s.line, s.text
        elif isinstance(s, Return):
            if s.expr_text:
                yield s.line, s.expr_text
        elif isinstance(s, If):
            yield s.line, s.cond_text
        elif isinstance(s, Loop):
            yield s.line, s.header_text


def _owner_class(ctx, tu, fn):
    if not fn.owner:
        return None
    return ctx.class_by_name(fn.owner)


def _returns_alias(return_type):
    r = re.sub(r"\bconst\b", " ", return_type or "").strip()
    if not r:
        return False
    if "iterator" in r:
        return True
    return r.endswith("&") or r.endswith("*")


def _alias_of_guarded(text, guarded_names):
    """True if `text` takes the address of, or an iterator/pointer into,
    any of the guarded fields."""
    for name in guarded_names:
        if re.search(rf"&\s*{re.escape(name)}\b", text):
            return name
        if re.search(rf"\b{re.escape(name)}\s*(?:\.|->)\s*"
                     rf"(?:{'|'.join(ALIAS_METHODS)})\s*\(", text):
            return name
    return None


# Shared with the lifetime pass; kept importable under the old name.
_top_level_assign = top_level_assign


def check_guarded_ref_escape(tu, ctx):
    findings = []
    for fn in tu.all_functions():
        if fn.body is None:
            continue
        owner = _owner_class(ctx, tu, fn)
        guarded = {}
        if owner is not None:
            for name, field in owner.guarded_fields().items():
                guarded[name] = f"{owner.name}::{name}"
        for gname in tu.global_guards:
            guarded[gname] = gname
        if not guarded:
            continue
        param_types = {p.name: p.type_text for p in fn.params if p.name}
        ret_escapes = _returns_alias(fn.return_type)
        for s in iter_stmts(fn.body):
            if isinstance(s, Return) and s.expr_text:
                root = chain_root(s.expr_text)
                if ret_escapes and root in guarded:
                    findings.append(Finding(
                        tu.path, s.line, "guarded-ref-escape",
                        f"{fn.qname} returns {fn.return_type.strip()} "
                        f"aliasing GUARDED_BY field {guarded[root]}; the "
                        "alias outlives the lock — return a by-value "
                        "snapshot instead"))
                else:
                    hit = _alias_of_guarded(s.expr_text, guarded)
                    if hit is not None:
                        findings.append(Finding(
                            tu.path, s.line, "guarded-ref-escape",
                            f"{fn.qname} returns a pointer/iterator into "
                            f"GUARDED_BY field {guarded[hit]}"))
            elif isinstance(s, ExprStmt):
                eq = _top_level_assign(s.text)
                if eq < 0:
                    continue
                lhs, rhs = s.text[:eq], s.text[eq + 1:]
                hit = _alias_of_guarded(rhs, guarded)
                if hit is None:
                    continue
                lroot = chain_root(lhs)
                ltype = param_types.get(lroot, "")
                if "*" in ltype or "&" in ltype:
                    findings.append(Finding(
                        tu.path, s.line, "guarded-ref-escape",
                        f"{fn.qname} stores an alias of GUARDED_BY field "
                        f"{guarded[hit]} into out-parameter {lroot}"))
    return findings


def _loops_in(body):
    for s in iter_stmts(body):
        if isinstance(s, Loop):
            yield s


def check_hot_loop_alloc(tu, ctx):
    findings = []
    seen = set()

    def report(line, msg):
        key = (line, msg)
        if key not in seen:
            seen.add(key)
            findings.append(Finding(tu.path, line, "hot-loop-alloc", msg))

    for fn in tu.all_functions():
        if fn.body is None or not fn.is_hot:
            continue
        scope = Scope(ctx, tu, fn, _owner_class(ctx, tu, fn))
        fn_flat = re.sub(r"\s+", "",
                         " ; ".join(t for _, t in _stmt_texts(fn.body)))
        for loop in _loops_in(fn.body):
            for s in iter_stmts(loop.body):
                if isinstance(s, VarDecl):
                    # References/pointers bind, they don't construct.
                    if is_heap_container(s.type_text) and \
                            "&" not in s.type_text and \
                            "*" not in s.type_text:
                        report(s.line,
                               f"constructs {type_head(s.type_text)} per "
                               "iteration — hoist it out of the loop and "
                               "clear()/reuse")
                    _scan_alloc_text(s.text, s.line, scope, fn_flat, report)
                elif isinstance(s, ExprStmt):
                    _scan_alloc_text(s.text, s.line, scope, fn_flat, report)
                elif isinstance(s, If):
                    _scan_alloc_text(s.cond_text, s.line, scope, fn_flat,
                                     report)
                elif isinstance(s, Loop):
                    _scan_alloc_text(s.header_text, s.line, scope, fn_flat,
                                     report)
    return findings


def _scan_alloc_text(text, line, scope, fn_flat, report):
    if re.search(r"\bnew\b", text):
        report(line, "operator new in a hot loop")
    for path, _args, _pos in extract_calls(text):
        method = re.split(r"\.|->", path)[-1]
        if method not in GROW_METHODS:
            continue
        sep = path[: len(path) - len(method)]
        if not sep:
            continue  # a free function that happens to share the name
        obj = sep[:-2] if sep.endswith("->") else sep[:-1]
        if not obj:
            continue
        if re.search(r"(?<![\w\].>])" + re.escape(obj) +
                     r"(?:\.|->)reserve\(", fn_flat):
            continue
        report(line, f"{method}() on {obj} without a visible reserve() "
                     "in this function may reallocate per iteration")
    for m in re.finditer(r"\[", text):
        base_m = re.search(r"((?:[A-Za-z_]\w*(?:\.|->|::))*"
                           r"[A-Za-z_]\w*(?:\(\))?)\s*$", text[:m.start()])
        if not base_m:
            continue
        base_type = scope.resolve(base_m.group(1))
        if is_map_like(base_type):
            report(line, f"map operator[] on {base_m.group(1)} "
                         "default-constructs on miss — use find()/at() "
                         "or pre-populate outside the loop")
    if re.search(r'""\s*\+|\+\s*""', text) or \
            re.search(r"[\w\)\]]\s*\+=\s*\"\"", text):
        report(line, "string concatenation in a hot loop — build once "
                     "outside or use a preallocated buffer")
    else:
        m = re.search(r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)\s*\+=", text)
        if m and is_string(scope.resolve(m.group(1))):
            report(line, f"append to std::string {m.group(1)} in a hot "
                         "loop — reserve or build outside")


def check_unordered_iter(tu, ctx):
    findings = []
    for fn in tu.all_functions():
        if fn.body is None:
            continue
        scope = Scope(ctx, tu, fn, _owner_class(ctx, tu, fn))
        for s in iter_stmts(fn.body):
            if isinstance(s, Loop) and s.kind == "range_for":
                t = scope.resolve(s.range_expr)
                if is_unordered(t) and not comment_run_covers(
                        s.line, tu.determinism_lines, tu.raw_lines):
                    findings.append(Finding(
                        tu.path, s.line, "unordered-iter",
                        f"range-for over {type_head(t)} "
                        f"({s.range_expr}) leaks hash-table order — sort "
                        "first or add a `// determinism:` justification"))
            else:
                texts = []
                if isinstance(s, (ExprStmt, VarDecl)):
                    texts.append(s.text)
                for text in texts:
                    for m in re.finditer(
                            r"((?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*)"
                            r"\s*(?:\.|->)\s*c?begin\s*\(", text):
                        t = scope.resolve(m.group(1))
                        if is_unordered(t) and not comment_run_covers(
                                s.line, tu.determinism_lines, tu.raw_lines):
                            findings.append(Finding(
                                tu.path, s.line, "unordered-iter",
                                f"iterator over {type_head(t)} "
                                f"({m.group(1)}) observes hash-table "
                                "order"))
    return findings


CAST_HEAD_RE = re.compile(
    r"^(static_cast|reinterpret_cast|const_cast)\s*<([^<>]*)>\s*\(")


def check_discarded_status(tu, ctx):
    findings = []
    for fn in tu.all_functions():
        if fn.body is None:
            continue
        for s in iter_stmts(fn.body):
            if not isinstance(s, ExprStmt):
                continue
            text = s.text.strip()
            if _top_level_assign(text) >= 0:
                continue
            if re.match(r"^\(\s*void\s*\)", text):
                continue  # explicit discard, the sanctioned form
            _scan_discard(text, s.line, tu, ctx, findings, fn)
    return findings


def _scan_discard(text, line, tu, ctx, findings, fn, via=""):
    text = text.strip()
    m = CAST_HEAD_RE.match(text)
    if m:
        if m.group(2).strip() == "void":
            # static_cast<void>(...) is an explicit discard too.
            return
        close = find_balanced(text, m.end() - 1)
        if close == len(text) - 1:
            _scan_discard(text[m.end():close], line, tu, ctx, findings, fn,
                          via=" (laundered through a cast)")
            return
    if text.startswith("(") and find_balanced(text, 0) == len(text) - 1:
        parts = split_top_level(text[1:-1])
        if len(parts) > 1:
            # A comma expression discards every operand's value.
            for p in parts:
                _scan_discard(p, line, tu, ctx, findings, fn,
                              via=" (inside a comma expression)")
            return
        _scan_discard(text[1:-1], line, tu, ctx, findings, fn, via)
        return
    call = re.match(r"^((?:[A-Za-z_]\w*(?:::|\.|->))*[A-Za-z_]\w*)\s*\(",
                    text)
    if not call:
        return
    close = find_balanced(text, call.end() - 1)
    if close != len(text) - 1:
        return  # the call's value feeds a larger expression
    name = re.split(r"::|\.|->", call.group(1))[-1]
    if name in ctx.status_names:
        findings.append(Finding(
            tu.path, line, "discarded-status",
            f"{fn.qname} discards the Status/Result returned by "
            f"{name}(){via} — check it or cast to (void) with a comment"))


# check name -> per-TU implementation. lock-order-cycle, race-infer,
# missing-guarded-by, and blocking-under-lock are whole-program and are
# invoked separately by the driver (see lockgraph.py / raceinfer.py /
# dataflow.py).
import dataflow                                              # noqa: E402
import lifetimes                                             # noqa: E402

PER_TU_CHECKS = {
    "guarded-ref-escape": check_guarded_ref_escape,
    "hot-loop-alloc": check_hot_loop_alloc,
    "unordered-iter": check_unordered_iter,
    "discarded-status": check_discarded_status,
    "unordered-output-flow": dataflow.check_unordered_output_flow,
    "view-escape": lifetimes.check_view_escape,
}
