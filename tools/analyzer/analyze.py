#!/usr/bin/env python3
"""AST-grounded project analyzer — drives the checks over every TU in
src/, tools/, and fuzz/ and enforces the suppression + baseline
contract.

Usage (normally via `cmake --build build --target analyze` or
`tools/check.sh --analyze` / `--races`):

  analyze.py [--repo-root DIR] [--roots src tools fuzz ...]
             [--frontend auto|clang|internal] [--checks a,b,...]
             [--baseline FILE | --no-baseline] [--write-baseline]
             [--dot-out FILE] [--race-report FILE]
             [--lifetime-report FILE]
             [--cache-dir DIR] [--cache-cap N] [--quiet]

Checks: guarded-ref-escape, lock-order-cycle, hot-loop-alloc,
unordered-iter, discarded-status (DESIGN.md §13); race-infer,
missing-guarded-by, blocking-under-lock, unordered-output-flow
(interprocedural lockset inference, DESIGN.md §14); dangling-view,
iter-invalidation, view-escape (lifetime pass, DESIGN.md §17).

Suppression: `// analyzer: allow(<check>[, ...]) -- <reason>` on the
finding line or in the unbroken //-comment run directly above it — the
same geometry lint.py uses for `determinism:` markers. The reason is
mandatory; an allow without one is itself reported.

Baseline: tools/analyzer/baseline.json maps "<path>:<check>" to a
finding count. Counts may only shrink: a count above baseline fails
(new findings), and a count below baseline also fails until the
baseline is re-shrunk with --write-baseline — the ratchet never slips.

Exit status is capped at 1 (a raw count would wrap modulo 256).
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import callgraph as callgraph_mod                            # noqa: E402
import checks as checks_mod                                  # noqa: E402
import dataflow as dataflow_mod                              # noqa: E402
import lifetimes as lifetimes_mod                            # noqa: E402
import lockgraph                                             # noqa: E402
import locksets                                              # noqa: E402
import parser as parser_mod                                  # noqa: E402
import raceinfer                                             # noqa: E402
import ratchet                                               # noqa: E402
from model import Finding, comment_run_covers                # noqa: E402

SKIP_DIR_NAMES = {"fixtures", "lint_fixtures", "corpus", "third_party",
                  "__pycache__"}

WHOLE_PROGRAM_CHECKS = ["lock-order-cycle", "race-infer",
                        "missing-guarded-by", "blocking-under-lock",
                        "dangling-view", "iter-invalidation"]

ALL_CHECKS = sorted(list(checks_mod.PER_TU_CHECKS) + WHOLE_PROGRAM_CHECKS)


def discover_sources(repo_root, roots):
    files = []
    for root in roots:
        top = os.path.join(repo_root, root)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIR_NAMES and not d.startswith("build"))
            for name in sorted(filenames):
                if name.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    return files


def parse_tree(files, repo_root, frontend, cache_dir, quiet,
               cache_cap=None):
    tus = []
    notes = []
    clang = None
    hdr_digest = None
    live_keys = set()
    if frontend in ("auto", "clang"):
        import clang_frontend
        clang = clang_frontend.find_clang()
        if clang is None:
            if frontend == "clang":
                print("analyze: error: --frontend clang requested but no "
                      "clang++ driver found", file=sys.stderr)
                sys.exit(2)
            notes.append("no clang++ driver found; using the internal "
                         "frontend for all TUs")
        else:
            hdr_digest = clang_frontend.headers_digest(repo_root)
    for path in files:
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        tu = None
        if clang is not None:
            import clang_frontend
            try:
                tu = clang_frontend.parse_file_clang(
                    clang, path, rel, repo_root, cache_dir, hdr_digest,
                    live_keys=live_keys)
            except clang_frontend.ClangFrontendError as e:
                notes.append(f"clang frontend fell back on {rel}: {e}")
        if tu is None:
            tu = parser_mod.parse_file(path, rel)
        tus.append(tu)
    if clang is not None and cache_dir:
        import clang_frontend
        removed = clang_frontend.evict_cache(cache_dir, live_keys,
                                             cap=cache_cap)
        if removed:
            notes.append(f"evicted {removed} stale/over-cap AST dump(s) "
                         f"from {cache_dir}")
    if not quiet:
        for n in notes:
            print(f"analyze: note: {n}")
    return tus


def apply_suppressions(findings, tus_by_path):
    """Splits findings into (active, suppressed) per the allow() comment
    geometry, and appends allow-syntax findings for reason-less allows."""
    active = []
    suppressed = []
    for f in findings:
        tu = tus_by_path.get(f.path)
        if tu is None:
            active.append(f)
            continue
        marker_lines = {ln for ln, cs in tu.allow.items() if f.check in cs}
        if comment_run_covers(f.line, marker_lines, tu.raw_lines):
            suppressed.append(f)
        else:
            active.append(f)
    for tu in tus_by_path.values():
        for ln, cs in sorted(tu.allow.items()):
            if "__missing_reason__" in cs:
                active.append(Finding(
                    tu.path, ln, "allow-syntax",
                    "analyzer: allow(...) without `-- <reason>`; every "
                    "suppression must say why"))
    return active, suppressed


# Shrink-only baseline semantics live in ratchet.py (shared helper);
# this alias keeps the historical import path working.
check_baseline = ratchet.check


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    here = os.path.dirname(os.path.abspath(__file__))
    default_root = os.path.dirname(os.path.dirname(here))
    ap.add_argument("--repo-root", default=default_root)
    ap.add_argument("--roots", nargs="+", default=["src", "tools", "fuzz"])
    ap.add_argument("--frontend", choices=["auto", "clang", "internal"],
                    default="auto")
    ap.add_argument("--checks", default="",
                    help="comma-separated subset of checks to enforce "
                         "(default: all); the baseline is filtered to "
                         "the same subset")
    ap.add_argument("--baseline", default=os.path.join(here,
                                                       "baseline.json"))
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file (fixture/selftest runs)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline to the current counts")
    ap.add_argument("--dot-out", default="",
                    help="write the lock-order graph as graphviz dot")
    ap.add_argument("--race-report", default="",
                    help="write the race-inference report as JSON "
                         "(schema: infoshield-race-report/1)")
    ap.add_argument("--lifetime-report", default="",
                    help="write the lifetime-pass report as JSON "
                         "(schema: infoshield-lifetime-report/1)")
    ap.add_argument("--cache-dir", default="",
                    help="AST-dump cache directory (clang frontend)")
    ap.add_argument("--cache-cap", type=int, default=512,
                    help="LRU cap on cached AST dumps (see evict_cache)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for c in ALL_CHECKS:
            print(c)
        return 0

    files = discover_sources(args.repo_root, args.roots)
    if not files:
        print(f"analyze: error: no sources under {args.roots} in "
              f"{args.repo_root}", file=sys.stderr)
        return 2
    selected = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = selected - set(ALL_CHECKS)
    if unknown:
        print(f"analyze: error: unknown check(s) {sorted(unknown)}; "
              f"known: {ALL_CHECKS}", file=sys.stderr)
        return 2

    tus = parse_tree(files, args.repo_root, args.frontend, args.cache_dir,
                     args.quiet, cache_cap=args.cache_cap)
    tus_by_path = {tu.path: tu for tu in tus}
    ctx = checks_mod.Context(tus)

    findings = []
    for tu in tus:
        for name, fn in sorted(checks_mod.PER_TU_CHECKS.items()):
            if selected and name not in selected:
                continue
            findings.extend(fn(tu, ctx))
    walks = locksets.walk_tree(tus, ctx)
    graph, lock_findings = lockgraph.build_lock_graph(tus, ctx, walks=walks)
    findings.extend(lock_findings)
    cg = callgraph_mod.CallGraph(walks, ctx)
    race_findings, race_report = raceinfer.infer(walks, cg, tus, ctx)
    findings.extend(race_findings)
    findings.extend(dataflow_mod.check_blocking_under_lock(walks, ctx))
    lt_findings, lifetime_report = lifetimes_mod.run(tus, ctx, cg)
    findings.extend(lt_findings)
    if selected:
        findings = [f for f in findings
                    if f.check in selected or f.check == "allow-syntax"]

    if args.dot_out:
        os.makedirs(os.path.dirname(os.path.abspath(args.dot_out)),
                    exist_ok=True)
        with open(args.dot_out, "w", encoding="utf-8") as f:
            f.write(graph.to_dot())
        if not args.quiet:
            print(f"analyze: lock-order graph ({len(graph.nodes)} mutexes, "
                  f"{len(graph.edges)} edges) -> {args.dot_out}")

    if args.race_report:
        os.makedirs(os.path.dirname(os.path.abspath(args.race_report)),
                    exist_ok=True)
        with open(args.race_report, "w", encoding="utf-8") as f:
            json.dump(race_report, f, indent=2, sort_keys=False)
            f.write("\n")
        if not args.quiet:
            s = race_report["summary"]
            print(f"analyze: race report ({sum(s.values())} field(s): "
                  f"{s.get('annotated', 0)} annotated, "
                  f"{s.get('racy', 0)} racy, "
                  f"{len(race_report['thread_roots'])} thread root(s)) "
                  f"-> {args.race_report}")

    if args.lifetime_report:
        os.makedirs(os.path.dirname(os.path.abspath(args.lifetime_report)),
                    exist_ok=True)
        with open(args.lifetime_report, "w", encoding="utf-8") as f:
            json.dump(lifetime_report, f, indent=2, sort_keys=False)
            f.write("\n")
        if not args.quiet:
            s = lifetime_report["summary"]
            print(f"analyze: lifetime report "
                  f"({s.get('field_borrows', 0)} borrows / "
                  f"{s.get('field_unannotated', 0)} unannotated view "
                  f"field(s), {len(lifetime_report['tus'])} TU(s) with "
                  f"view inventory) -> {args.lifetime_report}")

    active, suppressed = apply_suppressions(findings, tus_by_path)
    if selected:
        active = [f for f in active
                  if f.check in selected or f.check == "allow-syntax"]

    baseline = {}
    if not args.no_baseline:
        baseline = ratchet.filter_to_checks(ratchet.load(args.baseline),
                                            selected)

    if args.write_baseline:
        total = ratchet.write(args.baseline, active)
        print(f"analyze: wrote baseline with {total} "
              f"finding(s) to {args.baseline}")
        return 0

    new, stale, baselined = ratchet.check(active, baseline)

    for f in sorted(new, key=lambda f: (f.path, f.line, f.check)):
        print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    for key in stale:
        print(f"analyze: stale baseline entry {key!r}: fewer findings than "
              "baselined — shrink tools/analyzer/baseline.json "
              "(--write-baseline) so the ratchet holds")

    tally = (f"analyze: {len(files)} TU(s), {len(new)} finding(s), "
             f"{len(baselined)} baselined, {len(suppressed)} suppressed")
    if not args.quiet or new or stale:
        print(tally)
    # Cap at 1: a raw count would wrap modulo 256 on POSIX.
    return 1 if (new or stale) else 0


if __name__ == "__main__":
    sys.exit(main())
