"""Shrink-only baseline ratchet, shared by the analyzer driver and any
future gate that wants grandfathered-findings semantics.

A baseline maps "<path>:<check>" to a finding count. The contract:

  * counts may only shrink — a count above baseline surfaces the newest
    findings (sorted by line, the first `allowed` are grandfathered);
  * a count below baseline is also a failure ("stale" entries) until
    the baseline file is re-shrunk with --write-baseline, so fixed debt
    cannot silently regrow to its old ceiling.

analyze.py delegates here; tools/analyzer_selftest.py exercises the
semantics both through the CLI and directly against these functions.
"""

import collections
import json
import os


def load(path):
    """Baseline dict from `path`; {} when the file does not exist."""
    if not path or not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def filter_to_checks(baseline, selected):
    """Restricts a baseline to the selected check names (a --checks
    subset run must not report the rest of the baseline as stale)."""
    if not selected:
        return dict(baseline)
    return {k: v for k, v in baseline.items()
            if k.rsplit(":", 1)[-1] in selected}


def check(active, baseline):
    """Returns (new_findings, stale_keys, baselined). Counts may only
    shrink: above-baseline counts surface the newest findings; below-
    baseline counts demand the baseline file itself be shrunk."""
    counts = collections.Counter(f"{f.path}:{f.check}" for f in active)
    new = []
    baselined = []
    per_key = collections.defaultdict(list)
    for f in active:
        per_key[f"{f.path}:{f.check}"].append(f)
    for key, fs in sorted(per_key.items()):
        allowed = baseline.get(key, 0)
        fs_sorted = sorted(fs, key=lambda f: f.line)
        baselined.extend(fs_sorted[:allowed])
        new.extend(fs_sorted[allowed:])
    stale = sorted(key for key, allowed in baseline.items()
                   if counts.get(key, 0) < allowed)
    return new, stale, baselined


def write(path, active):
    """Rewrites the baseline to the current counts; returns the total
    grandfathered count."""
    counts = collections.Counter(f"{f.path}:{f.check}" for f in active)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(dict(sorted(counts.items())), f, indent=2,
                  sort_keys=True)
        f.write("\n")
    return sum(counts.values())
