#!/usr/bin/env python3
"""Self-test for tools/lint.py's concurrency/determinism rules.

Runs the linter over the fixture trees in tools/lint_fixtures/ and
asserts:

 * each bad fixture trips exactly the rule it was written for, the
   expected number of times — including discarded-status (bare calls of
   Status/Result-returning functions) and fuzz-corpus (harnesses with a
   missing or empty seed corpus, exercised via fixture fuzz/corpus
   roots);
 * the util/ exemption (raw primitives are legal under src/util/), the
   `determinism:` marker, Mutex-typed globals, constants, `(void)`
   discards, and consuming call sites do NOT trip anything;
 * a clean tree exits 0;
 * the exit status of a failing run is 1, not the violation count (a
   raw count would wrap modulo 256 on POSIX — 256 violations would
   read as success).

Registered as the `lint_selftest` ctest by tools/CMakeLists.txt.
"""

import collections
import os
import re
import subprocess
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(TOOLS_DIR, "lint.py")
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")

FINDING_RE = re.compile(r"^(?P<path>\S+?):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")

# (fixture file, rule) -> expected number of findings. Files in the bad
# tree that are absent here must produce zero findings.
EXPECTED = {
    ("raw_concurrency_bad.cc", "raw-concurrency"): 4,
    ("mutable_global_bad.cc", "mutable-global"): 3,
    ("unordered_iter_bad.cc", "unordered-determinism"): 2,
    ("discarded_status_bad.cc", "discarded-status"): 3,
    ("orphan_fuzz.cc", "fuzz-corpus"): 1,
    ("empty_fuzz.cc", "fuzz-corpus"): 1,
}


def run_lint(tree):
    # Each source tree is paired with its own fuzz/corpus fixture roots
    # so the fuzz-corpus rule is tested hermetically, never against the
    # real fuzz/ directory.
    proc = subprocess.run(
        [sys.executable, LINT, "--no-clang-tidy",
         "--src-root", os.path.join(FIXTURES, tree),
         "--fuzz-root", os.path.join(FIXTURES, tree + "_fuzz"),
         "--corpus-root", os.path.join(FIXTURES, tree + "_corpus")],
        capture_output=True, text=True, check=False)
    findings = collections.Counter()
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings[(os.path.basename(match.group("path")),
                      match.group("rule"))] += 1
    return proc, findings


def main():
    failures = []

    def expect(ok, what):
        if not ok:
            failures.append(what)

    proc, findings = run_lint("bad")
    expect(proc.returncode == 1,
           f"bad tree: expected exit 1 (capped), got {proc.returncode}")
    total = sum(EXPECTED.values())
    expect(f"lint: {total} violation(s)" in proc.stdout,
           f"bad tree: expected the true count ({total}) to be printed")
    for key, want in EXPECTED.items():
        got = findings.pop(key, 0)
        expect(got == want, f"{key[0]}: expected {want} [{key[1]}], "
                            f"got {got}")
    expect(not findings,
           f"unexpected findings: {dict(findings)} (util/ exemption, "
           "determinism marker, or constant handling regressed)")

    proc, findings = run_lint("clean")
    expect(proc.returncode == 0,
           f"clean tree: expected exit 0, got {proc.returncode}")
    expect(not findings, f"clean tree: unexpected findings {dict(findings)}")

    if failures:
        for f in failures:
            print(f"lint_selftest: FAIL: {f}")
        return 1
    print("lint_selftest: all rule fixtures behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
