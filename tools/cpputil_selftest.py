#!/usr/bin/env python3
"""Unit self-test for the analyzer's type-resolution layer
(tools/analyzer/cpputil.py), focused on the view-type paths the
lifetime pass leans on:

 * `using` aliases chased through dealias — including alias-of-alias
   chains and aliases that resolve to view types;
 * `const auto&` / `auto` deduction through initializer expressions;
 * nested `std::pair<std::string_view, ...>` member access (.first /
   .second) and range-for element bindings over pair containers;
 * view/owning classification (is_view, is_owning) and the std method
   tables (std_method_return, is_mutating_method) that drive both the
   dangling-view classifier and the iterator-invalidation check.

Everything parses one synthetic TU through the internal frontend and
resolves expressions with cpputil.Scope — the same code path both
frontends share. Registered as the `cpputil_selftest` ctest by
tools/CMakeLists.txt.
"""

import os
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(TOOLS_DIR, "analyzer"))

import checks as checks_mod                                  # noqa: E402
import parser as parser_mod                                  # noqa: E402
from cpputil import (Scope, dealias, is_mutating_method, is_owning,  # noqa: E402
                     is_view, std_method_return)

SRC = """
#include <string>
#include <string_view>
#include <utility>
#include <vector>

using NameView = std::string_view;
using ViewAlias = NameView;
using Row = std::pair<std::string_view, int>;
using Table = std::vector<Row>;

class Registry {
 public:
  void Add(Row row) { rows_.push_back(row); }
  const Table& rows() const { return rows_; }

 private:
  Table rows_;
};

int Walk(const Registry& reg, const std::string& key) {
  NameView direct = key;
  ViewAlias chained = direct;
  const auto& rows = reg.rows();
  int total = 0;
  for (const auto& row : rows) {
    auto first = row.first;
    const auto& second = row.second;
    total += static_cast<int>(first.size()) + second;
  }
  Table local_table;
  auto copy = key;
  return total + static_cast<int>(chained.size()) +
         static_cast<int>(local_table.size()) +
         static_cast<int>(copy.size());
}
"""


def main():
    failures = []

    def expect(ok, what):
        if not ok:
            failures.append(what)

    tu = parser_mod.Parser("cpputil_fixture.cc", SRC).parse()
    tu.raw_lines = SRC.splitlines()
    ctx = checks_mod.Context([tu])
    walk = next(f for f in tu.all_functions() if f.name == "Walk")
    scope = Scope(ctx, tu, walk, None)

    # --- using-alias chains feed the resolver --------------------------
    expect(tu.aliases.get("NameView") == "std::string_view",
           f"alias scan: NameView -> {tu.aliases.get('NameView')!r}")
    expect(dealias("NameView", tu.aliases) == "std::string_view",
           "dealias: single-hop alias should land on std::string_view")
    expect(dealias("ViewAlias", tu.aliases) == "std::string_view",
           "dealias: alias-of-alias (ViewAlias -> NameView) should chase")
    expect(dealias("const ViewAlias&", tu.aliases) ==
           "const std::string_view&",
           "dealias: const/& decoration must survive the chase, got "
           f"{dealias('const ViewAlias&', tu.aliases)!r}")
    expect(scope.type_of_name("direct") == "std::string_view",
           f"scope: NameView local resolves to view, got "
           f"{scope.type_of_name('direct')!r}")

    # --- auto / const auto& deduction ----------------------------------
    expect(scope.type_of_name("rows") == "const Table&" or
           "vector" in scope.type_of_name("rows"),
           "scope: `const auto& rows = reg.rows()` should deduce the "
           f"Table return, got {scope.type_of_name('rows')!r}")
    expect(scope.type_of_name("copy") == "const std::string&" or
           "string" in scope.type_of_name("copy"),
           f"scope: `auto copy = key` should deduce through the param, "
           f"got {scope.type_of_name('copy')!r}")

    # --- nested pair<string_view, ...> members -------------------------
    expect(scope.resolve("row.first") == "std::string_view",
           "resolve: pair<string_view,int>.first through a range-for "
           f"element, got {scope.resolve('row.first')!r}")
    expect(scope.resolve("row.second") == "int",
           f"resolve: pair .second should be int, got "
           f"{scope.resolve('row.second')!r}")
    expect(scope.resolve("first") == "std::string_view",
           "resolve: `auto first = row.first` should deduce the view, "
           f"got {scope.resolve('first')!r}")

    # --- view / owning classification ----------------------------------
    expect(is_view("std::string_view") and is_view("std::span<int>") and
           is_view("std::vector<int>::iterator") and
           is_view(dealias("ViewAlias", tu.aliases)),
           "is_view: string_view, span, iterators, and dealiased "
           "aliases are views")
    expect(not is_view("std::string") and not is_view("int"),
           "is_view: owning types are not views")
    expect(is_owning("std::string") and is_owning("std::vector<int>") and
           is_owning("std::pair<std::string, int>") and
           is_owning("std::optional<std::string>"),
           "is_owning: containers and owning-composites are owning")
    expect(not is_owning("std::pair<std::string_view, int>"),
           "is_owning: a pair of trivial/view types owns nothing")

    # --- std method tables ---------------------------------------------
    expect(std_method_return("std::string", "substr") == "std::string" and
           std_method_return("std::string_view", "substr") ==
           "std::string_view",
           "std_method_return: substr owns on string, borrows on view")
    expect("iterator" in std_method_return("std::vector<int>", "begin"),
           "std_method_return: begin() yields an iterator type")
    expect(is_mutating_method("std::vector<int>", "push_back", ctx) and
           is_mutating_method("std::map<int, int>", "erase", ctx),
           "is_mutating_method: container mutators are mutating")
    expect(not is_mutating_method("std::vector<int>", "size", ctx) and
           not is_mutating_method("UnknownType", "frobnicate", ctx),
           "is_mutating_method: const methods and unknown receivers "
           "must stay silent (miss toward silence)")
    expect(is_mutating_method("Registry", "Add", ctx),
           "is_mutating_method: a user method without a const "
           "annotation is mutating")

    if failures:
        for f in failures:
            print(f"cpputil_selftest: FAIL: {f}")
        return 1
    print("cpputil_selftest: alias chasing, auto deduction, pair views, "
          "and the std method tables behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
