#!/usr/bin/env bash
# Full correctness gate for InfoShield.
#
#   tools/check.sh          lint, the clang thread-safety-analysis gate
#                           (when clang++ is installed), the whole test
#                           suite under ASan+UBSan and again under TSan
#                           (both with -Werror and the deep invariant
#                           auditors on), then the line-coverage ratchet
#                           (tools/coverage.sh against
#                           tools/coverage_baseline.json).
#   tools/check.sh --fast   lint + thread-safety gate + an ASan+UBSan run
#                           of the unit tests only (slow sweep/pipeline
#                           suites, the TSan pass, and the coverage
#                           ratchet are skipped). Suitable as a pre-merge
#                           smoke check.
#   tools/check.sh --analyze
#                           the AST-grounded analyzer only
#                           (tools/analyzer/analyze.py): guarded-ref
#                           escapes, lock-order cycles, hot-loop
#                           allocations, unordered-iteration and
#                           discarded-Status checks, the interprocedural
#                           race-inference and lifetime checks, the
#                           lock-order dot graph,
#                           build/race_report.json, and
#                           build/lifetime_report.json. Also part of
#                           every full and --fast run.
#   tools/check.sh --races  the race-inference legs only (race-infer,
#                           missing-guarded-by, blocking-under-lock,
#                           unordered-output-flow) + race_report.json —
#                           the lockset-analysis counterpart to the TSan
#                           and thread-safety gates, for states TSA
#                           cannot see (unannotated fields, cross-call
#                           locksets).
#   tools/check.sh --lifetimes
#                           the interprocedural lifetime legs only
#                           (dangling-view, iter-invalidation,
#                           view-escape) + build/lifetime_report.json —
#                           view types bound to dying storage, live
#                           iterators across container mutations, and
#                           the owns()/borrows() contract language on
#                           view fields (DESIGN.md §17). Also part of
#                           every full and --fast run via the analyzer
#                           stage.
#   tools/check.sh --fuzz   fuzz smoke only: builds the libFuzzer
#                           harnesses under clang + ASan/UBSan, replays
#                           the seed corpora, then fuzzes each harness
#                           for 60 seconds. Without clang++ the replay
#                           runners still execute under gcc sanitizers.
#   tools/check.sh --incremental
#                           the incremental ingestion gate only: an
#                           ASan+UBSan run of the incremental/snapshot
#                           suites and the diff_incremental replay, then
#                           bench_incremental's batch differential
#                           oracle (exits non-zero on any divergence;
#                           writes build-asan/BENCH_incremental.json).
#
# Build trees go to build-asan/, build-tsan/, build-clang-tsa/,
# build-fuzz/, and build-cov/ next to build/ (all gitignored). Exits
# non-zero on the first failing stage.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

FAST=0
FUZZ=0
ANALYZE_ONLY=0
RACES_ONLY=0
LIFETIMES_ONLY=0
INCREMENTAL_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --fuzz) FUZZ=1 ;;
    --analyze) ANALYZE_ONLY=1 ;;
    --races) RACES_ONLY=1 ;;
    --lifetimes) LIFETIMES_ONLY=1 ;;
    --incremental) INCREMENTAL_ONLY=1 ;;
    -h|--help)
      sed -n '2,59p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "unknown argument: $arg (try --help)" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2> /dev/null || echo 4)"
SUPP_DIR="$ROOT/tools/sanitizers"

# Runtime options: fail hard on any report, keep stacks readable.
export ASAN_OPTIONS="detect_stack_use_after_return=1:strict_string_checks=1:check_initialization_order=1:detect_leaks=1:abort_on_error=1"
export LSAN_OPTIONS="suppressions=$SUPP_DIR/lsan.supp:report_objects=1"
export UBSAN_OPTIONS="suppressions=$SUPP_DIR/ubsan.supp:print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="suppressions=$SUPP_DIR/tsan.supp:halt_on_error=1:second_deadlock_stack=1"

step() { printf '\n=== %s ===\n' "$*"; }

# The AST-grounded analyzer (DESIGN.md §13, §14, §17): every check over
# every TU in src/, tools/, and fuzz/, the allow()/baseline ratchet,
# the lock-order graph, and the race/lifetime reports. Uses clang ASTs
# when clang++ is installed, the built-in frontend otherwise.
run_analyzer() {
  step "AST analyzer (tools/analyzer: all checks + lock-order graph + race/lifetime reports)"
  mkdir -p build
  python3 tools/analyzer/analyze.py \
    --cache-dir "$ROOT/.analyzer-cache" \
    --dot-out "$ROOT/build/lock_order.dot" \
    --race-report "$ROOT/build/race_report.json" \
    --lifetime-report "$ROOT/build/lifetime_report.json"
}

# --races: only the interprocedural lockset legs (DESIGN.md §14). The
# baseline is filtered to the same checks, so inference findings gate
# here without retesting the §13 checks.
run_races() {
  step "race inference (race-infer, missing-guarded-by, blocking-under-lock, unordered-output-flow)"
  mkdir -p build
  python3 tools/analyzer/analyze.py \
    --cache-dir "$ROOT/.analyzer-cache" \
    --checks race-infer,missing-guarded-by,blocking-under-lock,unordered-output-flow \
    --race-report "$ROOT/build/race_report.json"
}

if [[ "$ANALYZE_ONLY" == "1" ]]; then
  run_analyzer
  exit 0
fi

# --lifetimes: only the interprocedural lifetime legs (DESIGN.md §17).
# The baseline is filtered to the same checks, so lifetime findings
# gate here without retesting the §13/§14 checks.
run_lifetimes() {
  step "lifetime analysis (dangling-view, iter-invalidation, view-escape)"
  mkdir -p build
  python3 tools/analyzer/analyze.py \
    --cache-dir "$ROOT/.analyzer-cache" \
    --checks dangling-view,iter-invalidation,view-escape \
    --lifetime-report "$ROOT/build/lifetime_report.json"
}

if [[ "$RACES_ONLY" == "1" ]]; then
  run_races
  exit 0
fi

if [[ "$LIFETIMES_ONLY" == "1" ]]; then
  run_lifetimes
  exit 0
fi

# --fuzz: the fuzz smoke leg (DESIGN.md §12) and nothing else.
if [[ "$FUZZ" == "1" ]]; then
  if command -v clang++ > /dev/null 2>&1; then
    step "fuzz smoke (clang, libFuzzer, ASan+UBSan)"
    cmake -B build-fuzz -S . \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DINFOSHIELD_FUZZ=ON \
      -DINFOSHIELD_SANITIZE="address,undefined" \
      > /dev/null
    cmake --build build-fuzz -j "$JOBS"
    step "replaying seed corpora under sanitizers"
    ctest --test-dir build-fuzz -R fuzz_replay --output-on-failure
    step "fuzzing each harness for 60s"
    mkdir -p build-fuzz/artifacts
    for harness in tokenizer csv universal_code pairwise poa \
                   diff_fine diff_coarse diff_coarse_backend \
                   diff_incremental; do
      step "fuzz_$harness"
      ./build-fuzz/fuzz/fuzz_"$harness" \
        -max_total_time=60 -print_final_stats=1 \
        -artifact_prefix="build-fuzz/artifacts/${harness}-" \
        "tests/fuzz_corpus/$harness"
    done
    step "fuzz smoke passed (crashers, if any, in build-fuzz/artifacts/)"
  else
    step "clang++ not installed — replaying seed corpora only (gcc, ASan+UBSan)"
    cmake -B build-fuzz -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DINFOSHIELD_SANITIZE="address,undefined" \
      > /dev/null
    cmake --build build-fuzz -j "$JOBS"
    ctest --test-dir build-fuzz -R fuzz_replay --output-on-failure
    step "replay passed (install clang++ for the libFuzzer leg)"
  fi
  exit 0
fi

configure_and_build() {
  local dir="$1" sanitize="$2"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DINFOSHIELD_WERROR=ON \
    -DINFOSHIELD_AUDIT=ON \
    -DINFOSHIELD_SANITIZE="$sanitize" \
    > /dev/null
  cmake --build "$dir" -j "$JOBS"
}

# --incremental: the incremental ingestion gate (DESIGN.md §15). The
# unit/property suites prove the per-split oracle; bench_incremental
# then drives a realistic base-plus-updates sequence and exits non-zero
# if any round's JSON diverges from a fresh batch run.
if [[ "$INCREMENTAL_ONLY" == "1" ]]; then
  step "incremental suites (ASan+UBSan, audited, -Werror)"
  configure_and_build build-asan "address,undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'IncrementalTest|SnapshotDfTableTest|fuzz_replay_diff_incremental'
  step "bench_incremental batch differential oracle"
  ./build-asan/bench/bench_incremental build-asan/BENCH_incremental.json
  step "incremental gate passed"
  exit 0
fi

step "lint (tools/lint.py + clang-tidy when available)"
configure_and_build build-asan "address,undefined"
python3 tools/lint.py --clang-tidy-build-dir "$ROOT/build-asan"

run_analyzer

# Clang thread-safety analysis: compiles all of src/ (and everything that
# includes it) with -Wthread-safety -Wthread-safety-beta promoted to
# errors, proving the GUARDED_BY/REQUIRES contracts in
# src/util/thread_annotations.h. Build-only — the artifacts are the
# proof; the sanitizer passes below run the tests.
if command -v clang++ > /dev/null 2>&1; then
  step "clang thread-safety analysis (-Wthread-safety as errors)"
  cmake -B build-clang-tsa -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DINFOSHIELD_WERROR=ON \
    -DINFOSHIELD_THREAD_SAFETY=ON \
    > /dev/null
  cmake --build build-clang-tsa -j "$JOBS"
else
  step "clang++ not installed — skipping the thread-safety analysis gate"
fi

if [[ "$FAST" == "1" ]]; then
  step "ASan+UBSan unit tests (--fast: sweep/pipeline suites skipped)"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -E 'Sweep|Pipeline|Integration|EndToEnd'
  step "fast check passed (TSan pass skipped; run tools/check.sh for it)"
  exit 0
fi

step "ASan+UBSan full test suite (audited, -Werror)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

step "TSan full test suite (thread_pool + parallel fine stage included)"
configure_and_build build-tsan "thread"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

step "line-coverage ratchet (tools/coverage.sh vs coverage_baseline.json)"
tools/coverage.sh

step "all checks passed"
