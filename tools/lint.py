#!/usr/bin/env python3
"""Project linter: enforces InfoShield's C++ conventions over src/.

Rules
-----
 1. include-guard    Every header under src/ uses the canonical guard
                     INFOSHIELD_<PATH>_H_ (#ifndef / #define pair and a
                     trailing `#endif  // <guard>`).
 2. using-namespace  No `using namespace` at any scope in headers.
 3. include-what-you-use (project headers only)
                     A header that names a project type, macro, or free
                     function must directly include the project header
                     declaring it — no leaning on transitive includes.
 4. status-contract  Per util/status.h: the library is exception-free
                     (`throw` is banned in src/), invariants use CHECK
                     (never `assert`), and any file using CHECK/LOG or
                     Status/Result must include util/logging.h /
                     util/status.h itself.
 5. raw-concurrency  Raw std concurrency primitives (std::mutex,
                     std::lock_guard, std::thread,
                     std::condition_variable, ...) are banned outside
                     src/util/: shared state goes through the annotated
                     Mutex/MutexLock/CondVar wrappers in util/mutex.h and
                     the ThreadPool in util/thread_pool.h, so the Clang
                     thread-safety analysis (-DINFOSHIELD_THREAD_SAFETY)
                     sees every lock. std::atomic is allowed.
 6. mutable-global   New mutable globals (the repo convention names them
                     g_*, or column-0 `static` non-const definitions) are
                     banned outside an explicit allowlist. Mutex-typed
                     globals are always allowed — the lock itself is the
                     protection.
 7. unordered-determinism  [fast-path; authoritative version in
                     tools/analyzer]
                     Iterating a std::unordered_map/std::unordered_set
                     (range-for, or a NAME.begin(), NAME.end() copy) is
                     flagged unless the line — or the line above it —
                     carries a `determinism:` comment stating why the
                     order cannot leak (e.g. "sorted below",
                     "commutative integer sum"). Hash-order must never
                     reach cluster ordering or emitted output; results
                     are byte-reproducible across runs and thread counts.
                     This regex version is the cheap first line; the
                     AST-accurate checks in tools/analyzer/ are the ones
                     the analyze gate enforces: `unordered-iter` resolves
                     real container types (through references, aliases,
                     and members), and `unordered-output-flow`
                     (DESIGN.md §14) taint-tracks hash order to
                     serialization sinks and ignores `determinism:`
                     comments — the claim is checked, not trusted.
 8. discarded-status [fast-path; authoritative version in tools/analyzer]
                     Calling a Status/Result-returning free function as
                     a bare statement silently drops the error. Assign
                     it, return it, or spell the deliberate discard
                     `(void) Fn(...)`. Backs up the [[nodiscard]]
                     attributes (util/status.h) for call sites compiled
                     out of the default build (ifdef'd, templates).
                     The AST-accurate `discarded-status` check in
                     tools/analyzer/ additionally catches discards
                     laundered through casts and comma expressions.
 9. fuzz-corpus      Every fuzz harness (fuzz/<name>_fuzz.cc) must have
                     a non-empty seed corpus at tests/fuzz_corpus/<name>/
                     so the fuzz_replay_<name> ctest exercises the
                     harness body on every plain build (DESIGN.md §12).

Exit status is 1 when there are violations, 0 when clean (the true count
is printed — a raw count would wrap modulo 256 and a multiple of 256
would read as success). When clang-tidy is installed and a compilation
database is available (pass the build dir via --clang-tidy-build-dir),
clang-tidy also runs over src/**/*.cc with the repo's .clang-tidy config;
when it is not installed, that half is skipped with a notice so the lint
gate works on toolchains without clang.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

# Macros and free functions that the type scanner cannot discover, mapped
# to the project header that defines them.
CURATED_SYMBOLS = {
    "CHECK": "util/logging.h",
    "CHECK_EQ": "util/logging.h",
    "CHECK_NE": "util/logging.h",
    "CHECK_LT": "util/logging.h",
    "CHECK_LE": "util/logging.h",
    "CHECK_GT": "util/logging.h",
    "CHECK_GE": "util/logging.h",
    "LOG": "util/logging.h",
    "INFOSHIELD_RETURN_IF_ERROR": "util/status.h",
    "INFOSHIELD_AUDIT_INVARIANTS": "util/audit.h",
    "Mutex": "util/mutex.h",
    "MutexLock": "util/mutex.h",
    "CondVar": "util/mutex.h",
    "CAPABILITY": "util/thread_annotations.h",
    "SCOPED_CAPABILITY": "util/thread_annotations.h",
    "GUARDED_BY": "util/thread_annotations.h",
    "PT_GUARDED_BY": "util/thread_annotations.h",
    "REQUIRES": "util/thread_annotations.h",
    "REQUIRES_SHARED": "util/thread_annotations.h",
    "ACQUIRE": "util/thread_annotations.h",
    "RELEASE": "util/thread_annotations.h",
    "TRY_ACQUIRE": "util/thread_annotations.h",
    "EXCLUDES": "util/thread_annotations.h",
    "ASSERT_CAPABILITY": "util/thread_annotations.h",
    "RETURN_CAPABILITY": "util/thread_annotations.h",
    "NO_THREAD_SAFETY_ANALYSIS": "util/thread_annotations.h",
}

# --- Rule 5: raw concurrency primitives (banned outside src/util/). ---
RAW_CONCURRENCY_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b"
    r"|std::shared_lock\b|std::condition_variable(?:_any)?\b"
    r"|std::j?thread\b")

# --- Rule 6: mutable globals. ---
# (src-relative file) -> names that predate the rule or are deliberate.
# Every entry must say, in the file itself, how it is synchronized.
GLOBAL_ALLOWLIST = {
    "util/audit.cc": {"g_auditing_enabled",      # lone std::atomic gate
                      "g_audits_finished",       # GUARDED_BY(g_stats_mu)
                      "g_audits_failed"},        # GUARDED_BY(g_stats_mu)
    "util/logging.cc": {"g_min_severity"},       # GUARDED_BY(g_severity_mu)
}
GLOBAL_DECL_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*?\b(g_\w+)")
STATIC_DECL_RE = re.compile(r"^static\s+(?!const\b|constexpr\b)")
MUTEX_GLOBAL_RE = re.compile(r"^(?:static\s+)?(?:::infoshield::)?Mutex\s+\w+")

# --- Rule 7: unordered-container iteration determinism. ---
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set)\s*<[^;()]*>\s+(\w+)\s*[;{(=]")
DETERMINISM_MARKER = "determinism:"

# --- Rule 8: discarded Status/Result. ---
# Namespace-scope declarations of Status/Result-returning free functions
# (column 0, same convention the symbol map relies on).
STATUS_RETURN_DECL_RE = re.compile(
    r"^(?:\[\[nodiscard\]\]\s*)?(?:Status|Result<[^;=\n]*>)\s+(\w+)\s*\(",
    re.MULTILINE)
# A statement whose previous line ends in one of these is a continuation
# (the call's value is being consumed), not a bare discarding statement.
CONSUMING_LINE_ENDINGS = ("=", "(", ",", "&&", "||", "?", ":", "return",
                          "<<", "+")

# --- Rule 9: fuzz harnesses and their seed corpora. ---
FUZZ_ROOT = os.path.join(REPO_ROOT, "fuzz")
CORPUS_ROOT = os.path.join(REPO_ROOT, "tests", "fuzz_corpus")
FUZZ_SUFFIX = "_fuzz.cc"

# Identifiers too generic to attribute reliably from a word match.
SYMBOL_BLOCKLIST = {
    "internal", "size", "length", "Node", "Ok", "H",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "static_cast",
    "const_cast", "reinterpret_cast", "dynamic_cast", "decltype", "alignof",
    "defined", "noexcept",
}


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def repo_relative(path):
    return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")


def src_relative(path):
    return os.path.relpath(path, SRC_ROOT).replace(os.sep, "/")


def expected_guard(header_path):
    rel = src_relative(header_path)
    return "INFOSHIELD_" + re.sub(r"[./]", "_", rel).upper() + "_"


def list_sources():
    headers, impls = [], []
    for root, _, files in os.walk(SRC_ROOT):
        for name in sorted(files):
            path = os.path.join(root, name)
            if name.endswith(".h"):
                headers.append(path)
            elif name.endswith(".cc"):
                impls.append(path)
    return headers, impls


TYPE_DECL_RE = re.compile(
    r"^(?:class|struct|enum(?:\s+class)?)\s+(\w+)", re.MULTILINE)
ALIAS_DECL_RE = re.compile(r"^using\s+(\w+)\s*=", re.MULTILINE)
FUNC_DECL_RE = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s]*?[\s&*](\w+)\(", re.MULTILINE)
INCLUDE_RE = re.compile(r'^#include\s+"([^"]+)"', re.MULTILINE)


def build_symbol_map(headers):
    """Maps project symbol -> set of src-relative headers declaring it.

    Only namespace-scope declarations count: declaration lines must start
    at column 0 (the codebase does not indent inside namespaces), which
    skips nested/member declarations automatically.
    """
    symbols = {}

    def add(name, header_rel):
        if name in SYMBOL_BLOCKLIST or name in CPP_KEYWORDS:
            return
        symbols.setdefault(name, set()).add(header_rel)

    for path in headers:
        rel = src_relative(path)
        with open(path, encoding="utf-8") as f:
            text = strip_comments_and_strings(f.read())
        for match in TYPE_DECL_RE.finditer(text):
            add(match.group(1), rel)
        for match in ALIAS_DECL_RE.finditer(text):
            add(match.group(1), rel)
        for match in FUNC_DECL_RE.finditer(text):
            name = match.group(1)
            if name.isupper() or name in CPP_KEYWORDS:
                continue
            add(name, rel)
    for name, header in CURATED_SYMBOLS.items():
        symbols.setdefault(name, set()).add(header)
    return symbols


def check_include_guard(path, raw_text, report):
    guard = expected_guard(path)
    lines = raw_text.splitlines()
    directives = [ln.strip() for ln in lines if ln.strip().startswith("#")]
    if (len(directives) < 2 or directives[0] != f"#ifndef {guard}" or
            directives[1] != f"#define {guard}"):
        report(path, 1, "include-guard",
               f"header must open with #ifndef/#define {guard}")
        return
    for ln in reversed(lines):
        stripped = ln.strip()
        if not stripped:
            continue
        if stripped != f"#endif  // {guard}":
            report(path, len(lines), "include-guard",
                   f"header must close with '#endif  // {guard}'")
        return


def check_using_namespace(path, text, report):
    for i, line in enumerate(text.splitlines(), start=1):
        if re.search(r"\busing\s+namespace\b", line):
            report(path, i, "using-namespace",
                   "`using namespace` is banned in headers")


def check_project_includes(path, raw, report):
    for match in INCLUDE_RE.finditer(raw):
        inc = match.group(1)
        line = raw.count("\n", 0, match.start()) + 1
        if not os.path.exists(os.path.join(SRC_ROOT, inc)):
            report(path, line, "project-include",
                   f'"{inc}" does not resolve relative to src/')


def check_iwyu(path, raw, text, symbols, report):
    rel = src_relative(path)
    included = set(INCLUDE_RE.findall(raw))
    local_decls = set()
    for regex in (TYPE_DECL_RE, ALIAS_DECL_RE, FUNC_DECL_RE):
        for match in regex.finditer(text):
            local_decls.add(match.group(1))
    for name in re.findall(r"\b[A-Za-z_]\w*\b", text):
        if name in local_decls or name not in symbols:
            continue
        declaring = symbols[name]
        if rel in declaring or declaring & included:
            continue
        line = text.find(name)
        line = text.count("\n", 0, line) + 1
        report(path, line, "include-what-you-use",
               f"uses `{name}` but includes none of "
               f"{sorted(declaring)} directly")
        # One report per missing symbol is enough.
        symbols = {k: v for k, v in symbols.items() if k != name}


def check_status_contract(path, raw, text, report):
    lines = text.splitlines()
    for i, line in enumerate(lines, start=1):
        if re.search(r"\bassert\s*\(", line):
            report(path, i, "status-contract",
                   "use CHECK from util/logging.h, not assert")
        if re.search(r"\bthrow\b", line):
            report(path, i, "status-contract",
                   "the library is exception-free; return Status instead "
                   "of throwing")
    included = set(INCLUDE_RE.findall(raw))
    uses_check = re.search(r"\b(?:CHECK(?:_[A-Z]{2})?|LOG)\s*\(", text)
    if uses_check and "util/logging.h" not in included and \
            src_relative(path) != "util/logging.h":
        report(path, 1, "status-contract",
               "uses CHECK/LOG but does not include util/logging.h")
    uses_status = re.search(r"\b(?:Status|Result)\b\s*[<:&(\w]", text)
    if uses_status and "util/status.h" not in included and \
            src_relative(path) not in ("util/status.h", "util/logging.h"):
        report(path, 1, "status-contract",
               "uses Status/Result but does not include util/status.h")


def check_raw_concurrency(path, text, report):
    """Rule 5: std concurrency primitives only inside src/util/."""
    if src_relative(path).startswith("util/"):
        return
    for i, line in enumerate(text.splitlines(), start=1):
        match = RAW_CONCURRENCY_RE.search(line)
        if match:
            report(path, i, "raw-concurrency",
                   f"`{match.group(0)}` is banned outside src/util/; use "
                   "Mutex/MutexLock/CondVar (util/mutex.h) or ThreadPool "
                   "(util/thread_pool.h) so the thread-safety analysis "
                   "sees the lock")


def check_mutable_globals(path, text, report):
    """Rule 6: no new mutable globals outside the allowlist.

    Namespace-scope definitions sit at column 0 (the codebase does not
    indent inside namespaces), so usages inside functions — always
    indented — are skipped automatically. Mutex-typed globals are
    allowed: the lock is the protection, not the hazard.
    """
    allowed = GLOBAL_ALLOWLIST.get(src_relative(path), set())
    for i, line in enumerate(text.splitlines(), start=1):
        if MUTEX_GLOBAL_RE.match(line):
            continue
        match = GLOBAL_DECL_RE.match(line)
        if match and match.group(1) not in allowed:
            report(path, i, "mutable-global",
                   f"mutable global `{match.group(1)}` — shared state "
                   "needs a GUARDED_BY contract and an entry in "
                   "tools/lint.py GLOBAL_ALLOWLIST")
            continue
        if STATIC_DECL_RE.match(line):
            # A variable definition has no parameter list before its
            # initializer (or terminating semicolon); a function does.
            init = len(line)
            for sep in ("=", "{", ";"):
                pos = line.find(sep)
                if pos != -1:
                    init = min(init, pos)
            paren = line.find("(")
            if paren == -1 or paren > init:
                report(path, i, "mutable-global",
                       "file-scope `static` mutable variable — shared "
                       "state needs a GUARDED_BY contract and an entry "
                       "in tools/lint.py GLOBAL_ALLOWLIST")


def collect_unordered_names(*texts):
    names = set()
    for text in texts:
        for match in UNORDERED_DECL_RE.finditer(text):
            names.add(match.group(1))
    return names


def check_unordered_determinism(path, raw, text, header_text, report):
    """Rule 7: unordered-container iteration must justify its order.

    Flags range-for over — and `NAME.begin(), NAME.end()` copies of —
    variables declared as std::unordered_map/std::unordered_set in this
    file or its paired header. A `determinism:` comment on the same line
    or in the contiguous comment block directly above (stating why hash
    order cannot reach the output: sorted below, commutative reduction,
    per-entry validation, ...) suppresses the finding.

    Fast path only. The authoritative versions live in tools/analyzer/:
    `unordered-iter` type-resolves the container, and
    `unordered-output-flow` (DESIGN.md §14) taint-tracks the iteration
    order to serialization sinks without trusting the `determinism:`
    comment this rule accepts.
    """

    def justified(raw_lines, i):
        # i is the 1-based line of the iteration; accept the marker on
        # that line or anywhere in the unbroken comment run above it.
        if DETERMINISM_MARKER in raw_lines[i - 1]:
            return True
        j = i - 2
        while j >= 0 and raw_lines[j].lstrip().startswith("//"):
            if DETERMINISM_MARKER in raw_lines[j]:
                return True
            j -= 1
        return False

    names = collect_unordered_names(text, header_text)
    if not names:
        return
    alt = "|".join(sorted(re.escape(n) for n in names))
    iter_re = re.compile(
        r"for\s*\([^;)]*:\s*(?:this->)?(" + alt + r")\s*\)"
        r"|\b(" + alt + r")\.begin\(\)\s*,\s*(?:\2)\.end\(\)")
    raw_lines = raw.splitlines()
    for i, line in enumerate(text.splitlines(), start=1):
        match = iter_re.search(line)
        if not match:
            continue
        if justified(raw_lines, i):
            continue
        name = match.group(1) or match.group(2)
        report(path, i, "unordered-determinism",
               f"iteration over unordered container `{name}` — sort "
               "before emission or add a `// determinism: <why order "
               "cannot leak>` comment here or on the line above")


def build_status_function_set(headers):
    """Names of free functions returning Status/Result, from headers."""
    names = set()
    for path in headers:
        with open(path, encoding="utf-8") as f:
            text = strip_comments_and_strings(f.read())
        for match in STATUS_RETURN_DECL_RE.finditer(text):
            names.add(match.group(1))
    return names


def check_discarded_status(path, text, status_fns, report):
    """Rule 8: no bare statement calls of Status/Result-returning fns.

    Flags lines whose statement starts with a call to a known
    Status-returning free function. A declaration/definition starts with
    the return type, so it never matches; a consumed value has the
    function name mid-line (`s = Fn(`, `return Fn(`) or follows a line
    that ends mid-expression. `(void) Fn(...)` is the deliberate-discard
    spelling.
    """
    if not status_fns:
        return
    call_re = re.compile(
        r"^\s*(" + "|".join(sorted(re.escape(n) for n in status_fns)) +
        r")\s*\(")
    prev = ""
    for i, line in enumerate(text.splitlines(), start=1):
        match = call_re.match(line)
        if match and not prev.rstrip().endswith(CONSUMING_LINE_ENDINGS):
            report(path, i, "discarded-status",
                   f"result of `{match.group(1)}` is discarded — assign "
                   "it, return it, or write `(void) "
                   f"{match.group(1)}(...)` for a deliberate discard")
        if line.strip():
            prev = line


def check_fuzz_corpora(fuzz_root, corpus_root, report):
    """Rule 9: every harness has a non-empty checked-in seed corpus."""
    if not os.path.isdir(fuzz_root):
        return
    for name in sorted(os.listdir(fuzz_root)):
        if not name.endswith(FUZZ_SUFFIX):
            continue
        harness = name[:-len(FUZZ_SUFFIX)]
        path = os.path.join(fuzz_root, name)
        corpus = os.path.join(corpus_root, harness)
        if not os.path.isdir(corpus):
            report(path, 1, "fuzz-corpus",
                   f"harness has no seed corpus directory "
                   f"{repo_relative(corpus)}/ — add seeds (see "
                   "tests/fuzz_corpus/make_seeds.py) so the replay ctest "
                   "exercises it")
            continue
        seeds = [s for s in os.listdir(corpus)
                 if not s.startswith(".") and
                 os.path.isfile(os.path.join(corpus, s))]
        if not seeds:
            report(path, 1, "fuzz-corpus",
                   f"seed corpus {repo_relative(corpus)}/ is empty — the "
                   "replay ctest would only run the empty input")


def paired_header_text(impl_path):
    header = impl_path[:-len(".cc")] + ".h"
    if not os.path.exists(header):
        return ""
    with open(header, encoding="utf-8") as f:
        return strip_comments_and_strings(f.read())


def run_clang_tidy(build_dir, impls):
    clang_tidy = shutil.which("clang-tidy")
    if clang_tidy is None:
        print("lint: clang-tidy not installed — skipping clang-tidy checks")
        return 0
    compdb = os.path.join(build_dir or "", "compile_commands.json")
    if not build_dir or not os.path.exists(compdb):
        print("lint: no compile_commands.json — skipping clang-tidy checks "
              "(pass --clang-tidy-build-dir to a configured build)")
        return 0
    print(f"lint: running clang-tidy over {len(impls)} files")
    failures = 0
    for path in impls:
        proc = subprocess.run(
            [clang_tidy, "-p", build_dir, "--quiet", path],
            capture_output=True, text=True, check=False)
        if proc.returncode != 0 or "warning:" in proc.stdout:
            failures += 1
            sys.stdout.write(proc.stdout)
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy-build-dir", default=None,
                        help="build dir holding compile_commands.json")
    parser.add_argument("--no-clang-tidy", action="store_true",
                        help="run only the convention checks")
    parser.add_argument("--src-root", default=None,
                        help="lint this tree instead of src/ (used by "
                             "tools/lint_selftest.py fixtures)")
    parser.add_argument("--fuzz-root", default=None,
                        help="fuzz harness tree instead of fuzz/ (used by "
                             "tools/lint_selftest.py fixtures)")
    parser.add_argument("--corpus-root", default=None,
                        help="seed corpus tree instead of tests/fuzz_corpus/")
    args = parser.parse_args()

    if args.src_root is not None:
        global SRC_ROOT
        SRC_ROOT = os.path.abspath(args.src_root)
    fuzz_root = os.path.abspath(args.fuzz_root) if args.fuzz_root \
        else FUZZ_ROOT
    corpus_root = os.path.abspath(args.corpus_root) if args.corpus_root \
        else CORPUS_ROOT

    headers, impls = list_sources()
    symbols = build_symbol_map(headers)
    status_fns = build_status_function_set(headers)

    violations = []

    def report(path, line, rule, message):
        violations.append(f"{repo_relative(path)}:{line}: [{rule}] {message}")

    for path in headers:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments_and_strings(raw)
        check_include_guard(path, raw, report)
        check_using_namespace(path, text, report)
        check_project_includes(path, raw, report)
        check_iwyu(path, raw, text, symbols, report)
        check_status_contract(path, raw, text, report)
        check_raw_concurrency(path, text, report)
        check_mutable_globals(path, text, report)
        check_unordered_determinism(path, raw, text, "", report)
        check_discarded_status(path, text, status_fns, report)
    for path in impls:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments_and_strings(raw)
        check_project_includes(path, raw, report)
        check_status_contract(path, raw, text, report)
        check_raw_concurrency(path, text, report)
        check_mutable_globals(path, text, report)
        check_unordered_determinism(path, raw, text,
                                    paired_header_text(path), report)
        check_discarded_status(path, text, status_fns, report)

    check_fuzz_corpora(fuzz_root, corpus_root, report)

    for v in violations:
        print(v)
    count = len(violations)
    if count:
        print(f"lint: {count} violation(s)")
    else:
        print(f"lint: {len(headers) + len(impls)} files clean")

    if not args.no_clang_tidy:
        count += run_clang_tidy(args.clang_tidy_build_dir, impls)
    # POSIX exit statuses wrap modulo 256: returning the raw count would
    # report 256 violations as success. The count is printed above; the
    # exit status only says pass/fail.
    return 1 if count else 0


if __name__ == "__main__":
    sys.exit(main())
