#!/usr/bin/env python3
"""Line-coverage aggregation and ratchet for the InfoShield core.

Consumes raw coverage exports (llvm-cov JSON or gcov JSON), reduces them
to per-directory line coverage over the tracked core directories, and
compares the result against the checked-in ratchet file
tools/coverage_baseline.json. Driven by tools/coverage.sh; DESIGN.md §12
describes the policy.

Subcommands
-----------
 aggregate  --tool {llvm-cov,gcov} --input FILE --output REPORT
            llvm-cov: FILE is `llvm-cov export -format=text` JSON.
            gcov:     FILE holds one `gcov --json-format --stdout`
                      document per line (JSONL, one per .gcda).
            Lines are keyed (source file, line) and a line counts as
            covered if ANY translation unit executed it, so inlined
            header lines are not double-counted.
 compare    --report REPORT --baseline BASELINE [--tolerance PCT]
            Exit 1 if any tracked directory's line coverage dropped
            more than PCT percentage points (default 0.25) below the
            baseline, or if a baselined directory vanished. Improvements
            print a hint to re-baseline but do not fail.
 update-baseline --report REPORT --baseline BASELINE
            Rewrites BASELINE from REPORT (run after deliberately
            raising coverage; review the diff like any other change).

The tracked directories are the information-theoretic core: the MDL
cost model, the alignment/MSA engines, tokenization, and IO — the code
the fuzz harnesses (fuzz/) exist to exercise.
"""

import argparse
import json
import os
import sys

TRACKED_DIRS = ("src/mdl", "src/msa", "src/text", "src/io")
DEFAULT_TOLERANCE = 0.25  # percentage points


def tracked_dir(path):
    """Maps a compiler-reported source path to a tracked directory."""
    norm = path.replace(os.sep, "/")
    marker = norm.rfind("/src/")
    if marker != -1:
        norm = norm[marker + 1:]
    for directory in TRACKED_DIRS:
        if norm.startswith(directory + "/"):
            return directory
    return None


def source_key(path):
    norm = path.replace(os.sep, "/")
    marker = norm.rfind("/src/")
    return norm[marker + 1:] if marker != -1 else norm


def aggregate_llvm(input_path):
    """Per-(file, line) hit counts from `llvm-cov export` JSON."""
    with open(input_path, encoding="utf-8") as f:
        export = json.load(f)
    hits = {}
    for data in export.get("data", []):
        for entry in data.get("files", []):
            filename = entry.get("filename", "")
            if tracked_dir(filename) is None:
                continue
            key = source_key(filename)
            lines = hits.setdefault(key, {})
            # Segment format: [line, col, count, has_count, is_region_entry,
            # is_gap_region]. Line-level truth: max count of any counted
            # segment starting on the line.
            for seg in entry.get("segments", []):
                line, _, count, has_count = seg[0], seg[1], seg[2], seg[3]
                if not has_count:
                    continue
                lines[line] = max(lines.get(line, 0), count)
    return hits


def aggregate_gcov(input_path):
    """Per-(file, line) hit counts from gcov JSONL output."""
    hits = {}
    with open(input_path, encoding="utf-8") as f:
        for raw in f:
            raw = raw.strip()
            if not raw:
                continue
            doc = json.loads(raw)
            for entry in doc.get("files", []):
                filename = entry.get("file", "")
                if tracked_dir(filename) is None:
                    continue
                key = source_key(filename)
                lines = hits.setdefault(key, {})
                for line in entry.get("lines", []):
                    number = line["line_number"]
                    lines[number] = max(lines.get(number, 0), line["count"])
    return hits


def reduce_to_report(hits, tool):
    totals = {d: {"covered": 0, "total": 0} for d in TRACKED_DIRS}
    for filename, lines in sorted(hits.items()):
        directory = tracked_dir(filename)
        if directory is None:
            continue
        totals[directory]["total"] += len(lines)
        totals[directory]["covered"] += sum(1 for c in lines.values() if c)
    report = {"tool": tool, "directories": {}}
    for directory, t in totals.items():
        percent = 100.0 * t["covered"] / t["total"] if t["total"] else 0.0
        report["directories"][directory] = {
            "covered": t["covered"],
            "total": t["total"],
            "percent": round(percent, 2),
        }
    return report


def cmd_aggregate(args):
    if args.tool == "llvm-cov":
        hits = aggregate_llvm(args.input)
    else:
        hits = aggregate_gcov(args.input)
    report = reduce_to_report(hits, args.tool)
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    for directory in TRACKED_DIRS:
        entry = report["directories"][directory]
        print(f"coverage: {directory}: {entry['covered']}/{entry['total']} "
              f"lines ({entry['percent']}%)")
    empty = [d for d in TRACKED_DIRS
             if report["directories"][d]["total"] == 0]
    if empty:
        print(f"coverage: ERROR: no instrumented lines found for {empty} — "
              "was the build instrumented and were the tests run?")
        return 1
    return 0


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def cmd_compare(args):
    report = load_json(args.report)["directories"]
    baseline = load_json(args.baseline)["directories"]
    failures = []
    improvements = []
    for directory, base in sorted(baseline.items()):
        got = report.get(directory)
        if got is None:
            failures.append(f"{directory}: in baseline but absent from the "
                            "report")
            continue
        delta = got["percent"] - base["percent"]
        arrow = (f"{base['percent']}% -> {got['percent']}% "
                 f"({delta:+.2f}pp)")
        if delta < -args.tolerance:
            failures.append(f"{directory}: coverage regressed {arrow}, "
                            f"beyond the {args.tolerance}pp tolerance")
        elif delta > args.tolerance:
            improvements.append(f"{directory}: improved {arrow}")
        print(f"coverage: {directory}: {arrow}")
    if improvements:
        print("coverage: improvements detected — consider "
              "`coverage_report.py update-baseline` to ratchet up:")
        for line in improvements:
            print(f"coverage:   {line}")
    if failures:
        for line in failures:
            print(f"coverage: FAIL: {line}")
        print("coverage: regression against tools/coverage_baseline.json — "
              "add tests (or deliberately re-baseline and justify it in "
              "the change description)")
        return 1
    print("coverage: no regression against the baseline")
    return 0


def cmd_update_baseline(args):
    report = load_json(args.report)
    baseline = {
        "comment": "Per-directory line-coverage ratchet; tools/coverage.sh "
                   "compares fresh runs against this. Update only via "
                   "coverage_report.py update-baseline.",
        "tool": report["tool"],
        "directories": report["directories"],
    }
    with open(args.baseline, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"coverage: baseline {args.baseline} rewritten from {args.report}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("aggregate")
    p.add_argument("--tool", choices=("llvm-cov", "gcov"), required=True)
    p.add_argument("--input", required=True)
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_aggregate)

    p = sub.add_parser("compare")
    p.add_argument("--report", required=True)
    p.add_argument("--baseline", required=True)
    p.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("update-baseline")
    p.add_argument("--report", required=True)
    p.add_argument("--baseline", required=True)
    p.set_defaults(func=cmd_update_baseline)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
