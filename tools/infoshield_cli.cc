// infoshield — command-line front end for running the pipeline on a CSV
// of documents.
//
//   infoshield --input ads.csv --text-column text
//   infoshield --input tweets.tsv --separator tab --html report.html
//   infoshield --input ads.csv --json result.json --max-ngram 4
//
// Prints the discovered templates (ANSI colors on a TTY-ish default) and
// optionally writes HTML / JSON reports.

#include <cstdio>
#include <fstream>
#include <string>

#include "coarse/coarse_clustering.h"
#include "core/infoshield.h"
#include "core/ranking.h"
#include "core/slot_analysis.h"
#include "core/visualize.h"
#include "io/csv.h"
#include "io/json_writer.h"
#include "util/flags.h"
#include "util/timer.h"

namespace infoshield {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("input", "", "CSV/TSV file of documents (required)")
      .AddString("text-column", "text", "name of the document-text column")
      .AddString("separator", "comma", "field separator: comma | tab")
      .AddString("html", "", "write an HTML cluster report to this path")
      .AddString("json", "", "write a JSON result dump to this path")
      .AddString("coarse-backend", "tfidf",
                 "coarse candidate generator: tfidf (paper-faithful "
                 "doc-phrase graph) | minhash-lsh (shingled MinHash + "
                 "banded LSH, DESIGN.md §16)")
      .AddInt("max-ngram", 5, "max phrase length for coarse tf-idf")
      .AddInt("lsh-hashes", 128,
              "MinHash signature width (minhash-lsh backend)")
      .AddInt("lsh-bands", 32,
              "LSH bands; bands * rows must equal lsh-hashes")
      .AddInt("lsh-rows", 4, "signature rows per LSH band")
      .AddInt("shingle-k", 3,
              "tokens per MinHash shingle (minhash-lsh backend)")
      .AddInt("min-cluster-size", 2,
              "smallest coarse component kept (2 = drop singletons)")
      .AddInt("max-docs-per-template", 10,
              "member documents rendered per template (0 = all)")
      .AddInt("threads", 1,
              "worker threads for both stages: the sharded coarse "
              "pipeline and the per-cluster fine stage (0 = all cores); "
              "results are identical for any value")
      .AddBool("color", true, "ANSI colors in terminal output")
      .AddBool("stats", true, "print per-cluster compression statistics")
      .AddBool("rank", true,
               "order templates by suspiciousness (compression slack)")
      .AddBool("slots", false, "profile each template's slot content")
      .AddBool("help", false, "show usage");

  Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s", parse_status.ToString().c_str(),
                 flags.Usage("infoshield").c_str());
    return 2;
  }
  if (flags.GetBool("help") || flags.GetString("input").empty()) {
    std::fputs(flags.Usage("infoshield").c_str(),
               flags.GetBool("help") ? stdout : stderr);
    return flags.GetBool("help") ? 0 : 2;
  }

  const char separator =
      flags.GetString("separator") == "tab" ? '\t' : ',';
  Result<Corpus> corpus = LoadCorpusFromCsv(
      flags.GetString("input"), flags.GetString("text-column"), separator);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu documents (%zu distinct tokens)\n",
              corpus->size(), corpus->vocab().size());

  InfoShieldOptions options;
  options.coarse.tfidf.max_ngram =
      static_cast<size_t>(flags.GetInt("max-ngram"));
  options.coarse.min_cluster_size =
      static_cast<size_t>(flags.GetInt("min-cluster-size"));
  options.num_threads = static_cast<size_t>(flags.GetInt("threads"));

  const std::string backend = flags.GetString("coarse-backend");
  if (backend == "minhash-lsh") {
    options.coarse.backend = CoarseBackend::kMinhashLsh;
  } else if (backend != "tfidf") {
    std::fprintf(stderr,
                 "error: unknown --coarse-backend '%s' (tfidf | "
                 "minhash-lsh)\n",
                 backend.c_str());
    return 2;
  }
  options.coarse.minhash.num_hashes =
      static_cast<size_t>(flags.GetInt("lsh-hashes"));
  options.coarse.minhash.shingle_k =
      static_cast<size_t>(flags.GetInt("shingle-k"));
  options.coarse.lsh.bands = static_cast<size_t>(flags.GetInt("lsh-bands"));
  options.coarse.lsh.rows = static_cast<size_t>(flags.GetInt("lsh-rows"));
  if (options.coarse.backend == CoarseBackend::kMinhashLsh) {
    const Status lsh_status =
        options.coarse.lsh.Validate(options.coarse.minhash);
    if (!lsh_status.ok()) {
      std::fprintf(stderr, "error: %s\n", lsh_status.ToString().c_str());
      return 2;
    }
  }

  WallTimer timer;
  InfoShield shield(options);
  InfoShieldResult result = shield.Run(*corpus);
  std::printf(
      "found %zu templates covering %zu suspicious documents in %.2fs "
      "(coarse %.2fs, fine %.2fs)\n\n",
      result.templates.size(), result.num_suspicious(),
      timer.ElapsedSeconds(), result.coarse_seconds, result.fine_seconds);

  VisualizeOptions viz;
  viz.use_color = flags.GetBool("color");
  viz.max_docs = static_cast<size_t>(flags.GetInt("max-docs-per-template"));
  const CostModel cost_model = CostModel::ForVocabulary(corpus->vocab());
  // Presentation order: most suspicious first when ranking is on.
  std::vector<size_t> order;
  if (flags.GetBool("rank")) {
    for (const RankedTemplate& r :
         RankTemplates(result, *corpus, cost_model)) {
      order.push_back(r.template_index);
    }
  } else {
    for (size_t t = 0; t < result.templates.size(); ++t) order.push_back(t);
  }
  for (size_t t : order) {
    const TemplateCluster& cluster = result.templates[t];
    std::fputs(RenderTemplateAnsi(cluster, *corpus, viz).c_str(), stdout);
    if (flags.GetBool("slots")) {
      std::fputs(
          RenderSlotProfiles(AnalyzeSlots(cluster, *corpus)).c_str(),
          stdout);
    }
    std::vector<size_t> anomalies =
        FlagAnomalousMembers(cluster, *corpus, cost_model);
    if (!anomalies.empty()) {
      std::printf("  anomalous members (poor compression):");
      for (size_t m : anomalies) std::printf(" #%u", cluster.members[m]);
      std::printf("\n");
    }
    std::fputs("\n", stdout);
  }

  if (flags.GetBool("stats")) {
    std::printf("%-8s %-6s %-4s %-10s %-10s\n", "cluster", "docs", "t",
                "rel.len", "bound");
    for (const ClusterStats& s : result.cluster_stats) {
      if (s.num_templates == 0) continue;
      std::printf("%-8zu %-6zu %-4zu %-10.4f %-10.4f\n",
                  s.coarse_cluster_index, s.num_docs, s.num_templates,
                  s.relative_length, s.lower_bound);
    }
  }

  if (!flags.GetString("html").empty()) {
    std::ofstream out(flags.GetString("html"));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   flags.GetString("html").c_str());
      return 1;
    }
    out << RenderReportHtml(result.templates, *corpus, viz);
    std::printf("wrote HTML report: %s\n", flags.GetString("html").c_str());
  }
  if (!flags.GetString("json").empty()) {
    Status write_status = WriteJsonFile(flags.GetString("json"),
                                        ResultToJson(result, *corpus));
    if (!write_status.ok()) {
      std::fprintf(stderr, "error: %s\n", write_status.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON result: %s\n", flags.GetString("json").c_str());
  }
  return 0;
}

}  // namespace
}  // namespace infoshield

int main(int argc, char** argv) { return infoshield::Main(argc, argv); }
