// The incremental ingestion core's differential oracle: after ANY
// sequence of IngestBatch calls, ResultToJson over the engine's result
// must byte-match a fresh InfoShield::Run over the concatenated corpus
// (DESIGN.md §15). These tests drive the oracle across fixed splits,
// random splits of seed corpora (property test), degree-cap forced
// rebuilds, and thread counts — and pin down the reuse accounting that
// makes incrementality worth having.

#include "incremental/incremental_infoshield.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/infoshield.h"
#include "datagen/trafficking_gen.h"
#include "io/json_writer.h"
#include "util/random.h"

namespace infoshield {
namespace {

std::vector<std::string> GeneratedTexts(uint64_t seed) {
  TraffickingGenOptions o;
  o.num_benign = 60;
  o.num_spam_clusters = 2;
  o.spam_cluster_size_min = 8;
  o.spam_cluster_size_max = 14;
  o.num_ht_clusters = 5;
  o.ht_cluster_size_min = 4;
  o.ht_cluster_size_max = 8;
  LabeledAds data = TraffickingGenerator(o).Generate(seed);
  std::vector<std::string> texts;
  texts.reserve(data.corpus.size());
  for (const Document& doc : data.corpus.docs()) {
    texts.push_back(doc.raw);
  }
  return texts;
}

// The oracle: a fresh batch run over the first `n` texts.
std::string BatchJson(const std::vector<std::string>& texts, size_t n,
                      const InfoShieldOptions& options) {
  Corpus corpus;
  corpus.AddBatch(
      std::vector<std::string>(texts.begin(), texts.begin() + n),
      options.num_threads);
  InfoShield shield(options);
  const InfoShieldResult result = shield.Run(corpus);
  return ResultToJson(result, corpus);
}

std::string IncrementalJson(const IncrementalInfoShield& engine) {
  return ResultToJson(engine.result(), engine.corpus());
}

// Ingests `texts` in batches cut at `splits` (ascending positions, end
// implied), checking the oracle after every batch.
void CheckSplits(const std::vector<std::string>& texts,
                 const std::vector<size_t>& splits,
                 const InfoShieldOptions& options) {
  IncrementalInfoShield engine(options);
  size_t begin = 0;
  std::vector<size_t> ends(splits);
  ends.push_back(texts.size());
  for (size_t end : ends) {
    ASSERT_LE(begin, end);
    Result<IngestStats> stats = engine.IngestBatch(std::vector<std::string>(
        texts.begin() + begin, texts.begin() + end));
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->total_docs, end);
    EXPECT_EQ(stats->dirty_clusters + stats->reused_clusters,
              stats->num_coarse_clusters);
    ASSERT_EQ(IncrementalJson(engine), BatchJson(texts, end, options))
        << "diverged from the batch oracle after ingesting " << end
        << " documents (batch boundary at " << begin << ")";
    begin = end;
  }
  EXPECT_TRUE(engine.ValidateInvariants().ok());
}

TEST(IncrementalTest, EmptyEngineMatchesBatchRunOverEmptyCorpus) {
  InfoShieldOptions options;
  IncrementalInfoShield engine(options);
  EXPECT_EQ(IncrementalJson(engine), BatchJson({}, 0, options));
  Result<IngestStats> stats = engine.IngestBatch({});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->batch_docs, 0u);
  EXPECT_EQ(stats->generation, 0u);
}

TEST(IncrementalTest, SingleBatchMatchesBatchRun) {
  const std::vector<std::string> texts = GeneratedTexts(/*seed=*/42);
  InfoShieldOptions options;
  CheckSplits(texts, {}, options);
}

TEST(IncrementalTest, FixedSplitsMatchBatchRunAtEveryPrefix) {
  const std::vector<std::string> texts = GeneratedTexts(/*seed=*/7);
  InfoShieldOptions options;
  // Mixed batch sizes, including a 1-document batch and a large tail.
  CheckSplits(texts, {1, 2, 10, 11, 40, texts.size() / 2}, options);
}

TEST(IncrementalTest, ManySmallBatches) {
  std::vector<std::string> texts = GeneratedTexts(/*seed=*/3);
  texts.resize(40);
  std::vector<size_t> splits;
  for (size_t i = 4; i < texts.size(); i += 4) splits.push_back(i);
  InfoShieldOptions options;
  CheckSplits(texts, splits, options);
}

TEST(IncrementalTest, RandomSplitPropertyTest) {
  // Random batch splits of seed corpora: whatever the cut points, every
  // prefix must byte-match the batch pipeline.
  InfoShieldOptions options;
  for (uint64_t seed : {11u, 12u, 13u}) {
    std::vector<std::string> texts = GeneratedTexts(seed);
    texts.resize(80);
    Rng rng(seed * 977);
    std::vector<size_t> splits;
    size_t at = 0;
    while (true) {
      at += 1 + rng.NextBounded(25);
      if (at >= texts.size()) break;
      splits.push_back(at);
    }
    CheckSplits(texts, splits, options);
  }
}

TEST(IncrementalTest, DegreeCapForcesRebuildAndStillMatches) {
  // With a max_phrase_degree cap, the cap's edge drops depend on the
  // canonical replay order, so any old-document change forces a graph
  // rebuild — which must still land byte-exact on the oracle.
  const std::vector<std::string> texts = GeneratedTexts(/*seed=*/21);
  InfoShieldOptions options;
  options.coarse.max_phrase_degree = 3;
  CheckSplits(texts, {10, 30, 60}, options);
}

TEST(IncrementalTest, ThreadedEngineMatchesSerialOracle) {
  const std::vector<std::string> texts = GeneratedTexts(/*seed=*/42);
  InfoShieldOptions serial;
  InfoShieldOptions threaded;
  threaded.num_threads = 4;
  IncrementalInfoShield engine(threaded);
  const std::vector<size_t> ends = {texts.size() / 3, texts.size()};
  size_t begin = 0;
  for (size_t end : ends) {
    ASSERT_TRUE(engine
                    .IngestBatch(std::vector<std::string>(
                        texts.begin() + begin, texts.begin() + end))
                    .ok());
    EXPECT_EQ(IncrementalJson(engine), BatchJson(texts, end, serial));
    begin = end;
  }
}

TEST(IncrementalTest, UntouchedComponentsReuseCachedFineResults) {
  // Two families of exact duplicates with disjoint wording. Batch 2
  // adds more copies of family A only: family B's docs keep their df
  // pattern (same df for every B phrase, so idf growth rescales all B
  // scores by one positive factor and the top-phrase ORDER holds), its
  // component membership is unchanged, and no new words arrive — so
  // family B's fine result must come from the cache.
  const std::string a = "sweet asian girls new in town call five five five";
  const std::string b = "grand opening best massage downtown walk ins welcome";
  std::vector<std::string> first_batch;
  for (int i = 0; i < 5; ++i) first_batch.push_back(a);
  for (int i = 0; i < 5; ++i) first_batch.push_back(b);

  InfoShieldOptions options;
  IncrementalInfoShield engine(options);
  Result<IngestStats> s1 = engine.IngestBatch(first_batch);
  ASSERT_TRUE(s1.ok());
  ASSERT_EQ(s1->num_coarse_clusters, 2u);
  EXPECT_EQ(s1->dirty_clusters, 2u);  // first sight: everything is dirty

  Result<IngestStats> s2 = engine.IngestBatch({a, a, a});
  ASSERT_TRUE(s2.ok());
  EXPECT_FALSE(s2->vocab_grew);
  EXPECT_FALSE(s2->graph_rebuilt);
  ASSERT_EQ(s2->num_coarse_clusters, 2u);
  EXPECT_EQ(s2->reused_clusters, 1u) << "family B should be a cache hit";
  EXPECT_EQ(s2->dirty_clusters, 1u);
  EXPECT_EQ(s2->dirty_cluster_docs, 8u);  // family A now has 8 members

  // And the oracle still holds, cached results included.
  std::vector<std::string> all = first_batch;
  all.insert(all.end(), {a, a, a});
  EXPECT_EQ(IncrementalJson(engine), BatchJson(all, all.size(), options));
}

TEST(IncrementalTest, NewVocabularyClearsTheFineCache) {
  const std::string a = "sweet asian girls new in town call five five five";
  const std::string b = "grand opening best massage downtown walk ins welcome";
  std::vector<std::string> first_batch = {a, a, a, b, b, b};
  InfoShieldOptions options;
  IncrementalInfoShield engine(options);
  ASSERT_TRUE(engine.IngestBatch(first_batch).ok());

  // Batch with a brand-new word: lg V moves, every cached cost
  // comparison is stale, everything re-fines.
  Result<IngestStats> stats =
      engine.IngestBatch({"totally novel wording zzyzx"});
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->vocab_grew);
  EXPECT_EQ(stats->reused_clusters, 0u);

  std::vector<std::string> all = first_batch;
  all.push_back("totally novel wording zzyzx");
  EXPECT_EQ(IncrementalJson(engine), BatchJson(all, all.size(), options));
}

TEST(IncrementalTest, IngestAfterIngestGrowsMonotonically) {
  const std::vector<std::string> texts = GeneratedTexts(/*seed=*/5);
  InfoShieldOptions options;
  IncrementalInfoShield engine(options);
  uint64_t last_generation = 0;
  for (size_t i = 0; i + 10 <= 50; i += 10) {
    Result<IngestStats> stats = engine.IngestBatch(std::vector<std::string>(
        texts.begin() + i, texts.begin() + i + 10));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->batch_docs, 10u);
    EXPECT_GT(stats->generation, last_generation);
    last_generation = stats->generation;
    EXPECT_EQ(engine.corpus().size(), i + 10);
  }
  EXPECT_TRUE(engine.ValidateInvariants().ok());
}

}  // namespace
}  // namespace infoshield
