#include "text/vocabulary.h"

#include <cmath>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.Intern("a"), 0u);
  EXPECT_EQ(v.Intern("b"), 1u);
  EXPECT_EQ(v.Intern("a"), 0u);  // idempotent
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, FindReturnsInvalidForUnknown) {
  Vocabulary v;
  v.Intern("known");
  EXPECT_EQ(v.Find("known"), 0u);
  EXPECT_EQ(v.Find("unknown"), kInvalidToken);
}

TEST(VocabularyTest, WordRoundTrips) {
  Vocabulary v;
  TokenId id = v.Intern("escondido");
  EXPECT_EQ(v.Word(id), "escondido");
}

TEST(VocabularyTest, EmptyProperties) {
  Vocabulary v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(VocabularyTest, BitsPerWordClampedAtTwo) {
  Vocabulary v;
  EXPECT_DOUBLE_EQ(v.BitsPerWord(), 1.0);  // lg 2 with V clamped to 2
  v.Intern("one");
  EXPECT_DOUBLE_EQ(v.BitsPerWord(), 1.0);
}

TEST(VocabularyTest, BitsPerWordGrowsLogarithmically) {
  Vocabulary v;
  for (int i = 0; i < 1024; ++i) v.Intern("w" + std::to_string(i));
  EXPECT_DOUBLE_EQ(v.BitsPerWord(), 10.0);
}

TEST(VocabularyDeathTest, WordOutOfRangeDies) {
  Vocabulary v;
  v.Intern("only");
  EXPECT_DEATH(v.Word(99), "Check failed");
}

TEST(VocabularyTest, HandlesManyWords) {
  Vocabulary v;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(v.Intern("tok" + std::to_string(i)),
              static_cast<TokenId>(i));
  }
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_EQ(v.Word(1234), "tok1234");
}

}  // namespace
}  // namespace infoshield
