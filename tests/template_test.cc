#include "core/template.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

using Tokens = std::vector<TokenId>;

class TemplateTest : public ::testing::Test {
 protected:
  TokenId Id(const std::string& w) { return vocab_.Intern(w); }
  Tokens Ids(std::initializer_list<const char*> words) {
    Tokens out;
    for (const char* w : words) out.push_back(Id(w));
    return out;
  }
  Vocabulary vocab_;
};

TEST_F(TemplateTest, SlotBookkeeping) {
  Template t(Ids({"a", "b", "c"}));
  EXPECT_EQ(t.length(), 3u);
  EXPECT_EQ(t.num_slots(), 0u);
  t.SetSlotAtGap(1, true);
  t.SetSlotAtGap(3, true);
  EXPECT_EQ(t.num_slots(), 2u);
  EXPECT_TRUE(t.HasSlotAtGap(1));
  EXPECT_FALSE(t.HasSlotAtGap(0));
  EXPECT_EQ(t.SlotGaps(), (std::vector<size_t>{1, 3}));
  t.SetSlotAtGap(1, false);
  EXPECT_EQ(t.num_slots(), 1u);
}

TEST_F(TemplateTest, ToStringShowsStars) {
  Template t(Ids({"great", "price"}));
  t.SetSlotAtGap(1, true);
  EXPECT_EQ(t.ToString(vocab_), "great * price");
  t.SetSlotAtGap(2, true);
  EXPECT_EQ(t.ToString(vocab_), "great * price *");
}

TEST_F(TemplateTest, EncodePerfectMatch) {
  Template t(Ids({"x", "y", "z"}));
  CostModel cm(8.0);
  DocEncoding enc = EncodeDocument(t, t.tokens, cm);
  EXPECT_EQ(enc.summary.alignment_length, 3u);
  EXPECT_EQ(enc.summary.unmatched, 0u);
  EXPECT_EQ(enc.columns.size(), 3u);
  for (const auto& col : enc.columns) {
    EXPECT_EQ(col.kind, ColumnKind::kConstant);
  }
}

TEST_F(TemplateTest, InsertionWithoutSlotIsUnmatched) {
  Template t(Ids({"a", "b"}));
  CostModel cm(8.0);
  Tokens doc = Ids({"a", "extra", "b"});
  DocEncoding enc = EncodeDocument(t, doc, cm);
  EXPECT_EQ(enc.summary.unmatched, 1u);
  EXPECT_EQ(enc.summary.inserted_or_substituted, 1u);
  EXPECT_EQ(enc.summary.alignment_length, 3u);
}

TEST_F(TemplateTest, InsertionAtSlotIsAbsorbed) {
  Template t(Ids({"a", "b"}));
  t.SetSlotAtGap(1, true);
  CostModel cm(8.0);
  Tokens doc = Ids({"a", "filler", "b"});
  DocEncoding enc = EncodeDocument(t, doc, cm);
  EXPECT_EQ(enc.summary.unmatched, 0u);
  EXPECT_EQ(enc.summary.alignment_length, 2u);  // slot fill not a column
  ASSERT_EQ(enc.slot_words.size(), 1u);
  EXPECT_EQ(enc.slot_words[0], Ids({"filler"}));
  EXPECT_EQ(enc.summary.slot_word_counts, (std::vector<size_t>{1}));
}

TEST_F(TemplateTest, EmptySlotCostsOneBit) {
  Template t(Ids({"a", "b"}));
  t.SetSlotAtGap(1, true);
  CostModel cm(8.0);
  DocEncoding enc = EncodeDocument(t, t.tokens, cm);
  EXPECT_EQ(enc.summary.slot_word_counts, (std::vector<size_t>{0}));
  // 2 matches + empty slot: <2> + 2 + 1.
  EXPECT_DOUBLE_EQ(enc.base_cost, UniversalCodeLength(2) + 2.0 + 1.0);
}

TEST_F(TemplateTest, MultiWordSlotFill) {
  Template t(Ids({"made", "working", "call"}));
  t.SetSlotAtGap(2, true);
  CostModel cm(8.0);
  Tokens doc = Ids({"made", "working", "on", "this", "job", "call"});
  DocEncoding enc = EncodeDocument(t, doc, cm);
  EXPECT_EQ(enc.summary.unmatched, 0u);
  EXPECT_EQ(enc.slot_words[0], Ids({"on", "this", "job"}));
}

TEST_F(TemplateTest, SubstitutionAtSlotLeavesResidualDeletion) {
  Template t(Ids({"a", "mid", "b"}));
  t.SetSlotAtGap(1, true);
  CostModel cm(8.0);
  Tokens doc = Ids({"a", "other", "b"});
  DocEncoding enc = EncodeDocument(t, doc, cm);
  // "other" went into the slot; "mid" became a residual deletion.
  ASSERT_EQ(enc.slot_words.size(), 1u);
  EXPECT_EQ(enc.slot_words[0], Ids({"other"}));
  EXPECT_EQ(enc.summary.unmatched, 1u);  // the deletion
  EXPECT_EQ(enc.summary.inserted_or_substituted, 0u);
  bool saw_deletion = false;
  for (const auto& col : enc.columns) {
    if (col.kind == ColumnKind::kDeletion) {
      saw_deletion = true;
      EXPECT_EQ(col.template_token, Id("mid"));
    }
  }
  EXPECT_TRUE(saw_deletion);
}

TEST_F(TemplateTest, SlotAbsorptionLowersCost) {
  // Several docs inserting different words at the same gap: enabling the
  // slot must be cheaper than paying per-doc unmatched operations when
  // enough docs differ there.
  Template no_slot(Ids({"this", "is", "great", "and", "cheap"}));
  Template with_slot = no_slot;
  with_slot.SetSlotAtGap(3, true);
  CostModel cm(12.0);
  Tokens doc = Ids({"this", "is", "great", "soap", "and", "cheap"});
  DocEncoding e1 = EncodeDocument(no_slot, doc, cm);
  DocEncoding e2 = EncodeDocument(with_slot, doc, cm);
  // Slot encoding: 1 + <1> + lgV vs unmatched: lg l̂ + 2 + lgV. For this
  // length the slot is cheaper per doc once the slot exists.
  EXPECT_LT(e2.base_cost, e1.base_cost);
}

TEST_F(TemplateTest, GapAttributionFollowsAlgorithm3) {
  // Insertions after the 2nd constant must land in gap 2.
  Template t(Ids({"a", "b", "c"}));
  t.SetSlotAtGap(2, true);
  CostModel cm(8.0);
  Tokens doc = Ids({"a", "b", "w1", "w2", "c"});
  DocEncoding enc = EncodeDocument(t, doc, cm);
  EXPECT_EQ(enc.slot_words[0], Ids({"w1", "w2"}));
  EXPECT_EQ(enc.summary.unmatched, 0u);
}

TEST_F(TemplateTest, EncodeAgainstEmptyTemplate) {
  Template t{Tokens{}};
  CostModel cm(8.0);
  Tokens doc = Ids({"x", "y"});
  DocEncoding enc = EncodeDocument(t, doc, cm);
  EXPECT_EQ(enc.summary.alignment_length, 2u);
  EXPECT_EQ(enc.summary.unmatched, 2u);
  EXPECT_EQ(enc.summary.inserted_or_substituted, 2u);
}

TEST_F(TemplateTest, EncodeEmptyDocument) {
  Template t(Ids({"a", "b"}));
  CostModel cm(8.0);
  DocEncoding enc = EncodeDocument(t, {}, cm);
  EXPECT_EQ(enc.summary.unmatched, 2u);  // both constants deleted
  EXPECT_EQ(enc.summary.inserted_or_substituted, 0u);
}

}  // namespace
}  // namespace infoshield
