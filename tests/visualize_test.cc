#include "core/visualize.h"

#include <gtest/gtest.h>

#include "core/infoshield.h"

namespace infoshield {
namespace {

struct RunResult {
  Corpus corpus;
  InfoShieldResult result;
};

// Enlarges the vocabulary so MDL favors templates (see fine tests).
void PadVocabulary(Corpus& c, size_t num_words) {
  std::string text;
  for (size_t i = 0; i < num_words; ++i) {
    text += "pad" + std::to_string(i) + " ";
    if (text.size() > 200) {
      c.Add(text);
      text.clear();
    }
  }
  if (!text.empty()) c.Add(text);
}

RunResult SlotRun() {
  RunResult rr;
  rr.corpus.Add("this is a great soap and the 5 dollar price is great");
  rr.corpus.Add("this is a great chair and the 10 dollar price is great");
  rr.corpus.Add("this is a great hat and the 3 dollar price is great");
  rr.corpus.Add("this is a great lamp and the 8 dollar price is great");
  PadVocabulary(rr.corpus, 300);
  InfoShield shield;
  rr.result = shield.Run(rr.corpus);
  return rr;
}

TEST(VisualizeTest, AnsiContainsTemplateAndDocs) {
  RunResult rr = SlotRun();
  ASSERT_EQ(rr.result.templates.size(), 1u);
  std::string out = RenderTemplateAnsi(rr.result.templates[0], rr.corpus);
  EXPECT_NE(out.find("Template (4 docs)"), std::string::npos);
  EXPECT_NE(out.find("this is a great"), std::string::npos);
  EXPECT_NE(out.find("soap"), std::string::npos);
  EXPECT_NE(out.find("chair"), std::string::npos);
  // Slots render as red '*' in the template line.
  EXPECT_NE(out.find("\x1b[31m*"), std::string::npos);
}

TEST(VisualizeTest, AnsiColorsCanBeDisabled) {
  RunResult rr = SlotRun();
  VisualizeOptions opts;
  opts.use_color = false;
  std::string out =
      RenderTemplateAnsi(rr.result.templates[0], rr.corpus, opts);
  EXPECT_EQ(out.find("\x1b["), std::string::npos);
}

TEST(VisualizeTest, MaxDocsTruncates) {
  RunResult rr = SlotRun();
  VisualizeOptions opts;
  opts.max_docs = 2;
  std::string out =
      RenderTemplateAnsi(rr.result.templates[0], rr.corpus, opts);
  EXPECT_NE(out.find("... 2 more"), std::string::npos);
}

TEST(VisualizeTest, HtmlEscapesAndStructures) {
  RunResult rr = SlotRun();
  std::string html = RenderTemplateHtml(rr.result.templates[0], rr.corpus);
  EXPECT_NE(html.find("<div class=\"infoshield-cluster\">"),
            std::string::npos);
  EXPECT_NE(html.find("<span class=\"slot\">"), std::string::npos);
  EXPECT_NE(html.find("</div>"), std::string::npos);
}

TEST(VisualizeTest, HtmlEscapesSpecialCharacters) {
  TokenizerOptions keep_punct;
  keep_punct.strip_punctuation = false;
  Corpus c(keep_punct);
  c.Add("price <b> 100 & rising now today yes");
  c.Add("price <b> 100 & rising now today yes");
  c.Add("price <b> 100 & rising now today yes");
  PadVocabulary(c, 300);
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  ASSERT_GE(r.templates.size(), 1u);
  std::string html = RenderTemplateHtml(r.templates[0], c);
  // Document tokens "<b>" and "&" must be escaped (the renderer's own
  // structural tags like <b>Template</b> are legitimate markup).
  EXPECT_NE(html.find("&lt;b&gt;"), std::string::npos);
  EXPECT_NE(html.find("&amp;"), std::string::npos);
  // No raw document token may leak inside the member list.
  size_t list_start = html.find("<ul>");
  ASSERT_NE(list_start, std::string::npos);
  EXPECT_EQ(html.find("<b>", list_start), std::string::npos);
}

TEST(VisualizeTest, FullReportWrapsAllTemplates) {
  RunResult rr = SlotRun();
  std::string report = RenderReportHtml(rr.result.templates, rr.corpus);
  EXPECT_NE(report.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(report.find("1 micro-clusters"), std::string::npos);
  EXPECT_NE(report.find("</html>"), std::string::npos);
}

TEST(VisualizeTest, InsertionsAndDeletionsMarked) {
  // Six identical docs plus one variant: the variant's extra word stays
  // an unmatched insertion (a slot would cost an empty-slot bit on every
  // other member, so MDL rejects it) and its missing word a deletion.
  // Drives FineClustering directly — this tests rendering, not the
  // coarse stage's phrase selection.
  Corpus c;
  std::vector<DocId> cluster;
  for (int i = 0; i < 6; ++i) {
    cluster.push_back(
        c.Add("grand opening best massage in town call today"));
  }
  cluster.push_back(c.Add("grand opening the best massage in town call"));
  PadVocabulary(c, 300);
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, cluster, cm);
  ASSERT_GE(r.templates.size(), 1u);
  EXPECT_EQ(r.templates[0].members.size(), 7u);
  VisualizeOptions opts;
  opts.use_color = false;
  std::string out = RenderTemplateAnsi(r.templates[0], c, opts);
  // The variant inserts "the" (marked +the) and misses "today" (marked
  // [-today]).
  EXPECT_NE(out.find("[-today]"), std::string::npos);
  EXPECT_NE(out.find("+the"), std::string::npos);
}

}  // namespace
}  // namespace infoshield
