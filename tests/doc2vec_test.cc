#include "baselines/doc2vec.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

Corpus TopicCorpus() {
  Corpus c;
  for (int i = 0; i < 15; ++i) {
    c.Add("finance stocks market trading profit investment money");
    c.Add("soccer football goal match player team stadium");
  }
  return c;
}

TEST(Doc2VecTest, TrainsAndEmbeds) {
  Corpus c = TopicCorpus();
  Doc2VecOptions opts;
  opts.dim = 16;
  opts.epochs = 3;
  Doc2Vec model(opts);
  model.Train(c, 21);
  Vec v = model.Embed(c.doc(0));
  EXPECT_EQ(v.size(), 16u);
  EXPECT_GT(L2Norm(v), 0.0f);
}

TEST(Doc2VecTest, SameTopicDocsCloserThanCrossTopic) {
  Corpus c = TopicCorpus();
  Doc2VecOptions opts;
  opts.dim = 16;
  opts.epochs = 10;
  Doc2Vec model(opts);
  model.Train(c, 23);
  // Docs 0 and 2 are finance; doc 1 is soccer.
  Vec f1 = model.Embed(c.doc(0));
  Vec f2 = model.Embed(c.doc(2));
  Vec s1 = model.Embed(c.doc(1));
  EXPECT_LT(CosineDistance(f1, f2), CosineDistance(f1, s1));
}

TEST(Doc2VecTest, DistinctDocsGetDistinctVectors) {
  Corpus c = TopicCorpus();
  Doc2Vec model;
  model.Train(c, 25);
  EXPECT_NE(model.Embed(c.doc(0)), model.Embed(c.doc(1)));
}

TEST(Doc2VecTest, DeterministicTraining) {
  Corpus c = TopicCorpus();
  Doc2Vec m1;
  Doc2Vec m2;
  m1.Train(c, 27);
  m2.Train(c, 27);
  EXPECT_EQ(m1.Embed(c.doc(5)), m2.Embed(c.doc(5)));
}

TEST(Doc2VecDeathTest, EmbeddingForeignDocDies) {
  Corpus c = TopicCorpus();
  Doc2Vec model;
  model.Train(c, 29);
  Document foreign;
  foreign.id = static_cast<DocId>(c.size() + 10);
  EXPECT_DEATH(model.Embed(foreign), "Check failed");
}

}  // namespace
}  // namespace infoshield
