#include "baselines/optics.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

std::vector<Vec> TwoBlobsAndOutlier(Rng& rng) {
  std::vector<Vec> pts;
  auto add_blob = [&](Vec base, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      Vec v = base;
      for (float& x : v) {
        x += 0.01f * static_cast<float>(rng.NextGaussian());
      }
      L2Normalize(v);
      pts.push_back(std::move(v));
    }
  };
  add_blob({1, 0, 0}, 8);
  add_blob({0, 1, 0}, 8);
  pts.push_back({0, 0, 1});  // outlier
  return pts;
}

TEST(OpticsTest, OrderingCoversAllPoints) {
  Rng rng(1);
  std::vector<Vec> pts = TwoBlobsAndOutlier(rng);
  OpticsResult r = Optics(pts, OpticsOptions{});
  EXPECT_EQ(r.ordering.size(), pts.size());
  std::unordered_set<uint32_t> seen(r.ordering.begin(), r.ordering.end());
  EXPECT_EQ(seen.size(), pts.size());
}

TEST(OpticsTest, DbscanExtractionSeparatesBlobs) {
  Rng rng(2);
  std::vector<Vec> pts = TwoBlobsAndOutlier(rng);
  OpticsResult r = Optics(pts, OpticsOptions{});
  std::vector<int64_t> labels = r.ExtractDbscan(0.05);
  std::unordered_set<int64_t> a(labels.begin(), labels.begin() + 8);
  std::unordered_set<int64_t> b(labels.begin() + 8, labels.begin() + 16);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_NE(*a.begin(), *b.begin());
  EXPECT_GE(*a.begin(), 0);
  EXPECT_EQ(labels[16], -1);  // outlier is noise
}

TEST(OpticsTest, CorePointsHaveCoreDistance) {
  Rng rng(3);
  std::vector<Vec> pts = TwoBlobsAndOutlier(rng);
  OpticsOptions opts;
  opts.min_pts = 3;
  OpticsResult r = Optics(pts, opts);
  // Blob members are core points (within max_eps of >= 3 points).
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_NE(r.core_distance[i], OpticsResult::kUndefinedReachability);
    EXPECT_GE(r.core_distance[i], 0.0);
  }
}

TEST(OpticsTest, ReachabilityLowInsideBlobs) {
  Rng rng(4);
  std::vector<Vec> pts = TwoBlobsAndOutlier(rng);
  OpticsResult r = Optics(pts, OpticsOptions{});
  // Points reached after the first of their blob have small reachability.
  size_t small_reach = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (r.reachability[i] != OpticsResult::kUndefinedReachability &&
        r.reachability[i] < 0.05) {
      ++small_reach;
    }
  }
  EXPECT_GE(small_reach, 14u);  // all blob members except the two seeds
}

TEST(OpticsTest, EmptyInput) {
  OpticsResult r = Optics({}, OpticsOptions{});
  EXPECT_TRUE(r.ordering.empty());
  EXPECT_TRUE(r.ExtractDbscan(0.1).empty());
}

TEST(OpticsTest, TighterCutYieldsMoreNoise) {
  Rng rng(5);
  std::vector<Vec> pts = TwoBlobsAndOutlier(rng);
  OpticsResult r = Optics(pts, OpticsOptions{});
  auto count_noise = [](const std::vector<int64_t>& labels) {
    size_t noise = 0;
    for (int64_t l : labels) {
      if (l == -1) ++noise;
    }
    return noise;
  };
  EXPECT_GE(count_noise(r.ExtractDbscan(1e-6)),
            count_noise(r.ExtractDbscan(0.5)));
}

}  // namespace
}  // namespace infoshield
