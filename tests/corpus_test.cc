#include "text/corpus.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(CorpusTest, AddTokenizesAndInterns) {
  Corpus c;
  DocId id = c.Add("This is a great soap");
  EXPECT_EQ(id, 0u);
  const Document& d = c.doc(id);
  EXPECT_EQ(d.tokens.size(), 5u);
  EXPECT_EQ(c.vocab().size(), 5u);
  EXPECT_EQ(d.raw, "This is a great soap");
}

TEST(CorpusTest, SharedVocabularyAcrossDocs) {
  Corpus c;
  c.Add("great soap");
  c.Add("great chair");
  EXPECT_EQ(c.vocab().size(), 3u);  // great, soap, chair
  EXPECT_EQ(c.doc(0).tokens[0], c.doc(1).tokens[0]);
}

TEST(CorpusTest, TokenTextRoundTrip) {
  Corpus c;
  DocId id = c.Add("Hello, World!");
  EXPECT_EQ(c.TokenText(id), "hello world");
}

TEST(CorpusTest, AddTokensDirect) {
  Corpus c;
  TokenId a = c.mutable_vocab().Intern("a");
  TokenId b = c.mutable_vocab().Intern("b");
  DocId id = c.AddTokens({a, b, a}, "a b a");
  EXPECT_EQ(c.doc(id).tokens, (std::vector<TokenId>{a, b, a}));
  EXPECT_EQ(c.TokenText(id), "a b a");
}

TEST(CorpusDeathTest, AddTokensValidatesIds) {
  Corpus c;
  EXPECT_DEATH(c.AddTokens({42}, "bad"), "Check failed");
}

TEST(CorpusTest, EmptyDocument) {
  Corpus c;
  DocId id = c.Add("");
  EXPECT_EQ(c.doc(id).length(), 0u);
  EXPECT_EQ(c.TokenText(id), "");
}

TEST(CorpusTest, SizeAndEmpty) {
  Corpus c;
  EXPECT_TRUE(c.empty());
  c.Add("x");
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.size(), 1u);
}

TEST(CorpusTest, MoveSemantics) {
  Corpus c;
  c.Add("move me");
  Corpus moved = std::move(c);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.TokenText(0), "move me");
}

TEST(CorpusTest, DocIdsAreSequential) {
  Corpus c;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.Add("doc " + std::to_string(i)), static_cast<DocId>(i));
  }
}

}  // namespace
}  // namespace infoshield
