#include "text/corpus.h"

#include <gtest/gtest.h>

namespace infoshield {

// Fakes the document counter close to the DocId limit so the overflow
// guards are testable without materializing ~2^32 documents.
class CorpusTestPeer {
 public:
  static void SetSizeOffset(Corpus& corpus, size_t offset) {
    corpus.debug_size_offset_ = offset;
  }
};

namespace {

TEST(CorpusTest, AddTokenizesAndInterns) {
  Corpus c;
  DocId id = c.Add("This is a great soap");
  EXPECT_EQ(id, 0u);
  const Document& d = c.doc(id);
  EXPECT_EQ(d.tokens.size(), 5u);
  EXPECT_EQ(c.vocab().size(), 5u);
  EXPECT_EQ(d.raw, "This is a great soap");
}

TEST(CorpusTest, SharedVocabularyAcrossDocs) {
  Corpus c;
  c.Add("great soap");
  c.Add("great chair");
  EXPECT_EQ(c.vocab().size(), 3u);  // great, soap, chair
  EXPECT_EQ(c.doc(0).tokens[0], c.doc(1).tokens[0]);
}

TEST(CorpusTest, TokenTextRoundTrip) {
  Corpus c;
  DocId id = c.Add("Hello, World!");
  EXPECT_EQ(c.TokenText(id), "hello world");
}

TEST(CorpusTest, AddTokensDirect) {
  Corpus c;
  TokenId a = c.mutable_vocab().Intern("a");
  TokenId b = c.mutable_vocab().Intern("b");
  DocId id = c.AddTokens({a, b, a}, "a b a");
  EXPECT_EQ(c.doc(id).tokens, (std::vector<TokenId>{a, b, a}));
  EXPECT_EQ(c.TokenText(id), "a b a");
}

TEST(CorpusDeathTest, AddTokensValidatesIds) {
  Corpus c;
  EXPECT_DEATH(c.AddTokens({42}, "bad"), "Check failed");
}

TEST(CorpusTest, EmptyDocument) {
  Corpus c;
  DocId id = c.Add("");
  EXPECT_EQ(c.doc(id).length(), 0u);
  EXPECT_EQ(c.TokenText(id), "");
}

TEST(CorpusTest, SizeAndEmpty) {
  Corpus c;
  EXPECT_TRUE(c.empty());
  c.Add("x");
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.size(), 1u);
}

TEST(CorpusTest, MoveSemantics) {
  Corpus c;
  c.Add("move me");
  Corpus moved = std::move(c);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.TokenText(0), "move me");
}

TEST(CorpusTest, AddBatchMatchesSequentialAdd) {
  // AddBatch parallelizes only tokenization (a pure per-text function);
  // interning stays serial and in input order, so documents, token ids,
  // vocabulary, and raw text must all come out exactly as a sequential
  // Add loop's.
  const std::vector<std::string> texts = {
      "This is a great soap",  "great chair, cheap!",
      "",                      "call 555-1234 now",
      "sureste de Méjico",     "This is a great soap",
      "visit http://scam.com", "completely fresh words entirely",
  };
  Corpus serial;
  for (const std::string& t : texts) serial.Add(t);

  Corpus batched;
  DocId first = batched.AddBatch(texts, /*num_threads=*/4);
  EXPECT_EQ(first, 0u);
  ASSERT_EQ(batched.size(), serial.size());
  EXPECT_EQ(batched.vocab().size(), serial.vocab().size());
  for (DocId d = 0; d < serial.size(); ++d) {
    EXPECT_EQ(batched.doc(d).id, d);
    EXPECT_EQ(batched.doc(d).tokens, serial.doc(d).tokens) << "doc " << d;
    EXPECT_EQ(batched.doc(d).raw, serial.doc(d).raw) << "doc " << d;
  }
}

TEST(CorpusTest, AddBatchAppendsAfterExistingDocs) {
  Corpus c;
  c.Add("existing doc");
  DocId first = c.AddBatch({"new one", "new two"}, /*num_threads=*/2);
  EXPECT_EQ(first, 1u);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.TokenText(2), "new two");
}

TEST(CorpusTest, AddBatchEmptyInput) {
  Corpus c;
  c.Add("x");
  EXPECT_EQ(c.AddBatch({}, /*num_threads=*/4), 1u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(CorpusTest, DocIdsAreSequential) {
  Corpus c;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.Add("doc " + std::to_string(i)), static_cast<DocId>(i));
  }
}

TEST(CorpusTest, TryAddBehavesLikeAddWhenRoomRemains) {
  Corpus c;
  Result<DocId> id = c.TryAdd("great soap");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  Result<DocId> first = c.TryAddBatch({"a b", "c d"}, /*num_threads=*/2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(CorpusTest, TryAddReportsExhaustionAtTheDocIdLimit) {
  Corpus c;
  c.Add("existing");
  CorpusTestPeer::SetSizeOffset(c, Corpus::kMaxDocuments - c.size());
  // Exactly full: one more document would mint an id past the last
  // representable DocId instead of wrapping silently.
  Result<DocId> id = c.TryAdd("one too many");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(c.size(), 1u);  // corpus unchanged
}

TEST(CorpusTest, TryAddBatchIsAllOrNothingNearTheLimit) {
  Corpus c;
  c.Add("existing");
  CorpusTestPeer::SetSizeOffset(c, Corpus::kMaxDocuments - c.size() - 2);
  // Two slots left: a three-document batch must be rejected whole.
  Result<DocId> first =
      c.TryAddBatch({"a", "b", "c"}, /*num_threads=*/1);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(c.size(), 1u);
  // A two-document batch still fits.
  Result<DocId> fits = c.TryAddBatch({"a", "b"}, /*num_threads=*/1);
  ASSERT_TRUE(fits.ok());
  EXPECT_EQ(c.size(), 3u);
}

TEST(CorpusDeathTest, AddPastTheDocIdLimitDies) {
  Corpus c;
  CorpusTestPeer::SetSizeOffset(c, Corpus::kMaxDocuments);
  EXPECT_DEATH(c.Add("overflow"), "Check failed");
  EXPECT_DEATH(c.AddBatch({"overflow"}, /*num_threads=*/1), "Check failed");
  EXPECT_DEATH(c.AddTokens({}, "overflow"), "Check failed");
}

}  // namespace
}  // namespace infoshield
