#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(BinaryMetricsTest, PerfectPrediction) {
  std::vector<bool> truth = {true, false, true, false};
  BinaryMetrics m = ComputeBinaryMetrics(truth, truth);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.f1(), 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(BinaryMetricsTest, CountsCells) {
  std::vector<bool> pred = {true, true, false, false, true};
  std::vector<bool> truth = {true, false, true, false, true};
  BinaryMetrics m = ComputeBinaryMetrics(pred, truth);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.true_negatives, 1u);
  EXPECT_DOUBLE_EQ(m.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.f1(), 2.0 / 3.0);
}

TEST(BinaryMetricsTest, DegenerateDenominators) {
  // No positives predicted and none actual.
  std::vector<bool> none = {false, false};
  BinaryMetrics m = ComputeBinaryMetrics(none, none);
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(BinaryMetricsTest, HighPrecisionLowRecall) {
  // Predict one of four positives.
  std::vector<bool> pred = {true, false, false, false};
  std::vector<bool> truth = {true, true, true, true};
  BinaryMetrics m = ComputeBinaryMetrics(pred, truth);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.25);
}

TEST(AriTest, IdenticalPartitionsScoreOne) {
  std::vector<int64_t> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(labels, labels), 1.0);
}

TEST(AriTest, RelabelingInvariant) {
  std::vector<int64_t> a = {0, 0, 1, 1, 2, 2};
  std::vector<int64_t> b = {7, 7, 3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(AriTest, KnownValue) {
  // Classic example: [0,0,1,1] vs [0,0,0,1].
  std::vector<int64_t> a = {0, 0, 1, 1};
  std::vector<int64_t> b = {0, 0, 0, 1};
  // Contingency: n_00=2, n_10=1, n_11=1. sum_ij=1; sum_a=2; sum_b=3+0=3;
  // total=6; expected=1; max=2.5; ARI = (1-1)/(2.5-1) = 0.
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 1e-12);
}

TEST(AriTest, OppositePartitionIsNonPositive) {
  std::vector<int64_t> a = {0, 0, 0, 1, 1, 1};
  std::vector<int64_t> b = {0, 1, 2, 0, 1, 2};
  EXPECT_LE(AdjustedRandIndex(a, b), 0.0);
}

TEST(AriTest, NoiseExpandsToSingletons) {
  // All -1 on both sides: every item its own cluster on both sides ->
  // identical partitions -> ARI 1.
  std::vector<int64_t> noise = {-1, -1, -1};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(noise, noise), 1.0);
}

TEST(AriTest, ClusteringNoiseHurtsScore) {
  // Truth: all distinct. Prediction: everything in one cluster.
  std::vector<int64_t> truth = {-1, -1, -1, -1};
  std::vector<int64_t> pred = {0, 0, 0, 0};
  EXPECT_LE(AdjustedRandIndex(truth, pred), 0.0);
}

TEST(AriTest, PartialAgreement) {
  std::vector<int64_t> truth = {0, 0, 0, 1, 1, 1, -1, -1};
  std::vector<int64_t> good = {5, 5, 5, 9, 9, 9, -1, -1};
  std::vector<int64_t> worse = {5, 5, 9, 9, 9, 9, 5, -1};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(truth, good), 1.0);
  EXPECT_LT(AdjustedRandIndex(truth, worse),
            AdjustedRandIndex(truth, good));
}

TEST(AriTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({}, {}), 1.0);
}

TEST(AriDeathTest, SizeMismatchDies) {
  std::vector<int64_t> a = {0};
  std::vector<int64_t> b = {0, 1};
  EXPECT_DEATH(AdjustedRandIndex(a, b), "Check failed");
}

TEST(AgreementTest, PerfectAgreementIsAllOnes) {
  std::vector<int64_t> labels = {0, 0, 1, 1, 2, 2};
  ClusteringAgreement ca = ComputeClusteringAgreement(labels, labels);
  EXPECT_DOUBLE_EQ(ca.homogeneity, 1.0);
  EXPECT_DOUBLE_EQ(ca.completeness, 1.0);
  EXPECT_DOUBLE_EQ(ca.v_measure, 1.0);
  EXPECT_DOUBLE_EQ(ca.nmi, 1.0);
}

TEST(AgreementTest, RelabelingInvariant) {
  std::vector<int64_t> a = {0, 0, 1, 1};
  std::vector<int64_t> b = {9, 9, 4, 4};
  ClusteringAgreement ca = ComputeClusteringAgreement(a, b);
  EXPECT_NEAR(ca.v_measure, 1.0, 1e-12);
  EXPECT_NEAR(ca.nmi, 1.0, 1e-12);
}

TEST(AgreementTest, OverSplittingHurtsCompletenessNotHomogeneity) {
  // Prediction splits each true class in two: every predicted cluster is
  // pure (homogeneity 1) but classes are scattered (completeness < 1).
  std::vector<int64_t> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int64_t> pred = {0, 0, 1, 1, 2, 2, 3, 3};
  ClusteringAgreement ca = ComputeClusteringAgreement(truth, pred);
  EXPECT_NEAR(ca.homogeneity, 1.0, 1e-12);
  EXPECT_LT(ca.completeness, 1.0);
  EXPECT_LT(ca.v_measure, 1.0);
}

TEST(AgreementTest, OverMergingHurtsHomogeneityNotCompleteness) {
  std::vector<int64_t> truth = {0, 0, 1, 1, 2, 2};
  std::vector<int64_t> pred = {0, 0, 0, 0, 0, 0};
  ClusteringAgreement ca = ComputeClusteringAgreement(truth, pred);
  EXPECT_LT(ca.homogeneity, 1.0);
  EXPECT_NEAR(ca.completeness, 1.0, 1e-12);
}

TEST(AgreementTest, BoundsHold) {
  std::vector<int64_t> truth = {0, 0, 1, 1, 2, -1, -1, 3};
  std::vector<int64_t> pred = {1, 1, 1, 0, -1, -1, 2, 2};
  ClusteringAgreement ca = ComputeClusteringAgreement(truth, pred);
  for (double v : {ca.homogeneity, ca.completeness, ca.v_measure, ca.nmi}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(AgreementTest, EmptyInput) {
  ClusteringAgreement ca = ComputeClusteringAgreement({}, {});
  EXPECT_DOUBLE_EQ(ca.v_measure, 1.0);
}

}  // namespace
}  // namespace infoshield
