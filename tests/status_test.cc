#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusTest, ResourceExhaustedFactory) {
  Status s = Status::ResourceExhausted("corpus full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: corpus full");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IoError("disk");
  EXPECT_EQ(os.str(), "IoError: disk");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("move me");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "move me");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailingStep() { return Status::Internal("boom"); }

Status Caller() {
  INFOSHIELD_RETURN_IF_ERROR(FailingStep());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Caller().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace infoshield
