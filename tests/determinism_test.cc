// Byte-level reproducibility of the full coarse -> fine pipeline: the
// paper's evaluation tables (and any dedup-style audit trail) require
// that the same corpus and seed always produce the same clusters, in
// the same order, rendered to the same JSON — across repeated runs AND
// across thread counts. Anything less means unordered-container hash
// order or scheduling leaked into the output (tools/lint.py rule
// unordered-determinism guards the code side; this guards the result).

#include <string>

#include <gtest/gtest.h>

#include "coarse/coarse_clustering.h"
#include "core/infoshield.h"
#include "datagen/trafficking_gen.h"
#include "io/json_writer.h"

namespace infoshield {
namespace {

LabeledAds MakeCorpus(uint64_t seed) {
  TraffickingGenOptions o;
  o.num_benign = 80;
  o.num_spam_clusters = 2;
  o.spam_cluster_size_min = 10;
  o.spam_cluster_size_max = 20;
  o.num_ht_clusters = 6;
  o.ht_cluster_size_min = 4;
  o.ht_cluster_size_max = 10;
  return TraffickingGenerator(o).Generate(seed);
}

std::string RunToJson(const Corpus& corpus, size_t num_threads,
                      bool naive_costing = false, size_t scan_threads = 1,
                      bool serial_coarse = false,
                      CoarseBackend backend = CoarseBackend::kTfidfGraph) {
  InfoShieldOptions options;
  options.num_threads = num_threads;
  options.fine.use_naive_costing = naive_costing;
  options.fine.scan_threads = scan_threads;
  options.coarse.use_serial_coarse = serial_coarse;
  options.coarse.backend = backend;
  InfoShield shield(options);
  InfoShieldResult result = shield.Run(corpus);
  return ResultToJson(result, corpus);
}

TEST(DeterminismTest, RepeatedRunsAreByteIdentical) {
  LabeledAds data = MakeCorpus(/*seed=*/42);
  const std::string first = RunToJson(data.corpus, /*num_threads=*/1);
  const std::string second = RunToJson(data.corpus, /*num_threads=*/1);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, ThreadCountDoesNotChangeOutput) {
  LabeledAds data = MakeCorpus(/*seed=*/7);
  const std::string sequential = RunToJson(data.corpus, /*num_threads=*/1);
  const std::string parallel4 = RunToJson(data.corpus, /*num_threads=*/4);
  const std::string parallel8 = RunToJson(data.corpus, /*num_threads=*/8);
  EXPECT_EQ(sequential, parallel4);
  EXPECT_EQ(sequential, parallel8);
}

TEST(DeterminismTest, NaiveCostingIsByteIdenticalToOptimized) {
  // The fine-stage optimizations (consensus-identity caching, alignment
  // reuse, incremental slot costing) are required to be exact: the
  // escape hatch re-derives everything the slow way and must render to
  // the same bytes, at every thread count.
  LabeledAds data = MakeCorpus(/*seed=*/42);
  const std::string optimized = RunToJson(data.corpus, /*num_threads=*/1);
  for (size_t threads : {1u, 4u, 8u}) {
    EXPECT_EQ(optimized,
              RunToJson(data.corpus, threads, /*naive_costing=*/true))
        << "naive costing diverged at num_threads=" << threads;
  }
}

TEST(DeterminismTest, SerialCoarseEscapeHatchIsByteIdentical) {
  // The sharded parallel coarse pipeline (parallel df accumulation,
  // per-document top-phrase fan-out, sort-and-union edge replay) is
  // required to be exact: CoarseOptions::use_serial_coarse re-runs the
  // single-threaded reference, and the two must render to the same
  // bytes at every thread count.
  LabeledAds data = MakeCorpus(/*seed=*/42);
  const std::string serial = RunToJson(data.corpus, /*num_threads=*/1,
                                       /*naive_costing=*/false,
                                       /*scan_threads=*/1,
                                       /*serial_coarse=*/true);
  for (size_t threads : {1u, 4u, 8u}) {
    EXPECT_EQ(serial, RunToJson(data.corpus, threads))
        << "parallel coarse diverged at num_threads=" << threads;
  }
}

TEST(DeterminismTest, ScanThreadsDoNotChangeOutput) {
  // The intra-cluster candidate-alignment scan fans the seed-vs-pool
  // probes across scan_threads; membership decisions stay sequential in
  // pool order, so any worker count must render to the same bytes.
  LabeledAds data = MakeCorpus(/*seed=*/7);
  const std::string sequential = RunToJson(data.corpus, 1);
  for (size_t scan : {2u, 4u, 8u}) {
    EXPECT_EQ(sequential, RunToJson(data.corpus, 1, /*naive_costing=*/false,
                                    /*scan_threads=*/scan))
        << "scan_threads=" << scan << " changed the output";
  }
}

TEST(DeterminismTest, MinhashLshBackendIsByteIdenticalAcrossThreads) {
  // The MinHash/LSH coarse backend must honor the same contract as the
  // tf-idf backend: signatures are pure per-document functions, band
  // keys replay doc-major through the shared edge accumulator, so the
  // serial escape hatch and any worker count render to the same bytes.
  LabeledAds data = MakeCorpus(/*seed=*/42);
  const std::string serial = RunToJson(data.corpus, /*num_threads=*/1,
                                       /*naive_costing=*/false,
                                       /*scan_threads=*/1,
                                       /*serial_coarse=*/true,
                                       CoarseBackend::kMinhashLsh);
  ASSERT_FALSE(serial.empty());
  for (size_t threads : {1u, 4u, 8u}) {
    EXPECT_EQ(serial, RunToJson(data.corpus, threads,
                                /*naive_costing=*/false, /*scan_threads=*/1,
                                /*serial_coarse=*/false,
                                CoarseBackend::kMinhashLsh))
        << "LSH coarse backend diverged at num_threads=" << threads;
  }
}

TEST(DeterminismTest, RegeneratedCorpusIsByteIdentical) {
  // The generator itself must be seed-deterministic, or the pipeline
  // guarantees above would be untestable end to end.
  LabeledAds a = MakeCorpus(/*seed=*/1234);
  LabeledAds b = MakeCorpus(/*seed=*/1234);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  EXPECT_EQ(RunToJson(a.corpus, 2), RunToJson(b.corpus, 2));
}

}  // namespace
}  // namespace infoshield
