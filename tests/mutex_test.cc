#include "util/mutex.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace infoshield {
namespace {

TEST(MutexTest, LockUnlock) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  SUCCEED();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  EXPECT_TRUE(mu.TryLock());
  // Self-try while held must fail from another thread (trying from this
  // thread would be UB on a non-recursive mutex).
  bool acquired = true;
  std::thread other([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  other.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  struct Counter {
    Mutex mu;
    int value GUARDED_BY(mu) = 0;
  };
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&counter.mu);
        ++counter.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&counter.mu);
  EXPECT_EQ(counter.value, kThreads * kIncrements);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (local, so annotated by comment)
  bool observed = false;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    observed = true;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, ProducerConsumerHandsOffEveryItem) {
  Mutex mu;
  CondVar item_ready;
  std::vector<int> queue;  // guarded by mu
  bool done = false;       // guarded by mu
  constexpr int kItems = 500;

  long long consumed_sum = 0;
  std::thread consumer([&] {
    while (true) {
      int item;
      {
        MutexLock lock(&mu);
        while (queue.empty() && !done) item_ready.Wait(mu);
        if (queue.empty()) return;
        item = queue.back();
        queue.pop_back();
      }
      consumed_sum += item;
    }
  });

  long long produced_sum = 0;
  for (int i = 1; i <= kItems; ++i) {
    produced_sum += i;
    {
      MutexLock lock(&mu);
      queue.push_back(i);
    }
    item_ready.NotifyOne();
  }
  {
    MutexLock lock(&mu);
    done = true;
  }
  item_ready.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed_sum, produced_sum);
}

}  // namespace
}  // namespace infoshield
