// Parameterized property tests over the full pipeline: invariants that
// must hold for any seed and any generator configuration.

#include <gtest/gtest.h>

#include "core/infoshield.h"
#include "datagen/twitter_gen.h"
#include "eval/metrics.h"

namespace infoshield {
namespace {

struct PropertyCase {
  uint64_t seed;
  size_t genuine;
  size_t bots;
  double edit_prob;
};

class PipelinePropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(PipelinePropertyTest, StructuralInvariantsHold) {
  const PropertyCase& p = GetParam();
  TwitterGenOptions o;
  o.num_genuine_accounts = p.genuine;
  o.num_bot_accounts = p.bots;
  o.bot_edit_prob = p.edit_prob;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(p.seed);

  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);

  // 1. doc_template is a partial function into templates.
  ASSERT_EQ(r.doc_template.size(), data.corpus.size());
  for (int64_t t : r.doc_template) {
    EXPECT_GE(t, -1);
    EXPECT_LT(t, static_cast<int64_t>(r.templates.size()));
  }

  // 2. Template membership partitions the suspicious set: no doc in two
  //    templates, membership lists sorted and consistent with the map.
  std::vector<int> seen(data.corpus.size(), 0);
  for (size_t t = 0; t < r.templates.size(); ++t) {
    const TemplateCluster& tc = r.templates[t];
    EXPECT_GE(tc.members.size(), 2u);  // min_template_support
    EXPECT_EQ(tc.members.size(), tc.encodings.size());
    for (size_t i = 1; i < tc.members.size(); ++i) {
      EXPECT_LT(tc.members[i - 1], tc.members[i]);
    }
    for (DocId d : tc.members) {
      EXPECT_EQ(r.doc_template[d], static_cast<int64_t>(t));
      ++seen[d];
    }
  }
  for (int count : seen) EXPECT_LE(count, 1);

  // 3. Every cluster compresses or stays flat, never inflates; relative
  //    length within (0, 1] and above the Lemma 1 bound.
  for (const ClusterStats& s : r.cluster_stats) {
    EXPECT_LE(s.cost_after, s.cost_before);
    EXPECT_GT(s.relative_length, 0.0);
    EXPECT_LE(s.relative_length, 1.0);
    if (s.num_templates > 0) {
      EXPECT_GE(s.relative_length, s.lower_bound * 0.999);
    }
  }

  // 4. Slot fills decode losslessly: each encoding's column walk must
  //    reproduce the original document tokens.
  for (const TemplateCluster& tc : r.templates) {
    for (size_t m = 0; m < tc.members.size(); ++m) {
      std::vector<TokenId> reconstructed;
      for (const AnnotatedColumn& col : tc.encodings[m].columns) {
        switch (col.kind) {
          case ColumnKind::kConstant:
          case ColumnKind::kSlotFill:
          case ColumnKind::kInsertion:
          case ColumnKind::kSubstitution:
            reconstructed.push_back(col.doc_token);
            break;
          case ColumnKind::kDeletion:
            break;
        }
      }
      EXPECT_EQ(reconstructed, data.corpus.doc(tc.members[m]).tokens)
          << "template member " << m << " fails lossless reconstruction";
    }
  }

  // 5. Determinism: a rerun gives the identical result.
  InfoShieldResult r2 = shield.Run(data.corpus);
  EXPECT_EQ(r.doc_template, r2.doc_template);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinePropertyTest,
    ::testing::Values(PropertyCase{1, 10, 5, 0.02},
                      PropertyCase{2, 15, 8, 0.05},
                      PropertyCase{3, 8, 12, 0.10},
                      PropertyCase{4, 20, 4, 0.00},
                      PropertyCase{5, 5, 15, 0.15},
                      PropertyCase{6, 12, 6, 0.08}));

// Precision should degrade gracefully (not collapse) as bot edit noise
// rises — the slope matters for Fig. 1-left's story.
TEST(PipelineNoiseSweepTest, PrecisionSurvivesModerateNoise) {
  double previous_f1 = 1.1;
  for (double noise : {0.0, 0.05, 0.10}) {
    TwitterGenOptions o;
    o.num_genuine_accounts = 15;
    o.num_bot_accounts = 10;
    o.bot_edit_prob = noise;
    TwitterGenerator gen(o);
    LabeledTweets data = gen.Generate(42);
    InfoShield shield;
    InfoShieldResult r = shield.Run(data.corpus);
    std::vector<bool> predicted;
    for (size_t i = 0; i < data.corpus.size(); ++i) {
      predicted.push_back(r.IsSuspicious(static_cast<DocId>(i)));
    }
    std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
    BinaryMetrics m = ComputeBinaryMetrics(predicted, truth);
    EXPECT_GT(m.f1(), 0.7) << "noise " << noise;
    // Allow mild non-monotonicity but catch collapses.
    EXPECT_GT(m.f1(), previous_f1 - 0.25);
    previous_f1 = m.f1();
  }
}

}  // namespace
}  // namespace infoshield
