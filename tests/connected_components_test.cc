#include "graph/connected_components.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/union_find.h"
#include "util/random.h"

namespace infoshield {
namespace {

TEST(ComponentsTest, AllSingletonsKeptAtMinSizeOne) {
  UnionFind uf(3);
  Components c = ExtractComponents(uf, 1);
  EXPECT_EQ(c.size(), 3u);
}

TEST(ComponentsTest, MinSizeDropsSingletons) {
  UnionFind uf(4);
  uf.Union(0, 2);
  Components c = ExtractComponents(uf, 2);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.groups[0], (std::vector<uint32_t>{0, 2}));
}

TEST(ComponentsTest, DeterministicOrdering) {
  UnionFind uf(6);
  uf.Union(4, 5);
  uf.Union(1, 3);
  Components c = ExtractComponents(uf, 2);
  ASSERT_EQ(c.size(), 2u);
  // Components ordered by smallest member: {1,3} before {4,5}.
  EXPECT_EQ(c.groups[0], (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(c.groups[1], (std::vector<uint32_t>{4, 5}));
}

TEST(ComponentsTest, MembersAscendWithinGroup) {
  UnionFind uf(5);
  uf.Union(4, 0);
  uf.Union(2, 4);
  Components c = ExtractComponents(uf, 2);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.groups[0], (std::vector<uint32_t>{0, 2, 4}));
}

TEST(ComponentsTest, EmptyUnionFind) {
  UnionFind uf(0);
  EXPECT_EQ(ExtractComponents(uf, 1).size(), 0u);
}

TEST(ComponentsTest, InvariantUnderEdgeInsertionOrder) {
  // Connected components are a pure function of the edge *set*: union-find
  // internals (parents, ranks) may differ per insertion order, but the
  // extracted partition may not. The parallel coarse stage's
  // sort-and-union step leans on this — its edge buffers arrive in a
  // schedule-dependent order before canonical sorting, and components
  // must not care. Random graphs over random permutations, seeded so
  // failures reproduce.
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    Rng rng(seed);
    const size_t num_nodes = 32 + rng.NextIndex(64);
    const size_t num_edges = rng.NextIndex(3 * num_nodes);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(num_edges);
    for (size_t e = 0; e < num_edges; ++e) {
      edges.emplace_back(static_cast<uint32_t>(rng.NextIndex(num_nodes)),
                         static_cast<uint32_t>(rng.NextIndex(num_nodes)));
    }

    UnionFind reference(num_nodes);
    for (const auto& [a, b] : edges) reference.Union(a, b);
    const Components expected = ExtractComponents(reference, 1);

    for (int perm = 0; perm < 16; ++perm) {
      rng.Shuffle(edges);
      UnionFind uf(num_nodes);
      for (const auto& [a, b] : edges) uf.Union(a, b);
      Components got = ExtractComponents(uf, 1);
      ASSERT_EQ(got.groups, expected.groups)
          << "seed=" << seed << " permutation=" << perm;
    }
  }
}

}  // namespace
}  // namespace infoshield
