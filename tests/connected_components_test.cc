#include "graph/connected_components.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(ComponentsTest, AllSingletonsKeptAtMinSizeOne) {
  UnionFind uf(3);
  Components c = ExtractComponents(uf, 1);
  EXPECT_EQ(c.size(), 3u);
}

TEST(ComponentsTest, MinSizeDropsSingletons) {
  UnionFind uf(4);
  uf.Union(0, 2);
  Components c = ExtractComponents(uf, 2);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.groups[0], (std::vector<uint32_t>{0, 2}));
}

TEST(ComponentsTest, DeterministicOrdering) {
  UnionFind uf(6);
  uf.Union(4, 5);
  uf.Union(1, 3);
  Components c = ExtractComponents(uf, 2);
  ASSERT_EQ(c.size(), 2u);
  // Components ordered by smallest member: {1,3} before {4,5}.
  EXPECT_EQ(c.groups[0], (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(c.groups[1], (std::vector<uint32_t>{4, 5}));
}

TEST(ComponentsTest, MembersAscendWithinGroup) {
  UnionFind uf(5);
  uf.Union(4, 0);
  uf.Union(2, 4);
  Components c = ExtractComponents(uf, 2);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.groups[0], (std::vector<uint32_t>{0, 2, 4}));
}

TEST(ComponentsTest, EmptyUnionFind) {
  UnionFind uf(0);
  EXPECT_EQ(ExtractComponents(uf, 1).size(), 0u);
}

}  // namespace
}  // namespace infoshield
