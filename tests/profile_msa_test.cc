#include "msa/profile_msa.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

using Tokens = std::vector<TokenId>;

TEST(ProfileMsaTest, SingleSequenceIsItsOwnConsensus) {
  Tokens seq = {1, 2, 3};
  ProfileMsa msa(seq);
  EXPECT_EQ(msa.num_sequences(), 1u);
  EXPECT_EQ(msa.column_count(), 3u);
  EXPECT_EQ(msa.ConsensusAtThreshold(0), seq);
  EXPECT_TRUE(msa.ConsensusAtThreshold(1).empty());
}

TEST(ProfileMsaTest, IdenticalSequencesKeepColumns) {
  Tokens seq = {5, 6, 7};
  ProfileMsa msa(seq);
  msa.AddSequence(seq);
  msa.AddSequence(seq);
  EXPECT_EQ(msa.column_count(), 3u);
  EXPECT_EQ(msa.ConsensusAtThreshold(2), seq);
}

TEST(ProfileMsaTest, SubstitutionSharesColumn) {
  // Unlike POA, a profile blurs alternatives into one column: the
  // substituted token occupies the same column as the original.
  ProfileMsa msa({1, 2, 3});
  msa.AddSequence({1, 9, 3});
  EXPECT_EQ(msa.column_count(), 3u);
  // At threshold 1 the middle column ties 1-1 and stays out.
  EXPECT_EQ(msa.ConsensusAtThreshold(1), (Tokens{1, 3}));
  // At threshold 0 the dominant (tie -> smaller id) token appears.
  EXPECT_EQ(msa.ConsensusAtThreshold(0), (Tokens{1, 2, 3}));
}

TEST(ProfileMsaTest, InsertionAddsColumn) {
  ProfileMsa msa({1, 2});
  msa.AddSequence({1, 7, 2});
  EXPECT_EQ(msa.column_count(), 3u);
  EXPECT_EQ(msa.ConsensusAtThreshold(1), (Tokens{1, 2}));
}

TEST(ProfileMsaTest, MajorityConsensus) {
  ProfileMsa msa({10, 20, 30});
  msa.AddSequence({10, 20, 30});
  msa.AddSequence({10, 99, 30});
  // "support > h": the middle column's dominant token 20 has count 2.
  EXPECT_EQ(msa.ConsensusAtThreshold(1), (Tokens{10, 20, 30}));
  EXPECT_EQ(msa.ConsensusAtThreshold(2), (Tokens{10, 30}));
}

TEST(ProfileMsaTest, EmptySequences) {
  ProfileMsa msa(Tokens{});
  EXPECT_EQ(msa.column_count(), 0u);
  msa.AddSequence({4, 5});
  EXPECT_EQ(msa.ConsensusAtThreshold(0), (Tokens{4, 5}));
  msa.AddSequence({});
  EXPECT_EQ(msa.num_sequences(), 3u);
  EXPECT_EQ(msa.column_count(), 2u);
}

TEST(ProfileMsaTest, ConsensusMonotoneInThreshold) {
  Rng rng(77);
  Tokens base;
  for (int i = 0; i < 12; ++i) base.push_back(100 + i);
  ProfileMsa msa(base);
  for (int s = 0; s < 6; ++s) {
    Tokens v;
    for (TokenId t : base) {
      if (rng.NextBernoulli(0.1)) continue;
      v.push_back(t);
    }
    msa.AddSequence(v);
  }
  size_t prev = msa.ConsensusAtThreshold(0).size();
  for (size_t h = 1; h <= msa.num_sequences(); ++h) {
    size_t cur = msa.ConsensusAtThreshold(h).size();
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(ProfileMsaTest, WorksAsMsaAlignerInterface) {
  std::unique_ptr<MsaAligner> aligner =
      std::make_unique<ProfileMsa>(Tokens{1, 2, 3});
  aligner->AddSequence({1, 2, 3});
  EXPECT_EQ(aligner->num_sequences(), 2u);
  EXPECT_EQ(aligner->ConsensusAtThreshold(1), (Tokens{1, 2, 3}));
}

}  // namespace
}  // namespace infoshield
