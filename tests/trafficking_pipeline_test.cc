// Parameterized pipeline invariants on trafficking-style corpora,
// complementing the Twitter sweep in pipeline_property_test.cc.

#include <gtest/gtest.h>

#include "core/infoshield.h"
#include "core/ranking.h"
#include "datagen/trafficking_gen.h"
#include "eval/metrics.h"

namespace infoshield {
namespace {

struct Case {
  uint64_t seed;
  size_t benign;
  size_t ht_clusters;
  double edit_prob;
};

class TraffickingPipelineTest : public ::testing::TestWithParam<Case> {};

TEST_P(TraffickingPipelineTest, InvariantsHold) {
  const Case& p = GetParam();
  TraffickingGenOptions o;
  o.num_benign = p.benign;
  o.num_spam_clusters = 2;
  o.spam_cluster_size_min = 15;
  o.spam_cluster_size_max = 30;
  o.num_ht_clusters = p.ht_clusters;
  o.ht_edit_prob = p.edit_prob;
  TraffickingGenerator gen(o);
  LabeledAds data = gen.Generate(p.seed);

  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);

  // Detection quality floor: organized activity found with high
  // precision (the paper's headline property for this domain).
  std::vector<bool> predicted;
  std::vector<bool> truth;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    predicted.push_back(r.IsSuspicious(static_cast<DocId>(i)));
    truth.push_back(data.type[i] != AdType::kBenign);
  }
  BinaryMetrics m = ComputeBinaryMetrics(predicted, truth);
  EXPECT_GT(m.precision(), 0.8) << "seed " << p.seed;
  EXPECT_GT(m.recall(), 0.5) << "seed " << p.seed;

  // Ranking invariants: ordered by slack; every template present once.
  const CostModel cm = CostModel::ForVocabulary(data.corpus.vocab());
  std::vector<RankedTemplate> ranked = RankTemplates(r, data.corpus, cm);
  ASSERT_EQ(ranked.size(), r.templates.size());
  std::vector<bool> seen(r.templates.size(), false);
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(ranked[i - 1].slack, ranked[i].slack);
    }
    ASSERT_LT(ranked[i].template_index, seen.size());
    EXPECT_FALSE(seen[ranked[i].template_index]);
    seen[ranked[i].template_index] = true;
    EXPECT_GE(ranked[i].relative_length, ranked[i].lower_bound * 0.999);
  }

  // Agreement metrics are well-formed against the generator's labels.
  ClusteringAgreement ca =
      ComputeClusteringAgreement(data.cluster_label, r.doc_template);
  EXPECT_GE(ca.v_measure, 0.0);
  EXPECT_LE(ca.v_measure, 1.0);
  EXPECT_GT(ca.nmi, 0.3) << "clustering should carry real signal";
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraffickingPipelineTest,
                         ::testing::Values(Case{1, 100, 8, 0.02},
                                           Case{2, 200, 12, 0.05},
                                           Case{3, 150, 6, 0.10},
                                           Case{4, 50, 15, 0.04}));

}  // namespace
}  // namespace infoshield
