#include "io/json_writer.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.BeginObject().EndObject();
  EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriterTest, KeyValuePairs) {
  JsonWriter w;
  w.BeginObject()
      .Key("name")
      .String("infoshield")
      .Key("count")
      .Int(42)
      .Key("ratio")
      .Double(0.5)
      .Key("on")
      .Bool(true)
      .Key("missing")
      .Null()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"infoshield\",\"count\":42,\"ratio\":0.5,"
            "\"on\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject()
      .Key("list")
      .BeginArray()
      .Int(1)
      .Int(2)
      .BeginObject()
      .Key("x")
      .Int(3)
      .EndObject()
      .EndArray()
      .EndObject();
  EXPECT_EQ(w.str(), "{\"list\":[1,2,{\"x\":3}]}");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(EscapeJsonString("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(EscapeJsonString(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray().Double(1.0 / 0.0).EndArray();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriterDeathTest, ValueWithoutKeyInObjectDies) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject().Int(1);
      },
      "Check failed");
}

TEST(JsonWriterDeathTest, KeyOutsideObjectDies) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginArray().Key("x");
      },
      "Check failed");
}

TEST(ResultToJsonTest, SerializesToyRun) {
  Corpus c;
  c.Add("buy cheap watches now great deal online store very cheap");
  c.Add("buy cheap watches now great deal online store very cheap");
  c.Add("buy cheap watches now great deal online store very cheap");
  c.Add("totally unrelated words elsewhere entirely different");
  // Realistic vocabulary so the MDL trade-off favors a template.
  for (int i = 0; i < 20; ++i) {
    std::string filler;
    for (int j = 0; j < 10; ++j) {
      filler += "pad" + std::to_string(i * 10 + j) + " ";
    }
    c.Add(filler);
  }

  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  std::string json = ResultToJson(r, c);
  EXPECT_NE(json.find("\"num_documents\":24"), std::string::npos);
  EXPECT_NE(json.find("\"templates\":["), std::string::npos);
  EXPECT_NE(json.find("buy cheap watches"), std::string::npos);
  // Balanced braces as a cheap well-formedness smoke check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace infoshield
