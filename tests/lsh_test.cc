// MinHash/LSH backend math and contract tests (DESIGN.md §16): the
// Jaccard-estimate concentration the banding threshold rests on,
// parameter validation, banding structure, thread-count determinism of
// the full kMinhashLsh coarse path, and the empty/degenerate corpora
// the backend must not trip over.

#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "coarse/coarse_clustering.h"
#include "lsh/lsh_index.h"
#include "lsh/minhash.h"
#include "text/corpus.h"
#include "util/status.h"

namespace infoshield {
namespace {

std::vector<TokenId> TokenRange(uint32_t begin, uint32_t end) {
  std::vector<TokenId> tokens;
  for (uint32_t t = begin; t < end; ++t) {
    tokens.push_back(static_cast<TokenId>(t));
  }
  return tokens;
}

// Exact Jaccard of the two documents' shingle sets.
double ExactJaccard(const std::vector<TokenId>& a,
                    const std::vector<TokenId>& b, size_t shingle_k) {
  const std::vector<uint64_t> sa = ShingleHashes(a, shingle_k);
  const std::vector<uint64_t> sb = ShingleHashes(b, shingle_k);
  const std::unordered_set<uint64_t> set_a(sa.begin(), sa.end());
  const std::unordered_set<uint64_t> set_b(sb.begin(), sb.end());
  size_t inter = 0;
  for (uint64_t h : set_b) inter += set_a.count(h);
  const size_t uni = set_a.size() + set_b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

TEST(MinHashTest, JaccardEstimateConverges) {
  // Each signature component agrees with probability J (the MinHash
  // property), so the estimator is a mean of num_hashes Bernoulli(J)
  // draws. Hoeffding: P(|est - J| >= t) <= 2 exp(-2 t^2 num_hashes);
  // with num_hashes = 256 and delta = 1e-9 the tolerance is
  // t = sqrt(ln(2/delta) / (2 * 256)) ~= 0.2 — this test flakes with
  // probability < 1e-9 per pair if the implementation is correct, and
  // deterministically (fixed seed) not at all.
  MinHashParams params;
  params.num_hashes = 256;
  params.shingle_k = 1;
  const MinHashFamily family(params);
  const double tolerance =
      std::sqrt(std::log(2.0 / 1e-9) /
                (2.0 * static_cast<double>(params.num_hashes)));

  // Overlap fractions from disjoint to identical: A = [0, 100),
  // B = [cut, 100 + cut) share 100 - cut unigram shingles.
  for (uint32_t cut : {0u, 25u, 50u, 75u, 100u}) {
    const std::vector<TokenId> a = TokenRange(0, 100);
    const std::vector<TokenId> b = TokenRange(cut, 100 + cut);
    const double exact = ExactJaccard(a, b, params.shingle_k);
    const double estimate =
        EstimateJaccard(family.Signature(a), family.Signature(b));
    EXPECT_NEAR(estimate, exact, tolerance)
        << "cut=" << cut << " exact J=" << exact;
  }
}

TEST(MinHashTest, IdenticalDocumentsEstimateOne) {
  const MinHashFamily family(MinHashParams{});
  const std::vector<TokenId> doc = TokenRange(5, 40);
  EXPECT_EQ(family.Signature(doc), family.Signature(doc));
  EXPECT_DOUBLE_EQ(
      EstimateJaccard(family.Signature(doc), family.Signature(doc)), 1.0);
}

TEST(MinHashTest, ShortDocumentFallsBackToWholeDocShingle) {
  // Documents shorter than shingle_k sketch their whole token sequence,
  // so exact duplicates keep identical signatures at any length.
  MinHashParams params;
  params.shingle_k = 5;
  const MinHashFamily family(params);
  const std::vector<TokenId> tiny = {1, 2};
  EXPECT_EQ(ShingleHashes(tiny, params.shingle_k).size(), 1u);
  EXPECT_EQ(family.Signature(tiny), family.Signature(tiny));
  EXPECT_TRUE(family.Signature({}).empty());
}

TEST(MinHashTest, ValidateRejectsDegenerateParams) {
  MinHashParams zero_hashes;
  zero_hashes.num_hashes = 0;
  EXPECT_EQ(zero_hashes.Validate().code(), StatusCode::kInvalidArgument);

  MinHashParams zero_shingle;
  zero_shingle.shingle_k = 0;
  EXPECT_EQ(zero_shingle.Validate().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(MinHashParams{}.Validate().ok());
}

TEST(LshIndexTest, ValidateRejectsBadBanding) {
  const MinHashParams minhash;  // num_hashes = 128

  LshParams zero_bands;
  zero_bands.bands = 0;
  EXPECT_EQ(zero_bands.Validate(minhash).code(),
            StatusCode::kInvalidArgument);

  LshParams zero_rows;
  zero_rows.rows = 0;
  EXPECT_EQ(zero_rows.Validate(minhash).code(), StatusCode::kInvalidArgument);

  LshParams mismatched;
  mismatched.bands = 10;
  mismatched.rows = 10;  // 100 != 128
  const Status status = mismatched.Validate(minhash);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("128"), std::string::npos)
      << "message should name the mismatched sizes: " << status.ToString();

  EXPECT_TRUE(LshParams{}.Validate(minhash).ok());
}

TEST(LshIndexTest, BandKeysPartitionTheSignature) {
  MinHashParams params;
  params.num_hashes = 8;
  const MinHashFamily family(params);
  LshParams banding;
  banding.bands = 4;
  banding.rows = 2;

  const MinHashSignature sig = family.Signature(TokenRange(0, 30));
  const std::vector<uint64_t> keys = BandKeys(sig, banding);
  ASSERT_EQ(keys.size(), banding.bands);

  // Changing a component of band 0 changes only band 0's key.
  MinHashSignature perturbed = sig;
  perturbed[1] ^= 1;
  const std::vector<uint64_t> keys2 = BandKeys(perturbed, banding);
  EXPECT_NE(keys2[0], keys[0]);
  for (size_t band = 1; band < banding.bands; ++band) {
    EXPECT_EQ(keys2[band], keys[band]) << "band " << band;
  }
  EXPECT_TRUE(BandKeys(MinHashSignature{}, banding).empty());
}

TEST(LshIndexTest, QueryFindsCoBucketedDocuments) {
  MinHashParams params;
  params.num_hashes = 16;
  const MinHashFamily family(params);
  LshParams banding;
  banding.bands = 4;
  banding.rows = 4;

  const std::vector<TokenId> dup = TokenRange(0, 20);
  const std::vector<TokenId> other = TokenRange(100, 140);
  const std::vector<MinHashSignature> signatures = {
      family.Signature(dup), family.Signature(dup), family.Signature(other)};

  LshIndex index(params, banding);
  index.Build(signatures, /*num_threads=*/1);
  const std::vector<DocId> hits = index.Query(family.Signature(dup));
  EXPECT_EQ(hits, (std::vector<DocId>{0, 1}));

  const LshIndex::Stats stats = index.ComputeStats();
  EXPECT_EQ(stats.max_bucket, 2u);
  // Docs 0 and 1 co-bucket in all 4 bands: 4 * C(2,2) pairs.
  EXPECT_EQ(stats.candidate_pairs, 4u);
}

// --- full kMinhashLsh coarse path ------------------------------------

Corpus DuplicateFamilyCorpus() {
  Corpus corpus;
  corpus.Add("red fox jumps over the lazy dog tonight");
  corpus.Add("call me now for the best massage in town");
  corpus.Add("red fox jumps over the lazy dog tonight");
  corpus.Add("totally unrelated benign advertisement text here");
  corpus.Add("call me now for the best massage in town");
  corpus.Add("red fox jumps over the lazy dog tonight");
  return corpus;
}

CoarseResult RunLsh(const Corpus& corpus, size_t num_threads,
                    bool serial = false) {
  CoarseOptions options;
  options.backend = CoarseBackend::kMinhashLsh;
  options.num_threads = num_threads;
  options.use_serial_coarse = serial;
  return CoarseClustering(options).Run(corpus);
}

TEST(LshCoarseTest, ExactDuplicatesCluster) {
  const CoarseResult result = RunLsh(DuplicateFamilyCorpus(), 1);
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clusters[0], (std::vector<DocId>{0, 2, 5}));
  EXPECT_EQ(result.clusters[1], (std::vector<DocId>{1, 4}));
  EXPECT_EQ(result.singletons, (std::vector<DocId>{3}));
}

TEST(LshCoarseTest, DeterministicAcrossThreadCounts) {
  const Corpus corpus = DuplicateFamilyCorpus();
  const CoarseResult reference = RunLsh(corpus, 1, /*serial=*/true);
  for (size_t threads : {1u, 4u, 8u}) {
    const CoarseResult run = RunLsh(corpus, threads);
    EXPECT_EQ(run.clusters, reference.clusters) << "threads=" << threads;
    EXPECT_EQ(run.singletons, reference.singletons) << "threads=" << threads;
    EXPECT_EQ(run.doc_top_phrases, reference.doc_top_phrases)
        << "threads=" << threads;
    EXPECT_EQ(run.num_edges, reference.num_edges) << "threads=" << threads;
  }
}

TEST(LshCoarseTest, EmptyAndSingleDocCorpora) {
  const Corpus empty;
  const CoarseResult none = RunLsh(empty, 4);
  EXPECT_TRUE(none.clusters.empty());
  EXPECT_TRUE(none.singletons.empty());
  EXPECT_EQ(none.num_edges, 0u);

  Corpus one;
  one.Add("a single lonely document");
  const CoarseResult single = RunLsh(one, 4);
  EXPECT_TRUE(single.clusters.empty());
  EXPECT_EQ(single.singletons, (std::vector<DocId>{0}));
}

TEST(LshCoarseTest, StatsReportBucketsAndPairs) {
  const CoarseResult result = RunLsh(DuplicateFamilyCorpus(), 1);
  EXPECT_GT(result.stats.lsh_buckets, 0u);
  // The triple-duplicate family co-buckets in every band.
  EXPECT_EQ(result.stats.lsh_max_bucket, 3u);
  EXPECT_GT(result.stats.lsh_candidate_pairs, 0u);
  EXPECT_GT(result.num_edges, 0u);
  EXPECT_EQ(result.stats.index_seconds, 0.0);
  EXPECT_EQ(result.stats.top_phrase_seconds, 0.0);
}

}  // namespace
}  // namespace infoshield
