#include "baselines/hdbscan.h"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

// Builds `count` unit vectors jittered around a base direction.
void AddBlob(std::vector<Vec>& pts, Vec base, size_t count, Rng& rng,
             float jitter = 0.02f) {
  for (size_t i = 0; i < count; ++i) {
    Vec v = base;
    for (float& x : v) {
      x += jitter * static_cast<float>(rng.NextGaussian());
    }
    L2Normalize(v);
    pts.push_back(std::move(v));
  }
}

TEST(HdbscanTest, SeparatesTwoBlobsFromNoise) {
  Rng rng(101);
  std::vector<Vec> pts;
  AddBlob(pts, {1, 0, 0, 0}, 10, rng);
  AddBlob(pts, {0, 1, 0, 0}, 10, rng);
  // Scatter points in random directions.
  for (int i = 0; i < 6; ++i) {
    Vec v(4);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    L2Normalize(v);
    pts.push_back(std::move(v));
  }
  HdbscanOptions opts;
  opts.min_cluster_size = 3;
  std::vector<int64_t> labels = Hdbscan(pts, opts);

  // Points 0-9 share one label; 10-19 share another distinct label.
  std::unordered_set<int64_t> blob_a(labels.begin(), labels.begin() + 10);
  std::unordered_set<int64_t> blob_b(labels.begin() + 10,
                                     labels.begin() + 20);
  EXPECT_EQ(blob_a.size(), 1u);
  EXPECT_EQ(blob_b.size(), 1u);
  EXPECT_NE(*blob_a.begin(), *blob_b.begin());
  EXPECT_GE(*blob_a.begin(), 0);
  EXPECT_GE(*blob_b.begin(), 0);
}

TEST(HdbscanTest, TooFewPointsAllNoise) {
  std::vector<Vec> pts = {{1, 0}, {0, 1}};
  HdbscanOptions opts;
  opts.min_cluster_size = 3;
  for (int64_t l : Hdbscan(pts, opts)) EXPECT_EQ(l, -1);
}

TEST(HdbscanTest, ExactDuplicateGroupsCluster) {
  // Mirrors the paper's baseline setting: min cluster size 3, micro
  // groups of duplicates among scattered singletons.
  Rng rng(202);
  std::vector<Vec> pts;
  AddBlob(pts, {1, 0, 0}, 4, rng, 0.001f);
  AddBlob(pts, {0, 0, 1}, 5, rng, 0.001f);
  for (int i = 0; i < 12; ++i) {
    Vec v(3);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    L2Normalize(v);
    pts.push_back(std::move(v));
  }
  HdbscanOptions opts;
  opts.min_cluster_size = 3;
  std::vector<int64_t> labels = Hdbscan(pts, opts);
  EXPECT_GE(labels[0], 0);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_GE(labels[4], 0);
  EXPECT_EQ(labels[4], labels[8]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST(HdbscanTest, LabelsAreDenseFromZero) {
  Rng rng(303);
  std::vector<Vec> pts;
  AddBlob(pts, {1, 0, 0}, 6, rng);
  AddBlob(pts, {0, 1, 0}, 6, rng);
  AddBlob(pts, {0, 0, 1}, 6, rng);
  std::vector<int64_t> labels = Hdbscan(pts, HdbscanOptions{});
  std::unordered_set<int64_t> distinct;
  for (int64_t l : labels) {
    if (l >= 0) distinct.insert(l);
  }
  for (int64_t l = 0; l < static_cast<int64_t>(distinct.size()); ++l) {
    EXPECT_TRUE(distinct.count(l)) << "label gap at " << l;
  }
}

TEST(HdbscanTest, EmptyInput) {
  EXPECT_TRUE(Hdbscan({}, HdbscanOptions{}).empty());
}

TEST(HdbscanTest, LoneBlobUnderRootMatchesHdbscanSemantics) {
  // HDBSCAN* never selects the root cluster (allow_single_cluster =
  // false, as in the reference implementation): a single tight blob plus
  // stragglers has no true split below the root, so every point stays
  // noise. Two blobs, by contrast, produce a true split and both get
  // selected (covered by SeparatesTwoBlobsFromNoise). This test pins the
  // semantics so a refactor doesn't silently change them.
  Rng rng(404);
  std::vector<Vec> pts;
  AddBlob(pts, {1, 0}, 12, rng, 0.005f);
  pts.push_back({0, 1});
  pts.push_back({-1, 0});
  std::vector<int64_t> labels = Hdbscan(pts, HdbscanOptions{});
  std::unordered_set<int64_t> blob(labels.begin(), labels.begin() + 12);
  // Either the blob is all-noise (no true split: strict HDBSCAN*
  // semantics) or, if internal structure produced a true split, every
  // selected cluster is inside the blob and the stragglers stay noise.
  EXPECT_EQ(labels[12], -1);
  EXPECT_EQ(labels[13], -1);
  for (int64_t l : blob) {
    EXPECT_GE(l, -1);
  }
}

TEST(HdbscanTest, DeterministicAcrossCalls) {
  Rng rng(505);
  std::vector<Vec> pts;
  AddBlob(pts, {1, 0, 0}, 8, rng);
  AddBlob(pts, {0, 1, 0}, 8, rng);
  EXPECT_EQ(Hdbscan(pts, HdbscanOptions{}), Hdbscan(pts, HdbscanOptions{}));
}

}  // namespace
}  // namespace infoshield
