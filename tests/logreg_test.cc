#include "baselines/logreg.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace infoshield {
namespace {

// A trivially separable corpus: spam docs share vocabulary.
void MakeLabeled(Corpus& c, std::vector<bool>& labels) {
  for (int i = 0; i < 40; ++i) {
    c.Add("win free money now click link claim prize " + std::to_string(i));
    labels.push_back(true);
    c.Add("meeting notes project deadline review agenda " +
          std::to_string(i));
    labels.push_back(false);
  }
}

TEST(LogRegTest, LearnsSeparableData) {
  Corpus c;
  std::vector<bool> labels;
  MakeLabeled(c, labels);
  LogisticRegression model;
  model.Train(c, labels, 7);
  std::vector<bool> pred;
  for (const Document& d : c.docs()) pred.push_back(model.Predict(d));
  BinaryMetrics m = ComputeBinaryMetrics(pred, labels);
  EXPECT_GT(m.f1(), 0.95);
}

TEST(LogRegTest, ProbabilitiesInUnitInterval) {
  Corpus c;
  std::vector<bool> labels;
  MakeLabeled(c, labels);
  LogisticRegression model;
  model.Train(c, labels, 11);
  for (const Document& d : c.docs()) {
    double p = model.PredictProbability(d);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogRegTest, SpamScoresHigherThanHam) {
  Corpus c;
  std::vector<bool> labels;
  MakeLabeled(c, labels);
  LogisticRegression model;
  model.Train(c, labels, 13);
  double spam_p = model.PredictProbability(c.doc(0));
  double ham_p = model.PredictProbability(c.doc(1));
  EXPECT_GT(spam_p, ham_p);
}

TEST(LogRegTest, DeterministicTraining) {
  Corpus c;
  std::vector<bool> labels;
  MakeLabeled(c, labels);
  LogisticRegression m1;
  LogisticRegression m2;
  m1.Train(c, labels, 17);
  m2.Train(c, labels, 17);
  EXPECT_DOUBLE_EQ(m1.PredictProbability(c.doc(0)),
                   m2.PredictProbability(c.doc(0)));
}

TEST(LogRegTest, UntrainedModelIsNeutral) {
  LogisticRegression model;
  Corpus c;
  c.Add("anything");
  // Without training, weights are empty; prediction must not crash and
  // returns the bias sigmoid. (Features() on empty weights would index
  // out of bounds, so Train initializes; guard the untrained case by
  // training on an empty corpus.)
  model.Train(c, {false}, 1);
  double p = model.PredictProbability(c.doc(0));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(LogRegDeathTest, SizeMismatchDies) {
  Corpus c;
  c.Add("one");
  LogisticRegression model;
  EXPECT_DEATH(model.Train(c, {true, false}, 1), "Check failed");
}

TEST(LogRegTest, GeneralizesToUnseenSuffixes) {
  Corpus train;
  std::vector<bool> labels;
  MakeLabeled(train, labels);
  LogisticRegression model;
  model.Train(train, labels, 23);
  // Fresh docs with the same token distributions. Build them in the same
  // corpus so vocab ids align.
  Corpus test;
  DocId spam = test.Add("win free money now click link claim prize 999");
  DocId ham = test.Add("meeting notes project deadline review agenda 999");
  // Re-intern into training vocabulary: rebuild documents by hand.
  (void)spam;
  (void)ham;
  // Because feature hashing uses token ids from the corpus vocabulary,
  // evaluate on documents added to the *training* corpus instead.
  DocId spam2 = train.Add("win free money now click link claim prize 999");
  DocId ham2 = train.Add("meeting notes project deadline review agenda 999");
  EXPECT_TRUE(model.Predict(train.doc(spam2)));
  EXPECT_FALSE(model.Predict(train.doc(ham2)));
}

}  // namespace
}  // namespace infoshield
