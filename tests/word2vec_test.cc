#include "baselines/word2vec.h"

#include <cmath>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

// A corpus where "cat"/"dog" share contexts and "stone" does not.
Corpus ContextCorpus() {
  Corpus c;
  for (int i = 0; i < 30; ++i) {
    c.Add("the cat sat on the mat");
    c.Add("the dog sat on the mat");
    c.Add("heavy stone fell into deep water");
  }
  return c;
}

TEST(Word2VecTest, TrainsAndEmbeds) {
  Corpus c = ContextCorpus();
  Word2VecOptions opts;
  opts.dim = 16;
  opts.epochs = 2;
  Word2Vec model(opts);
  model.Train(c, 7);
  Vec v = model.Embed(c.doc(0));
  EXPECT_EQ(v.size(), 16u);
  EXPECT_GT(L2Norm(v), 0.0f);
}

TEST(Word2VecTest, SharedContextWordsAreCloser) {
  Corpus c = ContextCorpus();
  Word2VecOptions opts;
  opts.dim = 16;
  opts.epochs = 5;
  Word2Vec model(opts);
  model.Train(c, 42);
  Vec cat = model.WordVector(c.vocab().Find("cat"));
  Vec dog = model.WordVector(c.vocab().Find("dog"));
  Vec stone = model.WordVector(c.vocab().Find("stone"));
  EXPECT_LT(CosineDistance(cat, dog), CosineDistance(cat, stone));
}

TEST(Word2VecTest, NearDuplicateDocsEmbedClose) {
  Corpus c = ContextCorpus();
  Word2VecOptions opts;
  opts.dim = 16;
  Word2Vec model(opts);
  model.Train(c, 3);
  // Docs 0 and 1 ("cat" vs "dog" sentence) vs doc 2 (stone sentence).
  Vec a = model.Embed(c.doc(0));
  Vec b = model.Embed(c.doc(1));
  Vec d = model.Embed(c.doc(2));
  EXPECT_LT(CosineDistance(a, b), CosineDistance(a, d));
}

TEST(Word2VecTest, DeterministicTraining) {
  Corpus c = ContextCorpus();
  Word2Vec m1;
  Word2Vec m2;
  m1.Train(c, 5);
  m2.Train(c, 5);
  EXPECT_EQ(m1.Embed(c.doc(0)), m2.Embed(c.doc(0)));
}

TEST(Word2VecTest, EmptyDocumentEmbedsToZero) {
  Corpus c = ContextCorpus();
  c.Add("");
  Word2Vec model;
  model.Train(c, 1);
  Vec v = model.Embed(c.doc(static_cast<DocId>(c.size() - 1)));
  EXPECT_EQ(L2Norm(v), 0.0f);
}

TEST(EmbeddingMathTest, VectorOps) {
  Vec a = {3, 4};
  Vec b = {4, 3};
  EXPECT_FLOAT_EQ(Dot(a, b), 24.0f);
  EXPECT_FLOAT_EQ(L2Norm(a), 5.0f);
  EXPECT_FLOAT_EQ(EuclideanDistance(a, b), std::sqrt(2.0f));
  Vec c = a;
  L2Normalize(c);
  EXPECT_NEAR(L2Norm(c), 1.0f, 1e-6);
  EXPECT_NEAR(CosineDistance(a, a), 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(CosineDistance({0, 0}, {1, 0}), 2.0f);  // degenerate
}

TEST(EmbeddingMathTest, FastSigmoidMonotone) {
  EXPECT_FLOAT_EQ(FastSigmoid(10.0f), 1.0f);
  EXPECT_FLOAT_EQ(FastSigmoid(-10.0f), 0.0f);
  EXPECT_NEAR(FastSigmoid(0.0f), 0.5f, 1e-5);
  EXPECT_LT(FastSigmoid(-1.0f), FastSigmoid(1.0f));
}

TEST(EmbedCorpusTest, NormalizesAllDocs) {
  Corpus c = ContextCorpus();
  Word2Vec model;
  model.Train(c, 2);
  std::vector<Vec> embs = EmbedCorpus(model, c);
  ASSERT_EQ(embs.size(), c.size());
  for (const Vec& v : embs) {
    float n = L2Norm(v);
    EXPECT_TRUE(n == 0.0f || std::abs(n - 1.0f) < 1e-5);
  }
}

}  // namespace
}  // namespace infoshield
