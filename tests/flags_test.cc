#include "util/flags.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

FlagParser MakeParser() {
  FlagParser p;
  p.AddString("name", "default", "a string flag")
      .AddInt("count", 7, "an int flag")
      .AddDouble("ratio", 0.5, "a double flag")
      .AddBool("verbose", false, "a bool flag");
  return p;
}

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.Parse(1, argv).ok());
  EXPECT_EQ(p.GetString("name"), "default");
  EXPECT_EQ(p.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(p.GetBool("verbose"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--name=x", "--count=42", "--ratio=1.25",
                        "--verbose=true"};
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_EQ(p.GetString("name"), "x");
  EXPECT_EQ(p.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("ratio"), 1.25);
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--name", "spaced", "--count", "-3"};
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_EQ(p.GetString("name"), "spaced");
  EXPECT_EQ(p.GetInt("count"), -3);
}

TEST(FlagsTest, BareBoolFlag) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.Parse(2, argv).ok());
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "one", "--count=1", "two"};
  ASSERT_TRUE(p.Parse(4, argv).ok());
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"one", "two"}));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--nope=1"};
  Status s = p.Parse(2, argv);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(FlagsTest, MalformedIntFails) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_FALSE(p.Parse(2, argv).ok());
  const char* argv2[] = {"prog", "--count=12x"};
  FlagParser p2 = MakeParser();
  EXPECT_FALSE(p2.Parse(2, argv2).ok());
}

TEST(FlagsTest, MalformedDoubleFails) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--ratio=fast"};
  EXPECT_FALSE(p.Parse(2, argv).ok());
}

TEST(FlagsTest, MalformedBoolFails) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_FALSE(p.Parse(2, argv).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count"};
  Status s = p.Parse(2, argv);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing a value"), std::string::npos);
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagParser p = MakeParser();
  std::string usage = p.Usage("tool");
  EXPECT_NE(usage.find("usage: tool"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default 7"), std::string::npos);
  EXPECT_NE(usage.find("a double flag"), std::string::npos);
}

TEST(FlagsDeathTest, UnregisteredAccessDies) {
  FlagParser p = MakeParser();
  EXPECT_DEATH(p.GetInt("missing"), "unregistered");
}

TEST(FlagsDeathTest, TypeMismatchDies) {
  FlagParser p = MakeParser();
  EXPECT_DEATH(p.GetInt("name"), "type mismatch");
}

TEST(FlagsDeathTest, DuplicateRegistrationDies) {
  FlagParser p;
  p.AddInt("x", 1, "first");
  EXPECT_DEATH(p.AddInt("x", 2, "dup"), "Check failed");
}

}  // namespace
}  // namespace infoshield
