#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(TokenizerTest, BasicWhitespace) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("hello world"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, LowercasesAscii) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello WORLD"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, StripsPunctuation) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("great, soap! (cheap)"),
            (std::vector<std::string>{"great", "soap", "cheap"}));
}

TEST(TokenizerTest, KeepsDigitsAndMixedTokens) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("call 555-1234 now"),
            (std::vector<std::string>{"call", "555", "1234", "now"}));
  EXPECT_EQ(t.Tokenize("30K"), (std::vector<std::string>{"30k"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  \t\n ").empty());
  EXPECT_TRUE(t.Tokenize("...!!!").empty());
}

TEST(TokenizerTest, PreservesUtf8Sequences) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("sureste de Méjico"),
            (std::vector<std::string>{"sureste", "de", "méjico"}));
  // Japanese text survives as a single token per whitespace run.
  EXPECT_EQ(t.Tokenize("こんにちは 世界"),
            (std::vector<std::string>{"こんにちは", "世界"}));
}

TEST(TokenizerTest, UrlsStayIntact) {
  Tokenizer t;
  std::vector<std::string> toks = t.Tokenize("visit http://scam.com today");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "visit");
  EXPECT_EQ(toks[1], "http://scam.com");
  EXPECT_EQ(toks[2], "today");
}

TEST(TokenizerTest, HttpsUrls) {
  Tokenizer t;
  std::vector<std::string> toks = t.Tokenize("see https://t.co/AbC123");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1], "https://t.co/abc123");
}

TEST(TokenizerTest, NoLowercaseOption) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("Hello"), (std::vector<std::string>{"Hello"}));
}

TEST(TokenizerTest, KeepPunctuationOption) {
  TokenizerOptions opts;
  opts.strip_punctuation = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("great, deal"),
            (std::vector<std::string>{"great,", "deal"}));
}

TEST(TokenizerTest, DropDigitsOption) {
  TokenizerOptions opts;
  opts.keep_digits = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("abc123def"),
            (std::vector<std::string>{"abc", "def"}));
}

// Fuzz-style property test: arbitrary byte soup must tokenize without
// crashing, produce non-empty tokens, and intern into valid vocab ids.
class TokenizerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerFuzzTest, RandomBytesAreSafe) {
  // Simple xorshift so this file needs no extra includes.
  uint64_t state = GetParam() * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  Tokenizer t;
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    const size_t len = next() % 120;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(next() & 0xFF));
    }
    std::vector<std::string> tokens = t.Tokenize(input);
    size_t total_bytes = 0;
    for (const std::string& tok : tokens) {
      EXPECT_FALSE(tok.empty());
      total_bytes += tok.size();
    }
    // Tokens never contain more bytes than the input.
    EXPECT_LE(total_bytes, input.size());
    // Tokenization is deterministic.
    EXPECT_EQ(t.Tokenize(input), tokens);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TokenizerTest, TruncatedUtf8AtEndOfInput) {
  Tokenizer t;
  // 0xC3 starts a 2-byte sequence but the input ends: must not crash or
  // read out of bounds; the stray lead byte is copied as one byte.
  std::string truncated = "abc";
  truncated.push_back(static_cast<char>(0xC3));
  std::vector<std::string> toks = t.Tokenize(truncated);
  ASSERT_EQ(toks.size(), 1u);
  std::string expected = "abc";
  expected.push_back(static_cast<char>(0xC3));
  EXPECT_EQ(toks[0], expected);
}

TEST(TokenizerTest, MalformedLeadByteDoesNotSwallowAscii) {
  Tokenizer t;
  // 0xC3 claims a 2-byte sequence but is followed by ASCII 'D', which is
  // not a continuation byte (10xxxxxx). The lead byte must degrade to a
  // single-byte copy and the ASCII must go through normal handling
  // (lowercasing proves it wasn't swallowed as raw sequence payload).
  std::string input;
  input.push_back(static_cast<char>(0xC3));
  input += "Def";
  std::vector<std::string> toks = t.Tokenize(input);
  ASSERT_EQ(toks.size(), 1u);
  std::string expected;
  expected.push_back(static_cast<char>(0xC3));
  expected += "def";
  EXPECT_EQ(toks[0], expected);
}

TEST(TokenizerTest, TruncatedThreeByteSequenceMidInput) {
  Tokenizer t;
  // 0xE3 claims 3 bytes but only one valid continuation follows before
  // ASCII resumes: both malformed bytes degrade to single-byte copies
  // and the ASCII is lowercased, not captured.
  std::string input;
  input.push_back(static_cast<char>(0xE3));
  input.push_back(static_cast<char>(0x81));
  input += "Ab";
  std::vector<std::string> toks = t.Tokenize(input);
  ASSERT_EQ(toks.size(), 1u);
  std::string expected;
  expected.push_back(static_cast<char>(0xE3));
  expected.push_back(static_cast<char>(0x81));
  expected += "ab";
  EXPECT_EQ(toks[0], expected);
}

TEST(TokenizerTest, StrayContinuationBytesCopiedIndividually) {
  Tokenizer t;
  // Continuation bytes with no lead, and an invalid lead (0xFF), each
  // pass through as deterministic single-byte copies.
  std::string input = "ok ";
  input.push_back(static_cast<char>(0x80));
  input.push_back(static_cast<char>(0xBF));
  input.push_back(static_cast<char>(0xFF));
  std::vector<std::string> toks = t.Tokenize(input);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "ok");
  std::string expected;
  expected.push_back(static_cast<char>(0x80));
  expected.push_back(static_cast<char>(0xBF));
  expected.push_back(static_cast<char>(0xFF));
  EXPECT_EQ(toks[1], expected);
}

TEST(TokenizerTest, ValidUtf8StillCopiedWhole) {
  Tokenizer t;
  // The continuation validation must not break well-formed sequences:
  // é (0xC3 0xA9) stays glued to its word.
  EXPECT_EQ(t.Tokenize("café open"),
            (std::vector<std::string>{"café", "open"}));
}

// Builds a string from raw byte values (test readability for the
// malformed-sequence cases below).
std::string Bytes(std::initializer_list<unsigned char> bytes) {
  std::string s;
  for (unsigned char b : bytes) s.push_back(static_cast<char>(b));
  return s;
}

TEST(TokenizerTest, OverlongEncodingsDegradeToSingleBytes) {
  Tokenizer t;
  // C0 80 is the classic overlong NUL; C1 BF, E0 9F BF, and F0 8F BF BF
  // are the maximal overlong forms of each length. Continuation-byte
  // validation alone accepts all of them; RFC 3629 rejects them. Each
  // byte must degrade to a single-byte copy — trailing ASCII proves the
  // sequence was not consumed whole (it gets lowercased).
  for (const std::string& overlong :
       {Bytes({0xC0, 0x80}), Bytes({0xC1, 0xBF}), Bytes({0xE0, 0x9F, 0xBF}),
        Bytes({0xF0, 0x8F, 0xBF, 0xBF})}) {
    std::vector<std::string> toks = t.Tokenize(overlong + "Ab");
    ASSERT_EQ(toks.size(), 1u) << "input bytes: " << overlong.size();
    EXPECT_EQ(toks[0], overlong + "ab");
    EXPECT_FALSE(IsValidUtf8(overlong));
  }
}

TEST(TokenizerTest, SurrogateCodePointsDegradeToSingleBytes) {
  Tokenizer t;
  // ED A0 80 (U+D800, first high surrogate) and ED BF BF (U+DFFF, last
  // low surrogate) are well-formed by continuation-byte shape only;
  // UTF-8 forbids encoding surrogates. ED 9F BF (U+D7FF) is the last
  // valid code point before the range and must still pass whole.
  for (const std::string& surrogate :
       {Bytes({0xED, 0xA0, 0x80}), Bytes({0xED, 0xBF, 0xBF})}) {
    std::vector<std::string> toks = t.Tokenize(surrogate + "Ab");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0], surrogate + "ab");
    EXPECT_FALSE(IsValidUtf8(surrogate));
  }
  const std::string just_below = Bytes({0xED, 0x9F, 0xBF});
  EXPECT_TRUE(IsValidUtf8(just_below));
  EXPECT_EQ(t.Tokenize(just_below + " x"),
            (std::vector<std::string>{just_below, "x"}));
}

TEST(TokenizerTest, CodePointsAboveU10FFFFDegradeToSingleBytes) {
  Tokenizer t;
  // F4 90 80 80 is U+110000 (one past the Unicode ceiling); F5..F7 leads
  // are always invalid. F4 8F BF BF (U+10FFFF) is the ceiling itself and
  // must pass whole.
  for (const std::string& above :
       {Bytes({0xF4, 0x90, 0x80, 0x80}), Bytes({0xF5, 0x80, 0x80, 0x80})}) {
    std::vector<std::string> toks = t.Tokenize(above + "Ab");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0], above + "ab");
    EXPECT_FALSE(IsValidUtf8(above));
  }
  const std::string ceiling = Bytes({0xF4, 0x8F, 0xBF, 0xBF});
  EXPECT_TRUE(IsValidUtf8(ceiling));
  EXPECT_EQ(t.Tokenize(ceiling), (std::vector<std::string>{ceiling}));
}

TEST(TokenizerTest, ValidUtf8SequenceLengthBoundaries) {
  // Direct checks of the validator the tokenizer (and the fuzz
  // harnesses) lean on: minimal/maximal valid sequence of each length.
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0xC2, 0x80}), 0), 2u);
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0xDF, 0xBF}), 0), 2u);
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0xE0, 0xA0, 0x80}), 0), 3u);
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0xEF, 0xBF, 0xBF}), 0), 3u);
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0xF0, 0x90, 0x80, 0x80}), 0), 4u);
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0xF4, 0x8F, 0xBF, 0xBF}), 0), 4u);
  // ASCII, stray continuation, truncation, out-of-range pos.
  EXPECT_EQ(ValidUtf8SequenceLength("a", 0), 0u);
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0x80}), 0), 0u);
  EXPECT_EQ(ValidUtf8SequenceLength(Bytes({0xE0, 0xA0}), 0), 0u);
  EXPECT_EQ(ValidUtf8SequenceLength("ab", 5), 0u);
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
}

}  // namespace
}  // namespace infoshield
