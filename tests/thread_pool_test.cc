#include "util/thread_pool.h"

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ThreadPool::ParallelFor(4, n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SequentialFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(1, 5, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // safe: single-threaded path
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool::ParallelFor(4, 0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, ResultsMatchSequential) {
  const size_t n = 200;
  std::vector<double> parallel(n);
  std::vector<double> sequential(n);
  auto work = [](size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 50; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  ThreadPool::ParallelFor(8, n, [&](size_t i) { parallel[i] = work(i); });
  for (size_t i = 0; i < n; ++i) sequential[i] = work(i);
  EXPECT_EQ(parallel, sequential);
}

}  // namespace
}  // namespace infoshield
