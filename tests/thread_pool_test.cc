#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

// Many external threads hammering Submit concurrently: exercises the
// task-queue lock from outside the pool (TSan-sensitive; see
// tools/check.sh tsan leg).
TEST(ThreadPoolTest, ConcurrentSubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

// Tasks that submit follow-up tasks while Wait() is already blocked:
// Wait() must not return until the transitively-spawned work drains.
TEST(ThreadPoolTest, SubmitDuringWaitIsObservedByWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kRoots = 16;
  constexpr int kChildrenPerRoot = 8;
  for (int i = 0; i < kRoots; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      for (int c = 0; c < kChildrenPerRoot; ++c) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), kRoots * (1 + kChildrenPerRoot));
}

// External submitter racing a Wait() caller: Wait() must return with the
// tasks it can see drained, and the destructor must still run everything
// that was ever accepted.
TEST(ThreadPoolTest, WaitRacingSubmitNeverLosesTasks) {
  std::atomic<int> counter{0};
  constexpr int kTasks = 400;
  {
    ThreadPool pool(4);
    std::thread submitter([&pool, &counter] {
      for (int i = 0; i < kTasks; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
    for (int w = 0; w < 10; ++w) pool.Wait();
    submitter.join();
    pool.Wait();
    EXPECT_EQ(counter.load(), kTasks);
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ThreadPool::ParallelFor(4, n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SequentialFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(1, 5, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // safe: single-threaded path
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool::ParallelFor(4, 0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, ResultsMatchSequential) {
  const size_t n = 200;
  std::vector<double> parallel(n);
  std::vector<double> sequential(n);
  auto work = [](size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 50; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  ThreadPool::ParallelFor(8, n, [&](size_t i) { parallel[i] = work(i); });
  for (size_t i = 0; i < n; ++i) sequential[i] = work(i);
  EXPECT_EQ(parallel, sequential);
}

}  // namespace
}  // namespace infoshield
