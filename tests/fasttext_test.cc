#include "baselines/fasttext.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

Corpus SmallCorpus() {
  Corpus c;
  for (int i = 0; i < 20; ++i) {
    c.Add("sweet young girl available tonight call now");
    c.Add("old stone bridge crosses river near town");
  }
  return c;
}

TEST(FastTextTest, TrainsAndEmbeds) {
  Corpus c = SmallCorpus();
  FastTextOptions opts;
  opts.dim = 16;
  opts.epochs = 2;
  opts.num_buckets = 1 << 12;
  FastText model(opts);
  model.Train(c, 9);
  Vec v = model.Embed(c.doc(0));
  EXPECT_EQ(v.size(), 16u);
  EXPECT_GT(L2Norm(v), 0.0f);
}

TEST(FastTextTest, MisspellingsEmbedNearOriginal) {
  // The subword property: "availablee" shares nearly all char n-grams
  // with "available", so their composed vectors are close — unlike a
  // completely different word.
  Corpus c = SmallCorpus();
  FastTextOptions opts;
  opts.dim = 16;
  opts.epochs = 3;
  opts.num_buckets = 1 << 14;
  FastText model(opts);
  model.Train(c, 11);
  Vec original = model.WordVectorFromString("available");
  Vec misspelled = model.WordVectorFromString("availablee");
  Vec unrelated = model.WordVectorFromString("xylophone");
  EXPECT_LT(CosineDistance(original, misspelled),
            CosineDistance(original, unrelated));
}

TEST(FastTextTest, OutOfVocabularyWordsGetVectors) {
  Corpus c = SmallCorpus();
  FastText model;
  model.Train(c, 13);
  Vec v = model.WordVectorFromString("neverseenbefore");
  EXPECT_GT(L2Norm(v), 0.0f);
}

TEST(FastTextTest, DeterministicTraining) {
  Corpus c = SmallCorpus();
  FastTextOptions opts;
  opts.dim = 8;
  opts.epochs = 1;
  opts.num_buckets = 1 << 10;
  FastText m1(opts);
  FastText m2(opts);
  m1.Train(c, 17);
  m2.Train(c, 17);
  EXPECT_EQ(m1.Embed(c.doc(0)), m2.Embed(c.doc(0)));
}

TEST(FastTextTest, EmptyDocEmbedsToZero) {
  Corpus c = SmallCorpus();
  c.Add("");
  FastText model;
  model.Train(c, 19);
  EXPECT_EQ(L2Norm(model.Embed(c.doc(static_cast<DocId>(c.size() - 1)))),
            0.0f);
}

}  // namespace
}  // namespace infoshield
