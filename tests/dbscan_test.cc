#include "baselines/dbscan.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

// Two tight direction-groups plus one outlier (cosine distance).
std::vector<Vec> TwoBlobs() {
  std::vector<Vec> pts;
  // Blob A around (1, 0).
  pts.push_back({1.0f, 0.00f});
  pts.push_back({1.0f, 0.02f});
  pts.push_back({1.0f, -0.02f});
  pts.push_back({1.0f, 0.01f});
  // Blob B around (0, 1).
  pts.push_back({0.00f, 1.0f});
  pts.push_back({0.02f, 1.0f});
  pts.push_back({-0.02f, 1.0f});
  pts.push_back({0.01f, 1.0f});
  // Outlier near (-1, -1) direction.
  pts.push_back({-1.0f, -1.0f});
  for (Vec& v : pts) L2Normalize(v);
  return pts;
}

TEST(DbscanTest, FindsTwoBlobsAndNoise) {
  DbscanOptions opts;
  opts.eps = 0.05;
  opts.min_pts = 3;
  std::vector<int64_t> labels = Dbscan(TwoBlobs(), opts);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[7]);
  EXPECT_NE(labels[0], labels[4]);
  EXPECT_EQ(labels[8], -1);
  EXPECT_GE(labels[0], 0);
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  std::vector<Vec> pts = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  DbscanOptions opts;
  opts.eps = 1e-6;
  opts.min_pts = 2;
  for (int64_t l : Dbscan(pts, opts)) EXPECT_EQ(l, -1);
}

TEST(DbscanTest, OneClusterWhenEpsHuge) {
  std::vector<Vec> pts = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  DbscanOptions opts;
  opts.eps = 3.0;  // cosine distance max is 2
  opts.min_pts = 2;
  std::vector<int64_t> labels = Dbscan(pts, opts);
  for (int64_t l : labels) EXPECT_EQ(l, labels[0]);
  EXPECT_GE(labels[0], 0);
}

TEST(DbscanTest, EmptyInput) {
  EXPECT_TRUE(Dbscan({}, DbscanOptions{}).empty());
}

TEST(DbscanTest, MinPtsGateKeepsSmallGroupsNoise) {
  std::vector<Vec> pts = {{1, 0}, {1, 0.01f}};  // only 2 points
  for (Vec& v : pts) L2Normalize(v);
  DbscanOptions opts;
  opts.eps = 0.1;
  opts.min_pts = 3;
  for (int64_t l : Dbscan(pts, opts)) EXPECT_EQ(l, -1);
}

TEST(DbscanTest, ExactDuplicatesCluster) {
  std::vector<Vec> pts(5, Vec{0.6f, 0.8f});
  DbscanOptions opts;
  opts.eps = 0.01;
  opts.min_pts = 3;
  std::vector<int64_t> labels = Dbscan(pts, opts);
  for (int64_t l : labels) EXPECT_EQ(l, 0);
}

}  // namespace
}  // namespace infoshield
