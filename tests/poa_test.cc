#include "msa/poa.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

using Tokens = std::vector<TokenId>;

TEST(PoaTest, SingleSequenceIsItsOwnConsensus) {
  Tokens seq = {1, 2, 3, 4};
  PoaGraph g(seq);
  EXPECT_EQ(g.num_sequences(), 1u);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.ConsensusAtThreshold(0), seq);
  EXPECT_TRUE(g.ConsensusAtThreshold(1).empty());
}

TEST(PoaTest, IdenticalSequencesFuseCompletely) {
  Tokens seq = {5, 6, 7};
  PoaGraph g(seq);
  g.AddSequence(seq);
  g.AddSequence(seq);
  EXPECT_EQ(g.num_sequences(), 3u);
  EXPECT_EQ(g.node_count(), 3u);  // full fusion, no new nodes
  EXPECT_EQ(g.max_support(), 3u);
  EXPECT_EQ(g.ConsensusAtThreshold(2), seq);
}

TEST(PoaTest, SubstitutionCreatesBranch) {
  PoaGraph g({1, 2, 3});
  g.AddSequence({1, 9, 3});
  EXPECT_EQ(g.node_count(), 4u);  // 1,2,3 + branch node 9
  // Shared tokens have support 2; the variant tokens support 1.
  Tokens consensus = g.ConsensusAtThreshold(1);
  EXPECT_EQ(consensus, (Tokens{1, 3}));
}

TEST(PoaTest, InsertionAddsNode) {
  PoaGraph g({1, 2});
  g.AddSequence({1, 7, 2});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.ConsensusAtThreshold(1), (Tokens{1, 2}));
  EXPECT_EQ(g.ConsensusAtThreshold(0), (Tokens{1, 7, 2}));
}

TEST(PoaTest, DeletionKeepsSupportLow) {
  PoaGraph g({1, 2, 3});
  g.AddSequence({1, 3});
  // Node 2 only supported by the first sequence.
  EXPECT_EQ(g.ConsensusAtThreshold(1), (Tokens{1, 3}));
}

TEST(PoaTest, MajorityConsensusEmerges) {
  // Template "a b c d" posted 3 times with one divergent document.
  PoaGraph g({10, 20, 30, 40});
  g.AddSequence({10, 20, 30, 40});
  g.AddSequence({10, 20, 99, 30, 40});
  g.AddSequence({77, 88});
  EXPECT_EQ(g.ConsensusAtThreshold(2), (Tokens{10, 20, 30, 40}));
}

TEST(PoaTest, EmptyFirstSequence) {
  PoaGraph g(Tokens{});
  EXPECT_EQ(g.node_count(), 0u);
  g.AddSequence({1, 2});
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.ConsensusAtThreshold(0), (Tokens{1, 2}));
}

TEST(PoaTest, EmptyLaterSequence) {
  PoaGraph g({1, 2});
  g.AddSequence({});
  EXPECT_EQ(g.num_sequences(), 2u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(PoaTest, SupportNeverExceedsSequenceCount) {
  PoaGraph g({1, 2, 3});
  for (int i = 0; i < 5; ++i) g.AddSequence({1, 2, 3});
  EXPECT_EQ(g.max_support(), 6u);
  for (uint32_t s : g.SupportByTopoOrder()) {
    EXPECT_LE(s, g.num_sequences());
  }
}

TEST(PoaTest, ConsensusMonotoneInThreshold) {
  PoaGraph g({1, 2, 3, 4, 5});
  g.AddSequence({1, 2, 9, 4, 5});
  g.AddSequence({1, 2, 4, 5});
  size_t prev = g.ConsensusAtThreshold(0).size();
  for (size_t h = 1; h <= g.num_sequences(); ++h) {
    size_t cur = g.ConsensusAtThreshold(h).size();
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

// Property test: fusing random near-duplicates never breaks the DAG
// invariants (RecomputeTopoOrder CHECKs acyclicity internally) and the
// consensus at the max threshold is the intersection-ish backbone.
class PoaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoaPropertyTest, RandomNearDuplicatesKeepInvariants) {
  Rng rng(GetParam());
  Tokens base;
  const size_t len = 8 + rng.NextIndex(10);
  for (size_t i = 0; i < len; ++i) {
    base.push_back(static_cast<TokenId>(100 + i));
  }
  PoaGraph g(base);
  const size_t num_seqs = 3 + rng.NextIndex(6);
  for (size_t s = 0; s < num_seqs; ++s) {
    Tokens variant;
    for (TokenId t : base) {
      double r = rng.NextDouble();
      if (r < 0.05) continue;  // delete
      if (r < 0.10) {
        variant.push_back(static_cast<TokenId>(rng.NextIndex(50)));  // sub
      } else if (r < 0.15) {
        variant.push_back(static_cast<TokenId>(rng.NextIndex(50)));
        variant.push_back(t);  // insert
      } else {
        variant.push_back(t);
      }
    }
    g.AddSequence(variant);
  }
  EXPECT_EQ(g.num_sequences(), num_seqs + 1);
  // Threshold 0 keeps every node; thresholds weakly shrink the consensus.
  size_t prev = g.ConsensusAtThreshold(0).size();
  EXPECT_EQ(prev, g.node_count());
  for (size_t h = 1; h <= g.num_sequences(); ++h) {
    size_t cur = g.ConsensusAtThreshold(h).size();
    EXPECT_LE(cur, prev);
    prev = cur;
  }
  // Supports are within bounds.
  for (uint32_t s : g.SupportByTopoOrder()) {
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, g.num_sequences());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoaPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace infoshield
