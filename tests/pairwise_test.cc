#include "msa/pairwise.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

using Tokens = std::vector<TokenId>;

TEST(NeedlemanWunschTest, IdenticalSequencesAllMatch) {
  Tokens a = {1, 2, 3, 4};
  Alignment al = NeedlemanWunsch(a, a);
  EXPECT_EQ(al.length(), 4u);
  EXPECT_EQ(al.matches(), 4u);
  EXPECT_EQ(al.unmatched(), 0u);
}

TEST(NeedlemanWunschTest, SingleSubstitution) {
  Alignment al = NeedlemanWunsch({1, 2, 3}, {1, 9, 3});
  EXPECT_EQ(al.matches(), 2u);
  EXPECT_EQ(al.substitutions(), 1u);
  EXPECT_EQ(al.length(), 3u);
}

TEST(NeedlemanWunschTest, InsertionAndDeletion) {
  // b has an extra token -> one insertion.
  Alignment ins = NeedlemanWunsch({1, 2}, {1, 5, 2});
  EXPECT_EQ(ins.insertions(), 1u);
  EXPECT_EQ(ins.matches(), 2u);
  // b is missing a token -> one deletion.
  Alignment del = NeedlemanWunsch({1, 5, 2}, {1, 2});
  EXPECT_EQ(del.deletions(), 1u);
  EXPECT_EQ(del.matches(), 2u);
}

TEST(NeedlemanWunschTest, EmptySequences) {
  Alignment both = NeedlemanWunsch({}, {});
  EXPECT_EQ(both.length(), 0u);
  Alignment left = NeedlemanWunsch({1, 2}, {});
  EXPECT_EQ(left.deletions(), 2u);
  Alignment right = NeedlemanWunsch({}, {1, 2});
  EXPECT_EQ(right.insertions(), 2u);
}

TEST(NeedlemanWunschTest, CompletelyDifferent) {
  Alignment al = NeedlemanWunsch({1, 2, 3}, {4, 5, 6});
  EXPECT_EQ(al.matches(), 0u);
  // With match=1/mismatch=-1/gap=-1, substitutions and ins+del pairs tie
  // at the same score; either way all columns are unmatched.
  EXPECT_EQ(al.unmatched(), al.length());
}

TEST(NeedlemanWunschTest, ConsistencyCheckerAcceptsTruth) {
  Tokens a = {1, 2, 3, 4, 5};
  Tokens b = {1, 3, 4, 9, 5};
  Alignment al = NeedlemanWunsch(a, b);
  EXPECT_TRUE(AlignmentIsConsistent(al, a, b));
}

TEST(NeedlemanWunschTest, ConsistencyCheckerRejectsWrongPair) {
  Tokens a = {1, 2, 3};
  Tokens b = {1, 2, 4};
  Alignment al = NeedlemanWunsch(a, b);
  EXPECT_FALSE(AlignmentIsConsistent(al, a, a));
  EXPECT_FALSE(AlignmentIsConsistent(al, b, b));
}

TEST(NeedlemanWunschTest, PaperDoc4Example) {
  // Template: "this is a great X and the Y dollar price is great"
  // Doc4:     "this is great blue pen and the 3 dollar price is so good"
  // The paper (§III-A) describes doc4 as one deletion (a), insertions,
  // and a substitution (great -> good). Verify the alignment is
  // consistent and the edit structure is in that ballpark.
  Vocabulary v;
  auto intern_all = [&v](std::initializer_list<const char*> words) {
    Tokens out;
    for (const char* w : words) out.push_back(v.Intern(w));
    return out;
  };
  Tokens tmpl = intern_all({"this", "is", "a", "great", "soap", "and",
                            "the", "5", "dollar", "price", "is", "great"});
  Tokens doc4 = intern_all({"this", "is", "great", "blue", "pen", "and",
                            "the", "3", "dollar", "price", "is", "so",
                            "good"});
  Alignment al = NeedlemanWunsch(tmpl, doc4);
  EXPECT_TRUE(AlignmentIsConsistent(al, tmpl, doc4));
  EXPECT_GE(al.matches(), 8u);  // the shared backbone
}

// Property test over random sequences: reconstruction always holds and
// the column count never exceeds |a| + |b|.
class PairwisePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairwisePropertyTest, RandomPairsReconstruct) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Tokens a;
    Tokens b;
    const size_t la = rng.NextIndex(20);
    const size_t lb = rng.NextIndex(20);
    for (size_t i = 0; i < la; ++i) {
      a.push_back(static_cast<TokenId>(rng.NextIndex(8)));
    }
    for (size_t i = 0; i < lb; ++i) {
      b.push_back(static_cast<TokenId>(rng.NextIndex(8)));
    }
    Alignment al = NeedlemanWunsch(a, b);
    EXPECT_TRUE(AlignmentIsConsistent(al, a, b));
    EXPECT_LE(al.length(), a.size() + b.size());
    EXPECT_GE(al.length(), std::max(a.size(), b.size()));
    EXPECT_EQ(al.matches() + al.substitutions() + al.insertions() +
                  al.deletions(),
              al.length());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairwisePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 1234));

// The identical-sequence fast path bypasses the DP table; it must
// produce exactly what the DP's tie-breaking (diagonal first) would.
// A negative match score defeats the fast-path gate, so comparing the
// two scorings' structure on identical inputs pins the contract.
TEST(NeedlemanWunschTest, IdenticalFastPathMatchesDpTraceback) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    Tokens a;
    const size_t len = 1 + rng.NextIndex(30);
    for (size_t i = 0; i < len; ++i) {
      a.push_back(static_cast<TokenId>(rng.NextIndex(6)));
    }
    // Default scoring takes the fast path.
    Alignment fast = NeedlemanWunsch(a, a);
    EXPECT_EQ(fast.matches(), a.size());
    EXPECT_EQ(fast.length(), a.size());
    EXPECT_TRUE(AlignmentIsConsistent(fast, a, a));
    // match < 0 fails the gate and runs the full DP; for identical
    // sequences the DP's diagonal-first tie-break still yields all
    // diagonal columns, which for a == b are all matches.
    AlignmentScoring dp_scoring;
    dp_scoring.match = -1;
    dp_scoring.mismatch = -2;
    Alignment dp = NeedlemanWunsch(a, a, dp_scoring);
    ASSERT_EQ(dp.ops.size(), fast.ops.size());
    for (size_t i = 0; i < dp.ops.size(); ++i) {
      EXPECT_EQ(dp.ops[i].type, fast.ops[i].type);
      EXPECT_EQ(dp.ops[i].a_token, fast.ops[i].a_token);
      EXPECT_EQ(dp.ops[i].b_token, fast.ops[i].b_token);
    }
  }
}

TEST(NeedlemanWunschTest, ReusedWorkspaceMatchesFreshCalls) {
  Rng rng(14);
  AlignmentWorkspace ws;
  for (int trial = 0; trial < 20; ++trial) {
    Tokens a;
    Tokens b;
    const size_t la = rng.NextIndex(25);
    const size_t lb = rng.NextIndex(25);
    for (size_t i = 0; i < la; ++i) {
      a.push_back(static_cast<TokenId>(rng.NextIndex(8)));
    }
    for (size_t i = 0; i < lb; ++i) {
      b.push_back(static_cast<TokenId>(rng.NextIndex(8)));
    }
    // Alternating sizes across trials: the workspace shrinks and grows,
    // and stale contents from the previous trial must never leak.
    Alignment with_ws = NeedlemanWunsch(a, b, AlignmentScoring{}, &ws);
    Alignment fresh = NeedlemanWunsch(a, b);
    ASSERT_EQ(with_ws.ops.size(), fresh.ops.size());
    for (size_t i = 0; i < fresh.ops.size(); ++i) {
      EXPECT_EQ(with_ws.ops[i].type, fresh.ops[i].type);
      EXPECT_EQ(with_ws.ops[i].a_token, fresh.ops[i].a_token);
      EXPECT_EQ(with_ws.ops[i].b_token, fresh.ops[i].b_token);
    }
  }
}

}  // namespace
}  // namespace infoshield
