#include "tfidf/tfidf_index.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

Corpus SmallCorpus() {
  Corpus c;
  c.Add("the quick brown fox jumps");
  c.Add("the quick brown fox runs");
  c.Add("the lazy dog sleeps all day");
  return c;
}

TEST(TfidfTest, DocumentFrequencyCountsDocsNotOccurrences) {
  Corpus c;
  c.Add("spam spam spam");
  c.Add("spam once");
  TfidfIndex index;
  index.Build(c, TfidfOptions{});
  TokenId spam = c.vocab().Find("spam");
  PhraseHash h = HashNgram(&spam, 1);
  EXPECT_EQ(index.DocumentFrequency(h), 2u);  // 2 docs, not 4 occurrences
}

TEST(TfidfTest, UnseenPhraseHasZeroDf) {
  TfidfIndex index;
  index.Build(SmallCorpus(), TfidfOptions{});
  EXPECT_EQ(index.DocumentFrequency(0xDEADBEEF), 0u);
}

TEST(TfidfTest, CommonPhraseScoresZero) {
  // "the" appears in every document: idf = log(3/3) = 0.
  Corpus c = SmallCorpus();
  TfidfIndex index;
  index.Build(c, TfidfOptions{});
  TokenId the = c.vocab().Find("the");
  EXPECT_DOUBLE_EQ(index.Score(HashNgram(&the, 1), 1), 0.0);
}

TEST(TfidfTest, RarerPhraseScoresHigher) {
  Corpus c = SmallCorpus();
  TfidfIndex index;
  index.Build(c, TfidfOptions{});
  TokenId quick = c.vocab().Find("quick");  // df 2
  TokenId lazy = c.vocab().Find("lazy");    // df 1
  EXPECT_GT(index.Score(HashNgram(&lazy, 1), 1),
            index.Score(HashNgram(&quick, 1), 1));
}

TEST(TfidfTest, TopPhrasesSkipDfOne) {
  Corpus c = SmallCorpus();
  TfidfOptions opts;
  opts.min_df = 2;
  TfidfIndex index;
  index.Build(c, opts);
  // Doc 2 shares only "the" (df 3) with others; all other phrases are
  // df-1 and skipped, so at most "the"-based shared phrases survive.
  for (const ScoredPhrase& p : index.TopPhrases(c.doc(2))) {
    EXPECT_GE(index.DocumentFrequency(p.hash), 2u);
  }
}

TEST(TfidfTest, TopPhrasesRespectFraction) {
  Corpus c;
  // 20 tokens, all distinct n-grams; top_fraction 0.1 over distinct
  // phrases, min 1.
  c.Add("a b c d e f g h i j k l m n o p q r s t");
  c.Add("a b c d e f g h i j k l m n o p q r s t");
  TfidfOptions opts;
  opts.max_ngram = 1;
  opts.top_fraction = 0.1;
  TfidfIndex index;
  index.Build(c, opts);
  std::vector<ScoredPhrase> top = index.TopPhrases(c.doc(0));
  EXPECT_EQ(top.size(), 2u);  // ceil(0.1 * 20)
}

TEST(TfidfTest, TopFractionAppliesAfterMinDfFilter) {
  // Doc 0 holds 20 distinct unigrams; only 4 of them also occur in doc 1
  // (df 2), the rest are df-1 and filtered by min_df = 2. The fraction
  // must apply to the 4 eligible phrases — ceil(0.5 * 4) = 2 — not to
  // the 20 pre-filter distinct phrases, which would keep all 4.
  Corpus c;
  c.Add("alpha beta gamma delta u1 u2 u3 u4 u5 u6 u7 u8 u9 u10 u11 u12 "
        "u13 u14 u15 u16");
  c.Add("alpha beta gamma delta");
  TfidfOptions opts;
  opts.max_ngram = 1;
  opts.min_df = 2;
  opts.top_fraction = 0.5;
  TfidfIndex index;
  index.Build(c, opts);
  EXPECT_EQ(index.TopPhrases(c.doc(0)).size(), 2u);
}

TEST(TfidfTest, MinPhrasesFloorStillAppliesAfterFilter) {
  Corpus c;
  c.Add("alpha beta gamma delta u1 u2 u3 u4 u5 u6 u7 u8 u9 u10 u11 u12");
  c.Add("alpha beta gamma delta");
  TfidfOptions opts;
  opts.max_ngram = 1;
  opts.min_df = 2;
  opts.top_fraction = 0.25;  // ceil(0.25 * 4) = 1, floored up to 3
  opts.min_phrases_per_doc = 3;
  TfidfIndex index;
  index.Build(c, opts);
  EXPECT_EQ(index.TopPhrases(c.doc(0)).size(), 3u);
}

TEST(TfidfTest, MinPhrasesPerDocGuaranteesOne) {
  Corpus c;
  c.Add("x y");
  c.Add("x y");
  TfidfIndex index;
  index.Build(c, TfidfOptions{});
  EXPECT_EQ(index.TopPhrases(c.doc(0)).size(), 1u);
}

TEST(TfidfTest, MinNgramExcludesUnigrams) {
  // Default min_ngram = 2: a single shared word is not an eligible top
  // phrase (it would percolate the coarse graph), but a shared bigram is.
  Corpus c;
  c.Add("alpha beta gamma");
  c.Add("alpha delta epsilon");  // shares only the unigram "alpha"
  c.Add("zeta beta gamma");      // shares the bigram "beta gamma" with doc 0
  TfidfIndex index;
  index.Build(c, TfidfOptions{});
  for (const ScoredPhrase& p : index.TopPhrases(c.doc(0))) {
    TokenId alpha = c.vocab().Find("alpha");
    EXPECT_NE(p.hash, HashNgram(&alpha, 1));
  }
}

TEST(TfidfTest, MinNgramClampedToMaxNgram) {
  // max_ngram = 1 (the Fig. 4 sweep's left end) keeps unigrams eligible
  // even though min_ngram defaults to 2.
  Corpus c;
  c.Add("common words here");
  c.Add("common words there");
  TfidfOptions opts;
  opts.max_ngram = 1;
  TfidfIndex index;
  index.Build(c, opts);
  EXPECT_FALSE(index.TopPhrases(c.doc(0)).empty());
}

TEST(TfidfTest, ScoresSortedDescending) {
  Corpus c = SmallCorpus();
  TfidfOptions opts;
  opts.top_fraction = 1.0;
  opts.min_df = 1;
  TfidfIndex index;
  index.Build(c, opts);
  std::vector<ScoredPhrase> top = index.TopPhrases(c.doc(0));
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(TfidfTest, MaxNgramLimitsPhraseLength) {
  Corpus c;
  c.Add("one two three four five six");
  c.Add("one two three four five six");
  TfidfOptions opts1;
  opts1.max_ngram = 1;
  TfidfIndex index1;
  index1.Build(c, opts1);
  TfidfOptions opts5;
  opts5.max_ngram = 5;
  TfidfIndex index5;
  index5.Build(c, opts5);
  EXPECT_LT(index1.num_phrases(), index5.num_phrases());
}

TEST(TfidfTest, ParallelBuildMatchesSerial) {
  // The sharded parallel df accumulation must equal the serial global
  // map for every phrase the corpus actually contains — same table
  // size, same count per hash — because top-phrase selection (and so
  // the whole coarse output) reads exactly these numbers.
  Corpus c;
  for (int i = 0; i < 40; ++i) {
    c.Add("shared spam phrase number " + std::to_string(i % 7) +
          " with trailing tail " + std::to_string(i));
  }
  TfidfIndex serial;
  serial.Build(c, TfidfOptions{});
  TfidfIndex parallel;
  parallel.Build(c, TfidfOptions{}, /*num_threads=*/4);

  EXPECT_EQ(parallel.num_documents(), serial.num_documents());
  EXPECT_EQ(parallel.num_phrases(), serial.num_phrases());
  for (const Document& doc : c.docs()) {
    for (const NgramSpan& g : ExtractNgrams(doc, TfidfOptions{}.max_ngram)) {
      EXPECT_EQ(parallel.DocumentFrequency(g.hash),
                serial.DocumentFrequency(g.hash));
    }
  }
  // The parallel build went through the sharded path; the serial one
  // reports no shard activity.
  EXPECT_GT(parallel.build_stats().shard_flushes, 0u);
  EXPECT_EQ(serial.build_stats().shard_flushes, 0u);
}

TEST(TfidfTest, ParallelBuildMatchesSerialTopPhrases) {
  Corpus c;
  for (int i = 0; i < 24; ++i) {
    c.Add("alpha beta gamma campaign " + std::to_string(i % 4) +
          " call today " + std::to_string(i % 4));
  }
  TfidfIndex serial;
  serial.Build(c, TfidfOptions{});
  TfidfIndex parallel;
  parallel.Build(c, TfidfOptions{}, /*num_threads=*/8);
  for (const Document& doc : c.docs()) {
    std::vector<ScoredPhrase> a = serial.TopPhrases(doc);
    std::vector<ScoredPhrase> b = parallel.TopPhrases(doc);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].hash, b[i].hash);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST(TfidfTest, EmptyCorpus) {
  Corpus c;
  TfidfIndex index;
  index.Build(c, TfidfOptions{});
  EXPECT_EQ(index.num_documents(), 0u);
  EXPECT_EQ(index.num_phrases(), 0u);
}

TEST(TfidfTest, EmptyDocumentYieldsNoPhrases) {
  Corpus c;
  c.Add("");
  c.Add("words here");
  TfidfIndex index;
  index.Build(c, TfidfOptions{});
  EXPECT_TRUE(index.TopPhrases(c.doc(0)).empty());
}

}  // namespace
}  // namespace infoshield
