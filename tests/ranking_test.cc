#include "core/ranking.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

// Corpus with a strong (exact-duplicate) campaign and a weaker (noisy)
// one, plus vocabulary padding.
struct Fixture {
  Corpus corpus;
  InfoShieldResult result;
  CostModel cm = CostModel(1.0);  // replaced in Make()
};

Fixture Make() {
  Fixture f;
  for (int i = 0; i < 8; ++i) {
    f.corpus.Add("strong campaign exact duplicate message repeated all day");
  }
  f.corpus.Add("weak campaign message with light variation alpha beta here");
  f.corpus.Add("weak campaign message with light variation gamma delta now");
  f.corpus.Add("weak campaign message with some variation epsilon zeta too");
  std::string filler;
  for (int i = 0; i < 300; ++i) {
    filler += "pad" + std::to_string(i) + " ";
    if (filler.size() > 200) {
      f.corpus.Add(filler);
      filler.clear();
    }
  }
  if (!filler.empty()) f.corpus.Add(filler);
  InfoShield shield;
  f.result = shield.Run(f.corpus);
  f.cm = CostModel::ForVocabulary(f.corpus.vocab());
  return f;
}

TEST(RankingTest, StrongDuplicationRanksFirst) {
  Fixture f = Make();
  ASSERT_GE(f.result.templates.size(), 2u);
  std::vector<RankedTemplate> ranked =
      RankTemplates(f.result, f.corpus, f.cm);
  ASSERT_EQ(ranked.size(), f.result.templates.size());
  // Ranked ascending by slack.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].slack, ranked[i].slack);
  }
  // The 8-duplicate campaign ranks above the noisy 3-doc one.
  const TemplateCluster& top =
      f.result.templates[ranked[0].template_index];
  EXPECT_EQ(top.members.size(), 8u);
}

TEST(RankingTest, RelativeLengthRespectsBound) {
  Fixture f = Make();
  for (const RankedTemplate& r : RankTemplates(f.result, f.corpus, f.cm)) {
    EXPECT_GE(r.relative_length, r.lower_bound * 0.999);
    EXPECT_LE(r.relative_length, 1.5);  // sanity
    EXPECT_GE(r.slack, -1e-9);
  }
}

TEST(RankingTest, EmptyResult) {
  Corpus c;
  c.Add("single doc");
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  EXPECT_TRUE(RankTemplates(r, c, cm).empty());
}

TEST(AnomalyTest, CompressionRatiosParallelMembers) {
  Fixture f = Make();
  for (const TemplateCluster& tc : f.result.templates) {
    std::vector<double> ratios =
        MemberCompressionRatios(tc, f.corpus, f.cm);
    ASSERT_EQ(ratios.size(), tc.members.size());
    for (double r : ratios) {
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 1.5);
    }
  }
}

TEST(AnomalyTest, DivergentMemberFlagged) {
  // A cluster of near-exact duplicates plus one heavily edited member:
  // §V-D1 — the divergent document has a worse compression rate.
  Corpus c;
  std::vector<DocId> cluster;
  for (int i = 0; i < 6; ++i) {
    cluster.push_back(c.Add(
        "campaign text here same every time word for word always exact"));
  }
  cluster.push_back(c.Add(
      "campaign text here same every time word for word plus rambling "
      "extras appended"));
  std::string filler;
  for (int i = 0; i < 300; ++i) {
    filler += "pad" + std::to_string(i) + " ";
    if (filler.size() > 200) {
      c.Add(filler);
      filler.clear();
    }
  }
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineClustering fine;
  FineResult fr = fine.RunOnCluster(c, cluster, cm);
  ASSERT_EQ(fr.templates.size(), 1u);
  ASSERT_EQ(fr.templates[0].members.size(), 7u);
  std::vector<size_t> flagged =
      FlagAnomalousMembers(fr.templates[0], c, cm);
  ASSERT_EQ(flagged.size(), 1u);
  // The flagged member is the divergent 7th document.
  EXPECT_EQ(fr.templates[0].members[flagged[0]], cluster.back());
}

TEST(AnomalyTest, UniformClusterFlagsNothing) {
  Fixture f = Make();
  for (const TemplateCluster& tc : f.result.templates) {
    if (tc.members.size() == 8) {  // the exact-duplicate campaign
      EXPECT_TRUE(FlagAnomalousMembers(tc, f.corpus, f.cm).empty());
    }
  }
}

}  // namespace
}  // namespace infoshield
