#include "mdl/universal_code.h"

#include <cmath>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(UniversalCodeTest, SmallValues) {
  EXPECT_DOUBLE_EQ(UniversalCodeLength(0), 1.0);
  EXPECT_DOUBLE_EQ(UniversalCodeLength(1), 1.0);
  EXPECT_DOUBLE_EQ(UniversalCodeLength(2), 3.0);  // 2*1 + 1
  EXPECT_DOUBLE_EQ(UniversalCodeLength(4), 5.0);  // 2*2 + 1
}

TEST(UniversalCodeTest, MatchesPaperApproximation) {
  // <n> ~= 2 lg n + 1 (paper Table VI).
  for (uint64_t n : {10ull, 100ull, 1000ull, 1000000ull}) {
    EXPECT_DOUBLE_EQ(UniversalCodeLength(n),
                     2.0 * std::log2(static_cast<double>(n)) + 1.0);
  }
}

TEST(UniversalCodeTest, MonotoneNondecreasing) {
  double prev = 0.0;
  for (uint64_t n = 0; n < 1000; ++n) {
    double cur = UniversalCodeLength(n);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Log2BitsTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(Log2Bits(0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Bits(1), 0.0);
  EXPECT_DOUBLE_EQ(Log2Bits(2), 1.0);
  EXPECT_DOUBLE_EQ(Log2Bits(1024), 10.0);
}

TEST(Log2BitsTest, SubadditivityOverProducts) {
  EXPECT_NEAR(Log2Bits(8 * 16), Log2Bits(8) + Log2Bits(16), 1e-12);
}

}  // namespace
}  // namespace infoshield
