#include "mdl/universal_code.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(UniversalCodeTest, SmallValues) {
  EXPECT_DOUBLE_EQ(UniversalCodeLength(0), 1.0);
  EXPECT_DOUBLE_EQ(UniversalCodeLength(1), 1.0);
  EXPECT_DOUBLE_EQ(UniversalCodeLength(2), 3.0);  // 2*1 + 1
  EXPECT_DOUBLE_EQ(UniversalCodeLength(4), 5.0);  // 2*2 + 1
}

TEST(UniversalCodeTest, MatchesPaperApproximation) {
  // <n> ~= 2 lg n + 1 (paper Table VI).
  for (uint64_t n : {10ull, 100ull, 1000ull, 1000000ull}) {
    EXPECT_DOUBLE_EQ(UniversalCodeLength(n),
                     2.0 * std::log2(static_cast<double>(n)) + 1.0);
  }
}

TEST(UniversalCodeTest, MonotoneNondecreasing) {
  double prev = 0.0;
  for (uint64_t n = 0; n < 1000; ++n) {
    double cur = UniversalCodeLength(n);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Log2BitsTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(Log2Bits(0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Bits(1), 0.0);
  EXPECT_DOUBLE_EQ(Log2Bits(2), 1.0);
  EXPECT_DOUBLE_EQ(Log2Bits(1024), 10.0);
}

TEST(Log2BitsTest, SubadditivityOverProducts) {
  EXPECT_NEAR(Log2Bits(8 * 16), Log2Bits(8) + Log2Bits(16), 1e-12);
}

// Powers of two and their neighbors hit every branch of the codec: the
// unary prefix grows exactly at 2^k - 1 -> 2^k (value domain m = n + 1).
std::vector<uint64_t> BoundaryValues() {
  std::vector<uint64_t> values = {0, 1, 2};
  for (int k = 1; k < 64; ++k) {
    const uint64_t p = uint64_t{1} << k;
    values.push_back(p - 1);
    values.push_back(p);
    if (p != UINT64_MAX) values.push_back(p + 1);
  }
  values.push_back(UINT64_MAX - 2);
  values.push_back(UINT64_MAX - 1);  // largest encodable n
  return values;
}

TEST(UniversalBitsTest, RoundTripsBoundaryValues) {
  for (uint64_t n : BoundaryValues()) {
    std::vector<uint8_t> bits;
    ASSERT_TRUE(AppendUniversalBits(n, &bits).ok()) << n;
    EXPECT_EQ(bits.size(), UniversalBitsLength(n)) << n;
    size_t pos = 0;
    Result<uint64_t> decoded = DecodeUniversalBits(bits, &pos);
    ASSERT_TRUE(decoded.ok()) << n;
    EXPECT_EQ(*decoded, n);
    EXPECT_EQ(pos, bits.size()) << n;
  }
}

TEST(UniversalBitsTest, LengthTracksCostModelWithinTwoBits) {
  for (uint64_t n : BoundaryValues()) {
    const double exact = static_cast<double>(UniversalBitsLength(n));
    const double model = UniversalCodeLength(n);
    EXPECT_LE(std::abs(exact - model), 2.0 + 1e-9)
        << "n=" << n << " exact=" << exact << " model=" << model;
  }
}

TEST(UniversalBitsTest, PrefixFreeConcatenation) {
  const std::vector<uint64_t> values = {0, 7, 1, 255, 2, 1023, 0};
  std::vector<uint8_t> bits;
  for (uint64_t n : values) {
    ASSERT_TRUE(AppendUniversalBits(n, &bits).ok());
  }
  size_t pos = 0;
  for (uint64_t n : values) {
    Result<uint64_t> decoded = DecodeUniversalBits(bits, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, n);
  }
  EXPECT_EQ(pos, bits.size());
}

TEST(UniversalBitsTest, RejectsOverflowAndTruncation) {
  std::vector<uint8_t> bits;
  EXPECT_EQ(AppendUniversalBits(UINT64_MAX, &bits).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(bits.empty());

  // Truncated codeword: unary prefix claims more bits than remain.
  ASSERT_TRUE(AppendUniversalBits(8, &bits).ok());
  bits.pop_back();
  size_t pos = 0;
  EXPECT_EQ(DecodeUniversalBits(bits, &pos).status().code(),
            StatusCode::kInvalidArgument);

  // All-zero stream: the unary run never terminates.
  std::vector<uint8_t> zeros(10, 0);
  pos = 0;
  EXPECT_EQ(DecodeUniversalBits(zeros, &pos).status().code(),
            StatusCode::kInvalidArgument);

  // A 64+-zero unary prefix would overflow even if bits followed.
  std::vector<uint8_t> wide(64, 0);
  wide.insert(wide.end(), 65, 1);
  pos = 0;
  EXPECT_EQ(DecodeUniversalBits(wide, &pos).status().code(),
            StatusCode::kInvalidArgument);

  // Decoding from past the end is an error, not a crash.
  std::vector<uint8_t> one = {1};
  pos = 2;
  EXPECT_EQ(DecodeUniversalBits(one, &pos).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace infoshield
