#include "io/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include <gtest/gtest.h>

#include "core/infoshield.h"

namespace infoshield {
namespace {

// Unwraps a parse expected to succeed.
std::vector<std::string> MustParse(std::string_view line, char sep = ',') {
  Result<std::vector<std::string>> r = ParseCsvLine(line, sep);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.ok() ? *r : std::vector<std::string>{};
}

TEST(ParseCsvLineTest, Simple) {
  EXPECT_EQ(MustParse("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  EXPECT_EQ(MustParse("a,\"b,c\",d"),
            (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(ParseCsvLineTest, EscapedQuote) {
  EXPECT_EQ(MustParse("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  EXPECT_EQ(MustParse(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvLineTest, QuotedFieldWithEmbeddedNewline) {
  EXPECT_EQ(MustParse("\"two\nlines\",x"),
            (std::vector<std::string>{"two\nlines", "x"}));
}

TEST(ParseCsvLineTest, TrailingTextAfterClosingQuoteFails) {
  // The old parser silently produced {"ab"} here.
  Result<std::vector<std::string>> r = ParseCsvLine("\"a\"b");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseCsvLineTest, QuoteInsideUnquotedFieldFails) {
  // The old parser treated the quote as a literal only because the
  // field had already started — RFC 4180 requires such a field to be
  // quoted.
  Result<std::vector<std::string>> r = ParseCsvLine("a\"b,c");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseCsvLineTest, UnterminatedQuoteFails) {
  Result<std::vector<std::string>> r = ParseCsvLine("\"never closed");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseCsvLineTest, ClosingQuoteThenSeparatorIsFine) {
  EXPECT_EQ(MustParse("\"a\",b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(MustParse("x,\"a\""), (std::vector<std::string>{"x", "a"}));
}

TEST(EscapeCsvFieldTest, QuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("with \"q\""), "\"with \"\"q\"\"\"");
  EXPECT_EQ(EscapeCsvField("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRoundTripTest, FormatThenParse) {
  std::vector<std::string> fields = {"a", "b,c", "d\"e", "f\ng", ""};
  EXPECT_EQ(MustParse(FormatCsvLine(fields)), fields);
}

TEST(ReadCsvRecordTest, ContinuesAcrossPhysicalLinesInQuotes) {
  std::istringstream in("1,\"two\nlines\",x\n2,plain,y\n");
  std::string record;
  Result<bool> more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(record, "1,\"two\nlines\",x");
  more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(record, "2,plain,y");
  more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(ReadCsvRecordTest, StripsCrlfTerminatorButKeepsQuotedCr) {
  std::istringstream in("a,b\r\n\"c\r\nd\",e\r\n");
  std::string record;
  Result<bool> more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(record, "a,b");
  more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  // Inside quotes the CRLF is field content (RFC 4180), so the \r stays.
  EXPECT_EQ(record, "\"c\r\nd\",e");
}

TEST(ReadCsvRecordTest, LastRecordWithoutTrailingNewline) {
  std::istringstream in("a,b\nc,d");
  std::string record;
  Result<bool> more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(record, "a,b");
  more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(record, "c,d");
  more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(ReadCsvRecordTest, EmptyFieldsSurviveCrlfTermination) {
  std::istringstream in("a,,\r\n,,b\r\n");
  std::string record;
  Result<bool> more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(MustParse(record), (std::vector<std::string>{"a", "", ""}));
  more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(MustParse(record), (std::vector<std::string>{"", "", "b"}));
}

TEST(ReadCsvRecordTest, BareCarriageReturnStaysInUnquotedField) {
  // A lone \r not followed by \n is field content, not a terminator.
  std::istringstream in("a\rb,c\n");
  std::string record;
  Result<bool> more = ReadCsvRecord(in, &record);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(MustParse(record), (std::vector<std::string>{"a\rb", "c"}));
}

TEST(ReadCsvRecordTest, UnterminatedQuoteAtEofFails) {
  std::istringstream in("1,\"never closed\n2,x\n");
  std::string record;
  Result<bool> more = ReadCsvRecord(in, &record);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kInvalidArgument);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/infoshield_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvFileTest, WriteAndReadBack) {
  CsvTable table;
  table.header = {"id", "text"};
  table.rows = {{"1", "hello world"}, {"2", "with, comma"}};
  ASSERT_TRUE(WriteCsvFile(path_, table).ok());

  Result<CsvTable> read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->header, table.header);
  EXPECT_EQ(read->rows, table.rows);
}

TEST_F(CsvFileTest, ColumnIndex) {
  CsvTable table;
  table.header = {"id", "text", "label"};
  EXPECT_EQ(table.ColumnIndex("text"), 1);
  EXPECT_EQ(table.ColumnIndex("missing"), -1);
}

TEST_F(CsvFileTest, MissingFileFails) {
  Result<CsvTable> r = ReadCsvFile("/nonexistent/nope.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvFileTest, EmbeddedNewlineInQuotedField) {
  std::ofstream out(path_);
  out << "id,text\n1,\"two\nlines\"\n";
  out.close();
  Result<CsvTable> r = ReadCsvFile(path_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1], "two\nlines");
}

TEST_F(CsvFileTest, WriteReadRoundTripWithNewlinesQuotesAndCrlf) {
  CsvTable table;
  table.header = {"id", "text"};
  table.rows = {{"1", "two\nlines"},
                {"2", "say \"hi\""},
                {"3", "crlf\r\ninside"},
                {"4", "plain"}};
  ASSERT_TRUE(WriteCsvFile(path_, table).ok());
  Result<CsvTable> read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read->header, table.header);
  EXPECT_EQ(read->rows, table.rows);
}

TEST_F(CsvFileTest, MalformedQuotingFailsWithRecordNumber) {
  std::ofstream out(path_);
  out << "id,text\n1,ok\n2,\"bad\"trailing\n";
  out.close();
  Result<CsvTable> r = ReadCsvFile(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("record 3"), std::string::npos)
      << r.status().message();
}

TEST_F(CsvFileTest, LoadCorpusWithEmbeddedNewlineField) {
  std::ofstream out(path_);
  out << "id,text\n1,\"great soap\nfor you\"\n2,another ad\n";
  out.close();
  Result<Corpus> corpus = LoadCorpusFromCsv(path_, "text");
  ASSERT_TRUE(corpus.ok()) << corpus.status().message();
  ASSERT_EQ(corpus->size(), 2u);
  EXPECT_EQ(corpus->TokenText(0), "great soap for you");
}

TEST_F(CsvFileTest, CrlfLineEndings) {
  std::ofstream out(path_, std::ios::binary);
  out << "id,text\r\n1,hello\r\n2,world\r\n";
  out.close();
  Result<CsvTable> r = ReadCsvFile(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[1][1], "world");
}

TEST_F(CsvFileTest, MissingTrailingNewlineStillReadsLastRow) {
  std::ofstream out(path_, std::ios::binary);
  out << "id,text\n1,first\n2,last row";  // no final terminator
  out.close();
  Result<CsvTable> r = ReadCsvFile(path_);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[1][1], "last row");
}

TEST_F(CsvFileTest, AllEmptyFieldsRoundTrip) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  table.rows = {{"", "", ""}, {"x", "", ""}, {"", "", "y"}};
  ASSERT_TRUE(WriteCsvFile(path_, table).ok());
  Result<CsvTable> read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read->rows, table.rows);
}

TEST_F(CsvFileTest, LoadCorpusFromCsv) {
  std::ofstream out(path_);
  out << "id,text\n1,This is a Great Soap\n2,Another Ad Here\n";
  out.close();
  Result<Corpus> corpus = LoadCorpusFromCsv(path_, "text");
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 2u);
  EXPECT_EQ(corpus->TokenText(0), "this is a great soap");
}

TEST_F(CsvFileTest, LoadCorpusMissingColumnFails) {
  std::ofstream out(path_);
  out << "id,text\n1,x\n";
  out.close();
  Result<Corpus> corpus = LoadCorpusFromCsv(path_, "body");
  EXPECT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
}

// Fuzz-style property: parsing arbitrary strings never crashes — it
// either rejects the input with InvalidArgument or succeeds, and every
// successful parse round-trips (format(parse(x)) parses back to the
// same fields). Formatted output of arbitrary fields always parses.
class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, ParseIsTotalAndRoundTripStable) {
  uint64_t state = GetParam() * 0x9e3779b97f4a7c15ULL + 7;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const char kAlphabet[] = "ab,\"\n\r x";
  for (int trial = 0; trial < 100; ++trial) {
    std::string line;
    const size_t len = next() % 40;
    for (size_t i = 0; i < len; ++i) {
      line.push_back(kAlphabet[next() % (sizeof(kAlphabet) - 1)]);
    }
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    if (!fields.ok()) {
      EXPECT_EQ(fields.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    EXPECT_GE(fields->size(), 1u);
    // Once parsed, formatting and re-parsing is the identity.
    std::string formatted = FormatCsvLine(*fields);
    Result<std::vector<std::string>> reparsed = ParseCsvLine(formatted);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
    EXPECT_EQ(*reparsed, *fields);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_F(CsvFileTest, PipelineRunsOnCsvLoadedCorpus) {
  // End-to-end: CSV in, templates out (the CLI's code path).
  std::ofstream out(path_);
  out << "id,text\n";
  for (int i = 0; i < 4; ++i) {
    out << i << ",grand opening best massage in town call today " << i
        << "\n";
  }
  for (int i = 0; i < 30; ++i) {
    out << 100 + i << ",unique" << i * 3 << " unique" << i * 3 + 1
        << " unique" << i * 3 + 2 << "\n";
  }
  out.close();
  Result<Corpus> corpus = LoadCorpusFromCsv(path_, "text");
  ASSERT_TRUE(corpus.ok());
  InfoShield shield;
  InfoShieldResult r = shield.Run(*corpus);
  ASSERT_EQ(r.templates.size(), 1u);
  EXPECT_EQ(r.templates[0].members.size(), 4u);
}

TEST_F(CsvFileTest, TsvSeparator) {
  std::ofstream out(path_);
  out << "id\ttext\n1\thello there\n";
  out.close();
  Result<Corpus> corpus = LoadCorpusFromCsv(path_, "text", '\t');
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->TokenText(0), "hello there");
}

}  // namespace
}  // namespace infoshield
