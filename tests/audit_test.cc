// Tests for the deep invariant auditors (util/audit.h and the
// per-module ValidateInvariants entry points).
//
// Two halves:
//   1. Corruption tests — reach into a structure through a test peer (or
//      a public field), break one invariant, and assert the auditor
//      reports it. This proves the auditors are not vacuous.
//   2. A seeded randomized stress test that drives the real pipeline
//      (pairwise alignment -> POA fusion -> consensus -> fine
//      clustering) on generated near-duplicates and validates every
//      intermediate structure explicitly, so the auditors run even in
//      builds without INFOSHIELD_AUDIT.

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/fine_clustering.h"
#include "core/template.h"
#include "graph/union_find.h"
#include "mdl/cost_model.h"
#include "mdl/universal_code.h"
#include "msa/pairwise.h"
#include "msa/poa.h"
#include "text/corpus.h"
#include "text/vocabulary.h"
#include "tfidf/tfidf_index.h"
#include "util/audit.h"
#include "util/random.h"
#include "util/status.h"

namespace infoshield {

// Friends of the audited classes; they exist only to inject corruption.
class PoaGraphTestPeer {
 public:
  static std::vector<uint32_t>& TopoOrder(PoaGraph& g) {
    return g.topo_order_;
  }
  static void DropOneInEdge(PoaGraph& g) {
    for (auto& node : g.nodes_) {
      if (!node.in.empty()) {
        node.in.pop_back();
        return;
      }
    }
    FAIL() << "graph has no edges to corrupt";
  }
  static void SetSupport(PoaGraph& g, size_t node, uint32_t support) {
    g.nodes_[node].support = support;
  }
};

class UnionFindTestPeer {
 public:
  static std::vector<uint32_t>& Parents(UnionFind& uf) { return uf.parent_; }
  static std::vector<uint32_t>& Sizes(UnionFind& uf) { return uf.size_; }
  static size_t& NumSets(UnionFind& uf) { return uf.num_sets_; }
};

namespace {

std::vector<TokenId> Tokens(Vocabulary& vocab,
                            const std::vector<std::string>& words) {
  std::vector<TokenId> out;
  out.reserve(words.size());
  for (const std::string& w : words) out.push_back(vocab.Intern(w));
  return out;
}

// --- Auditor plumbing ------------------------------------------------

TEST(AuditorTest, CleanAuditorFinishesOk) {
  audit::Auditor a("Clean");
  a.Expect(true, "never recorded");
  EXPECT_TRUE(a.Finish().ok());
}

TEST(AuditorTest, FailedExpectationsAreAllReported) {
  audit::Auditor a("Broken");
  EXPECT_FALSE(a.Expect(false, "first failure"));
  EXPECT_TRUE(a.Expect(true, "not this one"));
  EXPECT_FALSE(a.Expect(false, "second failure"));
  Status st = a.Finish();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Broken"), std::string::npos);
  EXPECT_NE(st.message().find("first failure"), std::string::npos);
  EXPECT_NE(st.message().find("second failure"), std::string::npos);
  EXPECT_EQ(st.message().find("not this one"), std::string::npos);
}

TEST(AuditorTest, AuditingEnabledToggle) {
  EXPECT_TRUE(audit::AuditingEnabled());
  audit::SetAuditingEnabled(false);
  EXPECT_FALSE(audit::AuditingEnabled());
  audit::SetAuditingEnabled(true);
  EXPECT_TRUE(audit::AuditingEnabled());
}

// --- POA graph corruption --------------------------------------------

PoaGraph BuildSmallPoa(Vocabulary& vocab) {
  PoaGraph graph(Tokens(vocab, {"call", "me", "tonight", "at", "nine"}));
  graph.AddSequence(Tokens(vocab, {"call", "me", "today", "at", "nine"}));
  graph.AddSequence(Tokens(vocab, {"call", "me", "at", "nine", "please"}));
  return graph;
}

TEST(PoaAuditTest, IntactGraphValidates) {
  Vocabulary vocab;
  PoaGraph graph = BuildSmallPoa(vocab);
  EXPECT_TRUE(graph.ValidateInvariants().ok());
}

TEST(PoaAuditTest, DetectsCorruptTopoOrder) {
  Vocabulary vocab;
  PoaGraph graph = BuildSmallPoa(vocab);
  // Swapping two entries of topo_order_ without updating topo_rank_
  // breaks the order/rank inverse relation (and usually edge ordering).
  std::vector<uint32_t>& order = PoaGraphTestPeer::TopoOrder(graph);
  ASSERT_GE(order.size(), 2u);
  std::swap(order.front(), order.back());
  Status st = graph.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("PoaGraph"), std::string::npos);
}

TEST(PoaAuditTest, DetectsBrokenEdgeMirror) {
  Vocabulary vocab;
  PoaGraph graph = BuildSmallPoa(vocab);
  PoaGraphTestPeer::DropOneInEdge(graph);
  EXPECT_FALSE(graph.ValidateInvariants().ok());
}

TEST(PoaAuditTest, DetectsOutOfRangeSupport) {
  Vocabulary vocab;
  PoaGraph graph = BuildSmallPoa(vocab);
  PoaGraphTestPeer::SetSupport(graph, 0, 0);
  EXPECT_FALSE(graph.ValidateInvariants().ok());

  PoaGraph graph2 = BuildSmallPoa(vocab);
  PoaGraphTestPeer::SetSupport(
      graph2, 0, static_cast<uint32_t>(graph2.num_sequences()) + 7);
  EXPECT_FALSE(graph2.ValidateInvariants().ok());
}

// --- Union-find corruption -------------------------------------------

UnionFind BuildSmallUnionFind() {
  UnionFind uf(8);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  uf.Union(5, 6);
  return uf;
}

TEST(UnionFindAuditTest, IntactForestValidates) {
  UnionFind uf = BuildSmallUnionFind();
  EXPECT_TRUE(uf.ValidateInvariants().ok());
}

TEST(UnionFindAuditTest, DetectsParentCycle) {
  UnionFind uf = BuildSmallUnionFind();
  std::vector<uint32_t>& parents = UnionFindTestPeer::Parents(uf);
  // Tie two distinct roots into a 2-cycle: neither resolves to a root.
  const uint32_t ra = uf.Find(0);
  const uint32_t rb = uf.Find(3);
  ASSERT_NE(ra, rb);
  parents[ra] = rb;
  parents[rb] = ra;
  Status st = uf.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("UnionFind"), std::string::npos);
}

TEST(UnionFindAuditTest, DetectsOutOfRangeParent) {
  UnionFind uf = BuildSmallUnionFind();
  UnionFindTestPeer::Parents(uf)[7] = 1000;
  EXPECT_FALSE(uf.ValidateInvariants().ok());
}

TEST(UnionFindAuditTest, DetectsWrongRootSize) {
  UnionFind uf = BuildSmallUnionFind();
  const uint32_t root = uf.Find(0);
  UnionFindTestPeer::Sizes(uf)[root] += 1;
  EXPECT_FALSE(uf.ValidateInvariants().ok());
}

TEST(UnionFindAuditTest, DetectsWrongSetCount) {
  UnionFind uf = BuildSmallUnionFind();
  UnionFindTestPeer::NumSets(uf) += 1;
  EXPECT_FALSE(uf.ValidateInvariants().ok());
}

// --- Template / encoding corruption ----------------------------------

TEST(TemplateAuditTest, IntactTemplateValidates) {
  Vocabulary vocab;
  Template tmpl(Tokens(vocab, {"sweet", "girl", "available", "now"}));
  EXPECT_TRUE(tmpl.ValidateInvariants().ok());
  tmpl.SetSlotAtGap(2, true);
  EXPECT_TRUE(tmpl.ValidateInvariants().ok());
}

TEST(TemplateAuditTest, DetectsWrongSlotTableSize) {
  Vocabulary vocab;
  Template tmpl(Tokens(vocab, {"sweet", "girl", "available", "now"}));
  tmpl.SetSlotAtGap(1, true);
  tmpl.slot_at_gap.push_back(0);  // now length + 2 entries
  EXPECT_FALSE(tmpl.ValidateInvariants().ok());
}

TEST(TemplateAuditTest, DetectsNonBooleanSlotEntry) {
  Vocabulary vocab;
  Template tmpl(Tokens(vocab, {"sweet", "girl", "available", "now"}));
  tmpl.SetSlotAtGap(1, true);
  tmpl.slot_at_gap[1] = 2;
  EXPECT_FALSE(tmpl.ValidateInvariants().ok());
}

TEST(TemplateAuditTest, DetectsInvalidConstantToken) {
  Vocabulary vocab;
  Template tmpl(Tokens(vocab, {"sweet", "girl", "available", "now"}));
  tmpl.tokens[2] = kInvalidToken;
  EXPECT_FALSE(tmpl.ValidateInvariants().ok());
}

TEST(TemplateAuditTest, EncodingReplayCatchesTampering) {
  Vocabulary vocab;
  Template tmpl(Tokens(vocab, {"new", "in", "town", "call", "now"}));
  tmpl.SetSlotAtGap(3, true);
  const CostModel cost_model(10.0);
  const std::vector<TokenId> doc =
      Tokens(vocab, {"new", "in", "town", "jessica", "call", "now"});
  DocEncoding enc = EncodeDocument(tmpl, doc, cost_model);
  EXPECT_TRUE(ValidateDocEncoding(tmpl, doc, enc, &cost_model).ok());

  // Tampering with any piece of the encoding must be caught.
  DocEncoding wrong_summary = enc;
  wrong_summary.summary.unmatched += 1;
  EXPECT_FALSE(ValidateDocEncoding(tmpl, doc, wrong_summary, &cost_model)
                   .ok());

  DocEncoding wrong_cost = enc;
  wrong_cost.base_cost += 1.0;
  EXPECT_FALSE(ValidateDocEncoding(tmpl, doc, wrong_cost, &cost_model).ok());

  DocEncoding dropped_column = enc;
  ASSERT_FALSE(dropped_column.columns.empty());
  dropped_column.columns.pop_back();
  EXPECT_FALSE(ValidateDocEncoding(tmpl, doc, dropped_column, nullptr).ok());

  // The replay must also notice when the *document* doesn't match.
  std::vector<TokenId> other_doc = doc;
  other_doc[0] = vocab.Intern("old");
  EXPECT_FALSE(ValidateDocEncoding(tmpl, other_doc, enc, nullptr).ok());
}

// --- MDL and tf-idf auditors -----------------------------------------

TEST(MdlAuditTest, UniversalCodeAudits) {
  EXPECT_TRUE(AuditUniversalCode().ok());
}

TEST(MdlAuditTest, CostModelValidatesAndSummaryAuditCatchesNonsense) {
  const CostModel cost_model(12.0);
  EXPECT_TRUE(cost_model.ValidateInvariants().ok());

  EncodingSummary ok_summary;
  ok_summary.alignment_length = 10;
  ok_summary.unmatched = 4;
  ok_summary.inserted_or_substituted = 2;
  EXPECT_TRUE(ValidateEncodingSummary(ok_summary).ok());

  EncodingSummary bad = ok_summary;
  bad.unmatched = 11;  // more unmatched columns than columns
  EXPECT_FALSE(ValidateEncodingSummary(bad).ok());
  bad = ok_summary;
  bad.inserted_or_substituted = 5;  // exceeds unmatched
  EXPECT_FALSE(ValidateEncodingSummary(bad).ok());
}

TEST(TfidfAuditTest, BuiltIndexValidatesAndBrokenPhraseListDoesNot) {
  Corpus corpus;
  corpus.Add("hot new girl in town tonight");
  corpus.Add("hot new girl in town today");
  corpus.Add("completely different advertisement text here");
  TfidfIndex index;
  index.Build(corpus, TfidfOptions{});
  EXPECT_TRUE(index.ValidateInvariants().ok());

  std::vector<ScoredPhrase> phrases = index.TopPhrases(corpus.doc(0));
  EXPECT_TRUE(ValidateTopPhrases(phrases).ok());

  if (phrases.size() >= 2) {
    std::vector<ScoredPhrase> reversed(phrases.rbegin(), phrases.rend());
    EXPECT_FALSE(ValidateTopPhrases(reversed).ok());
    std::vector<ScoredPhrase> duplicated = phrases;
    duplicated.push_back(duplicated.front());
    EXPECT_FALSE(ValidateTopPhrases(duplicated).ok());
  }
}

// --- Seeded randomized stress test -----------------------------------

// Generates near-duplicate documents from a shared skeleton with random
// per-document slot fills and edits, then drives pairwise alignment, POA
// fusion, consensus extraction and fine clustering, auditing every
// intermediate structure explicitly.
TEST(AuditStressTest, PipelineInvariantsHoldOnRandomNearDuplicates) {
  constexpr uint64_t kSeed = 0x1f05;
  Rng rng(kSeed);

  const std::vector<std::string> skeleton = {
      "gorgeous", "girl",  "new", "in",   "town", "call",
      "me",       "at",    "*",   "open", "late", "every",
      "night",    "best",  "rates",
  };
  const std::vector<std::string> fills = {"5551234567", "5559876543",
                                          "5550001111", "5552223333"};
  const std::vector<std::string> extras = {"tonight", "please", "xoxo",
                                           "discreet", "upscale"};

  Corpus corpus;
  std::vector<std::vector<TokenId>> token_docs;
  std::vector<DocId> doc_ids;
  for (int d = 0; d < 16; ++d) {
    std::vector<std::string> words;
    for (const std::string& w : skeleton) {
      if (w == "*") {
        words.push_back(fills[rng.NextIndex(fills.size())]);
        continue;
      }
      if (rng.NextBernoulli(0.08)) continue;  // random deletion
      words.push_back(w);
      if (rng.NextBernoulli(0.08)) {          // random insertion
        words.push_back(extras[rng.NextIndex(extras.size())]);
      }
    }
    std::string text;
    for (size_t i = 0; i < words.size(); ++i) {
      if (i > 0) text.push_back(' ');
      text += words[i];
    }
    doc_ids.push_back(corpus.Add(text));
    token_docs.push_back(corpus.doc(doc_ids.back()).tokens);
  }

  // POA fusion: the graph must satisfy its invariants after every single
  // insertion, and every consensus must pass the tf-idf-style ordering
  // audit trivially (it is a token sequence, so just re-validate graph).
  PoaGraph graph(token_docs[0]);
  ASSERT_TRUE(graph.ValidateInvariants().ok());
  for (size_t d = 1; d < token_docs.size(); ++d) {
    graph.AddSequence(token_docs[d]);
    Status st = graph.ValidateInvariants();
    ASSERT_TRUE(st.ok()) << "after sequence " << d << ": " << st.ToString();
  }
  for (size_t h = 0; h <= graph.num_sequences(); ++h) {
    const std::vector<TokenId> consensus = graph.ConsensusAtThreshold(h);
    for (TokenId t : consensus) EXPECT_NE(t, kInvalidToken);
  }

  // Every document's encoding against the majority consensus replays.
  const CostModel cost_model = CostModel::ForVocabulary(corpus.vocab());
  ASSERT_TRUE(cost_model.ValidateInvariants().ok());
  Template tmpl(graph.ConsensusAtThreshold(graph.num_sequences() / 2));
  ASSERT_TRUE(tmpl.ValidateInvariants().ok());
  tmpl.SetSlotAtGap(rng.NextIndex(tmpl.length() + 1), true);
  for (const std::vector<TokenId>& doc : token_docs) {
    DocEncoding enc = EncodeDocument(tmpl, doc, cost_model);
    Status st = ValidateDocEncoding(tmpl, doc, enc, &cost_model);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  // Full fine stage over the generated cluster; validate the result even
  // in builds where INFOSHIELD_AUDIT is off.
  audit::SetAuditingEnabled(true);
  FineClustering fine;
  FineResult result =
      fine.RunOnCluster(corpus, doc_ids, cost_model, nullptr);
  Status st = ValidateFineResult(result, corpus, doc_ids, &cost_model);
  EXPECT_TRUE(st.ok()) << st.ToString();
  // Near-duplicates from one skeleton should compress into a template.
  EXPECT_FALSE(result.templates.empty());
}

TEST(AuditStatsTest, CountsFinishedAndFailedAudits) {
  audit::ResetAuditStats();
  {
    audit::Auditor ok_auditor("subject-ok");
    EXPECT_TRUE(ok_auditor.Finish().ok());
  }
  {
    audit::Auditor bad_auditor("subject-bad");
    bad_auditor.Expect(false, "deliberate failure");
    EXPECT_FALSE(bad_auditor.Finish().ok());
  }
  audit::AuditStats stats = audit::GetAuditStats();
  EXPECT_EQ(stats.finished, 2u);
  EXPECT_EQ(stats.failed, 1u);

  audit::ResetAuditStats();
  stats = audit::GetAuditStats();
  EXPECT_EQ(stats.finished, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(AuditStatsTest, TalliesAreConsistentUnderConcurrentFinish) {
  // The fine stage audits every cluster on thread-pool workers, so the
  // tallies must hold up under parallel Finish() calls.
  audit::ResetAuditStats();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        audit::Auditor auditor("stress");
        if ((t + i) % 4 == 0) auditor.Expect(false, "injected");
        (void)auditor.Finish();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  audit::AuditStats stats = audit::GetAuditStats();
  EXPECT_EQ(stats.finished,
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.failed, static_cast<size_t>(kThreads) * kPerThread / 4);
  audit::ResetAuditStats();
}

}  // namespace
}  // namespace infoshield
