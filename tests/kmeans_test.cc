#include "baselines/kmeans.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

TEST(KmeansTest, SeparatesObviousClusters) {
  std::vector<Vec> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({10.0f + i * 0.01f, 0.0f});
    pts.push_back({-10.0f - i * 0.01f, 0.0f});
  }
  KmeansOptions opts;
  opts.k = 2;
  KmeansResult r = Kmeans(pts, opts, 7);
  ASSERT_EQ(r.labels.size(), pts.size());
  // Even indices in one cluster, odd in the other.
  for (size_t i = 2; i < pts.size(); i += 2) {
    EXPECT_EQ(r.labels[i], r.labels[0]);
    EXPECT_EQ(r.labels[i + 1], r.labels[1]);
  }
  EXPECT_NE(r.labels[0], r.labels[1]);
}

TEST(KmeansTest, InertiaIsLowForTightClusters) {
  std::vector<Vec> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({1.0f, 1.0f});
  KmeansOptions opts;
  opts.k = 1;
  KmeansResult r = Kmeans(pts, opts, 3);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
  EXPECT_NEAR(r.centroids[0][0], 1.0f, 1e-6);
}

TEST(KmeansTest, KLargerThanNClamps) {
  std::vector<Vec> pts = {{0, 0}, {1, 1}};
  KmeansOptions opts;
  opts.k = 10;
  KmeansResult r = Kmeans(pts, opts, 5);
  EXPECT_LE(r.centroids.size(), 2u);
}

TEST(KmeansTest, EmptyInput) {
  KmeansResult r = Kmeans({}, KmeansOptions{}, 1);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_TRUE(r.centroids.empty());
}

TEST(KmeansTest, DeterministicForFixedSeed) {
  Rng rng(11);
  std::vector<Vec> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({static_cast<float>(rng.NextGaussian()),
                   static_cast<float>(rng.NextGaussian())});
  }
  KmeansOptions opts;
  opts.k = 4;
  KmeansResult a = Kmeans(pts, opts, 99);
  KmeansResult b = Kmeans(pts, opts, 99);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KmeansTest, AllLabelsWithinRange) {
  Rng rng(13);
  std::vector<Vec> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({static_cast<float>(rng.NextGaussian()),
                   static_cast<float>(rng.NextGaussian()),
                   static_cast<float>(rng.NextGaussian())});
  }
  KmeansOptions opts;
  opts.k = 5;
  KmeansResult r = Kmeans(pts, opts, 17);
  for (int64_t l : r.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
}

TEST(KmeansTest, MoreClustersNeverWorseInertia) {
  Rng rng(19);
  std::vector<Vec> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({static_cast<float>(rng.NextGaussian() * 3),
                   static_cast<float>(rng.NextGaussian() * 3)});
  }
  KmeansOptions k2;
  k2.k = 2;
  KmeansOptions k8;
  k8.k = 8;
  // k-means++ with more centroids should (all but pathologically) fit
  // tighter; allow a generous margin for local optima.
  EXPECT_LE(Kmeans(pts, k8, 23).inertia, Kmeans(pts, k2, 23).inertia * 1.2);
}

}  // namespace
}  // namespace infoshield
