#include "baselines/template_matching.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

using internal::MinHashSignature;
using internal::SignatureSimilarity;

TEST(MinHashTest, IdenticalSequencesIdenticalSignatures) {
  std::vector<TokenId> seq = {1, 2, 3, 4, 5, 6};
  auto a = MinHashSignature(seq, 3, 64, 7);
  auto b = MinHashSignature(seq, 3, 64, 7);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(SignatureSimilarity(a, b), 1.0);
}

TEST(MinHashTest, DisjointSequencesDisagree) {
  std::vector<TokenId> a_seq = {1, 2, 3, 4, 5, 6};
  std::vector<TokenId> b_seq = {10, 20, 30, 40, 50, 60};
  auto a = MinHashSignature(a_seq, 3, 64, 7);
  auto b = MinHashSignature(b_seq, 3, 64, 7);
  EXPECT_LT(SignatureSimilarity(a, b), 0.2);
}

TEST(MinHashTest, SimilarityTracksOverlap) {
  // 9 shared shingle positions out of ~12.
  std::vector<TokenId> base = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<TokenId> variant = base;
  variant[11] = 99;
  auto a = MinHashSignature(base, 3, 128, 3);
  auto b = MinHashSignature(variant, 3, 128, 3);
  double sim = SignatureSimilarity(a, b);
  EXPECT_GT(sim, 0.5);
  EXPECT_LT(sim, 1.0);
}

TEST(MinHashTest, ShortSequencesHandled) {
  std::vector<TokenId> tiny = {5};
  auto sig = MinHashSignature(tiny, 3, 32, 1);
  EXPECT_EQ(sig.size(), 32u);
  // Shingle width clamps to the sequence length, so a second identical
  // single-token doc matches.
  EXPECT_EQ(sig, MinHashSignature(tiny, 3, 32, 1));
}

TEST(TemplateMatchingTest, ClustersNearDuplicates) {
  Corpus c;
  for (int i = 0; i < 4; ++i) {
    c.Add("buy cheap watches now great deal online store best price today");
  }
  c.Add("completely different text about gardens and mountain hiking");
  c.Add("another unrelated sentence mentioning cooking and recipes only");
  TemplateMatchingResult r = TemplateMatching(c, TemplateMatchingOptions{});
  EXPECT_EQ(r.num_clusters, 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.labels[i], 0);
    EXPECT_TRUE(r.suspicious[i]);
  }
  EXPECT_EQ(r.labels[4], -1);
  EXPECT_EQ(r.labels[5], -1);
}

TEST(TemplateMatchingTest, SeparatesDistinctCampaigns) {
  Corpus c;
  for (int i = 0; i < 3; ++i) {
    c.Add("alpha beta gamma delta epsilon zeta eta theta iota kappa");
  }
  for (int i = 0; i < 3; ++i) {
    c.Add("uno dos tres cuatro cinco seis siete ocho nueve diez");
  }
  TemplateMatchingResult r = TemplateMatching(c, TemplateMatchingOptions{});
  EXPECT_EQ(r.num_clusters, 2u);
  EXPECT_EQ(r.labels[0], r.labels[2]);
  EXPECT_EQ(r.labels[3], r.labels[5]);
  EXPECT_NE(r.labels[0], r.labels[3]);
}

TEST(TemplateMatchingTest, NearDuplicatesWithSmallEdits) {
  Corpus c;
  c.Add("grand opening best massage in town call 5551234 today now yes");
  c.Add("grand opening best massage in town call 5559876 today now yes");
  c.Add("grand opening best massage in town call 5554321 today now yes");
  TemplateMatchingOptions opts;
  opts.jaccard_threshold = 0.4;
  TemplateMatchingResult r = TemplateMatching(c, opts);
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_TRUE(r.suspicious[0] && r.suspicious[1] && r.suspicious[2]);
}

TEST(TemplateMatchingTest, EmptyCorpusAndEmptyDocs) {
  Corpus empty;
  TemplateMatchingResult r0 =
      TemplateMatching(empty, TemplateMatchingOptions{});
  EXPECT_TRUE(r0.labels.empty());

  Corpus c;
  c.Add("");
  c.Add("");
  c.Add("real words here for contrast purposes only");
  TemplateMatchingResult r = TemplateMatching(c, TemplateMatchingOptions{});
  // Empty docs never cluster (no shingles).
  EXPECT_EQ(r.labels[0], -1);
  EXPECT_EQ(r.labels[1], -1);
}

TEST(TemplateMatchingTest, PairCountersPopulated) {
  Corpus c;
  for (int i = 0; i < 5; ++i) {
    c.Add("identical spam text repeated again and again verbatim here");
  }
  TemplateMatchingResult r = TemplateMatching(c, TemplateMatchingOptions{});
  EXPECT_GT(r.candidate_pairs, 0u);
  EXPECT_GT(r.verified_pairs, 0u);
  EXPECT_LE(r.verified_pairs, r.candidate_pairs);
}

TEST(TemplateMatchingDeathTest, BandsMustDivideHashes) {
  Corpus c;
  c.Add("a b c");
  TemplateMatchingOptions opts;
  opts.num_hashes = 64;
  opts.bands = 7;
  EXPECT_DEATH(TemplateMatching(c, opts), "Check failed");
}

}  // namespace
}  // namespace infoshield
