// SnapshotDfTable: copy-on-write fold-in must be exactly additive (the
// incremental oracle's foundation), and a snapshot must be a frozen
// generation — including under a concurrent writer, which is the leg
// the TSan job exercises.

#include "tfidf/snapshot_df_table.h"

#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/ngram.h"
#include "tfidf/tfidf_index.h"

namespace infoshield {
namespace {

// Per-document-deduplicated phrase counts for docs [begin, end), exactly
// as TfidfIndex::Build accumulates them.
void AccumulateDelta(const Corpus& corpus, size_t begin, size_t end,
                     size_t max_ngram, ShardedPhraseCounter::Local* delta) {
  std::unordered_set<PhraseHash> seen;
  for (size_t d = begin; d < end; ++d) {
    seen.clear();
    for (const NgramSpan& g : ExtractNgrams(corpus.docs()[d], max_ngram)) {
      seen.insert(g.hash);
    }
    for (PhraseHash hash : seen) delta->Increment(hash);
  }
}

Corpus MakeCorpus(const std::vector<std::string>& texts) {
  Corpus corpus;
  for (const std::string& t : texts) corpus.Add(t);
  return corpus;
}

const std::vector<std::string>& SampleTexts() {
  static const std::vector<std::string> texts = {
      "sweet asian girls new in town call now",
      "sweet asian girls new in town call today",
      "grand opening best massage in town",
      "grand opening best massage downtown",
      "independent reviews posted daily for the best massage",
      "completely unrelated text about gardening tools",
  };
  return texts;
}

TEST(SnapshotDfTableTest, EmptyTableIsGenerationZero) {
  SnapshotDfTable table;
  DfSnapshot snap = table.Snapshot();
  EXPECT_EQ(snap.generation(), 0u);
  EXPECT_EQ(snap.num_documents(), 0u);
  EXPECT_EQ(snap.num_phrases(), 0u);
  EXPECT_EQ(snap.DocumentFrequency(12345u), 0u);
  EXPECT_TRUE(table.ValidateInvariants().ok());
}

TEST(SnapshotDfTableTest, FoldInMatchesBatchBuildExactly) {
  // df accumulation is a commutative sum, so folding the corpus in as
  // two batches must reproduce TfidfIndex::Build over the whole corpus
  // phrase-for-phrase.
  const Corpus corpus = MakeCorpus(SampleTexts());
  const TfidfOptions options;

  SnapshotDfTable table;
  ShardedPhraseCounter::Local delta;
  AccumulateDelta(corpus, 0, 3, options.max_ngram, &delta);
  table.ApplyBatch(&delta, 3);
  AccumulateDelta(corpus, 3, corpus.size(), options.max_ngram, &delta);
  table.ApplyBatch(&delta, corpus.size() - 3);

  TfidfIndex reference;
  reference.Build(corpus, options);

  DfSnapshot snap = table.Snapshot();
  EXPECT_EQ(snap.num_documents(), corpus.size());
  EXPECT_EQ(snap.num_phrases(), reference.num_phrases());
  EXPECT_EQ(snap.generation(), 2u);
  for (const Document& doc : corpus.docs()) {
    for (const NgramSpan& g : ExtractNgrams(doc, options.max_ngram)) {
      EXPECT_EQ(snap.DocumentFrequency(g.hash),
                reference.DocumentFrequency(g.hash))
          << "df diverged for a phrase of doc " << doc.id;
    }
  }
  EXPECT_TRUE(table.ValidateInvariants().ok());
}

TEST(SnapshotDfTableTest, ApplyBatchClearsTheDelta) {
  const Corpus corpus = MakeCorpus(SampleTexts());
  SnapshotDfTable table;
  ShardedPhraseCounter::Local delta;
  AccumulateDelta(corpus, 0, corpus.size(), 5, &delta);
  ASSERT_FALSE(delta.empty());
  table.ApplyBatch(&delta, corpus.size());
  EXPECT_TRUE(delta.empty());
}

TEST(SnapshotDfTableTest, SnapshotIsFrozenAcrossApplyBatch) {
  const Corpus corpus = MakeCorpus(SampleTexts());
  SnapshotDfTable table;
  ShardedPhraseCounter::Local delta;
  AccumulateDelta(corpus, 0, 2, 5, &delta);
  table.ApplyBatch(&delta, 2);

  DfSnapshot frozen = table.Snapshot();
  std::vector<std::pair<PhraseHash, size_t>> before;
  for (const NgramSpan& g : ExtractNgrams(corpus.docs()[0], 5)) {
    before.emplace_back(g.hash, frozen.DocumentFrequency(g.hash));
  }

  AccumulateDelta(corpus, 2, corpus.size(), 5, &delta);
  table.ApplyBatch(&delta, corpus.size() - 2);

  // The old snapshot still reads generation-1 values; a fresh snapshot
  // sees the fold-in.
  EXPECT_EQ(frozen.generation(), 1u);
  EXPECT_EQ(frozen.num_documents(), 2u);
  for (const auto& [hash, df] : before) {
    EXPECT_EQ(frozen.DocumentFrequency(hash), df);
  }
  DfSnapshot current = table.Snapshot();
  EXPECT_EQ(current.generation(), 2u);
  EXPECT_EQ(current.num_documents(), corpus.size());
  EXPECT_GE(current.num_phrases(), frozen.num_phrases());
}

TEST(SnapshotDfTableTest, IndexFromSnapshotScoresByteIdenticallyToBuild) {
  // TfidfIndex::BuildFromSnapshot over a snapshot covering the whole
  // corpus must reproduce Build exactly: same dfs, same scores, same
  // top-phrase lists (order included).
  const Corpus corpus = MakeCorpus(SampleTexts());
  const TfidfOptions options;

  SnapshotDfTable table;
  ShardedPhraseCounter::Local delta;
  AccumulateDelta(corpus, 0, corpus.size(), options.max_ngram, &delta);
  table.ApplyBatch(&delta, corpus.size());

  TfidfIndex built;
  built.Build(corpus, options);
  TfidfIndex snapped;
  snapped.BuildFromSnapshot(table.Snapshot(), options);

  EXPECT_EQ(snapped.num_documents(), built.num_documents());
  EXPECT_EQ(snapped.num_phrases(), built.num_phrases());
  for (const Document& doc : corpus.docs()) {
    const std::vector<ScoredPhrase> a = built.TopPhrases(doc);
    const std::vector<ScoredPhrase> b = snapped.TopPhrases(doc);
    ASSERT_EQ(a.size(), b.size()) << "doc " << doc.id;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].hash, b[i].hash) << "doc " << doc.id << " rank " << i;
      EXPECT_EQ(a[i].score, b[i].score) << "doc " << doc.id << " rank " << i;
    }
  }
}

TEST(SnapshotDfTableTest, ReadersSeeFrozenScoresUnderConcurrentWrites) {
  // The snapshot-isolation contract under load (mutex_test.cc stress
  // pattern, TSan-exercised in the sanitizer CI legs): reader threads
  // hold a generation-1 snapshot and must observe its dfs bit-stable
  // while the writer folds in batch after batch.
  const Corpus corpus = MakeCorpus(SampleTexts());
  SnapshotDfTable table;
  ShardedPhraseCounter::Local delta;
  AccumulateDelta(corpus, 0, 2, 5, &delta);
  table.ApplyBatch(&delta, 2);

  const DfSnapshot frozen = table.Snapshot();
  std::vector<std::pair<PhraseHash, size_t>> expected;
  for (const NgramSpan& g : ExtractNgrams(corpus.docs()[0], 5)) {
    expected.emplace_back(g.hash, frozen.DocumentFrequency(g.hash));
  }

  constexpr int kReaders = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  std::vector<int> mismatches(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // Each reader also re-snapshots privately: taking snapshots must
      // be safe concurrently with the writer.
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& [hash, df] : expected) {
          if (frozen.DocumentFrequency(hash) != df) ++mismatches[r];
        }
        DfSnapshot fresh = table.Snapshot();
        if (fresh.num_documents() < 2) ++mismatches[r];
      }
    });
  }
  std::thread writer([&] {
    ShardedPhraseCounter::Local local;
    for (int round = 0; round < kRounds; ++round) {
      AccumulateDelta(corpus, 2, corpus.size(), 5, &local);
      table.ApplyBatch(&local, corpus.size() - 2);
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(mismatches[r], 0) << "reader " << r << " saw a moving df";
  }
  EXPECT_EQ(frozen.generation(), 1u);
  EXPECT_EQ(table.generation(), 1u + kRounds);
  EXPECT_TRUE(table.ValidateInvariants().ok());
}

}  // namespace
}  // namespace infoshield
