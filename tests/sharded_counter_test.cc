#include "tfidf/sharded_counter.h"

#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace infoshield {
namespace {

// A hash whose top bits place it in shard `s` (ShardOf takes the top
// six bits), with `salt` varying the low bits.
PhraseHash HashInShard(size_t s, uint64_t salt) {
  return (static_cast<PhraseHash>(s) << 58) | salt;
}

TEST(ShardedCounterTest, ShardOfUsesTopBits) {
  EXPECT_EQ(ShardedPhraseCounter::ShardOf(HashInShard(0, 123)), 0u);
  EXPECT_EQ(ShardedPhraseCounter::ShardOf(HashInShard(17, 0)), 17u);
  EXPECT_EQ(ShardedPhraseCounter::ShardOf(HashInShard(63, 999)), 63u);
}

TEST(ShardedCounterTest, FlushAndDrainSumAcrossLocals) {
  // Two locals with overlapping keys: the drained table must hold the
  // exact sums — the same totals a single global map would accumulate.
  ShardedPhraseCounter counter;
  ShardedPhraseCounter::Local a;
  ShardedPhraseCounter::Local b;
  a.Increment(1);
  a.Increment(1);
  a.Increment(2);
  b.Increment(1);
  b.Increment(3);
  counter.Flush(&a);
  counter.Flush(&b);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());

  std::unordered_map<PhraseHash, uint32_t> out;
  counter.Drain(&out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[2], 1u);
  EXPECT_EQ(out[3], 1u);
  // Hashes 1..3 all land in shard 0, so each local flushed one shard.
  EXPECT_EQ(counter.stats().flushes, 2u);
}

TEST(ShardedCounterTest, DrainAddsIntoExistingCounts) {
  ShardedPhraseCounter counter;
  ShardedPhraseCounter::Local local;
  local.Increment(7);
  counter.Flush(&local);
  std::unordered_map<PhraseHash, uint32_t> out;
  out[7] = 5;
  counter.Drain(&out);
  EXPECT_EQ(out[7], 6u);
  // Drain empties the shards; a second drain adds nothing.
  std::unordered_map<PhraseHash, uint32_t> empty;
  counter.Drain(&empty);
  EXPECT_TRUE(empty.empty());
}

TEST(ShardedCounterTest, CountsSpreadAcrossAllShards) {
  ShardedPhraseCounter counter;
  ShardedPhraseCounter::Local local;
  for (size_t s = 0; s < ShardedPhraseCounter::kNumShards; ++s) {
    local.Increment(HashInShard(s, s));
  }
  counter.Flush(&local);
  EXPECT_EQ(counter.stats().flushes, ShardedPhraseCounter::kNumShards);

  std::unordered_map<PhraseHash, uint32_t> out;
  counter.Drain(&out);
  EXPECT_EQ(out.size(), ShardedPhraseCounter::kNumShards);
  for (size_t s = 0; s < ShardedPhraseCounter::kNumShards; ++s) {
    EXPECT_EQ(out[HashInShard(s, s)], 1u);
  }
}

TEST(ShardedCounterTest, ConcurrentFlushesMatchSerialTotals) {
  // Sharded df accumulation equals the serial global map on a fixture
  // "corpus": every worker increments the same key set, so the drained
  // count per key must be exactly the worker count times the per-worker
  // increments — any lost update or double count breaks the equality
  // the parallel tf-idf build is built on.
  constexpr size_t kWorkers = 8;
  constexpr size_t kKeys = 200;
  constexpr uint32_t kRepeats = 3;
  ShardedPhraseCounter counter;
  ThreadPool::ParallelFor(kWorkers, kWorkers, [&](size_t worker) {
    (void)worker;
    ShardedPhraseCounter::Local local;
    for (uint32_t r = 0; r < kRepeats; ++r) {
      for (size_t k = 0; k < kKeys; ++k) {
        // Spread keys over every shard; identical key set per worker.
        local.Increment(HashInShard(k % ShardedPhraseCounter::kNumShards, k));
      }
    }
    counter.Flush(&local);
  });

  std::unordered_map<PhraseHash, uint32_t> out;
  counter.Drain(&out);
  EXPECT_EQ(out.size(), kKeys);
  for (size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(out[HashInShard(k % ShardedPhraseCounter::kNumShards, k)],
              kWorkers * kRepeats)
        << "key " << k;
  }
  EXPECT_GE(counter.stats().flushes, ShardedPhraseCounter::kNumShards);
}

}  // namespace
}  // namespace infoshield
