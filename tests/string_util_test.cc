#include "util/string_util.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo123"), "hello123");
  // Multibyte UTF-8 unchanged.
  EXPECT_EQ(ToLowerAscii("CAFÉ"), "cafÉ");
}

TEST(StripAsciiWhitespaceTest, Strips) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("http://x", "http"));
  EXPECT_FALSE(StartsWith("x", "http"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.1f", 0.25), "0.2");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace infoshield
