#!/usr/bin/env python3
"""Regenerates the seed corpora under tests/fuzz_corpus/<harness>/.

Each seed is a byte string crafted against the harness's FuzzInput
decoding (fuzz/fuzz_util.h): TakeByte() consumes one byte, TakeUint64()
eight little-endian bytes, TakeBounded(max) is TakeUint64() % (max + 1).
The helpers below mirror that, so seeds land on interesting structures
(template families, quoted CSV, boundary integers) instead of noise.

Deterministic: running it twice produces identical files. Run from
anywhere; paths resolve relative to this file. Existing files not named
by a seed (e.g. minimized crashers checked in after a fuzzing run) are
left alone.
"""

import os
import struct

ROOT = os.path.dirname(os.path.abspath(__file__))


def u64(value):
    return struct.pack("<Q", value)


def bounded(value, maximum):
    """Bytes that make TakeBounded(maximum) yield exactly `value`."""
    assert 0 <= value <= maximum, (value, maximum)
    return u64(value)


def byte(value):
    return bytes([value & 0xFF])


def write(harness, name, payload):
    directory = os.path.join(ROOT, harness)
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, name), "wb") as f:
        f.write(payload)


# --- tokenizer: options byte + raw text ------------------------------
ALL_OPTIONS = byte(0x07)  # lowercase + strip punctuation + keep digits
write("tokenizer", "ascii_mixed_case", ALL_OPTIONS + b"Hello WORLD foo123 bar!")
write("tokenizer", "utf8_multilingual",
      ALL_OPTIONS + "café münchen 東京 30€".encode())
write("tokenizer", "url_preserved",
      ALL_OPTIONS + b"visit http://x.example/a?b=c&d=e now")
write("tokenizer", "malformed_sequences",
      ALL_OPTIONS + b"ok \xc3( \xed\xa0\x80 \xc0\x80 \xf5\x80\x80\x80 end")
write("tokenizer", "no_options_whitespace",
      byte(0x00) + b"  Tabs\tand\nnewlines  MiXeD 99 !!!")

# --- csv: mode byte + separator byte + payload -----------------------
write("csv", "quoted_fields",
      byte(0) + byte(0) + b'a,b,"c,d","e""f",')
write("csv", "constructed_fields",
      byte(1) + byte(0) + b"alpha\x00be\"ta\x00ga,mma\x00de\nlta\x00")
write("csv", "stream_crlf_multiline",
      byte(2) + byte(0) + b'h1,h2\r\n"multi\nline",x\r\ny,z\r\n')
write("csv", "semicolon_empty_fields",
      byte(0) + byte(1) + b';;a;;"q;q";')
write("csv", "tab_stream_trailing_newline",
      byte(2) + byte(2) + b"a\tb\nc\td\n\n")

# --- universal_code: count + values + noise + summary ----------------
values = [0, 1, 2, 3, 255, 256, (1 << 32) - 1, (1 << 63), (1 << 64) - 2]
payload = bounded(len(values), 24)
for v in values:
    payload += u64(v)
payload += bounded(17, 96)          # 17 noise bits
payload += bytes([1, 0, 0, 1, 0, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1, 0, 1])
payload += bounded(11, 31)          # lg_vocab - 1
payload += bounded(40, 512)         # alignment_length
payload += bounded(12, 40)          # unmatched
payload += bounded(7, 12)           # inserted_or_substituted
payload += bounded(3, 8)            # slots
payload += bounded(0, 64) + bounded(2, 64) + bounded(64, 64)
payload += bounded(41, 1023)        # num_templates - 1
write("universal_code", "boundary_values", payload)
write("universal_code", "empty_stream", bounded(0, 24))

# --- pairwise: scoring + two token sequences + slot mask + lgV -------
def token_seq(tokens):
    out = bounded(len(tokens), 48)
    for t in tokens:
        out += bounded(t, 15)
    return out

payload = bounded(0, 3)  # default scoring (enables EncodeDocument diff)
payload += token_seq([1, 2, 3, 4, 5, 6, 7, 8])
payload += token_seq([1, 2, 9, 4, 5, 10, 7, 8, 11])
payload += bytes([1, 0, 0, 1, 0, 0, 0, 0, 1])  # slot mask bits
payload += bounded(8, 12)                       # lg_vocab - 4
write("pairwise", "near_duplicates", payload)

payload = bounded(1, 3)  # non-default scoring
payload += token_seq([0] * 12)
payload += token_seq([0, 0, 1, 0, 0])
payload += bytes([0] * 13)
payload += bounded(3, 12)
write("pairwise", "runs_and_gaps", payload)

payload = bounded(0, 3) + token_seq([]) + token_seq([5, 5, 5])
payload += bytes([1]) + bounded(0, 12)
write("pairwise", "empty_reference", payload)

# --- poa: sequence count + sequences ---------------------------------
def poa_seqs(seqs):
    out = bounded(len(seqs) - 1, 7)
    for seq in seqs:
        out += bounded(len(seq), 24)
        for t in seq:
            out += bounded(t, 11)
    return out

write("poa", "three_variants",
      poa_seqs([[1, 2, 3, 4, 5], [1, 2, 6, 4, 5], [1, 2, 3, 7, 5, 8]]))
write("poa", "disjoint_and_empty",
      poa_seqs([[1, 1, 2], [], [3, 4, 5, 6]]))
write("poa", "single_long",
      poa_seqs([[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 1, 2]]))

# --- diff_fine / diff_coarse: option byte + synthetic families -------
def family(base, docs):
    """One template family: base phrase + per-doc mutation bytes."""
    out = bounded(len(base) - 3, 9)
    for w in base:
        out += bounded(w, 15)
    out += bounded(len(docs) - 2, 3)
    for mutations in docs:
        assert len(mutations) >= len(base)
        out += bytes(mutations[:len(base)])
    return out

def synthetic(option_bits, families, noise_docs):
    out = byte(option_bits)
    out += bounded(len(families) - 1, 2)
    for base, docs in families:
        out += family(base, docs)
    out += bounded(len(noise_docs), 3)
    for words in noise_docs:
        out += bounded(len(words) - 1, 7)
        for selector, word in words:
            out += byte(selector) + bounded(word, 9 if selector & 1 else 15)
    return out

CLEAN = [0x00] * 12          # copy base verbatim
SUBST = [0x00, 0x02, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
         0x00]               # substitute two positions
DELINS = [0x01, 0x00, 0x10, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
          0x00]              # one delete, one insert, one more delete

# Mutation bytes are followed inline by substituted/inserted word ids;
# interleave them where the decoder expects them.
def docs_with_words(base_len, mutations, extra_words):
    stream = []
    extras = list(extra_words)
    for m in mutations[:base_len]:
        stream.append(m)
    return stream, extras

# For seed simplicity, use mutation bytes that need no extra words
# (0x00 copy, 0x01 delete) plus explicit streams for subst/insert.
two_families = [
    ([1, 2, 3, 4, 5, 6], [[0] * 6, [0] * 6, [0, 1, 0, 0, 0, 0]]),
    ([7, 8, 9, 10, 11, 12, 13], [[0] * 7, [0, 0, 1, 0, 0, 0, 0]]),
]
noise = [[(0x01, 3), (0x00, 5)], [(0x01, 7)]]

write("diff_fine", "two_families", synthetic(0x00, two_families, noise))
write("diff_fine", "profile_backend", synthetic(0x02, two_families, []))
write("diff_fine", "exhaustive_search",
      synthetic(0x01, [([2, 4, 6, 8, 10], [[0] * 5, [0] * 5])], noise))

write("diff_coarse", "two_families", synthetic(0x00, two_families, noise))
write("diff_coarse", "unigrams_and_degree_cap",
      synthetic(0x05, two_families, noise))
write("diff_coarse", "min_cluster_three",
      synthetic(0x08, [([1, 3, 5, 7, 9, 11], [[0] * 6, [0] * 6, [0] * 6])],
                []))

# --- diff_coarse_backend: params + exact-duplicate families ----------
# Decode order: shingle_k-1, band choice, num_families-1, then per
# family (len-3, len word ids, extra copies), then num_noise and per
# noise doc (len-1, len word ids). Families are exact duplicates over
# disjoint vocabularies, the regime where both backends must agree.
def backend_corpus(shingle_k, band_choice, families, noise):
    out = bounded(shingle_k - 1, 3) + bounded(band_choice, 3)
    out += bounded(len(families) - 1, 3)
    for words, extra_copies in families:
        out += bounded(len(words) - 3, 7)
        for w in words:
            out += bounded(w, 15)
        out += bounded(extra_copies, 3)
    out += bounded(len(noise), 3)
    for words in noise:
        out += bounded(len(words) - 1, 7)
        for w in words:
            out += bounded(w, 7)
    return out

write("diff_coarse_backend", "two_families_k3",
      backend_corpus(3, 0,
                     [([1, 2, 3, 4, 5, 6], 1), ([7, 8, 9, 10, 11], 2)],
                     [[1, 2], [3]]))
write("diff_coarse_backend", "short_docs_rows8",
      backend_corpus(2, 2, [([0, 1, 2], 0)], [[5, 5, 5, 5]]))
write("diff_coarse_backend", "unigram_shingles_four_families",
      backend_corpus(1, 3,
                     [([3, 3, 4], 3), ([6, 7, 8, 9], 2),
                      ([10, 11, 12, 13, 14, 15, 0, 1], 0), ([2, 4, 6], 1)],
                     []))
write("diff_coarse_backend", "repeated_words_k4",
      backend_corpus(4, 1, [([5, 5, 5, 5, 5, 5, 5], 3)], [[0], [1, 1]]))

# --- diff_incremental: option byte + families + batch cut points -----
# After the synthetic corpus, the harness decodes ascending batch cut
# increments with TakeBounded(docs_remaining); exhausted input implies
# "everything left in one final batch". two_families + noise decodes to
# 7 documents.
write("diff_incremental", "two_families_three_batches",
      synthetic(0x00, two_families, noise) + u64(3) + u64(2))
write("diff_incremental", "threaded_with_degree_cap",
      synthetic(0x14, two_families, noise) + u64(1) + u64(1) + u64(1))
write("diff_incremental", "unigram_vocab_growth",
      synthetic(0x03, two_families, noise) + u64(2) + u64(0) + u64(4))

print("seed corpora regenerated under", ROOT)
