#include "text/ngram.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

Document MakeDoc(std::vector<TokenId> tokens) {
  Document d;
  d.tokens = std::move(tokens);
  return d;
}

TEST(HashNgramTest, DeterministicAndOrderSensitive) {
  TokenId a[] = {1, 2, 3};
  TokenId b[] = {3, 2, 1};
  EXPECT_EQ(HashNgram(a, 3), HashNgram(a, 3));
  EXPECT_NE(HashNgram(a, 3), HashNgram(b, 3));
}

TEST(HashNgramTest, LengthSeedingAvoidsPrefixCollision) {
  // (5) as a unigram must differ from (5, 0) as a bigram even though the
  // trailing token id is all-zero bytes.
  TokenId uni[] = {5};
  TokenId bi[] = {5, 0};
  EXPECT_NE(HashNgram(uni, 1), HashNgram(bi, 2));
}

TEST(ExtractNgramsTest, CountsMatchFormula) {
  // len=4, max_n=2 -> 4 unigrams + 3 bigrams.
  Document d = MakeDoc({10, 20, 30, 40});
  EXPECT_EQ(ExtractNgrams(d, 2).size(), 7u);
  // max_n=5 capped by length: 4+3+2+1 = 10.
  EXPECT_EQ(ExtractNgrams(d, 5).size(), 10u);
}

TEST(ExtractNgramsTest, EmptyDocAndZeroN) {
  Document d = MakeDoc({});
  EXPECT_TRUE(ExtractNgrams(d, 5).empty());
  Document d2 = MakeDoc({1});
  EXPECT_TRUE(ExtractNgrams(d2, 0).empty());
}

TEST(ExtractNgramsTest, SpansAreCorrect) {
  Document d = MakeDoc({7, 8, 9});
  std::vector<NgramSpan> grams = ExtractNgrams(d, 3);
  // Document order: all grams starting at 0, then 1, then 2.
  EXPECT_EQ(grams[0].begin, 0u);
  EXPECT_EQ(grams[0].n, 1u);
  EXPECT_EQ(grams[1].n, 2u);
  EXPECT_EQ(grams[2].n, 3u);
  EXPECT_EQ(grams.back().begin, 2u);
  EXPECT_EQ(grams.back().n, 1u);
}

TEST(ExtractNgramsTest, SharedPhrasesHashEqually) {
  Document d1 = MakeDoc({1, 2, 3, 4});
  Document d2 = MakeDoc({9, 1, 2, 3});
  std::unordered_set<PhraseHash> h1;
  for (const auto& g : ExtractNgrams(d1, 3)) h1.insert(g.hash);
  // The trigram (1,2,3) appears in both documents.
  TokenId tri[] = {1, 2, 3};
  EXPECT_TRUE(h1.count(HashNgram(tri, 3)));
  bool found = false;
  for (const auto& g : ExtractNgrams(d2, 3)) {
    if (g.hash == HashNgram(tri, 3)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ExtractNgramsTest, NoDuplicateSpans) {
  Document d = MakeDoc({1, 1, 1});
  std::vector<NgramSpan> grams = ExtractNgrams(d, 2);
  // Hashes repeat (repeated tokens) but spans are distinct.
  std::unordered_set<uint64_t> spans;
  for (const auto& g : grams) {
    spans.insert((static_cast<uint64_t>(g.begin) << 32) | g.n);
  }
  EXPECT_EQ(spans.size(), grams.size());
}

}  // namespace
}  // namespace infoshield
