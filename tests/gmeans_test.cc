#include "baselines/gmeans.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

using internal::AndersonDarlingStatistic;

TEST(AndersonDarlingTest, GaussianSampleScoresLow) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.NextGaussian());
  EXPECT_LT(AndersonDarlingStatistic(std::move(samples)), 1.8692);
}

TEST(AndersonDarlingTest, BimodalSampleScoresHigh) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 250; ++i) {
    samples.push_back(-5.0 + 0.3 * rng.NextGaussian());
    samples.push_back(5.0 + 0.3 * rng.NextGaussian());
  }
  EXPECT_GT(AndersonDarlingStatistic(std::move(samples)), 1.8692);
}

TEST(AndersonDarlingTest, DegenerateSamples) {
  EXPECT_DOUBLE_EQ(AndersonDarlingStatistic({}), 0.0);
  EXPECT_DOUBLE_EQ(AndersonDarlingStatistic({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(AndersonDarlingStatistic({2.0, 2.0, 2.0}), 0.0);
}

TEST(GmeansTest, SingleGaussianStaysOneCluster) {
  Rng rng(11);
  std::vector<Vec> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({static_cast<float>(rng.NextGaussian()),
                   static_cast<float>(rng.NextGaussian())});
  }
  GmeansResult r = Gmeans(pts, GmeansOptions{}, 3);
  EXPECT_EQ(r.num_clusters(), 1u);
  for (int64_t l : r.labels) EXPECT_EQ(l, 0);
}

TEST(GmeansTest, TwoSeparatedGaussiansSplit) {
  Rng rng(13);
  std::vector<Vec> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({static_cast<float>(20.0 + rng.NextGaussian()),
                   static_cast<float>(rng.NextGaussian())});
    pts.push_back({static_cast<float>(-20.0 + rng.NextGaussian()),
                   static_cast<float>(rng.NextGaussian())});
  }
  GmeansResult r = Gmeans(pts, GmeansOptions{}, 5);
  EXPECT_GE(r.num_clusters(), 2u);
  // Points from different blobs are labeled differently.
  EXPECT_NE(r.labels[0], r.labels[1]);
  // Points from the same blob share labels.
  EXPECT_EQ(r.labels[0], r.labels[2]);
  EXPECT_EQ(r.labels[1], r.labels[3]);
}

TEST(GmeansTest, FourBlobsFound) {
  Rng rng(17);
  std::vector<Vec> pts;
  const float kCenters[4][2] = {{30, 30}, {-30, 30}, {30, -30}, {-30, -30}};
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 80; ++i) {
      pts.push_back(
          {kCenters[c][0] + static_cast<float>(rng.NextGaussian()),
           kCenters[c][1] + static_cast<float>(rng.NextGaussian())});
    }
  }
  GmeansResult r = Gmeans(pts, GmeansOptions{}, 7);
  std::unordered_set<int64_t> distinct(r.labels.begin(), r.labels.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(GmeansTest, MaxClustersRespected) {
  Rng rng(19);
  std::vector<Vec> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({static_cast<float>(rng.NextDouble() * 1000),
                   static_cast<float>(rng.NextDouble() * 1000)});
  }
  GmeansOptions opts;
  opts.max_clusters = 4;
  GmeansResult r = Gmeans(pts, opts, 11);
  EXPECT_LE(r.num_clusters(), 4u);
}

TEST(GmeansTest, EmptyInput) {
  GmeansResult r = Gmeans({}, GmeansOptions{}, 1);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.num_clusters(), 0u);
}

TEST(GmeansTest, Deterministic) {
  Rng rng(23);
  std::vector<Vec> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({static_cast<float>(rng.NextGaussian() * 5),
                   static_cast<float>(rng.NextGaussian() * 5)});
  }
  GmeansResult a = Gmeans(pts, GmeansOptions{}, 99);
  GmeansResult b = Gmeans(pts, GmeansOptions{}, 99);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace infoshield
