#include "mdl/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace infoshield {
namespace {

TEST(CostModelTest, UnencodedDocCostIsLinear) {
  CostModel cm(10.0);  // lg V = 10
  EXPECT_DOUBLE_EQ(cm.UnencodedDocCost(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.UnencodedDocCost(7), 70.0);
}

TEST(CostModelTest, ArithmeticExample1FromPaper) {
  // Paper Arithmetic Example 1: a template with 10 tokens and 2 slots
  // costs <10> + 10 lg V + 3 lg 10.
  const double lg_v = 12.0;
  CostModel cm(lg_v);
  const double expected =
      UniversalCodeLength(10) + 10.0 * lg_v + 3.0 * std::log2(10.0);
  EXPECT_DOUBLE_EQ(cm.TemplateCost(10, 2), expected);
}

TEST(CostModelTest, SlotCostEquation4) {
  CostModel cm(8.0);
  // Empty slot: 1 bit.
  EXPECT_DOUBLE_EQ(cm.SlotCost(0), 1.0);
  // w = 1: 1 + <1> + 1*lgV.
  EXPECT_DOUBLE_EQ(cm.SlotCost(1), 1.0 + UniversalCodeLength(1) + 8.0);
  // w = 3: 1 + <3> + 3*lgV.
  EXPECT_DOUBLE_EQ(cm.SlotCost(3), 1.0 + UniversalCodeLength(3) + 24.0);
}

TEST(CostModelTest, AlignmentCostPerfectMatch) {
  CostModel cm(8.0);
  EncodingSummary s;
  s.alignment_length = 14;
  // No unmatched, no slots: <14> + 14 match bits.
  EXPECT_DOUBLE_EQ(cm.AlignmentCostBase(s), UniversalCodeLength(14) + 14.0);
}

TEST(CostModelTest, ArithmeticExample2Structure) {
  // Paper Arithmetic Example 2 (doc #4 vs T1): alignment length 14, 3
  // unmatched words of which 2 carry vocabulary indices, plus 2 slots of
  // one word each. Verify each term contributes as in Eq. 3/Eq. 4 (the
  // paper's printed expression omits the 2-bit op types; we include them
  // per the §III-B2 itemization).
  const double lg_v = 16.0;
  CostModel cm(lg_v);
  EncodingSummary s;
  s.alignment_length = 14;
  s.unmatched = 3;
  s.inserted_or_substituted = 2;
  s.slot_word_counts = {1, 1};
  const double expected = UniversalCodeLength(14) + 14.0  // <l̂> + l̂
                          + 3.0 * (std::log2(14.0) + 2.0)  // locations+ops
                          + 2.0 * lg_v                     // ins/sub words
                          + 2.0 * (1.0 + UniversalCodeLength(1) + lg_v);
  EXPECT_DOUBLE_EQ(cm.AlignmentCostBase(s), expected);
  // Template-id term: lg t.
  EXPECT_DOUBLE_EQ(cm.EncodedDocCost(2, s), expected + 1.0);
  EXPECT_DOUBLE_EQ(cm.EncodedDocCost(1, s), expected);
}

TEST(CostModelTest, ModelCostSumsTemplates) {
  CostModel cm(8.0);
  const double expected = UniversalCodeLength(2) + cm.TemplateCost(10, 1) +
                          cm.TemplateCost(5, 0);
  EXPECT_DOUBLE_EQ(cm.ModelCost({{10, 1}, {5, 0}}), expected);
}

TEST(CostModelTest, EmptyModelCostsOneBit) {
  CostModel cm(8.0);
  EXPECT_DOUBLE_EQ(cm.ModelCost({}), 1.0);
}

TEST(CostModelTest, NearDuplicateEncodingBeatsRaw) {
  // A 20-token document encoded against an identical template must cost
  // far less than spelling out 20 vocabulary indices.
  CostModel cm(14.0);
  EncodingSummary s;
  s.alignment_length = 20;
  EXPECT_LT(cm.EncodedDocCost(1, s), cm.UnencodedDocCost(20) / 3.0);
}

TEST(RelativeLengthTest, Basics) {
  EXPECT_DOUBLE_EQ(RelativeLength(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeLength(100.0, 0.0), 1.0);  // degenerate guard
}

TEST(LowerBoundTest, Lemma1Formula) {
  // t/n + 1/lgV.
  EXPECT_DOUBLE_EQ(RelativeLengthLowerBound(1, 10, 10.0), 0.1 + 0.1);
  EXPECT_DOUBLE_EQ(RelativeLengthLowerBound(2, 4, 8.0), 0.5 + 0.125);
}

TEST(LowerBoundTest, MoreTemplatesRaiseBound) {
  for (size_t t = 1; t < 5; ++t) {
    EXPECT_LT(RelativeLengthLowerBound(t, 100, 12.0),
              RelativeLengthLowerBound(t + 1, 100, 12.0));
  }
}

// Property: for exact duplicate clusters, the achieved relative length
// approaches (but never beats) the Lemma 1 lower bound as n grows.
class LowerBoundPropertyTest
    : public ::testing::TestWithParam<size_t> {};

TEST_P(LowerBoundPropertyTest, DuplicateClusterRespectsBound) {
  const size_t n = GetParam();
  const double lg_v = 12.0;
  const size_t len = 15;
  CostModel cm(lg_v);
  // n identical docs encoded by one template of the same length.
  EncodingSummary s;
  s.alignment_length = len;
  const double cost_before = static_cast<double>(n) * cm.UnencodedDocCost(len);
  double cost_after = cm.ModelCost({{len, 0}}) + static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) cost_after += cm.EncodedDocCost(1, s);
  const double rl = RelativeLength(cost_after, cost_before);
  const double bound = RelativeLengthLowerBound(1, n, lg_v);
  EXPECT_GE(rl, bound * 0.999);  // numeric slack
  // Compression is real for n >= 2.
  if (n >= 2) {
    EXPECT_LT(rl, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, LowerBoundPropertyTest,
                         ::testing::Values(2, 3, 5, 10, 50, 200, 1000));

TEST(CostModelDeathTest, NonPositiveLgVocabDies) {
  EXPECT_DEATH(CostModel(0.0), "Check failed");
}

}  // namespace
}  // namespace infoshield
