#include "datagen/plagiarism_gen.h"

#include <gtest/gtest.h>

#include "core/infoshield.h"
#include "eval/metrics.h"

namespace infoshield {
namespace {

PlagiarismGenOptions SmallOptions() {
  PlagiarismGenOptions o;
  o.num_original_essays = 20;
  o.num_plagiarized = 6;
  return o;
}

TEST(PlagiarismGenTest, ShapeAndLabels) {
  PlagiarismGenerator gen(SmallOptions());
  PlagiarismCorpus data = gen.Generate(3);
  EXPECT_EQ(data.corpus.size(), 26u);
  EXPECT_EQ(data.source_of.size(), 26u);
  // Originals first, all with source -1.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(data.source_of[i], -1);
    EXPECT_FALSE(data.IsPlagiarized(static_cast<DocId>(i)));
  }
  // Plagiarized essays reference a valid earlier source.
  for (size_t i = 20; i < 26; ++i) {
    EXPECT_GE(data.source_of[i], 0);
    EXPECT_LT(data.source_of[i], 20);
    EXPECT_TRUE(data.IsPlagiarized(static_cast<DocId>(i)));
  }
}

TEST(PlagiarismGenTest, PassageActuallyCopied) {
  PlagiarismGenOptions o = SmallOptions();
  o.paraphrase_prob = 0.0;  // verbatim copies
  PlagiarismGenerator gen(o);
  PlagiarismCorpus data = gen.Generate(7);
  // Each plagiarized essay shares a run of >= passage_length_min tokens
  // with its source; check via longest common substring of token ids
  // (quadratic, fine at this size).
  for (size_t i = 20; i < 26; ++i) {
    const auto& essay = data.corpus.doc(static_cast<DocId>(i)).tokens;
    const auto& src =
        data.corpus.doc(static_cast<DocId>(data.source_of[i])).tokens;
    size_t best = 0;
    for (size_t a = 0; a < essay.size(); ++a) {
      for (size_t b = 0; b < src.size(); ++b) {
        size_t k = 0;
        while (a + k < essay.size() && b + k < src.size() &&
               essay[a + k] == src[b + k]) {
          ++k;
        }
        best = std::max(best, k);
      }
    }
    EXPECT_GE(best, o.passage_length_min) << "essay " << i;
  }
}

TEST(PlagiarismGenTest, Deterministic) {
  PlagiarismGenerator gen(SmallOptions());
  PlagiarismCorpus a = gen.Generate(11);
  PlagiarismCorpus b = gen.Generate(11);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus.doc(static_cast<DocId>(i)).raw,
              b.corpus.doc(static_cast<DocId>(i)).raw);
  }
  EXPECT_EQ(a.source_of, b.source_of);
}

TEST(PlagiarismGenTest, HeavyPlagiarismDetectedByPipeline) {
  PlagiarismGenOptions o = SmallOptions();
  o.passage_length_min = 30;
  o.passage_length_max = 45;
  o.margin_length_min = 5;
  o.margin_length_max = 10;
  PlagiarismGenerator gen(o);
  PlagiarismCorpus data = gen.Generate(13);
  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);
  // Most plagiarized essays cluster with their source; no cluster joins
  // two unrelated originals.
  size_t paired = 0;
  for (size_t i = 20; i < 26; ++i) {
    const int64_t t = r.doc_template[i];
    if (t >= 0 &&
        t == r.doc_template[static_cast<size_t>(data.source_of[i])]) {
      ++paired;
    }
  }
  // Small corpus (V ~ 1k) makes MDL admission conservative; at realistic
  // scale the example achieves ~90% (see examples/plagiarism.cpp).
  EXPECT_GE(paired, 3u);
  // Precision: every template must contain at least one true pair.
  for (const TemplateCluster& tc : r.templates) {
    bool has_true_pair = false;
    for (DocId d : tc.members) {
      if (data.IsPlagiarized(d)) has_true_pair = true;
    }
    EXPECT_TRUE(has_true_pair);
  }
}

}  // namespace
}  // namespace infoshield
