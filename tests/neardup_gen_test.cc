// Near-duplicate family generator tests: the controllable-Jaccard
// derivation (datagen/neardup_gen.h) must actually land measured
// shingle Jaccard on target, and generation must be seed-deterministic
// — otherwise the LSH recall benches gate on noise.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/neardup_gen.h"
#include "lsh/minhash.h"
#include "text/corpus.h"

namespace infoshield {
namespace {

double ExactJaccard(const std::vector<TokenId>& a,
                    const std::vector<TokenId>& b, size_t shingle_k) {
  std::vector<uint64_t> sa = ShingleHashes(a, shingle_k);
  std::vector<uint64_t> sb = ShingleHashes(b, shingle_k);
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  std::vector<uint64_t> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter));
  const size_t uni = sa.size() + sb.size() - inter.size();
  return uni == 0 ? 0.0 : static_cast<double>(inter.size()) / uni;
}

TEST(NearDupGenTest, SubstitutionProbMatchesDerivation) {
  // J = 1 needs no substitutions at all.
  EXPECT_DOUBLE_EQ(SubstitutionProbForJaccard(1.0, 3), 0.0);
  // Lower targets need more substitution, longer shingles need less
  // (each touched token kills up to 2k shared shingles).
  EXPECT_GT(SubstitutionProbForJaccard(0.5, 3),
            SubstitutionProbForJaccard(0.9, 3));
  EXPECT_GT(SubstitutionProbForJaccard(0.8, 1),
            SubstitutionProbForJaccard(0.8, 5));
  // Round trip: s = (1-p)^(2k) back through J = s / (2 - s).
  const double p = SubstitutionProbForJaccard(0.7, 3);
  const double s = std::pow(1.0 - p, 6.0);
  EXPECT_NEAR(s / (2.0 - s), 0.7, 1e-12);
}

TEST(NearDupGenTest, MeasuredJaccardLandsOnTarget) {
  NearDupGenOptions options;
  options.num_families = 60;
  options.family_size_min = 4;
  options.family_size_max = 6;
  options.template_tokens = 30;
  options.target_jaccard = 0.8;
  options.shingle_k = 3;
  options.num_noise = 0;
  const NearDupCorpus data = GenerateNearDupFamilies(options, /*seed=*/71);

  std::map<int64_t, std::vector<size_t>> members;
  for (size_t d = 0; d < data.corpus.size(); ++d) {
    ASSERT_GE(data.family[d], 0);
    members[data.family[d]].push_back(d);
  }
  EXPECT_EQ(members.size(), options.num_families);

  double sum = 0.0;
  size_t pairs = 0;
  for (const auto& [fam, docs] : members) {
    for (size_t i = 0; i < docs.size(); ++i) {
      for (size_t j = i + 1; j < docs.size(); ++j) {
        sum += ExactJaccard(data.corpus.docs()[docs[i]].tokens,
                            data.corpus.docs()[docs[j]].tokens,
                            options.shingle_k);
        ++pairs;
      }
    }
  }
  ASSERT_GT(pairs, 500u);
  // The derivation is an expectation; averaged over >500 pairs the
  // measured mean must sit close to the dial. (The per-pair variance is
  // real — that is what the tolerance absorbs.)
  EXPECT_NEAR(sum / static_cast<double>(pairs), options.target_jaccard, 0.05);
}

TEST(NearDupGenTest, NoiseDocumentsAreLabeledAndCounted) {
  NearDupGenOptions options;
  options.num_families = 3;
  options.family_size_min = 2;
  options.family_size_max = 4;
  options.num_noise = 25;
  const NearDupCorpus data = GenerateNearDupFamilies(options, /*seed=*/5);
  ASSERT_EQ(data.corpus.size(), data.family.size());
  size_t noise = 0;
  for (int64_t fam : data.family) {
    if (fam < 0) ++noise;
  }
  EXPECT_EQ(noise, options.num_noise);
}

TEST(NearDupGenTest, SeedDeterministic) {
  NearDupGenOptions options;
  options.num_families = 8;
  options.num_noise = 20;
  const NearDupCorpus a = GenerateNearDupFamilies(options, /*seed=*/99);
  const NearDupCorpus b = GenerateNearDupFamilies(options, /*seed=*/99);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  EXPECT_EQ(a.family, b.family);
  for (size_t d = 0; d < a.corpus.size(); ++d) {
    EXPECT_EQ(a.corpus.docs()[d].raw, b.corpus.docs()[d].raw) << "doc " << d;
  }
  const NearDupCorpus c = GenerateNearDupFamilies(options, /*seed=*/100);
  bool any_different = c.corpus.size() != a.corpus.size();
  for (size_t d = 0; !any_different && d < a.corpus.size(); ++d) {
    any_different = a.corpus.docs()[d].raw != c.corpus.docs()[d].raw;
  }
  EXPECT_TRUE(any_different) << "different seeds produced the same corpus";
}

}  // namespace
}  // namespace infoshield
