#include "coarse/coarse_clustering.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(CoarseTest, NearDuplicatesGrouped) {
  Corpus c;
  c.Add("this is a great soap and the 5 dollar price is great");
  c.Add("this is a great chair and the 10 dollar price is great");
  c.Add("this is a great hat and the 3 dollar price is great");
  c.Add("completely different text about mountains rivers valleys oceans");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0], (std::vector<DocId>{0, 1, 2}));
  EXPECT_EQ(r.singletons, (std::vector<DocId>{3}));
}

TEST(CoarseTest, DisjointTopicsSeparate) {
  Corpus c;
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  c.Add("alpha beta gamma delta epsilon zeta eta iota");
  c.Add("uno dos tres cuatro cinco seis siete ocho");
  c.Add("uno dos tres cuatro cinco seis siete nueve");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0], (std::vector<DocId>{0, 1}));
  EXPECT_EQ(r.clusters[1], (std::vector<DocId>{2, 3}));
}

TEST(CoarseTest, EmptyCorpus) {
  Corpus c;
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_TRUE(r.singletons.empty());
}

TEST(CoarseTest, AllUniqueDocsAreSingletons) {
  Corpus c;
  c.Add("one red apple fell from tall tree yesterday morning quietly");
  c.Add("two blue birds flew over green hills during warm evening");
  c.Add("three old ships sailed across deep ocean under bright stars");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(r.singletons.size(), 3u);
}

TEST(CoarseTest, ExactDuplicatesAlwaysCluster) {
  Corpus c;
  for (int i = 0; i < 5; ++i) {
    c.Add("identical spam message repeated many times verbatim");
  }
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].size(), 5u);
}

TEST(CoarseTest, MinClusterSizeThreeDropsPairs) {
  Corpus c;
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  CoarseOptions opts;
  opts.min_cluster_size = 3;
  CoarseClustering coarse(opts);
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(r.singletons.size(), 2u);
}

TEST(CoarseTest, PhraseDegreeCapBreaksHubs) {
  // All docs share one phrase; capping the degree at 1 means the second
  // and later occurrences add no edges, leaving everything singleton.
  Corpus c;
  for (int i = 0; i < 4; ++i) {
    c.Add("shared phrase here " + std::to_string(i) + " unique suffix " +
          std::to_string(i * 7));
  }
  CoarseOptions opts;
  opts.max_phrase_degree = 1;
  CoarseClustering coarse(opts);
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
}

TEST(CoarseTest, EdgeCountPositiveWhenClustered) {
  Corpus c;
  c.Add("repeat me exactly word for word please thanks");
  c.Add("repeat me exactly word for word please thanks");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  EXPECT_GT(r.num_edges, 0u);
}

}  // namespace
}  // namespace infoshield
