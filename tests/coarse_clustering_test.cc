#include "coarse/coarse_clustering.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(CoarseTest, NearDuplicatesGrouped) {
  Corpus c;
  c.Add("this is a great soap and the 5 dollar price is great");
  c.Add("this is a great chair and the 10 dollar price is great");
  c.Add("this is a great hat and the 3 dollar price is great");
  c.Add("completely different text about mountains rivers valleys oceans");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0], (std::vector<DocId>{0, 1, 2}));
  EXPECT_EQ(r.singletons, (std::vector<DocId>{3}));
}

TEST(CoarseTest, DisjointTopicsSeparate) {
  Corpus c;
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  c.Add("alpha beta gamma delta epsilon zeta eta iota");
  c.Add("uno dos tres cuatro cinco seis siete ocho");
  c.Add("uno dos tres cuatro cinco seis siete nueve");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0], (std::vector<DocId>{0, 1}));
  EXPECT_EQ(r.clusters[1], (std::vector<DocId>{2, 3}));
}

TEST(CoarseTest, EmptyCorpus) {
  Corpus c;
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_TRUE(r.singletons.empty());
}

TEST(CoarseTest, AllUniqueDocsAreSingletons) {
  Corpus c;
  c.Add("one red apple fell from tall tree yesterday morning quietly");
  c.Add("two blue birds flew over green hills during warm evening");
  c.Add("three old ships sailed across deep ocean under bright stars");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(r.singletons.size(), 3u);
}

TEST(CoarseTest, ExactDuplicatesAlwaysCluster) {
  Corpus c;
  for (int i = 0; i < 5; ++i) {
    c.Add("identical spam message repeated many times verbatim");
  }
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].size(), 5u);
}

TEST(CoarseTest, MinClusterSizeThreeDropsPairs) {
  Corpus c;
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  CoarseOptions opts;
  opts.min_cluster_size = 3;
  CoarseClustering coarse(opts);
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(r.singletons.size(), 2u);
}

TEST(CoarseTest, PhraseDegreeCapBreaksHubs) {
  // All docs share one phrase; capping the degree at 1 means the second
  // and later occurrences add no edges, leaving everything singleton.
  Corpus c;
  for (int i = 0; i < 4; ++i) {
    c.Add("shared phrase here " + std::to_string(i) + " unique suffix " +
          std::to_string(i * 7));
  }
  CoarseOptions opts;
  opts.max_phrase_degree = 1;
  CoarseClustering coarse(opts);
  CoarseResult r = coarse.Run(c);
  EXPECT_TRUE(r.clusters.empty());
}

// Mixture corpus: several near-duplicate campaigns plus unique filler,
// big enough that the parallel path actually chunks the work.
Corpus MixtureCorpus() {
  Corpus c;
  for (int i = 0; i < 30; ++i) {
    c.Add("identical spam message blast number " + std::to_string(i % 5) +
          " contact now " + std::to_string(i % 5));
  }
  for (int i = 0; i < 10; ++i) {
    c.Add("wholly unique filler text piece " + std::to_string(i) + " " +
          std::to_string(i * 13 + 100) + " nothing shared");
  }
  return c;
}

TEST(CoarseTest, ParallelMatchesSerialReference) {
  Corpus c = MixtureCorpus();
  CoarseOptions serial_opts;
  serial_opts.use_serial_coarse = true;
  CoarseResult serial = CoarseClustering(serial_opts).Run(c);
  EXPECT_EQ(serial.stats.parallel_threads, 1u);
  for (size_t threads : {2u, 4u, 8u}) {
    CoarseOptions opts;
    opts.num_threads = threads;
    CoarseResult parallel = CoarseClustering(opts).Run(c);
    EXPECT_EQ(parallel.clusters, serial.clusters) << "threads=" << threads;
    EXPECT_EQ(parallel.singletons, serial.singletons)
        << "threads=" << threads;
    EXPECT_EQ(parallel.doc_top_phrases, serial.doc_top_phrases)
        << "threads=" << threads;
    EXPECT_EQ(parallel.num_edges, serial.num_edges) << "threads=" << threads;
    EXPECT_EQ(parallel.stats.parallel_threads, threads);
  }
}

TEST(CoarseTest, ParallelMatchesSerialWithPhraseDegreeCap) {
  // The degree cap is order-sensitive: only a hub phrase's first
  // max_phrase_degree edges survive, so which documents "win" depends
  // on edge order. The parallel path replays its collected edges in the
  // serial (document, phrase-rank) order and must therefore cap the
  // exact same edges.
  Corpus c;
  for (int i = 0; i < 12; ++i) {
    c.Add("hub shared phrase everywhere plus suffix " + std::to_string(i) +
          " " + std::to_string(i * 3 + 50));
  }
  CoarseOptions serial_opts;
  serial_opts.max_phrase_degree = 3;
  serial_opts.use_serial_coarse = true;
  CoarseResult serial = CoarseClustering(serial_opts).Run(c);
  CoarseOptions par_opts = serial_opts;
  par_opts.use_serial_coarse = false;
  par_opts.num_threads = 4;
  CoarseResult parallel = CoarseClustering(par_opts).Run(c);
  EXPECT_EQ(parallel.clusters, serial.clusters);
  EXPECT_EQ(parallel.singletons, serial.singletons);
  EXPECT_EQ(parallel.doc_top_phrases, serial.doc_top_phrases);
  EXPECT_EQ(parallel.num_edges, serial.num_edges);
}

TEST(CoarseTest, StatsCarryPerPhaseTimings) {
  Corpus c = MixtureCorpus();
  CoarseOptions opts;
  opts.num_threads = 4;
  CoarseResult r = CoarseClustering(opts).Run(c);
  EXPECT_GE(r.stats.index_seconds, 0.0);
  EXPECT_GE(r.stats.top_phrase_seconds, 0.0);
  EXPECT_GE(r.stats.graph_seconds, 0.0);
  EXPECT_GE(r.stats.components_seconds, 0.0);
  EXPECT_GE(r.stats.total_seconds(), r.stats.index_seconds);
  // The sharded build flushed at least one local shard per chunk.
  EXPECT_GT(r.stats.shard_flushes, 0u);
}

TEST(CoarseTest, EdgeCountPositiveWhenClustered) {
  Corpus c;
  c.Add("repeat me exactly word for word please thanks");
  c.Add("repeat me exactly word for word please thanks");
  CoarseClustering coarse;
  CoarseResult r = coarse.Run(c);
  EXPECT_GT(r.num_edges, 0u);
}

}  // namespace
}  // namespace infoshield
