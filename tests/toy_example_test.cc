// End-to-end reproduction of the paper's toy examples (§III-A, Tables
// II–V): the full 7-document corpus must yield two templates — T1 for
// docs #1–4 with slots where "soap/chair/hat/blue pen" and "5/10/3"
// differ, T2 for docs #5–6 — while doc #7 stays unclustered.

#include <gtest/gtest.h>

#include "core/infoshield.h"

namespace infoshield {
namespace {

Corpus ToyCorpus() {
  Corpus c;
  c.Add("This is a great soap, and the 5 dollar price is great");    // #1
  c.Add("This is a great chair, and the 10 dollar price is great");  // #2
  c.Add("This is a great hat, and the 3 dollar price is great");     // #3
  c.Add("This is great blue pen, and the 3 dollar price is so good");  // #4
  c.Add("I made 30K working on this job - call 123-456.7890 or visit "
        "scam.com");  // #5
  c.Add("I made 30K working from home - call 123-456.7890 or visit "
        "fraud.com");  // #6
  c.Add("Happy birthday to my dear friend Mike");  // #7
  // Background documents: the paper's setting is micro-clusters hidden
  // in a large corpus of unrelated documents. With only the 7 toy docs
  // the vocabulary is so tiny (lg V ~ 5.5 bits) that MDL rightly judges
  // templates unprofitable; the background restores a realistic lg V and
  // realistic idf weights without touching the toy clusters.
  const char* kBackground[] = {
      "quarterly earnings beat analyst expectations across retail sector",
      "heavy rainfall expected over coastal regions through friday night",
      "local library announces extended weekend opening schedule soon",
      "championship match ended in dramatic penalty shootout yesterday",
      "researchers publish findings about deep ocean microbial life",
      "city council approves funding for downtown bicycle lanes project",
      "new bakery on elm street sells sourdough every sunny morning",
      "museum exhibit features ancient pottery from river valleys",
      "volunteers planted hundreds of oak saplings along the highway",
      "startup launches app connecting farmers with nearby restaurants",
      "observatory spots unusually bright comet near southern horizon",
      "orchestra premieres symphony inspired by mountain railways",
  };
  for (const char* text : kBackground) c.Add(text);
  // More unrelated singleton documents push the vocabulary toward a
  // realistic size (the paper's corpora have V in the tens of
  // thousands; MDL decisions at V ~ 100 are artificially borderline).
  for (int i = 0; i < 60; ++i) {
    std::string filler;
    for (int j = 0; j < 10; ++j) {
      filler += "backgroundword" + std::to_string(i * 10 + j) + " ";
    }
    c.Add(filler);
  }
  return c;
}

TEST(ToyExampleTest, GroupsRecoveredAndOutlierLeftAlone) {
  Corpus c = ToyCorpus();
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);

  // Every "great product" doc (0-3) and both scam docs (4-5) land in
  // templates; doc #7 (index 6) and the background stay unclustered.
  // The coarse stage may split docs 0-3 into two sub-templates (docs 2-3
  // additionally share the "3 dollar" phrasing, which crowds the broader
  // shared phrases out of their top-phrase budget), so T1 appears as one
  // 4-doc template or two 2-doc templates; both encode the same
  // structure.
  EXPECT_EQ(r.num_suspicious(), 6u);
  for (DocId d = 0; d <= 5; ++d) {
    EXPECT_GE(r.doc_template[d], 0) << "doc " << d;
  }
  EXPECT_EQ(r.doc_template[6], -1);
  ASSERT_GE(r.templates.size(), 2u);
  ASSERT_LE(r.templates.size(), 3u);

  // No template mixes the product-ad group with the scam group.
  for (const TemplateCluster& tc : r.templates) {
    bool has_product = false;
    bool has_scam = false;
    for (DocId d : tc.members) {
      if (d <= 3) has_product = true;
      if (d == 4 || d == 5) has_scam = true;
    }
    EXPECT_FALSE(has_product && has_scam);
  }

  // The scam template covers exactly docs 4-5.
  const TemplateCluster& scam =
      r.templates[static_cast<size_t>(r.doc_template[4])];
  EXPECT_EQ(scam.members, (std::vector<DocId>{4, 5}));
}

TEST(ToyExampleTest, TemplatesKeepSharedPhrasing) {
  Corpus c = ToyCorpus();
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  // Doc 0's template keeps the product-ad backbone.
  ASSERT_GE(r.doc_template[0], 0);
  std::string t1_text =
      r.templates[static_cast<size_t>(r.doc_template[0])].tmpl.ToString(
          c.vocab());
  EXPECT_NE(t1_text.find("this is"), std::string::npos) << t1_text;
  EXPECT_NE(t1_text.find("dollar price is"), std::string::npos) << t1_text;
  // The scam template keeps the scam backbone.
  ASSERT_GE(r.doc_template[4], 0);
  std::string t2_text =
      r.templates[static_cast<size_t>(r.doc_template[4])].tmpl.ToString(
          c.vocab());
  EXPECT_NE(t2_text.find("i made 30k working"), std::string::npos)
      << t2_text;
  EXPECT_NE(t2_text.find("or visit"), std::string::npos) << t2_text;
}

TEST(ToyExampleTest, Template1HasProductSlotAndPriceVariation) {
  Corpus c = ToyCorpus();
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  // Doc #1's template (whether it covers docs 0-3 or the 0-1 subgroup).
  ASSERT_GE(r.doc_template[0], 0);
  const TemplateCluster* t1 =
      &r.templates[static_cast<size_t>(r.doc_template[0])];
  // The product position ("soap/chair/...") differs in every document,
  // so MDL must prefer a slot there.
  EXPECT_GE(t1->tmpl.num_slots(), 1u);
  const DocEncoding& e0 = t1->encodings[0];
  std::vector<std::string> fills;
  for (const auto& words : e0.slot_words) {
    for (TokenId w : words) fills.push_back(c.vocab().Word(w));
  }
  EXPECT_NE(std::find(fills.begin(), fills.end(), "soap"), fills.end());
  // The price position ("5/10/3/3") is captured either as a slot or —
  // since two documents share "3", making a constant + substitutions
  // cheaper under the cost model — as substitutions against a constant.
  bool price_as_slot =
      std::find(fills.begin(), fills.end(), "5") != fills.end();
  bool price_as_substitution = false;
  for (const AnnotatedColumn& col : e0.columns) {
    if (col.kind == ColumnKind::kSubstitution &&
        c.vocab().Word(col.doc_token) == "5") {
      price_as_substitution = true;
    }
  }
  EXPECT_TRUE(price_as_slot || price_as_substitution);
}

TEST(ToyExampleTest, Template2SlotsCaptureUrls) {
  Corpus c = ToyCorpus();
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  const TemplateCluster* t2 = nullptr;
  for (const TemplateCluster& tc : r.templates) {
    if (tc.members.size() == 2) t2 = &tc;
  }
  ASSERT_NE(t2, nullptr);
  EXPECT_GE(t2->tmpl.num_slots(), 1u);
}

TEST(ToyExampleTest, TotalCostDecreases) {
  Corpus c = ToyCorpus();
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  for (const ClusterStats& s : r.cluster_stats) {
    EXPECT_LE(s.cost_after, s.cost_before);
    EXPECT_LE(s.relative_length, 1.0);
    EXPECT_GE(s.relative_length, s.lower_bound * 0.999);
  }
}

TEST(ToyExampleTest, DeterministicAcrossRuns) {
  Corpus c1 = ToyCorpus();
  Corpus c2 = ToyCorpus();
  InfoShield shield;
  InfoShieldResult r1 = shield.Run(c1);
  InfoShieldResult r2 = shield.Run(c2);
  ASSERT_EQ(r1.templates.size(), r2.templates.size());
  EXPECT_EQ(r1.doc_template, r2.doc_template);
  for (size_t i = 0; i < r1.templates.size(); ++i) {
    EXPECT_EQ(r1.templates[i].tmpl.tokens, r2.templates[i].tmpl.tokens);
    EXPECT_EQ(r1.templates[i].tmpl.slot_at_gap,
              r2.templates[i].tmpl.slot_at_gap);
  }
}

}  // namespace
}  // namespace infoshield
