#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 2u);
}

TEST(UnionFindTest, UnionIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFindTest, ChainCollapsesUnderPathHalving) {
  const uint32_t n = 1000;
  UnionFind uf(n);
  for (uint32_t i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.SetSize(0), n);
  uint32_t root = uf.Find(0);
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(uf.Find(i), root);
}

TEST(UnionFindDeathTest, FindOutOfRangeDies) {
  UnionFind uf(2);
  EXPECT_DEATH(uf.Find(2), "Check failed");
}

}  // namespace
}  // namespace infoshield
