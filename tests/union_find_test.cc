#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace infoshield {

// Reaches into the private parent array to plant corruption the public
// API can never produce, so the chain bounds check in Find is testable.
class UnionFindTestPeer {
 public:
  static void SetParent(UnionFind& uf, uint32_t element, uint32_t parent) {
    uf.parent_[element] = parent;
  }
};

namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 2u);
}

TEST(UnionFindTest, UnionIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFindTest, ChainCollapsesUnderPathHalving) {
  const uint32_t n = 1000;
  UnionFind uf(n);
  for (uint32_t i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.SetSize(0), n);
  uint32_t root = uf.Find(0);
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(uf.Find(i), root);
}

TEST(UnionFindDeathTest, FindOutOfRangeDies) {
  UnionFind uf(2);
  EXPECT_DEATH(uf.Find(2), "Check failed");
}

TEST(UnionFindTest, AddElementGrowsAsSingleton) {
  UnionFind uf(2);
  uf.Union(0, 1);
  const uint32_t id = uf.AddElement();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(uf.num_elements(), 3u);
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_EQ(uf.Find(id), id);
  EXPECT_EQ(uf.SetSize(id), 1u);
  EXPECT_FALSE(uf.Connected(0, id));
  EXPECT_TRUE(uf.ValidateInvariants().ok());
}

TEST(UnionFindTest, AddedElementsUnionWithOldOnes) {
  UnionFind uf(3);
  uf.Union(0, 1);
  const uint32_t a = uf.AddElement();
  const uint32_t b = uf.AddElement();
  EXPECT_TRUE(uf.Union(a, 0));
  EXPECT_TRUE(uf.Union(b, 2));
  EXPECT_TRUE(uf.Connected(a, 1));
  EXPECT_EQ(uf.SetSize(0), 3u);
  EXPECT_EQ(uf.SetSize(2), 2u);
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_TRUE(uf.ValidateInvariants().ok());
}

TEST(UnionFindTest, AddElementFromEmpty) {
  UnionFind uf(0);
  EXPECT_EQ(uf.AddElement(), 0u);
  EXPECT_EQ(uf.AddElement(), 1u);
  uf.Reserve(100);
  EXPECT_EQ(uf.num_elements(), 2u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.ValidateInvariants().ok());
}

TEST(UnionFindDeathTest, CorruptParentChainDiesInsteadOfSilentUb) {
  // A stale or corrupt in-range element whose PARENT entry walked off
  // the array used to be silent UB in the path-halving read
  // (parent_[parent_[x]]); the chain bounds check turns it into a fatal
  // check. The argument check alone cannot catch this: x itself is in
  // range.
  UnionFind uf(3);
  UnionFindTestPeer::SetParent(uf, 1, 7);
  EXPECT_DEATH(uf.Find(1), "Check failed");
}

TEST(UnionFindTest, ValidateInvariantsFlagsCorruptParent) {
  UnionFind uf(3);
  UnionFindTestPeer::SetParent(uf, 1, 7);
  const Status status = uf.ValidateInvariants();
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace infoshield
