#include "util/logging.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(LoggingTest, ChecksPassOnTrueCondition) {
  CHECK(true) << "never printed";
  CHECK_EQ(1, 1);
  CHECK_NE(1, 2);
  CHECK_LT(1, 2);
  CHECK_LE(2, 2);
  CHECK_GT(3, 2);
  CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckEqPrintsValues) {
  EXPECT_DEATH({ CHECK_EQ(2 + 2, 5); }, "4 vs. 5");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ LOG(FATAL) << "fatal path"; }, "fatal path");
}

TEST(LoggingTest, SeverityFilterRoundTrips) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  LOG(INFO) << "suppressed";
  SetMinLogSeverity(original);
}

}  // namespace
}  // namespace infoshield
