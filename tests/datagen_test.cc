#include "datagen/trafficking_gen.h"
#include "datagen/twitter_gen.h"
#include "datagen/wordlists.h"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(WordlistsTest, PoolsAreNonEmptyAndDistinct) {
  EXPECT_GT(WordsFor(Language::kEnglish).size(), 300u);
  EXPECT_GT(WordsFor(Language::kSpanish).size(), 100u);
  EXPECT_GT(WordsFor(Language::kItalian).size(), 80u);
  EXPECT_GT(WordsFor(Language::kJapanese).size(), 80u);
  EXPECT_GT(FirstNames().size(), 20u);
  EXPECT_GT(CityNames().size(), 20u);
}

TwitterGenOptions SmallTwitterOptions() {
  TwitterGenOptions o;
  o.num_genuine_accounts = 10;
  o.num_bot_accounts = 5;
  o.tweets_per_genuine_min = 3;
  o.tweets_per_genuine_max = 6;
  o.tweets_per_bot_min = 4;
  o.tweets_per_bot_max = 8;
  return o;
}

TEST(TwitterGenTest, LabelsAreParallelAndConsistent) {
  TwitterGenerator gen(SmallTwitterOptions());
  LabeledTweets data = gen.Generate(7);
  EXPECT_GT(data.corpus.size(), 0u);
  EXPECT_EQ(data.corpus.size(), data.account_id.size());
  EXPECT_EQ(data.corpus.size(), data.is_bot.size());
  EXPECT_EQ(data.corpus.size(), data.cluster_label.size());
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (data.is_bot[i]) {
      EXPECT_EQ(data.cluster_label[i], data.account_id[i]);
    } else {
      EXPECT_EQ(data.cluster_label[i], -1);
    }
  }
}

TEST(TwitterGenTest, Deterministic) {
  TwitterGenerator gen(SmallTwitterOptions());
  LabeledTweets a = gen.Generate(42);
  LabeledTweets b = gen.Generate(42);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus.doc(static_cast<DocId>(i)).raw,
              b.corpus.doc(static_cast<DocId>(i)).raw);
  }
}

TEST(TwitterGenTest, SeedsChangeOutput) {
  TwitterGenerator gen(SmallTwitterOptions());
  LabeledTweets a = gen.Generate(1);
  LabeledTweets b = gen.Generate(2);
  bool any_diff = a.corpus.size() != b.corpus.size();
  for (size_t i = 0; !any_diff && i < a.corpus.size(); ++i) {
    any_diff = a.corpus.doc(static_cast<DocId>(i)).raw !=
               b.corpus.doc(static_cast<DocId>(i)).raw;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TwitterGenTest, BotTweetsShareCampaignPhrasing) {
  TwitterGenOptions o = SmallTwitterOptions();
  o.bot_edit_prob = 0.0;
  o.template_slots_min = 0;
  o.template_slots_max = 0;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(11);
  // With no edits and no slots, all tweets of one bot are identical.
  std::unordered_map<int64_t, std::unordered_set<std::string>> texts;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (data.is_bot[i]) {
      texts[data.account_id[i]].insert(
          data.corpus.doc(static_cast<DocId>(i)).raw);
    }
  }
  for (const auto& [account, set] : texts) {
    EXPECT_EQ(set.size(), 1u) << "bot " << account;
  }
}

TEST(TwitterGenTest, GenuineTweetsAreDiverse) {
  TwitterGenerator gen(SmallTwitterOptions());
  LabeledTweets data = gen.Generate(13);
  std::unordered_set<std::string> genuine_texts;
  size_t genuine_count = 0;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (!data.is_bot[i]) {
      ++genuine_count;
      genuine_texts.insert(data.corpus.doc(static_cast<DocId>(i)).raw);
    }
  }
  // Nearly all genuine tweets should be unique.
  EXPECT_GE(genuine_texts.size(), genuine_count * 9 / 10);
}

TEST(TwitterGenTest, SpanishMixProducesSpanishTokens) {
  TwitterGenOptions o = SmallTwitterOptions();
  o.english_fraction = 0.0;
  o.spanish_fraction = 1.0;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(17);
  // "de" / "la" are top-ranked Spanish tokens under Zipf sampling.
  bool saw_spanish = data.corpus.vocab().Find("de") != kInvalidToken ||
                     data.corpus.vocab().Find("la") != kInvalidToken ||
                     data.corpus.vocab().Find("el") != kInvalidToken;
  EXPECT_TRUE(saw_spanish);
}

TraffickingGenOptions SmallTraffickingOptions() {
  TraffickingGenOptions o;
  o.num_benign = 50;
  o.num_spam_clusters = 2;
  o.spam_cluster_size_min = 10;
  o.spam_cluster_size_max = 20;
  o.num_ht_clusters = 4;
  o.ht_cluster_size_min = 4;
  o.ht_cluster_size_max = 8;
  return o;
}

TEST(TraffickingGenTest, PopulationCountsMatch) {
  TraffickingGenerator gen(SmallTraffickingOptions());
  LabeledAds data = gen.Generate(5);
  EXPECT_EQ(data.CountType(AdType::kBenign), 50u);
  EXPECT_GE(data.CountType(AdType::kSpam), 20u);
  EXPECT_GE(data.CountType(AdType::kTrafficking), 16u);
  EXPECT_EQ(data.corpus.size(),
            data.CountType(AdType::kBenign) + data.CountType(AdType::kSpam) +
                data.CountType(AdType::kTrafficking));
}

TEST(TraffickingGenTest, ClusterLabelsConsistentWithTypes) {
  TraffickingGenerator gen(SmallTraffickingOptions());
  LabeledAds data = gen.Generate(5);
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (data.type[i] == AdType::kBenign) {
      EXPECT_EQ(data.cluster_label[i], -1);
    } else {
      EXPECT_GE(data.cluster_label[i], 0);
    }
  }
}

TEST(TraffickingGenTest, ExpertScoresInRange) {
  TraffickingGenerator gen(SmallTraffickingOptions());
  LabeledAds data = gen.Generate(5);
  for (int s : data.expert_score) {
    EXPECT_GE(s, 0);
    EXPECT_LE(s, 6);
  }
}

TEST(TraffickingGenTest, LabelNoiseCreatesDisagreement) {
  TraffickingGenOptions o = SmallTraffickingOptions();
  o.label_noise = 0.3;
  TraffickingGenerator gen(o);
  LabeledAds data = gen.Generate(5);
  // Some HT ads must be scored < 4 and some benign ads >= 4.
  bool ht_underscored = false;
  bool benign_overscored = false;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (data.type[i] == AdType::kTrafficking && data.expert_score[i] < 4) {
      ht_underscored = true;
    }
    if (data.type[i] == AdType::kBenign && data.expert_score[i] >= 4) {
      benign_overscored = true;
    }
  }
  EXPECT_TRUE(ht_underscored);
  EXPECT_TRUE(benign_overscored);
}

TEST(TraffickingGenTest, SpamClustersAreNearExactDuplicates) {
  TraffickingGenOptions o = SmallTraffickingOptions();
  o.spam_edit_prob = 0.0;
  TraffickingGenerator gen(o);
  LabeledAds data = gen.Generate(9);
  std::unordered_map<int64_t, std::unordered_set<std::string>> texts;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (data.type[i] == AdType::kSpam) {
      texts[data.cluster_label[i]].insert(
          data.corpus.doc(static_cast<DocId>(i)).raw);
    }
  }
  for (const auto& [cluster, set] : texts) {
    EXPECT_EQ(set.size(), 1u);
  }
}

TEST(PoolWordTest, FirstRanksAreBaseWords) {
  const std::vector<std::string> base = {"a", "b", "c"};
  EXPECT_EQ(PoolWord(base, 0), "a");
  EXPECT_EQ(PoolWord(base, 2), "c");
}

TEST(PoolWordTest, WrappedRanksGetSuffixes) {
  const std::vector<std::string> base = {"a", "b", "c"};
  EXPECT_EQ(PoolWord(base, 3), "a2");
  EXPECT_EQ(PoolWord(base, 4), "b2");
  EXPECT_EQ(PoolWord(base, 7), "b3");
}

TEST(PoolWordTest, DistinctRanksDistinctWords) {
  const std::vector<std::string> base = {"x", "y"};
  std::unordered_set<std::string> seen;
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_TRUE(seen.insert(PoolWord(base, r)).second) << "rank " << r;
  }
}

TEST(TraffickingGenTest, Deterministic) {
  TraffickingGenerator gen(SmallTraffickingOptions());
  LabeledAds a = gen.Generate(21);
  LabeledAds b = gen.Generate(21);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus.doc(static_cast<DocId>(i)).raw,
              b.corpus.doc(static_cast<DocId>(i)).raw);
  }
  EXPECT_EQ(a.expert_score, b.expert_score);
}

}  // namespace
}  // namespace infoshield
