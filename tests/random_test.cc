#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace infoshield {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) {
    ++seen[rng.NextBounded(8)];
  }
  for (int count : seen) EXPECT_GT(count, 300);  // ~500 expected
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIndependentOfConsumption) {
  Rng a(31);
  Rng b(31);
  // Consume from a only.
  for (int i = 0; i < 10; ++i) a.NextUint64();
  Rng fa = a.Fork(5);
  Rng fb = b.Fork(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng a(37);
  Rng f1 = a.Fork(1);
  Rng f2 = a.Fork(2);
  EXPECT_NE(f1.NextUint64(), f2.NextUint64());
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(41);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, StaysInRange) {
  ZipfSampler zipf(100, 1.1);
  Rng rng(43);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(47);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], counts[49] * 5);
}

TEST(ZipfTest, FrequencyRatioRoughlyZipfian) {
  // For s=1, P(rank 0)/P(rank 1) should be ~2.
  ZipfSampler zipf(1000, 1.0);
  Rng rng(53);
  int c0 = 0;
  int c1 = 0;
  for (int i = 0; i < 200000; ++i) {
    size_t r = zipf.Sample(rng);
    if (r == 0) ++c0;
    if (r == 1) ++c1;
  }
  EXPECT_NEAR(static_cast<double>(c0) / c1, 2.0, 0.3);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace infoshield
