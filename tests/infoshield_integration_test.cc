// End-to-end pipeline tests on generated corpora: coarse + fine together,
// against ground-truth labels from the data generators.

#include <gtest/gtest.h>

#include "core/infoshield.h"
#include "datagen/trafficking_gen.h"
#include "datagen/twitter_gen.h"
#include "eval/metrics.h"

namespace infoshield {
namespace {

TEST(IntegrationTest, TwitterBotsDetectedWithHighF1) {
  TwitterGenOptions o;
  o.num_genuine_accounts = 30;
  o.num_bot_accounts = 15;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(1234);

  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);

  std::vector<bool> predicted;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    predicted.push_back(r.IsSuspicious(static_cast<DocId>(i)));
  }
  std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
  BinaryMetrics m = ComputeBinaryMetrics(predicted, truth);
  // The paper reports F1 > 90% on the Cresci sets; the synthetic
  // substitute is comparable in difficulty.
  EXPECT_GT(m.f1(), 0.85) << "precision=" << m.precision()
                          << " recall=" << m.recall();
  EXPECT_GT(m.precision(), 0.85);
}

TEST(IntegrationTest, TwitterClusterAriIsHigh) {
  TwitterGenOptions o;
  o.num_genuine_accounts = 20;
  o.num_bot_accounts = 10;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(777);

  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);
  double ari = AdjustedRandIndex(data.cluster_label, r.doc_template);
  EXPECT_GT(ari, 0.6);
}

TEST(IntegrationTest, TraffickingPrecisionBeatsRecall) {
  TraffickingGenOptions o;
  o.num_benign = 150;
  o.num_spam_clusters = 2;
  o.spam_cluster_size_min = 15;
  o.spam_cluster_size_max = 30;
  o.num_ht_clusters = 10;
  TraffickingGenerator gen(o);
  LabeledAds data = gen.Generate(99);

  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);

  // Suspicious = clustered. Truth = organized activity (spam or HT).
  std::vector<bool> predicted;
  std::vector<bool> truth;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    predicted.push_back(r.IsSuspicious(static_cast<DocId>(i)));
    truth.push_back(data.type[i] != AdType::kBenign);
  }
  BinaryMetrics m = ComputeBinaryMetrics(predicted, truth);
  EXPECT_GT(m.precision(), 0.8);
  EXPECT_GT(m.recall(), 0.5);
}

TEST(IntegrationTest, ClusterStatsRespectLemma1) {
  TraffickingGenOptions o;
  o.num_benign = 80;
  o.num_spam_clusters = 2;
  o.spam_cluster_size_min = 10;
  o.spam_cluster_size_max = 20;
  o.num_ht_clusters = 6;
  TraffickingGenerator gen(o);
  LabeledAds data = gen.Generate(31);

  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);
  ASSERT_GT(r.cluster_stats.size(), 0u);
  for (const ClusterStats& s : r.cluster_stats) {
    EXPECT_LE(s.cost_after, s.cost_before);
    if (s.num_templates > 0) {
      // Relative length may never beat the Lemma 1 lower bound.
      EXPECT_GE(s.relative_length, s.lower_bound * 0.999)
          << "cluster " << s.coarse_cluster_index << " t="
          << s.num_templates << " n=" << s.num_docs;
    }
  }
}

TEST(IntegrationTest, DocTemplateMappingMatchesMembership) {
  TwitterGenOptions o;
  o.num_genuine_accounts = 10;
  o.num_bot_accounts = 5;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(555);
  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);
  for (size_t t = 0; t < r.templates.size(); ++t) {
    for (DocId d : r.templates[t].members) {
      EXPECT_EQ(r.doc_template[d], static_cast<int64_t>(t));
    }
  }
  // Every suspicious doc belongs to exactly the template it maps to.
  size_t total_members = 0;
  for (const TemplateCluster& tc : r.templates) {
    total_members += tc.members.size();
  }
  EXPECT_EQ(total_members, r.num_suspicious());
}

TEST(IntegrationTest, TimingBreakdownPopulated) {
  TwitterGenOptions o;
  o.num_genuine_accounts = 5;
  o.num_bot_accounts = 3;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(8);
  InfoShield shield;
  InfoShieldResult r = shield.Run(data.corpus);
  EXPECT_GE(r.coarse_seconds, 0.0);
  EXPECT_GE(r.fine_seconds, 0.0);
}

TEST(IntegrationTest, EmptyCorpus) {
  Corpus c;
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_EQ(r.num_suspicious(), 0u);
}

TEST(IntegrationTest, ThreadCountDoesNotChangeResults) {
  TwitterGenOptions o;
  o.num_genuine_accounts = 15;
  o.num_bot_accounts = 10;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(2024);

  InfoShieldOptions sequential;
  sequential.num_threads = 1;
  InfoShieldOptions parallel;
  parallel.num_threads = 4;
  InfoShieldResult r1 = InfoShield(sequential).Run(data.corpus);
  InfoShieldResult r2 = InfoShield(parallel).Run(data.corpus);

  EXPECT_EQ(r1.doc_template, r2.doc_template);
  ASSERT_EQ(r1.templates.size(), r2.templates.size());
  for (size_t t = 0; t < r1.templates.size(); ++t) {
    EXPECT_EQ(r1.templates[t].tmpl.tokens, r2.templates[t].tmpl.tokens);
    EXPECT_EQ(r1.templates[t].tmpl.slot_at_gap,
              r2.templates[t].tmpl.slot_at_gap);
    EXPECT_EQ(r1.templates[t].members, r2.templates[t].members);
  }
}

TEST(IntegrationTest, MultilingualClustersFound) {
  // Spanish near-duplicates among English noise: InfoShield must cluster
  // the Spanish campaign without language-specific handling (paper
  // Table IX / §V-F Advantage 1).
  Corpus c;
  c.Add("sismo magnitud 4 richter 23 km al sureste de puerto escondido");
  c.Add("sismo magnitud 4 richter 25 km al sureste de puerto escondido");
  c.Add("sismo magnitud 5 richter 23 km al sureste de puerto escondido");
  c.Add("the weather is lovely today in the northern mountain valleys");
  c.Add("stock markets closed higher after strong earnings this quarter");
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  ASSERT_EQ(r.templates.size(), 1u);
  EXPECT_EQ(r.templates[0].members, (std::vector<DocId>{0, 1, 2}));
  EXPECT_EQ(r.doc_template[3], -1);
  EXPECT_EQ(r.doc_template[4], -1);
}

}  // namespace
}  // namespace infoshield
