#include "core/fine_clustering.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

std::vector<DocId> AllDocs(const Corpus& c) {
  std::vector<DocId> ids(c.size());
  for (size_t i = 0; i < c.size(); ++i) ids[i] = static_cast<DocId>(i);
  return ids;
}

// Enlarges the corpus vocabulary with unique filler tokens (lg V drives
// the MDL trade-off: with a toy-sized vocabulary, raw documents are so
// cheap that templates rightly never pay off). The filler documents are
// NOT part of any cluster under test.
void PadVocabulary(Corpus& c, size_t num_words) {
  std::string text;
  for (size_t i = 0; i < num_words; ++i) {
    if (!text.empty()) text.push_back(' ');
    text += "filler" + std::to_string(i);
    if (text.size() > 200) {
      c.Add(text);
      text.clear();
    }
  }
  if (!text.empty()) c.Add(text);
}

TEST(FineClusteringTest, ExactDuplicatesFormOneTemplate) {
  Corpus c;
  for (int i = 0; i < 5; ++i) {
    c.Add("buy cheap watches now great deal online store");
  }
  // Pad the vocabulary so lg V is realistic.
  c.Add("unrelated filler words apple banana cherry dragon elephant fox");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, {0, 1, 2, 3, 4}, cm);
  ASSERT_EQ(r.templates.size(), 1u);
  EXPECT_EQ(r.templates[0].members.size(), 5u);
  EXPECT_TRUE(r.noise.empty());
  EXPECT_LT(r.cost_after, r.cost_before);
  EXPECT_LT(r.relative_length(), 1.0);
}

TEST(FineClusteringTest, DissimilarDocsBecomeNoise) {
  Corpus c;
  c.Add("alpha beta gamma delta epsilon zeta");
  c.Add("uno dos tres cuatro cinco seis");
  c.Add("red orange yellow green blue indigo");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_EQ(r.noise.size(), 3u);
  EXPECT_DOUBLE_EQ(r.cost_after, r.cost_before);
}

TEST(FineClusteringTest, TwoTemplatesInOneCluster) {
  Corpus c;
  // Group A (4 docs) and group B (4 docs), unrelated to each other.
  for (int i = 0; i < 4; ++i) {
    c.Add("this is a great product and the price is great indeed");
  }
  for (int i = 0; i < 4; ++i) {
    c.Add("i made money working from home call now or visit site");
  }
  std::vector<DocId> cluster = AllDocs(c);
  PadVocabulary(c, 300);
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, cluster, cm);
  ASSERT_EQ(r.templates.size(), 2u);
  EXPECT_EQ(r.templates[0].members, (std::vector<DocId>{0, 1, 2, 3}));
  EXPECT_EQ(r.templates[1].members, (std::vector<DocId>{4, 5, 6, 7}));
}

TEST(FineClusteringTest, SlotDetectedWhereDocsDiffer) {
  Corpus c;
  c.Add("this is a great soap and the 5 dollar price is great");
  c.Add("this is a great chair and the 10 dollar price is great");
  c.Add("this is a great hat and the 3 dollar price is great");
  c.Add("this is a great lamp and the 8 dollar price is great");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  ASSERT_EQ(r.templates.size(), 1u);
  const Template& t = r.templates[0].tmpl;
  EXPECT_GE(t.num_slots(), 1u);
  // The template backbone keeps the shared phrasing.
  std::string text = t.ToString(c.vocab());
  EXPECT_NE(text.find("this is a great"), std::string::npos);
  EXPECT_NE(text.find("dollar price is great"), std::string::npos);
}

TEST(FineClusteringTest, SingleDocClusterIsNoise) {
  Corpus c;
  c.Add("lonely document with no duplicate partner here");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, {0}, cm);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_EQ(r.noise, (std::vector<DocId>{0}));
}

TEST(FineClusteringTest, EmptyClusterIsFine) {
  Corpus c;
  c.Add("something");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, {}, cm);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_TRUE(r.noise.empty());
}

TEST(FineClusteringTest, NearDuplicatesWithEditsStillCluster) {
  Corpus c;
  c.Add("grand opening best massage in town call 5551234 today");
  c.Add("grand opening best massage in town call 5559876 today");
  c.Add("grand opening the best massage in town call 5554321");
  c.Add("grand opening best massage town call 5551111 today now");
  std::vector<DocId> cluster = AllDocs(c);
  PadVocabulary(c, 300);
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, cluster, cm);
  ASSERT_EQ(r.templates.size(), 1u);
  EXPECT_EQ(r.templates[0].members.size(), 4u);
}

TEST(FineClusteringTest, ConsensusSearchExhaustiveMatchesDichotomous) {
  Corpus c;
  for (int i = 0; i < 6; ++i) {
    c.Add("identical text for consensus search testing purposes here");
  }
  CostModel cm = CostModel::ForVocabulary(c.vocab());

  FineOptions dicho;
  FineOptions exhaustive;
  exhaustive.exhaustive_consensus_search = true;
  FineResult r1 = FineClustering(dicho).RunOnCluster(c, AllDocs(c), cm);
  FineResult r2 = FineClustering(exhaustive).RunOnCluster(c, AllDocs(c), cm);
  ASSERT_EQ(r1.templates.size(), 1u);
  ASSERT_EQ(r2.templates.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.cost_after, r2.cost_after);
}

TEST(FineClusteringTest, CostNeverIncreases) {
  Corpus c;
  for (int i = 0; i < 3; ++i) c.Add("aaa bbb ccc ddd eee fff");
  c.Add("zzz yyy xxx www vvv uuu");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  EXPECT_LE(r.cost_after, r.cost_before);
}

TEST(FineClusteringTest, RelativeLengthRespectsLowerBound) {
  Corpus c;
  for (int i = 0; i < 10; ++i) {
    c.Add("exact duplicate spam message here repeated verbatim each time");
  }
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  ASSERT_EQ(r.templates.size(), 1u);
  const double bound =
      RelativeLengthLowerBound(1, 10, cm.lg_vocab());
  EXPECT_GE(r.relative_length(), bound * 0.999);
}

TEST(FineClusteringTest, ProfileBackendFindsSameDuplicates) {
  Corpus c;
  for (int i = 0; i < 5; ++i) {
    c.Add("buy cheap watches now great deal online store");
  }
  std::vector<DocId> cluster = AllDocs(c);
  PadVocabulary(c, 300);
  CostModel cm = CostModel::ForVocabulary(c.vocab());

  FineOptions poa_opts;
  poa_opts.msa_backend = MsaBackend::kPoa;
  FineOptions profile_opts;
  profile_opts.msa_backend = MsaBackend::kProfile;
  FineResult poa = FineClustering(poa_opts).RunOnCluster(c, cluster, cm);
  FineResult profile =
      FineClustering(profile_opts).RunOnCluster(c, cluster, cm);
  ASSERT_EQ(poa.templates.size(), 1u);
  ASSERT_EQ(profile.templates.size(), 1u);
  EXPECT_EQ(poa.templates[0].members, profile.templates[0].members);
  // On exact duplicates both backends recover the identical consensus.
  EXPECT_EQ(poa.templates[0].tmpl.tokens, profile.templates[0].tmpl.tokens);
  EXPECT_DOUBLE_EQ(poa.cost_after, profile.cost_after);
}

TEST(FineClusteringTest, NeighborSeedingMatchesFullScanOnCampaign) {
  Corpus c;
  std::vector<DocId> cluster;
  for (int i = 0; i < 6; ++i) {
    cluster.push_back(
        c.Add("grand opening best massage in town call today " +
              std::to_string(1000 + i)));
  }
  PadVocabulary(c, 300);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  // Full scan.
  FineClustering fine;
  FineResult full = fine.RunOnCluster(c, cluster, cm);
  // Neighbor seeding with a shared phrase index: every campaign doc
  // lists the same campaign phrase.
  std::vector<std::vector<PhraseHash>> phrases(c.size());
  for (DocId d : cluster) phrases[d] = {0xABCDEFULL};
  FineResult seeded = fine.RunOnCluster(c, cluster, cm, &phrases);
  ASSERT_EQ(full.templates.size(), 1u);
  ASSERT_EQ(seeded.templates.size(), 1u);
  EXPECT_EQ(full.templates[0].members, seeded.templates[0].members);
  EXPECT_DOUBLE_EQ(full.cost_after, seeded.cost_after);
}

TEST(FineClusteringTest, NeighborSeedingIsolatesPhraseDisjointDocs) {
  // Two docs that would pairwise compress but share no top phrase: with
  // neighbor seeding they are never compared, so each becomes noise.
  Corpus c;
  std::vector<DocId> cluster;
  cluster.push_back(c.Add("same words here every single time always"));
  cluster.push_back(c.Add("same words here every single time always"));
  PadVocabulary(c, 300);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  std::vector<std::vector<PhraseHash>> phrases(c.size());
  phrases[cluster[0]] = {1};
  phrases[cluster[1]] = {2};  // disjoint phrase sets
  FineClustering fine;
  FineResult r = fine.RunOnCluster(c, cluster, cm, &phrases);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_EQ(r.noise.size(), 2u);
}

TEST(FineClusteringTest, DetectSlotsPublicApi) {
  Corpus c;
  c.Add("one two soap four five");
  c.Add("one two chair four five");
  c.Add("one two hat four five");
  CostModel cm(10.0);
  // Consensus is the shared backbone.
  Vocabulary& v = const_cast<Corpus&>(c).mutable_vocab();
  Template tmpl(std::vector<TokenId>{v.Find("one"), v.Find("two"),
                                     v.Find("four"), v.Find("five")});
  std::vector<Alignment> alignments;
  for (const Document& d : c.docs()) {
    alignments.push_back(NeedlemanWunsch(tmpl.tokens, d.tokens));
  }
  FineClustering fine;
  fine.DetectSlots(tmpl, alignments, cm);
  EXPECT_TRUE(tmpl.HasSlotAtGap(2));
  EXPECT_EQ(tmpl.num_slots(), 1u);
}

}  // namespace
}  // namespace infoshield
