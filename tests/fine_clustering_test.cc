#include "core/fine_clustering.h"

#include <gtest/gtest.h>

namespace infoshield {
namespace {

std::vector<DocId> AllDocs(const Corpus& c) {
  std::vector<DocId> ids(c.size());
  for (size_t i = 0; i < c.size(); ++i) ids[i] = static_cast<DocId>(i);
  return ids;
}

// Enlarges the corpus vocabulary with unique filler tokens (lg V drives
// the MDL trade-off: with a toy-sized vocabulary, raw documents are so
// cheap that templates rightly never pay off). The filler documents are
// NOT part of any cluster under test.
void PadVocabulary(Corpus& c, size_t num_words) {
  std::string text;
  for (size_t i = 0; i < num_words; ++i) {
    if (!text.empty()) text.push_back(' ');
    text += "filler" + std::to_string(i);
    if (text.size() > 200) {
      c.Add(text);
      text.clear();
    }
  }
  if (!text.empty()) c.Add(text);
}

TEST(FineClusteringTest, ExactDuplicatesFormOneTemplate) {
  Corpus c;
  for (int i = 0; i < 5; ++i) {
    c.Add("buy cheap watches now great deal online store");
  }
  // Pad the vocabulary so lg V is realistic.
  c.Add("unrelated filler words apple banana cherry dragon elephant fox");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, {0, 1, 2, 3, 4}, cm);
  ASSERT_EQ(r.templates.size(), 1u);
  EXPECT_EQ(r.templates[0].members.size(), 5u);
  EXPECT_TRUE(r.noise.empty());
  EXPECT_LT(r.cost_after, r.cost_before);
  EXPECT_LT(r.relative_length(), 1.0);
}

TEST(FineClusteringTest, DissimilarDocsBecomeNoise) {
  Corpus c;
  c.Add("alpha beta gamma delta epsilon zeta");
  c.Add("uno dos tres cuatro cinco seis");
  c.Add("red orange yellow green blue indigo");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_EQ(r.noise.size(), 3u);
  EXPECT_DOUBLE_EQ(r.cost_after, r.cost_before);
}

TEST(FineClusteringTest, TwoTemplatesInOneCluster) {
  Corpus c;
  // Group A (4 docs) and group B (4 docs), unrelated to each other.
  for (int i = 0; i < 4; ++i) {
    c.Add("this is a great product and the price is great indeed");
  }
  for (int i = 0; i < 4; ++i) {
    c.Add("i made money working from home call now or visit site");
  }
  std::vector<DocId> cluster = AllDocs(c);
  PadVocabulary(c, 300);
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, cluster, cm);
  ASSERT_EQ(r.templates.size(), 2u);
  EXPECT_EQ(r.templates[0].members, (std::vector<DocId>{0, 1, 2, 3}));
  EXPECT_EQ(r.templates[1].members, (std::vector<DocId>{4, 5, 6, 7}));
}

TEST(FineClusteringTest, SlotDetectedWhereDocsDiffer) {
  Corpus c;
  c.Add("this is a great soap and the 5 dollar price is great");
  c.Add("this is a great chair and the 10 dollar price is great");
  c.Add("this is a great hat and the 3 dollar price is great");
  c.Add("this is a great lamp and the 8 dollar price is great");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  ASSERT_EQ(r.templates.size(), 1u);
  const Template& t = r.templates[0].tmpl;
  EXPECT_GE(t.num_slots(), 1u);
  // The template backbone keeps the shared phrasing.
  std::string text = t.ToString(c.vocab());
  EXPECT_NE(text.find("this is a great"), std::string::npos);
  EXPECT_NE(text.find("dollar price is great"), std::string::npos);
}

TEST(FineClusteringTest, SingleDocClusterIsNoise) {
  Corpus c;
  c.Add("lonely document with no duplicate partner here");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, {0}, cm);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_EQ(r.noise, (std::vector<DocId>{0}));
}

TEST(FineClusteringTest, EmptyClusterIsFine) {
  Corpus c;
  c.Add("something");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, {}, cm);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_TRUE(r.noise.empty());
}

TEST(FineClusteringTest, NearDuplicatesWithEditsStillCluster) {
  Corpus c;
  c.Add("grand opening best massage in town call 5551234 today");
  c.Add("grand opening best massage in town call 5559876 today");
  c.Add("grand opening the best massage in town call 5554321");
  c.Add("grand opening best massage town call 5551111 today now");
  std::vector<DocId> cluster = AllDocs(c);
  PadVocabulary(c, 300);
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, cluster, cm);
  ASSERT_EQ(r.templates.size(), 1u);
  EXPECT_EQ(r.templates[0].members.size(), 4u);
}

TEST(FineClusteringTest, ConsensusSearchExhaustiveMatchesDichotomous) {
  Corpus c;
  for (int i = 0; i < 6; ++i) {
    c.Add("identical text for consensus search testing purposes here");
  }
  CostModel cm = CostModel::ForVocabulary(c.vocab());

  FineOptions dicho;
  FineOptions exhaustive;
  exhaustive.exhaustive_consensus_search = true;
  FineResult r1 = FineClustering(dicho).RunOnCluster(c, AllDocs(c), cm);
  FineResult r2 = FineClustering(exhaustive).RunOnCluster(c, AllDocs(c), cm);
  ASSERT_EQ(r1.templates.size(), 1u);
  ASSERT_EQ(r2.templates.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.cost_after, r2.cost_after);
}

TEST(FineClusteringTest, CostNeverIncreases) {
  Corpus c;
  for (int i = 0; i < 3; ++i) c.Add("aaa bbb ccc ddd eee fff");
  c.Add("zzz yyy xxx www vvv uuu");
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  EXPECT_LE(r.cost_after, r.cost_before);
}

TEST(FineClusteringTest, RelativeLengthRespectsLowerBound) {
  Corpus c;
  for (int i = 0; i < 10; ++i) {
    c.Add("exact duplicate spam message here repeated verbatim each time");
  }
  FineClustering fine;
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult r = fine.RunOnCluster(c, AllDocs(c), cm);
  ASSERT_EQ(r.templates.size(), 1u);
  const double bound =
      RelativeLengthLowerBound(1, 10, cm.lg_vocab());
  EXPECT_GE(r.relative_length(), bound * 0.999);
}

TEST(FineClusteringTest, ProfileBackendFindsSameDuplicates) {
  Corpus c;
  for (int i = 0; i < 5; ++i) {
    c.Add("buy cheap watches now great deal online store");
  }
  std::vector<DocId> cluster = AllDocs(c);
  PadVocabulary(c, 300);
  CostModel cm = CostModel::ForVocabulary(c.vocab());

  FineOptions poa_opts;
  poa_opts.msa_backend = MsaBackend::kPoa;
  FineOptions profile_opts;
  profile_opts.msa_backend = MsaBackend::kProfile;
  FineResult poa = FineClustering(poa_opts).RunOnCluster(c, cluster, cm);
  FineResult profile =
      FineClustering(profile_opts).RunOnCluster(c, cluster, cm);
  ASSERT_EQ(poa.templates.size(), 1u);
  ASSERT_EQ(profile.templates.size(), 1u);
  EXPECT_EQ(poa.templates[0].members, profile.templates[0].members);
  // On exact duplicates both backends recover the identical consensus.
  EXPECT_EQ(poa.templates[0].tmpl.tokens, profile.templates[0].tmpl.tokens);
  EXPECT_DOUBLE_EQ(poa.cost_after, profile.cost_after);
}

TEST(FineClusteringTest, NeighborSeedingMatchesFullScanOnCampaign) {
  Corpus c;
  std::vector<DocId> cluster;
  for (int i = 0; i < 6; ++i) {
    cluster.push_back(
        c.Add("grand opening best massage in town call today " +
              std::to_string(1000 + i)));
  }
  PadVocabulary(c, 300);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  // Full scan.
  FineClustering fine;
  FineResult full = fine.RunOnCluster(c, cluster, cm);
  // Neighbor seeding with a shared phrase index: every campaign doc
  // lists the same campaign phrase.
  std::vector<std::vector<PhraseHash>> phrases(c.size());
  for (DocId d : cluster) phrases[d] = {0xABCDEFULL};
  FineResult seeded = fine.RunOnCluster(c, cluster, cm, &phrases);
  ASSERT_EQ(full.templates.size(), 1u);
  ASSERT_EQ(seeded.templates.size(), 1u);
  EXPECT_EQ(full.templates[0].members, seeded.templates[0].members);
  EXPECT_DOUBLE_EQ(full.cost_after, seeded.cost_after);
}

TEST(FineClusteringTest, NeighborSeedingIsolatesPhraseDisjointDocs) {
  // Two docs that would pairwise compress but share no top phrase: with
  // neighbor seeding they are never compared, so each becomes noise.
  Corpus c;
  std::vector<DocId> cluster;
  cluster.push_back(c.Add("same words here every single time always"));
  cluster.push_back(c.Add("same words here every single time always"));
  PadVocabulary(c, 300);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  std::vector<std::vector<PhraseHash>> phrases(c.size());
  phrases[cluster[0]] = {1};
  phrases[cluster[1]] = {2};  // disjoint phrase sets
  FineClustering fine;
  FineResult r = fine.RunOnCluster(c, cluster, cm, &phrases);
  EXPECT_TRUE(r.templates.empty());
  EXPECT_EQ(r.noise.size(), 2u);
}

// A mixed cluster exercising every hot-path branch: near-duplicates
// (dominant), a variant sub-family, and unrelated noise.
Corpus MixedCluster(std::vector<DocId>* ids) {
  Corpus c;
  c.Add("grand opening best massage in town call 5551234 today");
  c.Add("grand opening best massage in town call 5559876 today");
  c.Add("grand opening best massage in town call 5554321 today");
  c.Add("grand opening the best massage in town call 5551111");
  c.Add("sweet amy here available until 9pm special rate 60");
  c.Add("sweet bella here available until 10pm special rate 80");
  c.Add("sweet cici here available late night special rate 50");
  c.Add("totally unrelated text about cooking pasta at home tonight");
  *ids = AllDocs(c);
  PadVocabulary(c, 400);
  return c;
}

TEST(FineClusteringTest, NaiveCostingMatchesOptimizedExactly) {
  std::vector<DocId> ids;
  Corpus c = MixedCluster(&ids);
  CostModel cm = CostModel::ForVocabulary(c.vocab());

  FineOptions naive_opts;
  naive_opts.use_naive_costing = true;
  FineResult fast = FineClustering(FineOptions{}).RunOnCluster(c, ids, cm);
  FineResult slow = FineClustering(naive_opts).RunOnCluster(c, ids, cm);

  // Bitwise-equal costs, identical structure.
  ASSERT_EQ(fast.templates.size(), slow.templates.size());
  EXPECT_EQ(fast.cost_before, slow.cost_before);
  EXPECT_EQ(fast.cost_after, slow.cost_after);
  EXPECT_EQ(fast.noise, slow.noise);
  for (size_t t = 0; t < fast.templates.size(); ++t) {
    EXPECT_EQ(fast.templates[t].tmpl.tokens, slow.templates[t].tmpl.tokens);
    EXPECT_EQ(fast.templates[t].tmpl.SlotGaps(),
              slow.templates[t].tmpl.SlotGaps());
    EXPECT_EQ(fast.templates[t].members, slow.templates[t].members);
    ASSERT_EQ(fast.templates[t].encodings.size(),
              slow.templates[t].encodings.size());
    for (size_t m = 0; m < fast.templates[t].encodings.size(); ++m) {
      EXPECT_EQ(fast.templates[t].encodings[m].base_cost,
                slow.templates[t].encodings[m].base_cost);
      EXPECT_EQ(fast.templates[t].encodings[m].slot_words,
                slow.templates[t].encodings[m].slot_words);
    }
  }

  // The optimized path must actually be doing less work.
  EXPECT_LT(fast.stats.alignments_computed, slow.stats.alignments_computed);
  EXPECT_EQ(fast.stats.consensus_probes, slow.stats.consensus_probes);
  EXPECT_GT(fast.stats.consensus_probes, 0u);
  EXPECT_EQ(slow.stats.consensus_cache_hits, 0u);
}

TEST(FineClusteringTest, SearchConsensusReturnsWinnerEvaluation) {
  Corpus c;
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  c.Add("alpha beta gamma delta epsilon zeta eta theta");
  c.Add("alpha beta gamma spoon epsilon zeta eta theta");
  PadVocabulary(c, 200);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  std::vector<std::vector<TokenId>> docs;
  for (size_t i = 0; i < 3; ++i) docs.push_back(c.doc(i).tokens);
  PoaGraph graph(docs[0]);
  graph.AddSequence(docs[1]);
  graph.AddSequence(docs[2]);

  FineClustering fine;
  FineStageStats stats;
  FineClustering::ConsensusChoice choice =
      fine.SearchConsensus(graph, docs, cm, &stats);

  // Same winner as the narrow public API.
  EXPECT_EQ(choice.consensus, fine.ConsensusSearch(graph, docs, cm));
  EXPECT_EQ(choice.tmpl.tokens, choice.consensus);
  ASSERT_EQ(choice.alignments.size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_TRUE(
        AlignmentIsConsistent(choice.alignments[i], choice.consensus,
                              docs[i]));
  }
  // choice.cost is the search objective: template cost + Σ base.
  double expected =
      cm.TemplateCost(choice.tmpl.length(), choice.tmpl.num_slots());
  for (const Alignment& a : choice.alignments) {
    expected += EncodeDocumentWithAlignment(choice.tmpl, a, cm).base_cost;
  }
  EXPECT_EQ(choice.cost, expected);
  EXPECT_GT(stats.consensus_probes, 0u);
}

TEST(FineClusteringTest, ConsensusCacheHitsOnNearDuplicates) {
  // Near-duplicate candidates: most thresholds select the same consensus,
  // so the dichotomous search's probes should mostly hit the cache.
  Corpus c;
  for (int i = 0; i < 12; ++i) {
    c.Add("repeat offer best deal call 555000" + std::to_string(i % 2) +
          " now");
  }
  PadVocabulary(c, 200);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  std::vector<std::vector<TokenId>> docs;
  for (size_t i = 0; i < 12; ++i) docs.push_back(c.doc(i).tokens);
  PoaGraph graph(docs[0]);
  for (size_t i = 1; i < docs.size(); ++i) graph.AddSequence(docs[i]);

  FineClustering fine;
  FineStageStats stats;
  fine.SearchConsensus(graph, docs, cm, &stats);
  EXPECT_GT(stats.consensus_cache_hits, 0u);
  EXPECT_LE(stats.consensus_cache_hits, stats.consensus_probes);
}

TEST(FineClusteringTest, ExhaustiveMatchesDichotomousOnVariedCluster) {
  // The original equivalence test used identical documents; with probe
  // caching in place, re-check it on a cluster whose cost curve actually
  // varies with the threshold, in both costing modes.
  std::vector<DocId> ids;
  Corpus c = MixedCluster(&ids);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  for (bool naive : {false, true}) {
    FineOptions dicho;
    dicho.use_naive_costing = naive;
    FineOptions exhaustive = dicho;
    exhaustive.exhaustive_consensus_search = true;
    FineResult r1 = FineClustering(dicho).RunOnCluster(c, ids, cm);
    FineResult r2 = FineClustering(exhaustive).RunOnCluster(c, ids, cm);
    ASSERT_EQ(r1.templates.size(), r2.templates.size());
    // Dichotomous search may legitimately probe fewer thresholds, but on
    // this cluster both find the same model.
    EXPECT_EQ(r1.cost_after, r2.cost_after);
    for (size_t t = 0; t < r1.templates.size(); ++t) {
      EXPECT_EQ(r1.templates[t].tmpl.tokens, r2.templates[t].tmpl.tokens);
    }
  }
}

TEST(FineClusteringTest, ScanThreadsDoNotChangeResult) {
  std::vector<DocId> ids;
  Corpus c = MixedCluster(&ids);
  CostModel cm = CostModel::ForVocabulary(c.vocab());
  FineResult sequential =
      FineClustering(FineOptions{}).RunOnCluster(c, ids, cm);
  for (size_t scan : {2u, 8u}) {
    FineOptions opts;
    opts.scan_threads = scan;
    FineResult parallel = FineClustering(opts).RunOnCluster(c, ids, cm);
    EXPECT_EQ(sequential.cost_after, parallel.cost_after);
    EXPECT_EQ(sequential.noise, parallel.noise);
    ASSERT_EQ(sequential.templates.size(), parallel.templates.size());
    for (size_t t = 0; t < sequential.templates.size(); ++t) {
      EXPECT_EQ(sequential.templates[t].tmpl.tokens,
                parallel.templates[t].tmpl.tokens);
      EXPECT_EQ(sequential.templates[t].members,
                parallel.templates[t].members);
    }
  }
}

TEST(FineClusteringTest, DetectSlotsPublicApi) {
  Corpus c;
  c.Add("one two soap four five");
  c.Add("one two chair four five");
  c.Add("one two hat four five");
  CostModel cm(10.0);
  // Consensus is the shared backbone.
  Vocabulary& v = const_cast<Corpus&>(c).mutable_vocab();
  Template tmpl(std::vector<TokenId>{v.Find("one"), v.Find("two"),
                                     v.Find("four"), v.Find("five")});
  std::vector<Alignment> alignments;
  for (const Document& d : c.docs()) {
    alignments.push_back(NeedlemanWunsch(tmpl.tokens, d.tokens));
  }
  FineClustering fine;
  fine.DetectSlots(tmpl, alignments, cm);
  EXPECT_TRUE(tmpl.HasSlotAtGap(2));
  EXPECT_EQ(tmpl.num_slots(), 1u);
}

}  // namespace
}  // namespace infoshield
