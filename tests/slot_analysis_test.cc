#include "core/slot_analysis.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/infoshield.h"
#include "core/template.h"
#include "mdl/cost_model.h"
#include "msa/pairwise.h"
#include "util/random.h"

namespace infoshield {
namespace {

using internal::ClassifyFills;

TEST(ClassifyFillsTest, EmptyIsEmpty) {
  EXPECT_EQ(ClassifyFills({}), SlotContentKind::kEmpty);
}

TEST(ClassifyFillsTest, PhoneNumbers) {
  EXPECT_EQ(ClassifyFills({"5551234567", "5559876543"}),
            SlotContentKind::kPhone);
  EXPECT_EQ(ClassifyFills({"call 5551234567", "5550001111"}),
            SlotContentKind::kPhone);
}

TEST(ClassifyFillsTest, Urls) {
  EXPECT_EQ(ClassifyFills({"http://scam.com", "https://fraud.net"}),
            SlotContentKind::kUrl);
  EXPECT_EQ(ClassifyFills({"visit scam.com", "see fraud.com"}),
            SlotContentKind::kUrl);
}

TEST(ClassifyFillsTest, TimeBeatsPriceWhenBothFire) {
  // "until 9pm" mentions a number but is schedule content.
  EXPECT_EQ(ClassifyFills({"until 9pm", "open late night", "10am daily"}),
            SlotContentKind::kTime);
}

TEST(ClassifyFillsTest, Prices) {
  EXPECT_EQ(ClassifyFills({"60 special", "80 dollar", "50"}),
            SlotContentKind::kPrice);
}

TEST(ClassifyFillsTest, Names) {
  EXPECT_EQ(ClassifyFills({"amy", "bella", "cici", "dana"}),
            SlotContentKind::kName);
}

TEST(ClassifyFillsTest, FreeTextFallback) {
  EXPECT_EQ(ClassifyFills({"on this job today", "from home often maybe",
                           "in another town entirely"}),
            SlotContentKind::kFreeText);
}

TEST(ClassifyFillsTest, LongNumbers) {
  // 4-6 digit numbers that are neither phone-length nor price-length.
  EXPECT_EQ(ClassifyFills({"123456", "98765"}), SlotContentKind::kNumeric);
}

TEST(SlotAnalysisTest, ProfilesTemplateSlots) {
  Corpus c;
  c.Add("sweet amy here call 5551234567 until 9pm special 60 yes ok");
  c.Add("sweet bella here call 5559876543 until 10pm special 80 yes ok");
  c.Add("sweet cici here call 5550001111 late night special 50 yes ok");
  c.Add("sweet dana here call 5552223333 until 9am special 70 yes ok");
  // Vocabulary padding so MDL accepts the template.
  for (int i = 0; i < 25; ++i) {
    std::string filler;
    for (int j = 0; j < 10; ++j) {
      filler += "pad" + std::to_string(i * 10 + j) + " ";
    }
    c.Add(filler);
  }
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  ASSERT_GE(r.templates.size(), 1u);
  const TemplateCluster& tc = r.templates[0];
  ASSERT_GE(tc.tmpl.num_slots(), 2u);

  std::vector<SlotProfile> profiles = AnalyzeSlots(tc, c);
  ASSERT_EQ(profiles.size(), tc.tmpl.num_slots());
  // At least one slot reads as phone and one as name-or-time-or-price.
  bool has_phone = false;
  for (const SlotProfile& p : profiles) {
    if (p.kind == SlotContentKind::kPhone) has_phone = true;
    EXPECT_LE(p.empty_fraction, 1.0);
    EXPECT_GE(p.distinct_fraction, 0.0);
    EXPECT_LE(p.examples.size(), 5u);
  }
  EXPECT_TRUE(has_phone);

  std::string rendered = RenderSlotProfiles(profiles);
  EXPECT_NE(rendered.find("slot@"), std::string::npos);
  EXPECT_NE(rendered.find("phone"), std::string::npos);
}

// --- Incremental slot-cost algebra ---

// The profile-based summary must reproduce EncodeDocumentWithAlignment's
// integers for EVERY slot mask, not just the final one — that is what
// makes each DetectSlots probe an O(docs) delta instead of a re-encode.
TEST(GapCostProfileTest, SummaryMatchesEncoderForAllSingleSlotMasks) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = 3 + rng.NextIndex(12);
    std::vector<TokenId> consensus;
    for (size_t i = 0; i < len; ++i) {
      consensus.push_back(static_cast<TokenId>(rng.NextIndex(30)));
    }
    // Mutate into a document: drop / replace / insert around each token.
    std::vector<TokenId> doc;
    for (TokenId t : consensus) {
      switch (rng.NextIndex(5)) {
        case 0:
          break;  // delete
        case 1:
          doc.push_back(static_cast<TokenId>(rng.NextIndex(30)));
          break;  // substitute-ish
        case 2:
          doc.push_back(static_cast<TokenId>(rng.NextIndex(30)));
          doc.push_back(t);
          break;  // insert + keep
        default:
          doc.push_back(t);
      }
    }

    Template tmpl(consensus);
    Alignment a = NeedlemanWunsch(tmpl.tokens, doc);
    const GapCostProfile profile = BuildGapCostProfile(a);
    CostModel cm(10.0);

    // Every slot mask of size <= 1 over all gaps, plus a couple of
    // multi-gap masks.
    std::vector<std::vector<size_t>> masks;
    masks.push_back({});
    for (size_t g = 0; g <= tmpl.length(); ++g) masks.push_back({g});
    if (tmpl.length() >= 2) {
      masks.push_back({0, tmpl.length()});
      masks.push_back({1, tmpl.length() - 1});
    }
    for (const std::vector<size_t>& mask : masks) {
      std::vector<size_t> sorted_mask = mask;
      std::sort(sorted_mask.begin(), sorted_mask.end());
      sorted_mask.erase(
          std::unique(sorted_mask.begin(), sorted_mask.end()),
          sorted_mask.end());
      Template masked(consensus);
      for (size_t g : sorted_mask) masked.SetSlotAtGap(g, true);
      const DocEncoding enc = EncodeDocumentWithAlignment(masked, a, cm);
      const EncodingSummary got = SummaryForSlotMask(profile, sorted_mask);
      EXPECT_EQ(got.alignment_length, enc.summary.alignment_length);
      EXPECT_EQ(got.unmatched, enc.summary.unmatched);
      EXPECT_EQ(got.inserted_or_substituted,
                enc.summary.inserted_or_substituted);
      EXPECT_EQ(got.slot_word_counts, enc.summary.slot_word_counts);
      // Identical integers into the same function: bit-identical cost.
      EXPECT_EQ(cm.AlignmentCostBase(got), enc.base_cost);
    }
  }
}

TEST(GapCostProfileTest, FindGapLocatesOnlyEditedGaps) {
  // consensus "a b", doc "a x b y": insert x at gap 1, insert y at gap 2.
  std::vector<TokenId> consensus = {0, 1};
  std::vector<TokenId> doc = {0, 2, 1, 3};
  Alignment a = NeedlemanWunsch(consensus, doc);
  const GapCostProfile profile = BuildGapCostProfile(a);
  EXPECT_EQ(profile.constant_columns, 2u);
  EXPECT_EQ(profile.deletions, 0u);
  EXPECT_EQ(profile.FindGap(0), nullptr);
  ASSERT_NE(profile.FindGap(1), nullptr);
  EXPECT_EQ(profile.FindGap(1)->insertions, 1u);
  ASSERT_NE(profile.FindGap(2), nullptr);
  EXPECT_EQ(profile.FindGap(2)->insertions, 1u);
}

TEST(SlotAnalysisTest, KindNamesAreStable) {
  EXPECT_STREQ(SlotContentKindToString(SlotContentKind::kPhone), "phone");
  EXPECT_STREQ(SlotContentKindToString(SlotContentKind::kTime), "time");
  EXPECT_STREQ(SlotContentKindToString(SlotContentKind::kFreeText),
               "free-text");
}

}  // namespace
}  // namespace infoshield
