#include "core/slot_analysis.h"

#include <gtest/gtest.h>

#include "core/infoshield.h"

namespace infoshield {
namespace {

using internal::ClassifyFills;

TEST(ClassifyFillsTest, EmptyIsEmpty) {
  EXPECT_EQ(ClassifyFills({}), SlotContentKind::kEmpty);
}

TEST(ClassifyFillsTest, PhoneNumbers) {
  EXPECT_EQ(ClassifyFills({"5551234567", "5559876543"}),
            SlotContentKind::kPhone);
  EXPECT_EQ(ClassifyFills({"call 5551234567", "5550001111"}),
            SlotContentKind::kPhone);
}

TEST(ClassifyFillsTest, Urls) {
  EXPECT_EQ(ClassifyFills({"http://scam.com", "https://fraud.net"}),
            SlotContentKind::kUrl);
  EXPECT_EQ(ClassifyFills({"visit scam.com", "see fraud.com"}),
            SlotContentKind::kUrl);
}

TEST(ClassifyFillsTest, TimeBeatsPriceWhenBothFire) {
  // "until 9pm" mentions a number but is schedule content.
  EXPECT_EQ(ClassifyFills({"until 9pm", "open late night", "10am daily"}),
            SlotContentKind::kTime);
}

TEST(ClassifyFillsTest, Prices) {
  EXPECT_EQ(ClassifyFills({"60 special", "80 dollar", "50"}),
            SlotContentKind::kPrice);
}

TEST(ClassifyFillsTest, Names) {
  EXPECT_EQ(ClassifyFills({"amy", "bella", "cici", "dana"}),
            SlotContentKind::kName);
}

TEST(ClassifyFillsTest, FreeTextFallback) {
  EXPECT_EQ(ClassifyFills({"on this job today", "from home often maybe",
                           "in another town entirely"}),
            SlotContentKind::kFreeText);
}

TEST(ClassifyFillsTest, LongNumbers) {
  // 4-6 digit numbers that are neither phone-length nor price-length.
  EXPECT_EQ(ClassifyFills({"123456", "98765"}), SlotContentKind::kNumeric);
}

TEST(SlotAnalysisTest, ProfilesTemplateSlots) {
  Corpus c;
  c.Add("sweet amy here call 5551234567 until 9pm special 60 yes ok");
  c.Add("sweet bella here call 5559876543 until 10pm special 80 yes ok");
  c.Add("sweet cici here call 5550001111 late night special 50 yes ok");
  c.Add("sweet dana here call 5552223333 until 9am special 70 yes ok");
  // Vocabulary padding so MDL accepts the template.
  for (int i = 0; i < 25; ++i) {
    std::string filler;
    for (int j = 0; j < 10; ++j) {
      filler += "pad" + std::to_string(i * 10 + j) + " ";
    }
    c.Add(filler);
  }
  InfoShield shield;
  InfoShieldResult r = shield.Run(c);
  ASSERT_GE(r.templates.size(), 1u);
  const TemplateCluster& tc = r.templates[0];
  ASSERT_GE(tc.tmpl.num_slots(), 2u);

  std::vector<SlotProfile> profiles = AnalyzeSlots(tc, c);
  ASSERT_EQ(profiles.size(), tc.tmpl.num_slots());
  // At least one slot reads as phone and one as name-or-time-or-price.
  bool has_phone = false;
  for (const SlotProfile& p : profiles) {
    if (p.kind == SlotContentKind::kPhone) has_phone = true;
    EXPECT_LE(p.empty_fraction, 1.0);
    EXPECT_GE(p.distinct_fraction, 0.0);
    EXPECT_LE(p.examples.size(), 5u);
  }
  EXPECT_TRUE(has_phone);

  std::string rendered = RenderSlotProfiles(profiles);
  EXPECT_NE(rendered.find("slot@"), std::string::npos);
  EXPECT_NE(rendered.find("phone"), std::string::npos);
}

TEST(SlotAnalysisTest, KindNamesAreStable) {
  EXPECT_STREQ(SlotContentKindToString(SlotContentKind::kPhone), "phone");
  EXPECT_STREQ(SlotContentKindToString(SlotContentKind::kTime), "time");
  EXPECT_STREQ(SlotContentKindToString(SlotContentKind::kFreeText),
               "free-text");
}

}  // namespace
}  // namespace infoshield
