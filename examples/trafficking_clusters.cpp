// Human-trafficking cluster analysis (paper §V-A3, §V-D): generate a
// Cluster-Trafficking-style corpus (benign ads + spam clusters + HT
// clusters), run InfoShield, and study the relative-length geometry of
// Fig. 3 — spam clusters sit at low relative length with high counts; HT
// clusters split into near-duplicate and outlier regimes. Also writes an
// HTML report of the discovered templates for visual inspection.
//
//   ./trafficking_clusters [seed] [report.html]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/infoshield.h"
#include "core/ranking.h"
#include "core/slot_analysis.h"
#include "core/visualize.h"
#include "datagen/trafficking_gen.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace infoshield;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const char* report_path = argc > 2 ? argv[2] : "trafficking_report.html";

  TraffickingGenOptions gen_options;
  gen_options.num_benign = 400;
  gen_options.num_spam_clusters = 4;
  gen_options.num_ht_clusters = 20;
  TraffickingGenerator generator(gen_options);
  LabeledAds data = generator.Generate(seed);

  std::printf("corpus: %zu ads (%zu benign, %zu spam, %zu HT)\n\n",
              data.corpus.size(), data.CountType(AdType::kBenign),
              data.CountType(AdType::kSpam),
              data.CountType(AdType::kTrafficking));

  InfoShield shield;
  InfoShieldResult result = shield.Run(data.corpus);

  // Binary metrics: clustered => suspicious, truth = organized activity.
  std::vector<bool> predicted;
  std::vector<bool> truth;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    predicted.push_back(result.IsSuspicious(static_cast<DocId>(i)));
    truth.push_back(data.type[i] != AdType::kBenign);
  }
  BinaryMetrics m = ComputeBinaryMetrics(predicted, truth);
  double ari = AdjustedRandIndex(data.cluster_label, result.doc_template);
  std::printf("precision %.1f%%  recall %.1f%%  F1 %.1f%%  ARI %.1f\n\n",
              100 * m.precision(), 100 * m.recall(), 100 * m.f1(),
              100 * ari);

  // Relative-length table per coarse cluster, with the dominant truth
  // label of its documents — the Fig. 3 scatter in text form.
  std::printf("%-8s %-6s %-4s %-10s %-10s %s\n", "cluster", "docs", "t",
              "rel.len", "bound", "dominant-type");
  for (const ClusterStats& s : result.cluster_stats) {
    if (s.num_templates == 0) continue;
    // Majority truth type over the cluster's suspicious docs.
    size_t counts[3] = {0, 0, 0};
    for (size_t t = 0; t < result.templates.size(); ++t) {
      if (result.template_coarse_cluster[t] != s.coarse_cluster_index) {
        continue;
      }
      for (DocId d : result.templates[t].members) {
        ++counts[static_cast<size_t>(data.type[d])];
      }
    }
    const char* kNames[3] = {"benign", "spam", "trafficking"};
    size_t best = 0;
    for (size_t k = 1; k < 3; ++k) {
      if (counts[k] > counts[best]) best = k;
    }
    std::printf("%-8zu %-6zu %-4zu %-10.4f %-10.4f %s\n",
                s.coarse_cluster_index, s.num_docs, s.num_templates,
                s.relative_length, s.lower_bound, kNames[best]);
  }

  // Analyst triage: most suspicious templates first (smallest
  // compression slack), with slot content profiled (§V-D2).
  const CostModel cm = CostModel::ForVocabulary(data.corpus.vocab());
  std::vector<RankedTemplate> ranked =
      RankTemplates(result, data.corpus, cm);
  std::printf("\nTop 3 templates by suspiciousness:\n");
  VisualizeOptions top_viz;
  top_viz.max_docs = 2;
  for (size_t i = 0; i < std::min<size_t>(3, ranked.size()); ++i) {
    const TemplateCluster& tc =
        result.templates[ranked[i].template_index];
    std::printf("[rank %zu] n=%zu rel_len=%.3f slack=%.3f\n", i + 1,
                ranked[i].num_docs, ranked[i].relative_length,
                ranked[i].slack);
    std::fputs(RenderTemplateAnsi(tc, data.corpus, top_viz).c_str(),
               stdout);
    std::fputs(RenderSlotProfiles(AnalyzeSlots(tc, data.corpus)).c_str(),
               stdout);
  }

  // HTML report for the analyst workflow the paper motivates: read one
  // template instead of hundreds of ads.
  std::ofstream out(report_path);
  out << RenderReportHtml(result.templates, data.corpus);
  out.close();
  std::printf("\nwrote %zu templates to %s\n", result.templates.size(),
              report_path);
  return 0;
}
