// Quickstart: run InfoShield end-to-end on the paper's toy corpus
// (§III-A, Tables II–V) and print the discovered templates with their
// slot-highlighted member documents.
//
//   ./quickstart
//
// Expected outcome: two templates — T1 covering the four "great product"
// ads with product/price slots, T2 covering the two scam messages — and
// the birthday message left unclustered.

#include <cstdio>

#include "core/infoshield.h"
#include "core/visualize.h"
#include "io/json_writer.h"

int main() {
  using namespace infoshield;

  // 1. Build a corpus. Corpus::Add tokenizes and interns for you.
  Corpus corpus;
  corpus.Add("This is a great soap, and the 5 dollar price is great");
  corpus.Add("This is a great chair, and the 10 dollar price is great");
  corpus.Add("This is a great hat, and the 3 dollar price is great");
  corpus.Add("This is great blue pen, and the 3 dollar price is so good");
  corpus.Add(
      "I made 30K working on this job - call 123-456.7890 or visit "
      "scam.com");
  corpus.Add(
      "I made 30K working from home - call 123-456.7890 or visit "
      "fraud.com");
  corpus.Add("Happy birthday to my dear friend Mike");

  // InfoShield hunts micro-clusters *within a large corpus*; a handful
  // of unrelated background documents restores realistic vocabulary
  // size and idf weights (with 7 documents alone, MDL rightly finds
  // templates unprofitable — raw docs are cheap when lg V is tiny).
  const char* kBackground[] = {
      "quarterly earnings beat analyst expectations across retail sector",
      "heavy rainfall expected over coastal regions through friday night",
      "local library announces extended weekend opening schedule soon",
      "championship match ended in dramatic penalty shootout yesterday",
      "researchers publish findings about deep ocean microbial life",
      "city council approves funding for downtown bicycle lanes project",
      "new bakery on elm street sells sourdough every sunny morning",
      "museum exhibit features ancient pottery from river valleys",
      "volunteers planted hundreds of oak saplings along the highway",
      "startup launches app connecting farmers with nearby restaurants",
      "observatory spots unusually bright comet near southern horizon",
      "orchestra premieres symphony inspired by mountain railways",
  };
  for (const char* text : kBackground) corpus.Add(text);
  // More background singletons: the paper's corpora have vocabularies in
  // the tens of thousands of words; MDL trade-offs at V ~ 100 would be
  // artificially borderline.
  for (int i = 0; i < 60; ++i) {
    std::string filler;
    for (int j = 0; j < 10; ++j) {
      filler += "backgroundword" + std::to_string(i * 10 + j) + " ";
    }
    corpus.Add(filler);
  }

  // 2. Run the pipeline. All options have paper defaults; the method is
  //    parameter-free (MDL picks everything else).
  InfoShield shield;
  InfoShieldResult result = shield.Run(corpus);

  // 3. Inspect the results.
  std::printf("documents:        %zu\n", corpus.size());
  std::printf("coarse clusters:  %zu\n", result.num_coarse_clusters);
  std::printf("templates found:  %zu\n", result.templates.size());
  std::printf("suspicious docs:  %zu\n\n", result.num_suspicious());

  for (const TemplateCluster& cluster : result.templates) {
    std::fputs(RenderTemplateAnsi(cluster, corpus).c_str(), stdout);
    std::fputs("\n", stdout);
  }

  for (const ClusterStats& s : result.cluster_stats) {
    std::printf(
        "cluster %zu: n=%zu t=%zu relative_length=%.3f (lower bound "
        "%.3f)\n",
        s.coarse_cluster_index, s.num_docs, s.num_templates,
        s.relative_length, s.lower_bound);
  }

  // 4. Machine-readable output for downstream tooling.
  std::printf("\nJSON summary:\n%s\n", ResultToJson(result, corpus).c_str());
  return 0;
}
