// Language independence (paper §V-F, Advantage 1; Table IX): run
// InfoShield on a corpus mixing English, Spanish, Italian, and romanized
// Japanese tweets — including a Spanish seismology-bot campaign modeled
// on the paper's Table IX — with zero language-specific configuration.
//
//   ./multilingual [seed]

#include <cstdio>
#include <cstdlib>

#include "core/infoshield.h"
#include "core/visualize.h"
#include "datagen/twitter_gen.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace infoshield;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  // A four-language account mix.
  TwitterGenOptions options;
  options.num_genuine_accounts = 40;
  options.num_bot_accounts = 24;
  options.english_fraction = 0.4;
  options.spanish_fraction = 0.3;
  options.italian_fraction = 0.2;
  options.japanese_fraction = 0.1;
  TwitterGenerator generator(options);
  LabeledTweets data = generator.Generate(seed);

  // Add the paper's Table IX-style Spanish campaign verbatim: a
  // seismology bot whose tweets differ only in magnitude/distance.
  struct Extra {
    const char* text;
  };
  const Extra campaign[] = {
      {"sismo magnitud 42 richter 23 km al sureste de puerto escondido oax "
       "lat lon pf km"},
      {"sismo magnitud 38 richter 24 km al sureste de puerto escondido oax "
       "lat lon pf km"},
      {"sismo magnitud 39 richter 25 km al sureste de puerto escondido oax "
       "lat lon pf km"},
      {"sismo magnitud 45 richter 21 km al sureste de puerto escondido oax "
       "lat lon pf km"},
      {"sismo magnitud 41 richter 26 km al sureste de puerto escondido oax "
       "lat lon pf km"},
  };
  std::vector<DocId> campaign_ids;
  for (const Extra& e : campaign) {
    campaign_ids.push_back(data.corpus.Add(e.text));
    data.is_bot.push_back(true);
    data.account_id.push_back(999);
    data.cluster_label.push_back(999);
  }

  InfoShield shield;
  InfoShieldResult result = shield.Run(data.corpus);

  std::vector<bool> predicted;
  std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    predicted.push_back(result.IsSuspicious(static_cast<DocId>(i)));
  }
  BinaryMetrics m = ComputeBinaryMetrics(predicted, truth);
  std::printf(
      "four-language corpus: %zu tweets | precision %.1f%% recall %.1f%% "
      "F1 %.1f%%\n\n",
      data.corpus.size(), 100 * m.precision(), 100 * m.recall(),
      100 * m.f1());

  // Show the Spanish campaign's template (all campaign docs must share
  // one template).
  int64_t campaign_template = result.doc_template[campaign_ids[0]];
  if (campaign_template >= 0) {
    std::printf("Spanish seismology campaign detected as template %lld:\n",
                static_cast<long long>(campaign_template));
    std::fputs(
        RenderTemplateAnsi(
            result.templates[static_cast<size_t>(campaign_template)],
            data.corpus)
            .c_str(),
        stdout);
  } else {
    std::printf("Spanish campaign NOT detected (unexpected)\n");
  }

  // Language coverage of detected templates: count templates whose first
  // member is in each language bucket by checking vocabulary membership.
  std::printf("\ntemplates found: %zu across languages\n",
              result.templates.size());
  return 0;
}
