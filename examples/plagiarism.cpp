// Plagiarism detection (paper §I's motivating application list): essays
// that copy a passage from a source essay form a micro-cluster with that
// source — the shared passage becomes the template's constant backbone
// and each author's own writing lands in the unmatched margins.
//
//   ./plagiarism [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/infoshield.h"
#include "core/visualize.h"
#include "datagen/plagiarism_gen.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace infoshield;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  // Heavy-plagiarism regime: the copied passage dominates the essay
  // (whole-document near-duplicate detection is the right tool here; for
  // a short passage buried in a long original essay, chunk documents
  // into passages first).
  PlagiarismGenOptions options;
  options.num_original_essays = 60;
  options.num_plagiarized = 15;
  options.passage_length_min = 30;
  options.passage_length_max = 50;
  options.margin_length_min = 5;
  options.margin_length_max = 12;
  PlagiarismGenerator generator(options);
  PlagiarismCorpus data = generator.Generate(seed);
  std::printf("%zu essays (%zu contain plagiarized passages)\n\n",
              data.corpus.size(), options.num_plagiarized);

  InfoShield shield;
  InfoShieldResult result = shield.Run(data.corpus);

  // An essay is implicated iff it shares a template with another essay.
  // Ground truth: the plagiarized essays and their sources.
  std::vector<bool> truth(data.corpus.size(), false);
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (data.IsPlagiarized(static_cast<DocId>(i))) {
      truth[i] = true;
      truth[static_cast<size_t>(data.source_of[i])] = true;
    }
  }
  std::vector<bool> predicted;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    predicted.push_back(result.IsSuspicious(static_cast<DocId>(i)));
  }
  BinaryMetrics m = ComputeBinaryMetrics(predicted, truth);
  std::printf("implicated-essay detection: precision %.1f%%  recall "
              "%.1f%%  F1 %.1f%%\n\n",
              100 * m.precision(), 100 * m.recall(), 100 * m.f1());

  // Verify pairings: each detected cluster should contain an essay and
  // its true source.
  size_t correctly_paired = 0;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (!data.IsPlagiarized(static_cast<DocId>(i))) continue;
    const int64_t t = result.doc_template[i];
    if (t >= 0 &&
        t == result.doc_template[static_cast<size_t>(data.source_of[i])]) {
      ++correctly_paired;
    }
  }
  std::printf("%zu of %zu plagiarized essays clustered with their true "
              "source\n\n",
              correctly_paired, options.num_plagiarized);

  // Show one detected case: the copied passage is the template backbone.
  VisualizeOptions viz;
  viz.max_docs = 3;
  if (!result.templates.empty()) {
    std::printf("example detected cluster (shared passage = constants):\n");
    std::fputs(
        RenderTemplateAnsi(result.templates[0], data.corpus, viz).c_str(),
        stdout);
  }
  return 0;
}
