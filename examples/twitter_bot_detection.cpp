// Twitter bot detection (paper §I-B, §V-A1): generate a synthetic
// genuine/spambot tweet mix, detect bot micro-clusters with InfoShield,
// and score precision / recall / F1 / ARI against ground truth —
// alongside the supervised logistic-regression stand-in baseline.
//
//   ./twitter_bot_detection [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/logreg.h"
#include "core/infoshield.h"
#include "core/visualize.h"
#include "datagen/twitter_gen.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace infoshield;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // Mirror the paper's test-set composition: a mix of genuine accounts
  // and social-spambot accounts (50/50 account split).
  TwitterGenOptions gen_options;
  gen_options.num_genuine_accounts = 60;
  gen_options.num_bot_accounts = 60;
  gen_options.bot_edit_prob = 0.05;
  TwitterGenerator generator(gen_options);
  LabeledTweets data = generator.Generate(seed);

  std::printf("generated %zu tweets (%zu from bots) with seed %llu\n\n",
              data.corpus.size(), data.num_bot_tweets(),
              static_cast<unsigned long long>(seed));

  // --- InfoShield (unsupervised) ---
  InfoShield shield;
  InfoShieldResult result = shield.Run(data.corpus);

  std::vector<bool> predicted;
  std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    predicted.push_back(result.IsSuspicious(static_cast<DocId>(i)));
  }
  BinaryMetrics shield_metrics = ComputeBinaryMetrics(predicted, truth);
  double ari = AdjustedRandIndex(data.cluster_label, result.doc_template);

  // --- Supervised stand-in baseline (trains on the labels!) ---
  LogisticRegression logreg;
  logreg.Train(data.corpus, truth, seed);
  std::vector<bool> lr_predicted;
  for (const Document& d : data.corpus.docs()) {
    lr_predicted.push_back(logreg.Predict(d));
  }
  BinaryMetrics lr_metrics = ComputeBinaryMetrics(lr_predicted, truth);

  std::printf("%-28s %6s %6s %6s %6s\n", "method", "ARI", "prec", "rec",
              "F1");
  std::printf("%-28s %6.1f %6.1f %6.1f %6.1f\n", "InfoShield (unsupervised)",
              100 * ari, 100 * shield_metrics.precision(),
              100 * shield_metrics.recall(), 100 * shield_metrics.f1());
  std::printf("%-28s %6s %6.1f %6.1f %6.1f\n", "LogReg-BoW (supervised)",
              "n/a", 100 * lr_metrics.precision(), 100 * lr_metrics.recall(),
              100 * lr_metrics.f1());

  // Show the two largest discovered campaigns.
  std::printf("\nLargest detected campaigns:\n");
  std::vector<size_t> order(result.templates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.templates[a].members.size() >
           result.templates[b].members.size();
  });
  VisualizeOptions viz;
  viz.max_docs = 3;
  for (size_t i = 0; i < std::min<size_t>(2, order.size()); ++i) {
    std::fputs(
        RenderTemplateAnsi(result.templates[order[i]], data.corpus, viz)
            .c_str(),
        stdout);
  }
  return 0;
}
