// Incremental ingestion benchmark + differential oracle gate.
//
// Seeds an IncrementalInfoShield with a realistic base corpus, then
// ingests a series of small batches (near-duplicates of one existing
// document each, so every batch touches one coarse component). After
// EVERY batch the engine's JSON must byte-match a fresh batch
// InfoShield::Run over the concatenated corpus; any divergence exits
// non-zero so CI fails.
//
// The performance claim under test is the one DESIGN.md §15 makes: the
// per-batch fine-stage cost tracks the touched-component size
// (dirty_cluster_docs), not the corpus size — while the from-scratch
// baseline re-pays the whole corpus every time. The JSON records both
// so the trajectory is auditable; the gate is only on divergence, never
// on speedup (single-core CI runners stay honest).
//
// Usage: bench_incremental [output.json]  (default ./BENCH_incremental.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/trafficking_gen.h"
#include "incremental/incremental_infoshield.h"
#include "io/json_writer.h"
#include "util/timer.h"

namespace {

using namespace infoshield;

LabeledAds BaseCorpus() {
  TraffickingGenOptions o;
  o.num_benign = 800;
  o.num_spam_clusters = 6;
  o.spam_cluster_size_min = 20;
  o.spam_cluster_size_max = 40;
  o.num_ht_clusters = 20;
  o.ht_cluster_size_min = 5;
  o.ht_cluster_size_max = 12;
  return TraffickingGenerator(o).Generate(/*seed=*/409);
}

struct Round {
  IngestStats stats;
  double incremental_seconds = 0.0;
  double full_rebuild_seconds = 0.0;
};

// The oracle: fresh corpus + batch pipeline over everything so far.
std::string BatchJson(const std::vector<std::string>& texts,
                      const InfoShieldOptions& options, double* seconds) {
  WallTimer timer;
  Corpus corpus;
  corpus.AddBatch(texts, options.num_threads);
  InfoShield shield(options);
  const InfoShieldResult result = shield.Run(corpus);
  *seconds = timer.ElapsedSeconds();
  return ResultToJson(result, corpus);
}

void WriteRound(JsonWriter& w, const Round& r) {
  const IngestStats& s = r.stats;
  w.BeginObject();
  w.Key("batch_docs").Int(static_cast<int64_t>(s.batch_docs));
  w.Key("total_docs").Int(static_cast<int64_t>(s.total_docs));
  w.Key("dirty_clusters").Int(static_cast<int64_t>(s.dirty_clusters));
  w.Key("reused_clusters").Int(static_cast<int64_t>(s.reused_clusters));
  w.Key("dirty_cluster_docs").Int(static_cast<int64_t>(s.dirty_cluster_docs));
  w.Key("graph_rebuilt").Bool(s.graph_rebuilt);
  w.Key("vocab_grew").Bool(s.vocab_grew);
  w.Key("df_seconds").Double(s.df_seconds);
  w.Key("rescore_seconds").Double(s.rescore_seconds);
  w.Key("graph_seconds").Double(s.graph_seconds);
  w.Key("fine_seconds").Double(s.fine_seconds);
  w.Key("incremental_seconds").Double(r.incremental_seconds);
  w.Key("full_rebuild_seconds").Double(r.full_rebuild_seconds);
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_incremental.json";

  LabeledAds data = BaseCorpus();
  std::vector<std::string> texts;
  texts.reserve(data.corpus.size());
  for (const Document& doc : data.corpus.docs()) {
    texts.push_back(doc.raw);
  }
  std::printf("base corpus: %zu documents\n", texts.size());

  InfoShieldOptions options;
  IncrementalInfoShield engine(options);

  // Round 0: the whole base corpus in one batch (everything is dirty —
  // this is the price a cold start always pays).
  std::vector<Round> rounds;
  {
    Round r;
    WallTimer timer;
    Result<IngestStats> stats = engine.IngestBatch(texts);
    r.incremental_seconds = timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "FAIL: base ingest: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    r.stats = *stats;
    std::string oracle = BatchJson(texts, options, &r.full_rebuild_seconds);
    if (ResultToJson(engine.result(), engine.corpus()) != oracle) {
      std::fprintf(stderr, "FAIL: base ingest diverged from batch run\n");
      return 1;
    }
    std::printf(
        "round 0 (cold): %zu docs, %zu dirty clusters, inc %.3fs vs "
        "batch %.3fs\n",
        r.stats.total_docs, r.stats.dirty_clusters, r.incremental_seconds,
        r.full_rebuild_seconds);
    rounds.push_back(r);
  }

  // Small update rounds: each ingests near-duplicates of one existing
  // benign document, touching (roughly) one coarse component while the
  // corpus keeps its full size. Reuse existing wording so no round
  // grows the vocabulary and invalidates the fine cache wholesale.
  constexpr int kRounds = 6;
  constexpr int kCopies = 4;
  double incremental_update_total = 0.0;
  double full_rebuild_total = 0.0;
  for (int round = 1; round <= kRounds; ++round) {
    const std::string& repeated = texts[static_cast<size_t>(round) * 37];
    std::vector<std::string> batch(kCopies, repeated);
    texts.insert(texts.end(), batch.begin(), batch.end());

    Round r;
    WallTimer timer;
    Result<IngestStats> stats = engine.IngestBatch(batch);
    r.incremental_seconds = timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "FAIL: round %d ingest: %s\n", round,
                   stats.status().ToString().c_str());
      return 1;
    }
    r.stats = *stats;
    std::string oracle = BatchJson(texts, options, &r.full_rebuild_seconds);
    if (ResultToJson(engine.result(), engine.corpus()) != oracle) {
      std::fprintf(stderr,
                   "FAIL: round %d diverged from the batch oracle "
                   "(%zu docs total)\n",
                   round, texts.size());
      return 1;
    }
    std::printf(
        "round %d: +%d docs -> %zu/%zu clusters dirty (%zu docs re-fined "
        "of %zu), inc %.3fs vs batch %.3fs\n",
        round, kCopies, r.stats.dirty_clusters, r.stats.num_coarse_clusters,
        r.stats.dirty_cluster_docs, r.stats.total_docs,
        r.incremental_seconds, r.full_rebuild_seconds);
    incremental_update_total += r.incremental_seconds;
    full_rebuild_total += r.full_rebuild_seconds;
    rounds.push_back(r);
  }

  const double speedup = incremental_update_total > 0.0
                             ? full_rebuild_total / incremental_update_total
                             : 0.0;
  std::printf(
      "update rounds: incremental %.3fs vs full rebuilds %.3fs "
      "(%.2fx, outputs identical: yes)\n",
      incremental_update_total, full_rebuild_total, speedup);

  bench::BenchJson bench_json("infoshield-bench-incremental/2");
  JsonWriter& w = bench_json.writer();
  w.Key("base_documents").Int(static_cast<int64_t>(rounds[0].stats.total_docs));
  w.Key("update_rounds").Int(kRounds);
  w.Key("docs_per_update").Int(kCopies);
  w.Key("outputs_identical").Bool(true);
  w.Key("update_speedup").Double(speedup);
  w.Key("rounds").BeginArray();
  for (const Round& r : rounds) {
    WriteRound(w, r);
  }
  w.EndArray();
  return bench_json.Finish(out_path);
}
