// Experiment E7 — Figure 4: InfoShield-Coarse robustness to the maximum
// n-gram length used for tf-idf. Paper setup: 100k tweets sampled 50%
// genuine / 25% spambots-1 / 25% spambots-3; here a scaled-down
// equivalent mix of low-noise and high-noise bot campaigns. Expected
// shape: precision climbs with n and stabilizes by n ~ 4-5 ("5-grams are
// enough").

#include <cstdio>

#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/twitter_gen.h"

int main() {
  using namespace infoshield;
  bench::PrintHeader("Fig. 4: precision vs. max n-gram length");

  // 50% genuine accounts, 25% low-noise bots, 25% high-noise bots,
  // merged into one corpus.
  TwitterGenOptions low_noise;
  low_noise.num_genuine_accounts = 40;
  low_noise.num_bot_accounts = 20;
  low_noise.bot_edit_prob = 0.02;
  TwitterGenOptions high_noise;
  high_noise.num_genuine_accounts = 0;
  high_noise.num_bot_accounts = 20;
  high_noise.bot_edit_prob = 0.12;

  LabeledTweets part1 = TwitterGenerator(low_noise).Generate(1001);
  LabeledTweets part2 = TwitterGenerator(high_noise).Generate(1002);
  // Merge part2 into part1's corpus.
  for (size_t i = 0; i < part2.corpus.size(); ++i) {
    part1.corpus.Add(part2.corpus.doc(static_cast<DocId>(i)).raw);
    part1.is_bot.push_back(part2.is_bot[i]);
    part1.account_id.push_back(part2.account_id[i] + 1000000);
    part1.cluster_label.push_back(part2.cluster_label[i] < 0
                                      ? -1
                                      : part2.cluster_label[i] + 1000000);
  }
  std::vector<bool> truth(part1.is_bot.begin(), part1.is_bot.end());
  std::printf("corpus: %zu tweets, %zu from bots\n\n", part1.corpus.size(),
              part1.num_bot_tweets());

  std::printf("%-8s %-10s %-10s %-10s %-8s\n", "max_n", "precision",
              "recall", "f1", "templates");
  for (size_t max_n = 1; max_n <= 8; ++max_n) {
    InfoShieldOptions options;
    options.coarse.tfidf.max_ngram = max_n;
    InfoShield shield(options);
    InfoShieldResult r = shield.Run(part1.corpus);
    BinaryMetrics m = bench::ScoreRun(r, truth);
    std::printf("%-8zu %-10.3f %-10.3f %-10.3f %-8zu\n", max_n,
                m.precision(), m.recall(), m.f1(), r.templates.size());
  }
  std::printf(
      "\npaper shape: precision stabilizes after n = 4; 5-grams are\n"
      "enough (phrase length has little impact past n = 5).\n");
  return 0;
}
