// Experiment E2 — Figure 1 (middle) / Figure 2: InfoShield runtime vs.
// number of tweets. The paper's claim (Lemma 2) is quasi-linear scaling:
// a straight line through the timing points (f(x) = 3x/400 on their
// laptop; the slope here depends on this machine, the *linearity* is the
// reproduced result).
//
// Workload: synthetic Cresci-style test-set mixes (50% genuine / 50% bot
// accounts) at increasing N, averaged over trials. The coarse column is
// broken down per phase (tf-idf index, top-phrase selection, graph) so a
// super-linear phase cannot hide inside the total. A final section
// sweeps the worker count at a fixed N to show how the parallel coarse
// and fine paths share the same quasi-linear shape per thread.
//
// Usage: bench_fig2_scalability [output.json]
//   Prints the tables as before and writes the sweep rows, the thread
//   sweep, and the linear-fit metrics into the shared BENCH_*.json
//   envelope (schema "infoshield-bench-fig2/1", default
//   ./BENCH_fig2.json).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/twitter_gen.h"
#include "io/json_writer.h"
#include "util/timer.h"

namespace {

infoshield::LabeledTweets MakeTweets(size_t target, uint64_t seed) {
  infoshield::TwitterGenOptions o;
  o.num_genuine_accounts = target / 25;
  o.num_bot_accounts = target / 25;
  return infoshield::TwitterGenerator(o).Generate(seed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace infoshield;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fig2.json";
  bench::PrintHeader(
      "Fig. 2: runtime vs. #tweets (expect linear; paper: 3x/400)");

  // Tweets per account averages ~12.5, so accounts = N / 12.5.
  const std::vector<size_t> sizes = {1000, 2000,  4000,  8000,
                                     16000, 32000, 64000, 128000};
  const int kTrials = 3;

  bench::BenchJson bench_json("infoshield-bench-fig2/1");
  JsonWriter& w = bench_json.writer();
  w.Key("trials").Int(kTrials);
  w.Key("sweep").BeginArray();

  std::vector<double> xs;
  std::vector<double> ys;
  std::printf("%-10s %-10s %-10s %-8s %-8s %-8s %-10s %-10s\n", "tweets",
              "actual_n", "coarse_s", "idx_s", "top_s", "graph_s", "fine_s",
              "total_s");
  for (size_t target : sizes) {
    double total_coarse = 0;
    double total_fine = 0;
    double total_index = 0;
    double total_top = 0;
    double total_graph = 0;
    size_t actual_n = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      LabeledTweets data = MakeTweets(target, 1000 + trial);
      actual_n = data.corpus.size();

      InfoShield shield;
      InfoShieldResult r = shield.Run(data.corpus);
      total_coarse += r.coarse_seconds;
      total_fine += r.fine_seconds;
      total_index += r.coarse_stats.index_seconds;
      total_top += r.coarse_stats.top_phrase_seconds;
      total_graph += r.coarse_stats.graph_seconds;
    }
    const double coarse_s = total_coarse / kTrials;
    const double fine_s = total_fine / kTrials;
    std::printf("%-10zu %-10zu %-10.3f %-8.3f %-8.3f %-8.3f %-10.3f %-10.3f\n",
                target, actual_n, coarse_s, total_index / kTrials,
                total_top / kTrials, total_graph / kTrials, fine_s,
                coarse_s + fine_s);
    w.BeginObject();
    w.Key("target_tweets").Int(static_cast<int64_t>(target));
    w.Key("documents").Int(static_cast<int64_t>(actual_n));
    w.Key("coarse_seconds").Double(coarse_s);
    w.Key("index_seconds").Double(total_index / kTrials);
    w.Key("top_phrase_seconds").Double(total_top / kTrials);
    w.Key("graph_seconds").Double(total_graph / kTrials);
    w.Key("fine_seconds").Double(fine_s);
    w.Key("total_seconds").Double(coarse_s + fine_s);
    w.EndObject();
    xs.push_back(static_cast<double>(actual_n));
    ys.push_back(coarse_s + fine_s);
  }
  w.EndArray();

  bench::LinearFit fit = bench::FitLine(xs, ys);
  std::printf(
      "\nlinear fit: time = %.3g * N %+.3g   (R^2 = %.4f)\n"
      "paper shape: linear (their slope 3/400 s/tweet on a 2019 laptop)\n"
      "R^2 close to 1 reproduces the quasi-linearity of Lemma 2.\n",
      fit.slope, fit.intercept, fit.r_squared);

  // Thread sweep at fixed N: both stages run behind
  // InfoShieldOptions::num_threads; the coarse phase columns show where
  // the sharded pipeline spends its time as workers are added. Output is
  // byte-identical across rows (determinism_test enforces it); this
  // section only reports the cost.
  const size_t kSweepTarget = 16000;
  std::printf("\nthread sweep at %zu tweets (per-phase coarse seconds):\n",
              kSweepTarget);
  std::printf("%-8s %-10s %-8s %-8s %-8s %-10s %-10s\n", "threads",
              "coarse_s", "idx_s", "top_s", "graph_s", "fine_s", "total_s");
  w.Key("thread_sweep_tweets").Int(static_cast<int64_t>(kSweepTarget));
  w.Key("thread_sweep").BeginArray();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    double total_coarse = 0;
    double total_fine = 0;
    double total_index = 0;
    double total_top = 0;
    double total_graph = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      LabeledTweets data = MakeTweets(kSweepTarget, 2000 + trial);
      InfoShieldOptions options;
      options.num_threads = threads;
      InfoShield shield(options);
      InfoShieldResult r = shield.Run(data.corpus);
      total_coarse += r.coarse_seconds;
      total_fine += r.fine_seconds;
      total_index += r.coarse_stats.index_seconds;
      total_top += r.coarse_stats.top_phrase_seconds;
      total_graph += r.coarse_stats.graph_seconds;
    }
    std::printf("%-8zu %-10.3f %-8.3f %-8.3f %-8.3f %-10.3f %-10.3f\n",
                threads, total_coarse / kTrials, total_index / kTrials,
                total_top / kTrials, total_graph / kTrials,
                total_fine / kTrials,
                (total_coarse + total_fine) / kTrials);
    w.BeginObject();
    w.Key("threads").Int(static_cast<int64_t>(threads));
    w.Key("coarse_seconds").Double(total_coarse / kTrials);
    w.Key("index_seconds").Double(total_index / kTrials);
    w.Key("top_phrase_seconds").Double(total_top / kTrials);
    w.Key("graph_seconds").Double(total_graph / kTrials);
    w.Key("fine_seconds").Double(total_fine / kTrials);
    w.Key("total_seconds").Double((total_coarse + total_fine) / kTrials);
    w.EndObject();
  }
  w.EndArray();

  bench_json.Metrics({
      {"fit_slope_s_per_doc", fit.slope},
      {"fit_intercept_s", fit.intercept},
      {"fit_r_squared", fit.r_squared},
  });
  return bench_json.Finish(out_path);
}
