// Experiment E2 — Figure 1 (middle) / Figure 2: InfoShield runtime vs.
// number of tweets. The paper's claim (Lemma 2) is quasi-linear scaling:
// a straight line through the timing points (f(x) = 3x/400 on their
// laptop; the slope here depends on this machine, the *linearity* is the
// reproduced result).
//
// Workload: synthetic Cresci-style test-set mixes (50% genuine / 50% bot
// accounts) at increasing N, averaged over trials.

#include <cstdio>

#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/twitter_gen.h"
#include "util/timer.h"

int main() {
  using namespace infoshield;
  bench::PrintHeader(
      "Fig. 2: runtime vs. #tweets (expect linear; paper: 3x/400)");

  // Tweets per account averages ~12.5, so accounts = N / 12.5.
  const std::vector<size_t> sizes = {1000, 2000,  4000,  8000,
                                     16000, 32000, 64000, 128000};
  const int kTrials = 3;

  std::vector<double> xs;
  std::vector<double> ys;
  std::printf("%-10s %-10s %-12s %-12s %-12s\n", "tweets", "actual_n",
              "coarse_s", "fine_s", "total_s");
  for (size_t target : sizes) {
    double total_coarse = 0;
    double total_fine = 0;
    size_t actual_n = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      TwitterGenOptions o;
      o.num_genuine_accounts = target / 25;
      o.num_bot_accounts = target / 25;
      TwitterGenerator gen(o);
      LabeledTweets data = gen.Generate(1000 + trial);
      actual_n = data.corpus.size();

      InfoShield shield;
      InfoShieldResult r = shield.Run(data.corpus);
      total_coarse += r.coarse_seconds;
      total_fine += r.fine_seconds;
    }
    const double coarse_s = total_coarse / kTrials;
    const double fine_s = total_fine / kTrials;
    std::printf("%-10zu %-10zu %-12.3f %-12.3f %-12.3f\n", target, actual_n,
                coarse_s, fine_s, coarse_s + fine_s);
    xs.push_back(static_cast<double>(actual_n));
    ys.push_back(coarse_s + fine_s);
  }

  bench::LinearFit fit = bench::FitLine(xs, ys);
  std::printf(
      "\nlinear fit: time = %.3g * N %+.3g   (R^2 = %.4f)\n"
      "paper shape: linear (their slope 3/400 s/tweet on a 2019 laptop)\n"
      "R^2 close to 1 reproduces the quasi-linearity of Lemma 2.\n",
      fit.slope, fit.intercept, fit.r_squared);
  return 0;
}
