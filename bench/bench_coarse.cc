// Coarse-stage parallelism regression harness.
//
// Runs the coarse pipeline on a wide synthetic corpus — many mid-sized
// campaigns plus a large benign tail, the shape that makes the coarse
// stage (tokenize -> tf-idf -> top phrases -> graph) the bottleneck —
// once through the single-threaded reference path
// (CoarseOptions::use_serial_coarse) and then through the sharded
// parallel path at 1/2/4/8 threads. Every parallel run MUST produce a
// result identical to the serial reference (clusters, singletons,
// per-document top phrases, edge count); any disagreement exits
// non-zero so CI fails. Emits BENCH_coarse.json with per-phase timings
// (tokenize/index/top-phrase/graph/components) for every configuration
// plus shard-contention counters and the 4-thread speedup, giving the
// repo a tracked trajectory for this path.
//
// On single-core runners the speedup reported is honest (~1x or below);
// the benchmark gates only on divergence, never on speedup.
//
// Usage: bench_coarse [output.json]   (default ./BENCH_coarse.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "coarse/coarse_clustering.h"
#include "datagen/trafficking_gen.h"
#include "io/json_writer.h"
#include "util/timer.h"

namespace {

using namespace infoshield;

// Wide corpus: lots of documents and campaigns so df accumulation and
// top-phrase selection dominate, not one cluster's fine alignment.
LabeledAds WideCorpus() {
  TraffickingGenOptions o;
  o.num_benign = 2500;
  o.num_spam_clusters = 12;
  o.spam_cluster_size_min = 40;
  o.spam_cluster_size_max = 80;
  o.num_ht_clusters = 60;
  o.ht_cluster_size_min = 5;
  o.ht_cluster_size_max = 15;
  return TraffickingGenerator(o).Generate(/*seed=*/211);
}

struct RunOutcome {
  CoarseResult result;
  CoarseStageStats best;  // min-of-trials per phase + tokenize
  size_t threads = 0;
  bool serial = false;
};

// Coarse results carry no floats, so exact comparison is the contract.
bool SameResult(const CoarseResult& a, const CoarseResult& b) {
  return a.clusters == b.clusters && a.singletons == b.singletons &&
         a.doc_top_phrases == b.doc_top_phrases && a.num_edges == b.num_edges;
}

RunOutcome RunConfig(const std::vector<std::string>& texts, size_t threads,
                     bool serial, int trials) {
  RunOutcome out;
  out.threads = threads;
  out.serial = serial;
  CoarseOptions options;
  options.num_threads = threads;
  options.use_serial_coarse = serial;
  for (int trial = 0; trial < trials; ++trial) {
    // Rebuild the corpus from raw text each trial so tokenization is
    // measured under the same thread count as the rest of the stage.
    Corpus corpus;
    WallTimer timer;
    corpus.AddBatch(texts, serial ? 1 : threads);
    const double tokenize_seconds = timer.ElapsedSeconds();

    CoarseClustering coarse(options);
    CoarseResult result = coarse.Run(corpus);
    result.stats.tokenize_seconds = tokenize_seconds;

    const bool first = trial == 0;
    CoarseStageStats& best = out.best;
    if (first || result.stats.tokenize_seconds < best.tokenize_seconds) {
      best.tokenize_seconds = result.stats.tokenize_seconds;
    }
    if (first || result.stats.index_seconds < best.index_seconds) {
      best.index_seconds = result.stats.index_seconds;
    }
    if (first || result.stats.top_phrase_seconds < best.top_phrase_seconds) {
      best.top_phrase_seconds = result.stats.top_phrase_seconds;
    }
    if (first || result.stats.graph_seconds < best.graph_seconds) {
      best.graph_seconds = result.stats.graph_seconds;
    }
    if (first || result.stats.components_seconds < best.components_seconds) {
      best.components_seconds = result.stats.components_seconds;
    }
    best.shard_flushes = result.stats.shard_flushes;
    best.shard_contended = result.stats.shard_contended;
    best.parallel_threads = result.stats.parallel_threads;
    if (first) {
      out.result = std::move(result);
    }
  }
  return out;
}

double TotalSeconds(const CoarseStageStats& s) {
  return s.tokenize_seconds + s.total_seconds();
}

void WriteRun(JsonWriter& w, const RunOutcome& r) {
  w.BeginObject();
  w.Key("label").String(r.serial ? "serial"
                                 : "parallel_" + std::to_string(r.threads));
  w.Key("num_threads").Int(static_cast<int64_t>(r.threads));
  w.Key("use_serial_coarse").Bool(r.serial);
  w.Key("tokenize_seconds").Double(r.best.tokenize_seconds);
  w.Key("index_seconds").Double(r.best.index_seconds);
  w.Key("top_phrase_seconds").Double(r.best.top_phrase_seconds);
  w.Key("graph_seconds").Double(r.best.graph_seconds);
  w.Key("components_seconds").Double(r.best.components_seconds);
  w.Key("total_seconds").Double(TotalSeconds(r.best));
  w.Key("shard_flushes").Int(static_cast<int64_t>(r.best.shard_flushes));
  w.Key("shard_contended").Int(static_cast<int64_t>(r.best.shard_contended));
  w.Key("num_clusters").Int(static_cast<int64_t>(r.result.clusters.size()));
  w.Key("num_edges").Int(static_cast<int64_t>(r.result.num_edges));
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_coarse.json";
  constexpr int kTrials = 3;

  LabeledAds data = WideCorpus();
  std::vector<std::string> texts;
  texts.reserve(data.corpus.size());
  for (const Document& doc : data.corpus.docs()) {
    texts.push_back(doc.raw);
  }
  std::printf("corpus: %zu documents (wide: many mid-sized campaigns)\n",
              texts.size());

  // Serial reference first so the parallel runs cannot benefit from a
  // warm page cache they didn't earn.
  RunOutcome serial =
      RunConfig(texts, /*threads=*/1, /*serial=*/true, kTrials);
  std::printf(
      "serial:     total %.3fs  (tok %.3f  idx %.3f  top %.3f  graph %.3f  "
      "comp %.3f)\n",
      TotalSeconds(serial.best), serial.best.tokenize_seconds,
      serial.best.index_seconds, serial.best.top_phrase_seconds,
      serial.best.graph_seconds, serial.best.components_seconds);

  double speedup4 = 0.0;
  std::vector<RunOutcome> runs;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    RunOutcome run = RunConfig(texts, threads, /*serial=*/false, kTrials);
    if (!SameResult(run.result, serial.result)) {
      std::fprintf(stderr,
                   "FAIL: parallel coarse run (num_threads=%zu) diverged "
                   "from the serial reference\n",
                   threads);
      return 1;
    }
    std::printf(
        "threads=%zu: total %.3fs  (tok %.3f  idx %.3f  top %.3f  "
        "graph %.3f  comp %.3f)  contended %zu/%zu flushes\n",
        threads, TotalSeconds(run.best), run.best.tokenize_seconds,
        run.best.index_seconds, run.best.top_phrase_seconds,
        run.best.graph_seconds, run.best.components_seconds,
        run.best.shard_contended, run.best.shard_flushes);
    if (threads == 4 && TotalSeconds(run.best) > 0.0) {
      speedup4 = TotalSeconds(serial.best) / TotalSeconds(run.best);
    }
    runs.push_back(std::move(run));
  }
  std::printf("speedup at 4 threads: %.2fx  (outputs identical: yes)\n",
              speedup4);

  bench::BenchJson bench_json("infoshield-bench-coarse/2");
  JsonWriter& w = bench_json.writer();
  w.Key("corpus_documents").Int(static_cast<int64_t>(texts.size()));
  w.Key("trials").Int(kTrials);
  w.Key("outputs_identical").Bool(true);
  w.Key("serial");
  WriteRun(w, serial);
  w.Key("parallel").BeginArray();
  for (const RunOutcome& run : runs) {
    WriteRun(w, run);
  }
  w.EndArray();
  w.Key("speedup_4_threads").Double(speedup4);
  return bench_json.Finish(out_path);
}
