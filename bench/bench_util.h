// Shared helpers for the paper-reproduction benchmark harnesses.

#ifndef INFOSHIELD_BENCH_BENCH_UTIL_H_
#define INFOSHIELD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/infoshield.h"
#include "eval/metrics.h"
#include "io/json_writer.h"

namespace infoshield {
namespace bench {

// `git describe --always --dirty --tags` of the working tree, or
// "unknown" when git (or the repo) is unavailable — benches run from
// the build tree, which lives inside the checkout.
std::string GitDescribe();

// The canonical BENCH_*.json envelope shared by every harness
// (bench_fine, bench_coarse, bench_incremental, bench_lsh): one
// top-level object opened with a "schema" name (e.g.
// "infoshield-bench-lsh/1") and a "git_describe" provenance field, an
// arbitrary harness-driven body via writer(), and a uniform
// write-with-trailing-newline + error-report tail via Finish. Keeps the
// emission idiom (and its failure handling) in one place instead of
// hand-rolled per bench.
class BenchJson {
 public:
  explicit BenchJson(const std::string& schema);

  // The underlying writer, positioned inside the top-level object.
  JsonWriter& writer() { return writer_; }
  JsonWriter& Key(std::string_view key) { return writer_.Key(key); }

  // Flat metric map emitted as "<name>": value pairs (std::map so the
  // key order — and therefore the bytes — is deterministic).
  void Metrics(const std::map<std::string, double>& metrics);

  // Closes the top-level object, writes the document (with trailing
  // newline) to `path`, and prints "wrote <path>". Returns a main()
  // exit code: 0 on success, 1 (with a stderr report) on I/O failure.
  // Call exactly once.
  int Finish(const std::string& path);

 private:
  JsonWriter writer_;
};

// Binary metrics of an InfoShield run against per-document truth.
inline BinaryMetrics ScoreRun(const InfoShieldResult& result,
                              const std::vector<bool>& truth) {
  std::vector<bool> predicted;
  predicted.reserve(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    predicted.push_back(result.IsSuspicious(static_cast<DocId>(i)));
  }
  return ComputeBinaryMetrics(predicted, truth);
}

// Least-squares fit y = a*x + b; returns (slope, intercept, r_squared).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

inline LinearFit FitLine(const std::vector<double>& x,
                         const std::vector<double>& y) {
  LinearFit fit;
  const size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (size_t i = 0; i < n; ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

inline void PrintHeader(const char* title) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title);
  std::printf("=====================================================\n");
}

}  // namespace bench
}  // namespace infoshield

#endif  // INFOSHIELD_BENCH_BENCH_UTIL_H_
