// Experiment E4 — Table VIII (Twitter half): ARI / precision / recall /
// F1 on the two synthetic test sets.
//
//   Test set #1 mirrors "social spambots #1" — heavy duplication, low
//   edit noise. Test set #2 mirrors "social spambots #3" — fewer, noisier
//   campaigns with more edits.
//
// Methods:
//   InfoShield           (this paper, unsupervised)
//   LogReg-BoW           (supervised stand-in for Yang/Ahmed/BotOrNot —
//                         those use closed Twitter platform features)
//   Word2Vec-cl          (embedding + HDBSCAN, as the paper built)
//   FastText-cl
//   Doc2Vec-cl
//
// Expected shape (paper Table VIII): InfoShield within ~10 points of the
// best supervised method on both sets, with high ARI; embedding-cl
// baselines trail.

#include <cstdio>

#include "baselines/doc2vec.h"
#include "baselines/fasttext.h"
#include "baselines/logreg.h"
#include "baselines/pipeline.h"
#include "baselines/word2vec.h"
#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/twitter_gen.h"

namespace {

using namespace infoshield;

struct Row {
  const char* name;
  bool supervised;
  double ari;  // < 0 => n/a
  BinaryMetrics metrics;
};

void PrintRow(const Row& row) {
  char ari_buf[16];
  if (row.ari < -1.5) {
    std::snprintf(ari_buf, sizeof(ari_buf), "%6s", "n/a");
  } else {
    std::snprintf(ari_buf, sizeof(ari_buf), "%6.1f", 100 * row.ari);
  }
  std::printf("%-22s%-4s %s %6.1f %6.1f %6.1f\n", row.name,
              row.supervised ? "[S]" : "", ari_buf,
              100 * row.metrics.precision(), 100 * row.metrics.recall(),
              100 * row.metrics.f1());
}

void RunTestSet(const char* title, double edit_prob, size_t slots_max,
                uint64_t seed) {
  TwitterGenOptions o;
  o.num_genuine_accounts = 60;
  o.num_bot_accounts = 60;
  o.bot_edit_prob = edit_prob;
  o.template_slots_max = slots_max;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(seed);
  std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());

  std::printf("\n%s: %zu tweets, %zu from bots\n", title,
              data.corpus.size(), data.num_bot_tweets());
  std::printf("%-22s%-4s %6s %6s %6s %6s\n", "method", "", "ARI", "prec",
              "rec", "F1");

  // InfoShield.
  {
    InfoShield shield;
    InfoShieldResult r = shield.Run(data.corpus);
    Row row{"InfoShield", false,
            AdjustedRandIndex(data.cluster_label, r.doc_template),
            bench::ScoreRun(r, truth)};
    PrintRow(row);
  }

  // Supervised stand-in.
  {
    LogisticRegression lr;
    lr.Train(data.corpus, truth, seed);
    std::vector<bool> pred;
    for (const Document& d : data.corpus.docs()) pred.push_back(lr.Predict(d));
    Row row{"LogReg-BoW", true, -2.0, ComputeBinaryMetrics(pred, truth)};
    PrintRow(row);
  }

  // Embedding + HDBSCAN baselines.
  EmbedClusterOptions cluster_options;  // HDBSCAN, min size 3
  auto run_embedding = [&](const char* name, DocumentEmbedder& model) {
    BaselineResult br =
        EmbedAndCluster(model, data.corpus, cluster_options, seed);
    Row row{name, false, AdjustedRandIndex(data.cluster_label, br.labels),
            ComputeBinaryMetrics(br.suspicious, truth)};
    PrintRow(row);
  };
  Word2VecOptions w2v_opts;
  w2v_opts.epochs = 2;
  Word2Vec w2v(w2v_opts);
  run_embedding("Word2Vec-cl", w2v);
  FastTextOptions ft_opts;
  ft_opts.epochs = 1;
  ft_opts.num_buckets = 1 << 15;
  FastText ft(ft_opts);
  run_embedding("FastText-cl", ft);
  Doc2VecOptions d2v_opts;
  d2v_opts.epochs = 4;
  Doc2Vec d2v(d2v_opts);
  run_embedding("Doc2Vec-cl", d2v);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table VIII (Twitter): ARI/prec/rec/F1, [S] = supervised");
  RunTestSet("Test set #1 (spambots-1 style: near-exact duplication)",
             /*edit_prob=*/0.02, /*slots_max=*/2, /*seed=*/20210401);
  RunTestSet("Test set #2 (spambots-3 style: noisier campaigns)",
             /*edit_prob=*/0.10, /*slots_max=*/3, /*seed=*/20210402);
  std::printf(
      "\npaper shape: InfoShield F1 > 90 on both sets, within ~10 points\n"
      "of the best supervised method, and the best ARI by construction\n"
      "(baselines do not produce per-campaign clusters as cleanly).\n");
  return 0;
}
