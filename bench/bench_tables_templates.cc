// Experiment E8 — Tables IX, X, XI: template visualizations on realistic
// clusters.
//
//   Table IX  — a Spanish near-duplicate campaign (seismology bot); most
//               tweets identical, one divergent member rendered with
//               unmatched-word markers rather than slots.
//   Table X   — an English campaign whose tail differs per tweet; the
//               differing tail becomes a slot.
//   Table XI  — an HT-style ad cluster with structured slots (name /
//               time / price / contact), censored-from-birth: the
//               generator uses neutral spa vocabulary.

#include <cstdio>

#include "bench_util.h"
#include "core/infoshield.h"
#include "core/slot_analysis.h"
#include "core/visualize.h"
#include "datagen/trafficking_gen.h"

namespace {

using namespace infoshield;

void Render(const std::vector<TemplateCluster>& templates,
            const Corpus& corpus) {
  VisualizeOptions viz;
  viz.use_color = false;
  viz.max_docs = 6;
  if (templates.empty()) {
    std::printf("(no templates found — unexpected)\n");
    return;
  }
  for (const TemplateCluster& tc : templates) {
    std::fputs(RenderTemplateAnsi(tc, corpus, viz).c_str(), stdout);
    std::printf("  template string: %s\n",
                tc.tmpl.ToString(corpus.vocab()).c_str());
    // §V-D2 follow-up: what kind of information does each slot hold?
    std::fputs(RenderSlotProfiles(AnalyzeSlots(tc, corpus)).c_str(),
               stdout);
  }
}

void RunAndRender(const char* title, Corpus& corpus) {
  std::printf("\n--- %s ---\n", title);
  InfoShield shield;
  InfoShieldResult r = shield.Run(corpus);
  Render(r.templates, corpus);
}

// Tables IX and X illustrate the fine stage's *representation* of one
// known cluster; drive FineClustering directly on it, with vocabulary
// padding standing in for the surrounding realistic corpus.
void RunFineAndRender(const char* title, Corpus& corpus,
                      const std::vector<DocId>& cluster) {
  std::printf("\n--- %s ---\n", title);
  std::string filler;
  for (int i = 0; i < 400; ++i) {
    filler += "vocabpad" + std::to_string(i) + " ";
    if (filler.size() > 200) {
      corpus.Add(filler);
      filler.clear();
    }
  }
  if (!filler.empty()) corpus.Add(filler);
  FineClustering fine;
  const CostModel cm = CostModel::ForVocabulary(corpus.vocab());
  FineResult fr = fine.RunOnCluster(corpus, cluster, cm);
  Render(fr.templates, corpus);
}

}  // namespace

int main() {
  bench::PrintHeader("Tables IX-XI: template visualizations");

  {
    // Table IX: Spanish seismology campaign — 22 exact duplicates plus
    // one divergent tweet (as in the paper). The fine stage represents
    // the divergent member with unmatched-word markers, not a slot.
    Corpus c;
    std::vector<DocId> cluster;
    for (int i = 0; i < 22; ++i) {
      cluster.push_back(
          c.Add("sismo richter 40 km al sureste de puerto escondido oax "
                "lat lon pf km"));
    }
    cluster.push_back(
        c.Add("sismo magnitud loc km al sureste de puerto escondido oax "
              "lat lon pf km"));
    RunFineAndRender("Table IX: Spanish campaign (language-independent)",
                     c, cluster);
  }

  {
    // Table X: "most popular stories on pr daily this week from ..."
    // campaign — shared head, differing tail => tail slot.
    Corpus c;
    std::vector<DocId> cluster;
    const char* tails[] = {
        "instagram to mr t and perhaps even your grocers produce",
        "new cover photo rules on facebook and a battle of the soci",
        "whimsical words to hillarys texts here are this weeks mos",
        "understanding sopa to dating a pr professional here are the",
        "press release myths to facebook tips the top stories this",
        "grammar goofs to google glass the most read stories of the",
    };
    for (const char* tail : tails) {
      cluster.push_back(
          c.Add(std::string("the most popular stories on pr daily this "
                            "week from ") +
                tail));
    }
    RunFineAndRender("Table X: trailing-slot campaign", c, cluster);
  }

  {
    // Table XI: HT-style structured-slot cluster from the generator.
    TraffickingGenOptions o;
    o.num_benign = 30;
    o.num_spam_clusters = 0;
    o.num_ht_clusters = 1;
    o.ht_cluster_size_min = 8;
    o.ht_cluster_size_max = 8;
    o.ht_edit_prob = 0.02;
    TraffickingGenerator gen(o);
    LabeledAds data = gen.Generate(2021);
    RunAndRender("Table XI: HT-style cluster (structured slots)",
                 data.corpus);
    std::printf(
        "\nSlots capture user-specific information (name / time / price "
        "/ contact),\nas in the paper's Table XI.\n");
  }
  return 0;
}
