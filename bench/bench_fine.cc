// Fine-stage hot-path regression harness.
//
// Runs the full pipeline twice on a skewed synthetic corpus — one
// dominant coarse cluster, the shape that makes the fine stage the
// bottleneck — once with the default (cached + incremental) costing and
// once with FineOptions::use_naive_costing. The two runs MUST render to
// byte-identical JSON (the optimization contract); any disagreement
// exits non-zero so CI fails. Emits BENCH_fine.json with both runs'
// stage seconds and hot-path counters plus the speedup, giving the
// repo a tracked trajectory for this path.
//
// Usage: bench_fine [output.json]   (default ./BENCH_fine.json)

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/trafficking_gen.h"
#include "io/json_writer.h"

namespace {

using namespace infoshield;

// One dominant coarse cluster: a single large near-duplicate campaign
// dwarfing everything else, plus a few small organized clusters and a
// benign tail.
LabeledAds SkewedCorpus() {
  TraffickingGenOptions o;
  o.num_benign = 120;
  o.num_spam_clusters = 1;
  o.spam_cluster_size_min = 360;
  o.spam_cluster_size_max = 360;
  o.num_ht_clusters = 6;
  o.ht_cluster_size_min = 6;
  o.ht_cluster_size_max = 14;
  return TraffickingGenerator(o).Generate(/*seed=*/97);
}

struct RunOutcome {
  std::string json;
  double fine_seconds = 0.0;
  double coarse_seconds = 0.0;
  FineStageStats stats;
  size_t num_templates = 0;
};

RunOutcome RunOnce(const Corpus& corpus, bool naive) {
  InfoShieldOptions options;
  options.fine.use_naive_costing = naive;
  InfoShield shield(options);
  InfoShieldResult result = shield.Run(corpus);
  RunOutcome out;
  out.json = ResultToJson(result, corpus);
  out.fine_seconds = result.fine_seconds;
  out.coarse_seconds = result.coarse_seconds;
  out.stats = result.fine_stats;
  out.num_templates = result.templates.size();
  return out;
}

void WriteRun(JsonWriter& w, const char* key, const RunOutcome& r) {
  w.Key(key).BeginObject();
  w.Key("fine_seconds").Double(r.fine_seconds);
  w.Key("coarse_seconds").Double(r.coarse_seconds);
  w.Key("alignments_computed")
      .Int(static_cast<int64_t>(r.stats.alignments_computed));
  w.Key("consensus_probes")
      .Int(static_cast<int64_t>(r.stats.consensus_probes));
  w.Key("consensus_cache_hits")
      .Int(static_cast<int64_t>(r.stats.consensus_cache_hits));
  w.Key("cache_hit_rate").Double(r.stats.cache_hit_rate());
  w.Key("slot_candidates_evaluated")
      .Int(static_cast<int64_t>(r.stats.slot_candidates_evaluated));
  w.Key("num_templates").Int(static_cast<int64_t>(r.num_templates));
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fine.json";
  LabeledAds data = SkewedCorpus();
  std::printf("corpus: %zu documents (skewed: one dominant campaign)\n",
              data.corpus.size());

  // Naive first so the optimized run cannot benefit from a warm page
  // cache it didn't earn; both runs share the corpus either way.
  RunOutcome naive = RunOnce(data.corpus, /*naive=*/true);
  RunOutcome optimized = RunOnce(data.corpus, /*naive=*/false);

  if (optimized.json != naive.json) {
    std::fprintf(stderr,
                 "FAIL: optimized and naive fine-stage runs disagree "
                 "(%zu vs %zu JSON bytes)\n",
                 optimized.json.size(), naive.json.size());
    return 1;
  }

  const double speedup = optimized.fine_seconds > 0.0
                             ? naive.fine_seconds / optimized.fine_seconds
                             : 0.0;
  std::printf("naive:     fine %.3fs  alignments %zu\n", naive.fine_seconds,
              naive.stats.alignments_computed);
  std::printf("optimized: fine %.3fs  alignments %zu  cache hit rate %.2f\n",
              optimized.fine_seconds, optimized.stats.alignments_computed,
              optimized.stats.cache_hit_rate());
  std::printf("speedup: %.2fx  (outputs byte-identical: yes)\n", speedup);

  bench::BenchJson bench_json("infoshield-bench-fine/2");
  JsonWriter& w = bench_json.writer();
  w.Key("corpus_documents").Int(static_cast<int64_t>(data.corpus.size()));
  w.Key("outputs_identical").Bool(true);
  WriteRun(w, "optimized", optimized);
  WriteRun(w, "naive", naive);
  w.Key("fine_speedup").Double(speedup);
  return bench_json.Finish(out_path);
}
