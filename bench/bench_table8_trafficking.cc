// Experiment E5 — Table VIII (Human Trafficking half):
//   * Trafficking10k-style corpus ("annotated" mode, noisy 0-6 expert
//     scores, binarized at 4): precision / recall / F1.
//   * Cluster-Trafficking-style corpus ("cluster" mode, expert cluster
//     labels): precision / recall / F1 / ARI.
//
// Methods: InfoShield vs. the embedding-cl baselines the paper built
// (Word2Vec-cl / Doc2Vec-cl / FastText-cl: embed, HDBSCAN min size 3).
//
// Expected shape (paper): InfoShield posts the highest precision by a
// wide margin — the metric that matters for law enforcement — and the
// best ARI on cluster labels; embedding baselines reach high recall on
// near-duplicates but poor precision.

#include <algorithm>
#include <cstdio>

#include "baselines/doc2vec.h"
#include "baselines/fasttext.h"
#include "baselines/pipeline.h"
#include "baselines/template_matching.h"
#include "baselines/word2vec.h"
#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/trafficking_gen.h"

namespace {

using namespace infoshield;

void PrintRow(const char* name, const BinaryMetrics& m, double ari) {
  char ari_buf[16];
  if (ari < -1.5) {
    std::snprintf(ari_buf, sizeof(ari_buf), "%6s", "n/a");
  } else {
    std::snprintf(ari_buf, sizeof(ari_buf), "%6.1f", 100 * ari);
  }
  std::printf("%-16s %6.1f %6.1f %6.1f %s\n", name, 100 * m.precision(),
              100 * m.recall(), 100 * m.f1(), ari_buf);
}

// truth: per-doc "is organized activity / is HT".
void RunAllMethods(LabeledAds& data, const std::vector<bool>& truth,
                   bool with_ari, uint64_t seed) {
  std::printf("%-16s %6s %6s %6s %6s\n", "method", "prec", "rec", "F1",
              "ARI");
  {
    InfoShield shield;
    InfoShieldResult r = shield.Run(data.corpus);
    double ari = with_ari
                     ? AdjustedRandIndex(data.cluster_label, r.doc_template)
                     : -2.0;
    PrintRow("InfoShield", bench::ScoreRun(r, truth), ari);
  }
  {
    // The paper's unsupervised anti-HT predecessor ([10]); not a row of
    // the original Table VIII but the natural fifth comparison point.
    TemplateMatchingResult tm =
        TemplateMatching(data.corpus, TemplateMatchingOptions{});
    double ari =
        with_ari ? AdjustedRandIndex(data.cluster_label, tm.labels) : -2.0;
    PrintRow("TemplateMatch", ComputeBinaryMetrics(tm.suspicious, truth),
             ari);
  }
  EmbedClusterOptions cluster_options;  // HDBSCAN, min cluster size 3
  auto run_embedding = [&](const char* name, DocumentEmbedder& model) {
    BaselineResult br =
        EmbedAndCluster(model, data.corpus, cluster_options, seed);
    double ari =
        with_ari ? AdjustedRandIndex(data.cluster_label, br.labels) : -2.0;
    PrintRow(name, ComputeBinaryMetrics(br.suspicious, truth), ari);
  };
  Word2VecOptions w2v_opts;
  w2v_opts.epochs = 2;
  Word2Vec w2v(w2v_opts);
  run_embedding("Word2Vec-cl", w2v);
  Doc2VecOptions d2v_opts;
  d2v_opts.epochs = 4;
  Doc2Vec d2v(d2v_opts);
  run_embedding("Doc2Vec-cl", d2v);
  FastTextOptions ft_opts;
  ft_opts.epochs = 1;
  ft_opts.num_buckets = 1 << 15;
  FastText ft(ft_opts);
  run_embedding("FastText-cl", ft);
}

}  // namespace

int main() {
  bench::PrintHeader("Table VIII (Human Trafficking)");

  {
    std::printf("\nTrafficking10k-style (noisy expert labels, 0-3 = not "
                "HT, 4-6 = HT)\n");
    TraffickingGenOptions o;
    o.num_benign = 1200;
    o.num_spam_clusters = 0;
    o.num_ht_clusters = 60;
    o.label_noise = 0.15;
    TraffickingGenerator gen(o);
    LabeledAds data = gen.Generate(10265);
    // Binarized noisy expert scores are the ground truth, as in the
    // paper's Trafficking10k protocol.
    std::vector<bool> truth;
    for (int s : data.expert_score) truth.push_back(s >= 4);
    std::printf("%zu ads, %zu scored as HT\n", data.corpus.size(),
                static_cast<size_t>(
                    std::count(truth.begin(), truth.end(), true)));
    RunAllMethods(data, truth, /*with_ari=*/false, 10265);
  }

  {
    std::printf("\nCluster-Trafficking-style (expert cluster labels)\n");
    TraffickingGenOptions o;
    o.num_benign = 800;
    o.num_spam_clusters = 6;
    o.spam_cluster_size_min = 40;
    o.spam_cluster_size_max = 120;
    o.num_ht_clusters = 40;
    o.label_noise = 0.0;
    TraffickingGenerator gen(o);
    LabeledAds data = gen.Generate(157258);
    std::vector<bool> truth;
    for (AdType t : data.type) truth.push_back(t != AdType::kBenign);
    std::printf("%zu ads (%zu spam, %zu HT, %zu benign)\n",
                data.corpus.size(), data.CountType(AdType::kSpam),
                data.CountType(AdType::kTrafficking),
                data.CountType(AdType::kBenign));
    RunAllMethods(data, truth, /*with_ari=*/true, 157258);
  }

  std::printf(
      "\npaper shape: InfoShield precision ~85%% (highest of all methods\n"
      "on Trafficking10k, where its recall is moderate due to label\n"
      "noise) and ~85/99/92 with the best ARI on Cluster Trafficking;\n"
      "embedding baselines reach high recall but much lower precision.\n");
  return 0;
}
