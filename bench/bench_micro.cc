// Experiment E10 — component microbenchmarks (google-benchmark):
//   * Needleman-Wunsch alignment: O(l^2) per document pair (Lemma 2's
//     MSA cost term)
//   * POA AddSequence: sequence-vs-graph DP + fusion
//   * tf-idf index construction: the O(N l) coarse-stage term
//   * cost model evaluation: the inner loop of consensus search
//   * union-find: the coarse-stage clustering backbone
//   * consensus search: dichotomous (Algorithm 2) vs. exhaustive — the
//     ablation for DESIGN.md decision #1.
//
// Usage: bench_micro [output.json] [--benchmark_* flags]
//   Prints the usual google-benchmark console table, then writes every
//   run (including the BigO/RMS complexity rows) into the shared
//   BENCH_*.json envelope (schema "infoshield-bench-micro/1", default
//   ./BENCH_micro.json) so the microbenchmark trends ride the same
//   artifact pipeline as bench_{fine,coarse,incremental,lsh,fig2}.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "io/json_writer.h"

#include "baselines/hdbscan.h"
#include "baselines/template_matching.h"
#include "coarse/coarse_clustering.h"
#include "core/fine_clustering.h"
#include "datagen/twitter_gen.h"
#include "graph/union_find.h"
#include "mdl/cost_model.h"
#include "msa/pairwise.h"
#include "msa/poa.h"
#include "msa/profile_msa.h"
#include "tfidf/tfidf_index.h"
#include "util/random.h"

namespace infoshield {
namespace {

std::vector<TokenId> RandomSeq(Rng& rng, size_t len, size_t vocab) {
  std::vector<TokenId> s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<TokenId>(rng.NextIndex(vocab)));
  }
  return s;
}

std::vector<TokenId> Mutate(const std::vector<TokenId>& base, Rng& rng,
                            double edit_prob, size_t vocab) {
  std::vector<TokenId> out;
  for (TokenId t : base) {
    if (rng.NextBernoulli(edit_prob)) {
      switch (rng.NextIndex(3)) {
        case 0:
          break;  // delete
        case 1:
          out.push_back(static_cast<TokenId>(rng.NextIndex(vocab)));
          break;
        default:
          out.push_back(static_cast<TokenId>(rng.NextIndex(vocab)));
          out.push_back(t);
      }
    } else {
      out.push_back(t);
    }
  }
  return out;
}

void BM_NeedlemanWunsch(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto a = RandomSeq(rng, len, 1000);
  auto b = Mutate(a, rng, 0.1, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NeedlemanWunsch(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(len));
}
BENCHMARK(BM_NeedlemanWunsch)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_PoaAddSequence(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(2);
  auto base = RandomSeq(rng, len, 1000);
  for (auto _ : state) {
    state.PauseTiming();
    PoaGraph graph(base);
    std::vector<std::vector<TokenId>> variants;
    for (int i = 0; i < 8; ++i) {
      variants.push_back(Mutate(base, rng, 0.08, 1000));
    }
    state.ResumeTiming();
    for (const auto& v : variants) graph.AddSequence(v);
    benchmark::DoNotOptimize(graph.node_count());
  }
  state.SetComplexityN(static_cast<int64_t>(len));
}
BENCHMARK(BM_PoaAddSequence)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_TfidfBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  TwitterGenOptions o;
  o.num_genuine_accounts = n / 25;
  o.num_bot_accounts = n / 25;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(3);
  for (auto _ : state) {
    TfidfIndex index;
    index.Build(data.corpus, TfidfOptions{});
    benchmark::DoNotOptimize(index.num_phrases());
  }
  state.SetComplexityN(static_cast<int64_t>(data.corpus.size()));
}
BENCHMARK(BM_TfidfBuild)->RangeMultiplier(2)->Range(256, 4096)->Complexity();

void BM_CoarseClustering(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  TwitterGenOptions o;
  o.num_genuine_accounts = n / 25;
  o.num_bot_accounts = n / 25;
  TwitterGenerator gen(o);
  LabeledTweets data = gen.Generate(4);
  CoarseClustering coarse;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarse.Run(data.corpus));
  }
  state.SetComplexityN(static_cast<int64_t>(data.corpus.size()));
}
BENCHMARK(BM_CoarseClustering)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Complexity();

void BM_CostModelAlignment(benchmark::State& state) {
  CostModel cm(14.0);
  EncodingSummary s;
  s.alignment_length = 30;
  s.unmatched = 4;
  s.inserted_or_substituted = 3;
  s.slot_word_counts = {1, 2, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.EncodedDocCost(3, s));
  }
}
BENCHMARK(BM_CostModelAlignment);

void BM_UnionFind(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    UnionFind uf(n);
    for (size_t i = 0; i < n; ++i) {
      uf.Union(static_cast<uint32_t>(rng.NextIndex(n)),
               static_cast<uint32_t>(rng.NextIndex(n)));
    }
    benchmark::DoNotOptimize(uf.num_sets());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_UnionFind)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity();

// Ablation (DESIGN.md decision #1): dichotomous vs. exhaustive consensus
// search on a realistic candidate set.
void ConsensusSearchBench(benchmark::State& state, bool exhaustive) {
  const size_t num_docs = static_cast<size_t>(state.range(0));
  Rng rng(6);
  auto base = RandomSeq(rng, 20, 500);
  std::vector<std::vector<TokenId>> docs;
  PoaGraph graph(base);
  docs.push_back(base);
  for (size_t i = 1; i < num_docs; ++i) {
    docs.push_back(Mutate(base, rng, 0.05, 500));
    graph.AddSequence(docs.back());
  }
  CostModel cm(12.0);
  FineOptions options;
  options.exhaustive_consensus_search = exhaustive;
  FineClustering fine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fine.ConsensusSearch(graph, docs, cm));
  }
}
void BM_ConsensusSearchDichotomous(benchmark::State& state) {
  ConsensusSearchBench(state, false);
}
void BM_ConsensusSearchExhaustive(benchmark::State& state) {
  ConsensusSearchBench(state, true);
}
BENCHMARK(BM_ConsensusSearchDichotomous)->RangeMultiplier(2)->Range(4, 64);
BENCHMARK(BM_ConsensusSearchExhaustive)->RangeMultiplier(2)->Range(4, 64);

// Fine stage on one skewed cluster: the default cached + incremental
// hot path vs. the naive escape hatch (re-align per probe, re-encode
// per slot candidate). The gap between the two is the optimization's
// tracked win; bench_fine wires the same comparison into CI.
void FineStageBench(benchmark::State& state, bool naive) {
  const size_t num_docs = static_cast<size_t>(state.range(0));
  Rng rng(10);
  Corpus corpus;
  auto base = RandomSeq(rng, 24, 600);
  for (size_t i = 0; i < num_docs; ++i) {
    auto seq = i == 0 ? base : Mutate(base, rng, 0.06, 600);
    std::string text;
    for (TokenId t : seq) {
      if (!text.empty()) text.push_back(' ');
      text += "w" + std::to_string(t);
    }
    corpus.Add(text);
  }
  std::vector<DocId> ids;
  for (size_t i = 0; i < corpus.size(); ++i) {
    ids.push_back(static_cast<DocId>(i));
  }
  const CostModel cm = CostModel::ForVocabulary(corpus.vocab());
  FineOptions options;
  options.use_naive_costing = naive;
  FineClustering fine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fine.RunOnCluster(corpus, ids, cm));
  }
  state.SetComplexityN(static_cast<int64_t>(num_docs));
}
void BM_FineStageOptimized(benchmark::State& state) {
  FineStageBench(state, false);
}
void BM_FineStageNaive(benchmark::State& state) {
  FineStageBench(state, true);
}
BENCHMARK(BM_FineStageOptimized)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_FineStageNaive)->RangeMultiplier(2)->Range(8, 64);

// MSA backend comparison (Ablation A1's runtime side).
void BM_ProfileMsaAddSequence(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(7);
  auto base = RandomSeq(rng, len, 1000);
  for (auto _ : state) {
    state.PauseTiming();
    ProfileMsa msa(base);
    std::vector<std::vector<TokenId>> variants;
    for (int i = 0; i < 8; ++i) {
      variants.push_back(Mutate(base, rng, 0.08, 1000));
    }
    state.ResumeTiming();
    for (const auto& v : variants) msa.AddSequence(v);
    benchmark::DoNotOptimize(msa.column_count());
  }
  state.SetComplexityN(static_cast<int64_t>(len));
}
BENCHMARK(BM_ProfileMsaAddSequence)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_MinHashSignature(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(8);
  auto seq = RandomSeq(rng, len, 5000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        internal::MinHashSignature(seq, 3, 64, 0x5eed));
  }
  state.SetComplexityN(static_cast<int64_t>(len));
}
BENCHMARK(BM_MinHashSignature)->RangeMultiplier(4)->Range(16, 256)
    ->Complexity();

void BM_Hdbscan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::vector<Vec> pts;
  for (size_t i = 0; i < n; ++i) {
    Vec v(16);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    L2Normalize(v);
    pts.push_back(std::move(v));
  }
  HdbscanOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hdbscan(pts, opts));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Hdbscan)->RangeMultiplier(2)->Range(64, 512)->Complexity();

// Prints the familiar console table and keeps a copy of every run so
// main() can replay them into the BENCH_micro.json envelope.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) captured_.push_back(run);
  }
  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

}  // namespace
}  // namespace infoshield

int main(int argc, char** argv) {
  using namespace infoshield;
  // The output path is the first non-flag argument; everything else
  // (--benchmark_filter, --benchmark_min_time, ...) belongs to
  // google-benchmark, so pull ours out before Initialize sees it.
  std::string out_path = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      out_path = argv[i];
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  bench::BenchJson bench_json("infoshield-bench-micro/1");
  JsonWriter& w = bench_json.writer();
  w.Key("benchmarks").BeginArray();
  int64_t measured = 0;
  for (const auto& run : reporter.captured()) {
    if (run.error_occurred) continue;
    // Aggregate rows (the BigO fit and its RMS) report accumulated
    // values with iterations == 0; per-iteration division only applies
    // to the measured rows.
    const double iters =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    w.BeginObject();
    w.Key("name").String(run.benchmark_name());
    w.Key("run_type").String(
        run.run_type == benchmark::BenchmarkReporter::Run::RT_Aggregate
            ? "aggregate"
            : "iteration");
    w.Key("iterations").Int(static_cast<int64_t>(run.iterations));
    w.Key("real_time_s").Double(run.real_accumulated_time / iters);
    w.Key("cpu_time_s").Double(run.cpu_accumulated_time / iters);
    w.EndObject();
    if (run.run_type != benchmark::BenchmarkReporter::Run::RT_Aggregate) {
      ++measured;
    }
  }
  w.EndArray();
  bench_json.Metrics({
      {"measured_runs", static_cast<double>(measured)},
  });
  return bench_json.Finish(out_path);
}
