// Ablation studies for the design decisions called out in DESIGN.md §5:
//
//   A1  MSA backend: POA (paper's choice) vs. Barton–Sternberg profile —
//       quality and compression on noisy campaigns (§II-D's comparison).
//   A2  Consensus search: dichotomous (Algorithm 2) vs. exhaustive —
//       identical results expected, fewer cost evaluations.
//   A3  Candidate seeding: phrase-neighbor seeding vs. full scan —
//       same quality, quasi-linear vs. quadratic fine stage.
//   A4  Phrase eligibility: min n-gram length 2 vs. 1 — component
//       structure of the coarse graph (percolation through shared rare
//       words).
//   A5  InfoShield vs. the Template Matching predecessor (Li et al.
//       2018): comparable detection on near-duplicates, but no slots or
//       templates (Table I's interpretability column).

#include <algorithm>
#include <cstdio>

#include "baselines/template_matching.h"
#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/twitter_gen.h"
#include "util/timer.h"

namespace {

using namespace infoshield;

LabeledTweets MakeCorpus(size_t accounts, double edit_prob, uint64_t seed) {
  TwitterGenOptions o;
  o.num_genuine_accounts = accounts;
  o.num_bot_accounts = accounts;
  o.bot_edit_prob = edit_prob;
  return TwitterGenerator(o).Generate(seed);
}

BinaryMetrics Score(const InfoShieldResult& r, const LabeledTweets& data) {
  std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
  return bench::ScoreRun(r, truth);
}

void AblationMsaBackend() {
  std::printf("\n--- A1: MSA backend (POA vs. profile) ---\n");
  std::printf("%-10s %-12s %-8s %-8s %-8s %-10s\n", "backend", "edit_prob",
              "prec", "rec", "f1", "templates");
  for (double noise : {0.02, 0.10, 0.20}) {
    LabeledTweets data = MakeCorpus(30, noise, 71);
    for (MsaBackend backend : {MsaBackend::kPoa, MsaBackend::kProfile}) {
      InfoShieldOptions options;
      options.fine.msa_backend = backend;
      InfoShield shield(options);
      InfoShieldResult r = shield.Run(data.corpus);
      BinaryMetrics m = Score(r, data);
      std::printf("%-10s %-12.2f %-8.3f %-8.3f %-8.3f %-10zu\n",
                  backend == MsaBackend::kPoa ? "poa" : "profile", noise,
                  m.precision(), m.recall(), m.f1(), r.templates.size());
    }
  }
  std::printf("expected: comparable at low noise; POA holds up better as\n"
              "edits rise (profiles blur alternative branches, §II-D).\n");
}

void AblationConsensusSearch() {
  std::printf("\n--- A2: consensus search (dichotomous vs. exhaustive) ---\n");
  LabeledTweets data = MakeCorpus(30, 0.08, 73);
  double costs[2];
  double f1s[2];
  int i = 0;
  for (bool exhaustive : {false, true}) {
    InfoShieldOptions options;
    options.fine.exhaustive_consensus_search = exhaustive;
    InfoShield shield(options);
    WallTimer timer;
    InfoShieldResult r = shield.Run(data.corpus);
    double seconds = timer.ElapsedSeconds();
    BinaryMetrics m = Score(r, data);
    double total_cost = 0;
    for (const ClusterStats& s : r.cluster_stats) total_cost += s.cost_after;
    costs[i] = total_cost;
    f1s[i] = m.f1();
    ++i;
    std::printf("%-12s f1=%.3f total_cost=%.0f bits time=%.2fs\n",
                exhaustive ? "exhaustive" : "dichotomous", m.f1(),
                total_cost, seconds);
  }
  std::printf("cost gap: %.2f bits (%.4f%%) — the dichotomous search\n"
              "finds (near-)optimal thresholds at O(log n) probes.\n",
              costs[0] - costs[1],
              100.0 * (costs[0] - costs[1]) / std::max(costs[1], 1.0));
  (void)f1s;
}

void AblationNeighborSeeding() {
  std::printf("\n--- A3: candidate seeding (phrase neighbors vs. full scan) "
              "---\n");
  std::printf("%-8s %-14s %-14s %-10s %-10s\n", "tweets", "neighbors_s",
              "fullscan_s", "nbr_f1", "full_f1");
  for (size_t accounts : {40, 80, 160}) {
    LabeledTweets data = MakeCorpus(accounts, 0.05, 79);
    // Neighbor seeding (production path).
    InfoShield shield;
    WallTimer t1;
    InfoShieldResult r1 = shield.Run(data.corpus);
    double neighbors_s = t1.ElapsedSeconds();
    // Full scan: run coarse + fine manually without the phrase index.
    CoarseClustering coarse;
    CoarseResult cr = coarse.Run(data.corpus);
    const CostModel cm = CostModel::ForVocabulary(data.corpus.vocab());
    FineClustering fine;
    WallTimer t2;
    std::vector<bool> suspicious(data.corpus.size(), false);
    for (const auto& cluster : cr.clusters) {
      FineResult fr = fine.RunOnCluster(data.corpus, cluster, cm);
      for (const TemplateCluster& tc : fr.templates) {
        for (DocId d : tc.members) suspicious[d] = true;
      }
    }
    double fullscan_s = t2.ElapsedSeconds();
    std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
    BinaryMetrics m1 = Score(r1, data);
    BinaryMetrics m2 = ComputeBinaryMetrics(suspicious, truth);
    std::printf("%-8zu %-14.2f %-14.2f %-10.3f %-10.3f\n",
                data.corpus.size(), neighbors_s, fullscan_s, m1.f1(),
                m2.f1());
  }
  std::printf("expected: matching F1; full-scan time grows quadratically\n"
              "on over-merged components, neighbor seeding stays linear.\n");
}

void AblationMinNgram() {
  std::printf("\n--- A4: phrase eligibility (min n-gram 2 vs. 1) ---\n");
  LabeledTweets data = MakeCorpus(60, 0.05, 83);
  std::printf("%-10s %-10s %-12s %-14s %-8s\n", "min_ngram", "clusters",
              "largest", "singletons", "f1");
  for (size_t min_n : {2, 1}) {
    InfoShieldOptions options;
    options.coarse.tfidf.min_ngram = min_n;
    CoarseClustering coarse(options.coarse);
    CoarseResult cr = coarse.Run(data.corpus);
    size_t largest = 0;
    for (const auto& c : cr.clusters) largest = std::max(largest, c.size());
    InfoShield shield(options);
    InfoShieldResult r = shield.Run(data.corpus);
    BinaryMetrics m = Score(r, data);
    std::printf("%-10zu %-10zu %-12zu %-14zu %-8.3f\n", min_n,
                cr.clusters.size(), largest, cr.singletons.size(), m.f1());
  }
  std::printf("expected: min_ngram=1 percolates the coarse graph into one\n"
              "giant component through shared rare words; the fine stage\n"
              "recovers quality but the structure disappears.\n");
}

void AblationVsTemplateMatching() {
  std::printf("\n--- A5: InfoShield vs. Template Matching (Li et al. 2018) "
              "---\n");
  std::printf("%-18s %-12s %-8s %-8s %-8s %-8s\n", "method", "edit_prob",
              "prec", "rec", "f1", "slots");
  for (double noise : {0.02, 0.10}) {
    LabeledTweets data = MakeCorpus(40, noise, 89);
    std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
    {
      InfoShield shield;
      InfoShieldResult r = shield.Run(data.corpus);
      BinaryMetrics m = Score(r, data);
      size_t slots = 0;
      for (const TemplateCluster& tc : r.templates) {
        slots += tc.tmpl.num_slots();
      }
      std::printf("%-18s %-12.2f %-8.3f %-8.3f %-8.3f %-8zu\n",
                  "InfoShield", noise, m.precision(), m.recall(), m.f1(),
                  slots);
    }
    {
      TemplateMatchingResult r =
          TemplateMatching(data.corpus, TemplateMatchingOptions{});
      BinaryMetrics m = ComputeBinaryMetrics(r.suspicious, truth);
      std::printf("%-18s %-12.2f %-8.3f %-8.3f %-8.3f %-8s\n",
                  "TemplateMatching", noise, m.precision(), m.recall(),
                  m.f1(), "n/a");
    }
  }
  std::printf("expected: comparable detection on near-duplicates; only\n"
              "InfoShield yields templates and slots (Table I).\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations (DESIGN.md design decisions)");
  AblationMsaBackend();
  AblationConsensusSearch();
  AblationNeighborSeeding();
  AblationMinNgram();
  AblationVsTemplateMatching();
  return 0;
}
