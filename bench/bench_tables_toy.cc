// Experiment E3 — Tables II–V and the arithmetic examples (§III):
// regenerate the paper's running example end-to-end: the discovered
// templates (Table IV), the per-document encodings (Table V), and the
// arithmetic example costs.

#include <cstdio>

#include "bench_util.h"
#include "core/infoshield.h"
#include "core/visualize.h"
#include "mdl/cost_model.h"

int main() {
  using namespace infoshield;
  bench::PrintHeader("Tables II-V: the paper's toy example, regenerated");

  Corpus corpus;
  corpus.Add("This is a great soap, and the 5 dollar price is great");
  corpus.Add("This is a great chair, and the 10 dollar price is great");
  corpus.Add("This is a great hat, and the 3 dollar price is great");
  corpus.Add("This is great blue pen, and the 3 dollar price is so good");
  corpus.Add(
      "I made 30K working on this job - call 123-456.7890 or visit "
      "scam.com");
  corpus.Add(
      "I made 30K working from home - call 123-456.7890 or visit "
      "fraud.com");
  corpus.Add("Happy birthday to my dear friend Mike");
  // Background documents give the toy a realistic vocabulary (see
  // examples/quickstart.cpp for the rationale).
  const char* kBackground[] = {
      "quarterly earnings beat analyst expectations across retail sector",
      "heavy rainfall expected over coastal regions through friday night",
      "local library announces extended weekend opening schedule soon",
      "championship match ended in dramatic penalty shootout yesterday",
      "researchers publish findings about deep ocean microbial life",
      "city council approves funding for downtown bicycle lanes project",
      "new bakery on elm street sells sourdough every sunny morning",
      "museum exhibit features ancient pottery from river valleys",
      "volunteers planted hundreds of oak saplings along the highway",
      "startup launches app connecting farmers with nearby restaurants",
      "observatory spots unusually bright comet near southern horizon",
      "orchestra premieres symphony inspired by mountain railways",
  };
  for (const char* text : kBackground) corpus.Add(text);
  for (int i = 0; i < 60; ++i) {
    std::string filler;
    for (int j = 0; j < 10; ++j) {
      filler += "backgroundword" + std::to_string(i * 10 + j) + " ";
    }
    corpus.Add(filler);
  }
  const size_t kToyDocs = 7;

  InfoShield shield;
  InfoShieldResult r = shield.Run(corpus);

  std::printf("\n--- Table IV: templates (slots as '*') ---\n");
  VisualizeOptions viz;
  viz.use_color = false;
  for (const TemplateCluster& tc : r.templates) {
    std::fputs(RenderTemplateAnsi(tc, corpus, viz).c_str(), stdout);
  }

  std::printf("\n--- Table V: per-document encodings ---\n");
  std::printf("%-5s %-6s %s\n", "doc", "tmpl", "slots / edits");
  for (size_t d = 0; d < kToyDocs; ++d) {
    const int64_t t = r.doc_template[d];
    if (t < 0) {
      std::printf("#%-4zu %-6s \"%s\"\n", d + 1, "N/A",
                  corpus.doc(static_cast<DocId>(d)).raw.c_str());
      continue;
    }
    const TemplateCluster& tc = r.templates[static_cast<size_t>(t)];
    size_t member_index = 0;
    for (size_t m = 0; m < tc.members.size(); ++m) {
      if (tc.members[m] == d) member_index = m;
    }
    const DocEncoding& enc = tc.encodings[member_index];
    std::string detail = "slots={";
    for (size_t s = 0; s < enc.slot_words.size(); ++s) {
      if (s > 0) detail += ", ";
      detail += "\"";
      for (size_t w = 0; w < enc.slot_words[s].size(); ++w) {
        if (w > 0) detail += " ";
        detail += corpus.vocab().Word(enc.slot_words[s][w]);
      }
      detail += "\"";
    }
    detail += "}";
    for (const AnnotatedColumn& col : enc.columns) {
      switch (col.kind) {
        case ColumnKind::kInsertion:
          detail += " ins:" + corpus.vocab().Word(col.doc_token);
          break;
        case ColumnKind::kDeletion:
          detail += " del:" + corpus.vocab().Word(col.template_token);
          break;
        case ColumnKind::kSubstitution:
          detail += " sub:" + corpus.vocab().Word(col.template_token) +
                    "->" + corpus.vocab().Word(col.doc_token);
          break;
        default:
          break;
      }
    }
    std::printf("#%-4zu T%-5lld %s\n", d + 1, static_cast<long long>(t + 1),
                detail.c_str());
  }

  std::printf("\n--- Arithmetic examples (§III-B) ---\n");
  const CostModel cm = CostModel::ForVocabulary(corpus.vocab());
  std::printf("lg V = %.3f bits (V = %zu words)\n", cm.lg_vocab(),
              corpus.vocab().size());
  std::printf("Example 1: template of 10 tokens, 2 slots costs %.2f bits\n",
              cm.TemplateCost(10, 2));
  EncodingSummary ex2;
  ex2.alignment_length = 14;
  ex2.unmatched = 3;
  ex2.inserted_or_substituted = 2;
  ex2.slot_word_counts = {1, 1};
  std::printf("Example 2: doc#4-style alignment costs %.2f bits\n",
              cm.EncodedDocCost(1, ex2));

  std::printf("\n--- Compression summary ---\n");
  for (const ClusterStats& s : r.cluster_stats) {
    std::printf("cluster %zu: before=%.1f bits after=%.1f bits (rel=%.3f)\n",
                s.coarse_cluster_index, s.cost_before, s.cost_after,
                s.relative_length);
  }
  return 0;
}
