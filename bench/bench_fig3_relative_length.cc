// Experiment E6 — Figure 3 (a-d): relative length vs. number of
// documents per micro-cluster on a Cluster-Trafficking-style corpus.
//
//   (a) every cluster sits on or above the Lemma 1 lower bound t/n + 1/lgV
//   (b) most mass concentrates near the bound (near-duplicates dominate)
//   (c) spam clusters: small relative length, high document count
//   (d) HT clusters: two regimes — near-duplicate (close to bound) and
//       outlier (far above the bound)
//
// Micro-cluster granularity: a first InfoShield pass separates organized
// activity from the benign background (benign documents connect the
// coarse graph through shared rare words, which the fine stage correctly
// rejects). The scatter is then computed on the suspicious documents
// only, where coarse components correspond to campaigns — the
// granularity the paper's Fig. 3 plots.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "coarse/coarse_clustering.h"
#include "core/fine_clustering.h"
#include "core/infoshield.h"
#include "datagen/trafficking_gen.h"
#include "mdl/cost_model.h"

int main() {
  using namespace infoshield;
  bench::PrintHeader("Fig. 3: relative length vs. cluster size");

  TraffickingGenOptions o;
  o.num_benign = 600;
  o.num_spam_clusters = 6;
  o.spam_cluster_size_min = 50;
  o.spam_cluster_size_max = 150;
  o.num_ht_clusters = 40;
  o.ht_outlier_fraction = 0.25;
  TraffickingGenerator gen(o);
  LabeledAds data = gen.Generate(33);

  // Pass 1: find organized activity.
  InfoShield shield;
  InfoShieldResult result = shield.Run(data.corpus);
  std::printf("pass 1: %zu of %zu ads in templates\n",
              result.num_suspicious(), data.corpus.size());

  // Pass 2 (reporting granularity): re-cluster the suspicious subset.
  Corpus sub;
  std::vector<DocId> original_id;
  for (size_t i = 0; i < data.corpus.size(); ++i) {
    if (result.IsSuspicious(static_cast<DocId>(i))) {
      sub.Add(data.corpus.doc(static_cast<DocId>(i)).raw);
      original_id.push_back(static_cast<DocId>(i));
    }
  }
  CoarseClustering coarse;
  CoarseResult components = coarse.Run(sub);
  const CostModel cm = CostModel::ForVocabulary(sub.vocab());
  FineClustering fine;

  std::printf("\nlower bound curves (Lemma 1, lgV=%.2f):\n", cm.lg_vocab());
  for (size_t t = 1; t <= 4; ++t) {
    std::printf("  t=%zu: rl >= %zu/n + %.4f\n", t, t, 1.0 / cm.lg_vocab());
  }

  struct Point {
    size_t n;
    double rl;
    size_t t;
    double bound;
    AdType type;
  };
  std::vector<Point> points;
  for (const auto& cluster : components.clusters) {
    FineResult fr = fine.RunOnCluster(sub, cluster, cm,
                                      &components.doc_top_phrases);
    if (fr.templates.empty()) continue;
    // Majority truth type over the cluster.
    size_t counts[3] = {0, 0, 0};
    for (DocId d : cluster) {
      ++counts[static_cast<size_t>(data.type[original_id[d]])];
    }
    size_t best = 0;
    for (size_t k = 1; k < 3; ++k) {
      if (counts[k] > counts[best]) best = k;
    }
    points.push_back(Point{
        cluster.size(), fr.relative_length(), fr.templates.size(),
        RelativeLengthLowerBound(fr.templates.size(), cluster.size(),
                                 cm.lg_vocab()),
        static_cast<AdType>(best)});
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.n > b.n; });

  std::printf("\n%-6s %-10s %-4s %-10s %-10s %s\n", "n", "rel_len", "t",
              "bound", "slack", "type");
  const char* kNames[3] = {"benign", "spam", "HT"};
  for (const Point& p : points) {
    std::printf("%-6zu %-10.4f %-4zu %-10.4f %-10.4f %s\n", p.n, p.rl, p.t,
                p.bound, p.rl - p.bound,
                kNames[static_cast<size_t>(p.type)]);
  }

  // --- Numeric checks of the figure's claims ---
  bool all_above_bound = true;
  double spam_rl_sum = 0;
  size_t spam_count = 0;
  double spam_n_sum = 0;
  double ht_rl_min = 1e9;
  double ht_rl_max = -1e9;
  double ht_slack_max = 0;
  size_t near_bound = 0;
  for (const Point& p : points) {
    if (p.rl < p.bound * 0.999) all_above_bound = false;
    if (p.rl - p.bound < 0.15) ++near_bound;
    if (p.type == AdType::kSpam) {
      spam_rl_sum += p.rl;
      spam_n_sum += static_cast<double>(p.n);
      ++spam_count;
    }
    if (p.type == AdType::kTrafficking) {
      ht_rl_min = std::min(ht_rl_min, p.rl);
      ht_rl_max = std::max(ht_rl_max, p.rl);
      ht_slack_max = std::max(ht_slack_max, p.rl - p.bound);
    }
  }
  std::printf("\n(a) all clusters respect the lower bound: %s\n",
              all_above_bound ? "YES" : "NO (violation!)");
  std::printf("(b) %zu of %zu clusters sit near the bound (slack < 0.15)\n",
              near_bound, points.size());
  if (spam_count > 0) {
    std::printf(
        "(c) spam clusters: mean n = %.1f, mean rel-length = %.4f "
        "(low-RL / high-n corner)\n",
        spam_n_sum / spam_count, spam_rl_sum / spam_count);
  }
  std::printf(
      "(d) HT clusters span rel-length [%.4f, %.4f]; max slack above "
      "bound %.4f\n    -> two regimes: near-duplicate (slack ~ 0) and "
      "outlier (large slack)\n",
      ht_rl_min, ht_rl_max, ht_slack_max);
  return 0;
}
