#include "bench_util.h"

#include <array>
#include <cstdio>
#include <string>

#include "io/json_writer.h"
#include "util/status.h"

namespace infoshield {
namespace bench {

std::string GitDescribe() {
  // popen over a library binding: the benches are leaf binaries and
  // "unknown" is an acceptable answer everywhere git is missing
  // (extracted tarballs, hermetic CI sandboxes).
  FILE* pipe =
      ::popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  std::array<char, 256> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

BenchJson::BenchJson(const std::string& schema) {
  writer_.BeginObject();
  writer_.Key("schema").String(schema);
  writer_.Key("git_describe").String(GitDescribe());
}

void BenchJson::Metrics(const std::map<std::string, double>& metrics) {
  for (const auto& [name, value] : metrics) {
    writer_.Key(name).Double(value);
  }
}

int BenchJson::Finish(const std::string& path) {
  writer_.EndObject();
  const Status status = WriteJsonFile(path, writer_.str() + "\n");
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace infoshield
