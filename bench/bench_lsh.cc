// MinHash/LSH coarse-backend scaling + recall benchmark.
//
// Sweeps synthetic near-duplicate corpora (datagen/neardup_gen: families
// with controllable shingle Jaccard plus free-text noise, FIXED
// vocabulary so chance phrase collisions grow with corpus size — the
// regime real corpora are in) and runs the coarse stage under both
// backends at each scale. Reports candidate-generation time, pair/edge
// counts, and the partition quality of each backend against the
// ground-truth families.
//
// The scaling claim under test (ISSUE 9 / DESIGN.md §16): LSH candidate
// generation stays ~O(n · signature) — its candidate pairs track the
// true family pairs — while the tf-idf bipartite graph picks up chance
// df>=2 phrases as the fixed vocabulary saturates, so its edge count
// grows superlinearly. The gate is on recall in the AGREEMENT regime:
// of the true (same-family) pairs the tf-idf backend groups together,
// the LSH backend must recover >= kMinRecall. Chance-collision pairs —
// where the backends legitimately disagree and tf-idf is the noisy one
// — are reported (pair counts, precision) but never gated.
//
// Usage: bench_lsh [output.json] [max_docs]
//   default ./BENCH_lsh.json, max_docs 500000 (CI smoke passes a
//   smaller cap; the gate applies at every scale that runs).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "coarse/coarse_clustering.h"
#include "datagen/neardup_gen.h"
#include "io/json_writer.h"

namespace {

using namespace infoshield;

constexpr double kMinRecall = 0.95;

// Per-document component id: clusters first, then singletons.
std::vector<int64_t> PartitionOf(const CoarseResult& r, size_t num_docs) {
  std::vector<int64_t> id(num_docs, -1);
  int64_t next = 0;
  for (const auto& cluster : r.clusters) {
    for (DocId d : cluster) id[static_cast<size_t>(d)] = next;
    ++next;
  }
  for (DocId d : r.singletons) id[static_cast<size_t>(d)] = next++;
  for (int64_t& v : id) {
    if (v < 0) v = next++;  // defensive: uncovered docs stay singletons
  }
  return id;
}

double PairCount(size_t m) {
  return 0.5 * static_cast<double>(m) * static_cast<double>(m - 1);
}

// Sum over groups of C(size, 2), grouping documents by key(doc).
template <typename KeyFn>
double GroupPairs(size_t num_docs, KeyFn key) {
  std::map<std::tuple<int64_t, int64_t, int64_t>, size_t> groups;
  for (size_t d = 0; d < num_docs; ++d) {
    ++groups[key(d)];
  }
  double pairs = 0.0;
  for (const auto& [k, m] : groups) pairs += PairCount(m);
  return pairs;
}

struct BackendRun {
  CoarseResult result;
  std::vector<int64_t> partition;
  double candidate_seconds = 0.0;  // producing candidates (pre-graph)
  double total_seconds = 0.0;
  double total_pairs = 0.0;  // Σ C(component, 2) — includes chance merges
  double true_pairs = 0.0;   // same-family pairs the backend groups
};

BackendRun RunBackend(const NearDupCorpus& data, CoarseBackend backend) {
  CoarseOptions options;
  options.backend = backend;
  options.num_threads = 0;  // hardware concurrency; output is identical
  CoarseClustering coarse(options);

  BackendRun run;
  run.result = coarse.Run(data.corpus);
  const CoarseStageStats& s = run.result.stats;
  run.candidate_seconds = backend == CoarseBackend::kMinhashLsh
                              ? s.signature_seconds + s.bucket_seconds
                              : s.index_seconds + s.top_phrase_seconds;
  run.total_seconds = s.total_seconds();
  const size_t n = data.corpus.size();
  run.partition = PartitionOf(run.result, n);
  run.total_pairs =
      GroupPairs(n, [&](size_t d) {
        return std::make_tuple(run.partition[d], int64_t{0}, int64_t{0});
      });
  // Same family AND same component: the backend's true-pair recovery.
  // Noise documents (family -1) get unique pseudo-families so they never
  // pair with each other.
  run.true_pairs = GroupPairs(n, [&](size_t d) {
    const int64_t fam = data.family[d] >= 0
                            ? data.family[d]
                            : -static_cast<int64_t>(d) - 2;
    return std::make_tuple(fam, run.partition[d], int64_t{0});
  });
  return run;
}

void WriteBackend(JsonWriter& w, const char* key, const BackendRun& r,
                  double truth_pairs) {
  const CoarseStageStats& s = r.result.stats;
  w.Key(key).BeginObject();
  w.Key("candidate_seconds").Double(r.candidate_seconds);
  w.Key("total_seconds").Double(r.total_seconds);
  w.Key("index_seconds").Double(s.index_seconds);
  w.Key("top_phrase_seconds").Double(s.top_phrase_seconds);
  w.Key("signature_seconds").Double(s.signature_seconds);
  w.Key("bucket_seconds").Double(s.bucket_seconds);
  w.Key("graph_seconds").Double(s.graph_seconds);
  w.Key("components_seconds").Double(s.components_seconds);
  w.Key("num_edges").Int(static_cast<int64_t>(r.result.num_edges));
  w.Key("lsh_buckets").Int(static_cast<int64_t>(s.lsh_buckets));
  w.Key("lsh_max_bucket").Int(static_cast<int64_t>(s.lsh_max_bucket));
  w.Key("lsh_candidate_pairs").Int(static_cast<int64_t>(s.lsh_candidate_pairs));
  w.Key("num_clusters").Int(static_cast<int64_t>(r.result.clusters.size()));
  w.Key("component_pairs").Double(r.total_pairs);
  w.Key("true_pairs").Double(r.true_pairs);
  w.Key("truth_recall")
      .Double(truth_pairs > 0.0 ? r.true_pairs / truth_pairs : 1.0);
  w.Key("truth_precision")
      .Double(r.total_pairs > 0.0 ? r.true_pairs / r.total_pairs : 1.0);
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_lsh.json";
  const size_t max_docs =
      argc > 2 ? static_cast<size_t>(std::stoull(argv[2])) : 500000;

  const std::vector<size_t> kScales = {1000, 5000, 25000, 100000, 500000};

  bench::BenchJson bench_json("infoshield-bench-lsh/1");
  JsonWriter& w = bench_json.writer();
  w.Key("min_recall_threshold").Double(kMinRecall);
  w.Key("max_docs").Int(static_cast<int64_t>(max_docs));
  w.Key("sweep").BeginArray();

  std::vector<double> log_n;
  std::vector<double> log_tfidf_edges;
  std::vector<double> log_lsh_pairs;
  std::vector<double> log_tfidf_candidate_s;
  std::vector<double> log_lsh_candidate_s;
  double min_recall = 1.0;

  for (size_t target : kScales) {
    if (target > max_docs) break;

    // ~half family documents (avg family size 8), ~half noise; the
    // vocabulary deliberately does NOT scale with the corpus, so chance
    // phrase collisions across unrelated documents grow with n.
    NearDupGenOptions gen;
    gen.num_families = target / 16;
    gen.family_size_min = 4;
    gen.family_size_max = 12;
    gen.template_tokens = 24;
    gen.target_jaccard = 0.90;
    gen.shingle_k = MinHashParams{}.shingle_k;
    gen.num_noise = target / 2;
    gen.vocab_size = 20000;
    const NearDupCorpus data =
        GenerateNearDupFamilies(gen, /*seed=*/1000 + target);
    const size_t n = data.corpus.size();

    // Ground-truth same-family pairs.
    const double truth_pairs = GroupPairs(n, [&](size_t d) {
      const int64_t fam = data.family[d] >= 0
                              ? data.family[d]
                              : -static_cast<int64_t>(d) - 2;
      return std::make_tuple(fam, int64_t{0}, int64_t{0});
    });

    const BackendRun tfidf = RunBackend(data, CoarseBackend::kTfidfGraph);
    const BackendRun lsh = RunBackend(data, CoarseBackend::kMinhashLsh);

    // Agreement regime: of the true pairs tf-idf groups, how many does
    // LSH also group? (same family AND same tf-idf component AND same
    // LSH component)
    const double both_true = GroupPairs(n, [&](size_t d) {
      const int64_t fam = data.family[d] >= 0
                              ? data.family[d]
                              : -static_cast<int64_t>(d) - 2;
      return std::make_tuple(fam, tfidf.partition[d], lsh.partition[d]);
    });
    const double recall =
        tfidf.true_pairs > 0.0 ? both_true / tfidf.true_pairs : 1.0;
    if (recall < min_recall) min_recall = recall;

    std::printf(
        "n=%zu: tfidf cand %.3fs (%zu edges, %.0f comp-pairs)  "
        "lsh cand %.3fs (%zu cand-pairs, %.0f comp-pairs)  "
        "recall-vs-tfidf %.4f\n",
        n, tfidf.candidate_seconds, tfidf.result.num_edges,
        tfidf.total_pairs, lsh.candidate_seconds,
        lsh.result.stats.lsh_candidate_pairs, lsh.total_pairs, recall);

    w.BeginObject();
    w.Key("documents").Int(static_cast<int64_t>(n));
    w.Key("truth_pairs").Double(truth_pairs);
    WriteBackend(w, "tfidf", tfidf, truth_pairs);
    WriteBackend(w, "lsh", lsh, truth_pairs);
    w.Key("recall_vs_tfidf").Double(recall);
    w.EndObject();

    log_n.push_back(std::log10(static_cast<double>(n)));
    log_tfidf_edges.push_back(
        std::log10(static_cast<double>(tfidf.result.num_edges) + 1.0));
    log_lsh_pairs.push_back(std::log10(
        static_cast<double>(lsh.result.stats.lsh_candidate_pairs) + 1.0));
    log_tfidf_candidate_s.push_back(
        std::log10(tfidf.candidate_seconds + 1e-6));
    log_lsh_candidate_s.push_back(std::log10(lsh.candidate_seconds + 1e-6));
  }
  w.EndArray();

  // Log-log slopes: exponent b in metric ~ n^b across the sweep.
  const bench::LinearFit tfidf_edges = bench::FitLine(log_n, log_tfidf_edges);
  const bench::LinearFit lsh_pairs = bench::FitLine(log_n, log_lsh_pairs);
  const bench::LinearFit tfidf_time =
      bench::FitLine(log_n, log_tfidf_candidate_s);
  const bench::LinearFit lsh_time = bench::FitLine(log_n, log_lsh_candidate_s);
  bench_json.Metrics({
      {"tfidf_edges_exponent", tfidf_edges.slope},
      {"lsh_candidate_pairs_exponent", lsh_pairs.slope},
      {"tfidf_candidate_seconds_exponent", tfidf_time.slope},
      {"lsh_candidate_seconds_exponent", lsh_time.slope},
      {"min_recall_vs_tfidf", min_recall},
  });

  std::printf(
      "scaling exponents: tfidf edges n^%.2f, lsh cand-pairs n^%.2f, "
      "tfidf cand time n^%.2f, lsh cand time n^%.2f\n",
      tfidf_edges.slope, lsh_pairs.slope, tfidf_time.slope, lsh_time.slope);
  std::printf("min recall vs tfidf (agreement regime): %.4f\n", min_recall);

  const int write_rc = bench_json.Finish(out_path);
  if (write_rc != 0) return write_rc;
  if (min_recall < kMinRecall) {
    std::fprintf(stderr, "FAIL: recall %.4f below threshold %.2f\n",
                 min_recall, kMinRecall);
    return 1;
  }
  return 0;
}
