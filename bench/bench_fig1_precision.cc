// Experiment E1 — Figure 1 (left): precision vs. percentage of
// non-singleton clusters. The paper plots precision against how much of
// the corpus ends up clustered, sweeping corpus composition; precision
// stays near-ideal until the clustered share saturates the bot share.
//
// We sweep the bot-account share, measure (a) the percentage of
// documents placed in non-singleton (template) clusters, and (b) the
// precision of "clustered => bot".

#include <cstdio>

#include "bench_util.h"
#include "core/infoshield.h"
#include "datagen/twitter_gen.h"

int main() {
  using namespace infoshield;
  bench::PrintHeader(
      "Fig. 1 (left): precision vs. % of non-singleton clusters");

  std::printf("%-12s %-16s %-12s %-10s %-10s\n", "bot_share",
              "%non-singleton", "precision", "recall", "f1");

  const size_t kTotalAccounts = 80;
  for (double bot_share : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}) {
    TwitterGenOptions o;
    o.num_bot_accounts =
        static_cast<size_t>(bot_share * kTotalAccounts + 0.5);
    o.num_genuine_accounts = kTotalAccounts - o.num_bot_accounts;
    TwitterGenerator gen(o);
    LabeledTweets data = gen.Generate(4242);

    InfoShield shield;
    InfoShieldResult r = shield.Run(data.corpus);

    std::vector<bool> truth(data.is_bot.begin(), data.is_bot.end());
    BinaryMetrics m = bench::ScoreRun(r, truth);
    const double pct_clustered =
        100.0 * static_cast<double>(r.num_suspicious()) /
        static_cast<double>(data.corpus.size());
    std::printf("%-12.2f %-16.1f %-12.3f %-10.3f %-10.3f\n", bot_share,
                pct_clustered, m.precision(), m.recall(), m.f1());
  }
  std::printf(
      "\npaper shape: precision stays high (near the ideal diagonal's\n"
      "upper envelope) across the non-singleton share sweep.\n");
  return 0;
}
