// Harness (c): universal-code codec round trip + cost-model identities.
//
// MDL systems carry their own oracle: a description length is only
// honest if something decodable realizes it. Properties:
//  * AppendUniversalBits -> DecodeUniversalBits round-trips any sequence
//    of values through one concatenated prefix-free stream;
//  * the realized integer codeword length matches UniversalBitsLength
//    and tracks the real-valued UniversalCodeLength within 2 bits;
//  * UniversalCodeLength / Log2Bits are monotone over the fuzzed values;
//  * decoding arbitrary bit noise never crashes: it either errors or
//    yields a value whose canonical re-encoding reproduces exactly the
//    consumed bits (decoder/encoder inverse on the nose);
//  * EncodingSummary cost identities: ValidateEncodingSummary accepts
//    consistent summaries, AlignmentCostBase is finite/non-negative, and
//    EncodedDocCost(t, s) == Log2Bits(t) + AlignmentCostBase(s).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fuzz_util.h"
#include "mdl/cost_model.h"
#include "mdl/universal_code.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

using infoshield::AppendUniversalBits;
using infoshield::CostModel;
using infoshield::DecodeUniversalBits;
using infoshield::EncodingSummary;
using infoshield::Log2Bits;
using infoshield::Result;
using infoshield::Status;
using infoshield::UniversalBitsLength;
using infoshield::UniversalCodeLength;
using infoshield::ValidateEncodingSummary;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);

  // --- Codec round trip over a concatenated stream. ---
  const size_t count = in.TakeBounded(24);
  std::vector<uint64_t> values;
  std::vector<uint8_t> stream;
  for (size_t i = 0; i < count; ++i) {
    uint64_t n = in.TakeUint64();
    if (n == UINT64_MAX) {
      std::vector<uint8_t> scratch;
      CHECK(AppendUniversalBits(n, &scratch).code() ==
            infoshield::StatusCode::kOutOfRange);
      CHECK(scratch.empty());
      n -= 1 + in.TakeByte();  // fold back into the encodable domain
    }
    const size_t before = stream.size();
    Status append_status = AppendUniversalBits(n, &stream);
    CHECK(append_status.ok()) << append_status.ToString();
    CHECK(stream.size() - before == UniversalBitsLength(n));
    const double exact = static_cast<double>(stream.size() - before);
    CHECK(std::abs(exact - UniversalCodeLength(n)) <= 2.0 + 1e-9)
        << "codeword length drifted from <n> at n=" << n;
    values.push_back(n);
  }
  size_t pos = 0;
  for (uint64_t expected : values) {
    Result<uint64_t> decoded = DecodeUniversalBits(stream, &pos);
    CHECK(decoded.ok()) << decoded.status().ToString();
    CHECK(*decoded == expected);
  }
  CHECK(pos == stream.size()) << "decoder left trailing bits";

  // --- Monotonicity of the cost primitives over the fuzzed values. ---
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    CHECK(UniversalCodeLength(values[i - 1]) <=
          UniversalCodeLength(values[i]) + 1e-9);
    CHECK(Log2Bits(values[i - 1]) <= Log2Bits(values[i]) + 1e-9);
  }

  // --- Decoder on arbitrary bit noise: error or canonical inverse. ---
  const size_t noise_bits = in.TakeBounded(96);
  std::vector<uint8_t> noise;
  for (size_t i = 0; i < noise_bits; ++i) {
    noise.push_back(in.TakeByte() & 1);
  }
  pos = 0;
  while (pos < noise.size()) {
    const size_t start = pos;
    Result<uint64_t> decoded = DecodeUniversalBits(noise, &pos);
    if (!decoded.ok()) break;
    CHECK(pos > start) << "decoder did not consume any bits";
    std::vector<uint8_t> reencoded;
    CHECK(AppendUniversalBits(*decoded, &reencoded).ok());
    CHECK(reencoded.size() == pos - start);
    CHECK(std::equal(reencoded.begin(), reencoded.end(),
                     noise.begin() + static_cast<long>(start)))
        << "decode/encode is not the identity on consumed bits";
  }

  // --- Cost-model identities on a fuzzed encoding summary. ---
  const double lg_vocab = 1.0 + static_cast<double>(in.TakeBounded(31));
  const CostModel cost_model(lg_vocab);
  EncodingSummary summary;
  summary.alignment_length = in.TakeBounded(512);
  summary.unmatched = in.TakeBounded(summary.alignment_length);
  summary.inserted_or_substituted = in.TakeBounded(summary.unmatched);
  const size_t num_slots = in.TakeBounded(8);
  for (size_t i = 0; i < num_slots; ++i) {
    summary.slot_word_counts.push_back(in.TakeBounded(64));
  }
  Status summary_status = ValidateEncodingSummary(summary);
  CHECK(summary_status.ok()) << summary_status.ToString();

  const double base = cost_model.AlignmentCostBase(summary);
  CHECK(std::isfinite(base) && base >= 0.0);
  const size_t num_templates = 1 + in.TakeBounded(1023);
  const double full = cost_model.EncodedDocCost(num_templates, summary);
  CHECK(std::abs(full - (Log2Bits(num_templates) + base)) <= 1e-9)
      << "EncodedDocCost != lg t + AlignmentCostBase";
  return 0;
}
