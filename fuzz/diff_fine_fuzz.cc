// Harness (e1): differential fuzzing of the fine stage.
//
// The incremental fine stage (consensus-identity cache, alignment reuse,
// GapCostProfile slot probes) exists only as an optimization of the
// naive reference (FineOptions::use_naive_costing). The contract is
// byte-identical output. This harness decodes fuzz bytes into a small
// synthetic corpus, runs the full pipeline both ways, and asserts the
// canonical JSON serializations match byte for byte; the end-to-end
// result must also pass the deep invariant auditors.

#include <cstdint>
#include <string>
#include <vector>

#include "core/infoshield.h"
#include "fuzz_util.h"
#include "io/json_writer.h"
#include "synthetic_corpus.h"
#include "text/corpus.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

using infoshield::Corpus;
using infoshield::InfoShield;
using infoshield::InfoShieldOptions;
using infoshield::InfoShieldResult;
using infoshield::MsaBackend;
using infoshield::ResultToJson;
using infoshield::Status;
using infoshield::ValidateInfoShieldResult;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);

  InfoShieldOptions options;
  const uint8_t option_bits = in.TakeByte();
  // Both runs get the same knobs; only the costing path differs.
  options.fine.exhaustive_consensus_search = (option_bits & 1) != 0;
  options.fine.msa_backend =
      (option_bits & 2) != 0 ? MsaBackend::kProfile : MsaBackend::kPoa;
  if ((option_bits & 4) != 0) options.coarse.tfidf.min_ngram = 1;

  const std::vector<std::string> texts =
      infoshield::fuzz::DecodeSyntheticTexts(in, /*max_docs=*/12);
  const Corpus corpus = infoshield::fuzz::BuildSyntheticCorpus(texts);

  options.fine.use_naive_costing = false;
  const InfoShieldResult optimized = InfoShield(options).Run(corpus);
  Status audit = ValidateInfoShieldResult(optimized, corpus);
  CHECK(audit.ok()) << audit.ToString();

  options.fine.use_naive_costing = true;
  const InfoShieldResult naive = InfoShield(options).Run(corpus);

  const std::string optimized_json = ResultToJson(optimized, corpus);
  const std::string naive_json = ResultToJson(naive, corpus);
  if (optimized_json != naive_json) {
    size_t diverge = 0;
    while (diverge < optimized_json.size() && diverge < naive_json.size() &&
           optimized_json[diverge] == naive_json[diverge]) {
      ++diverge;
    }
    CHECK(false) << "optimized and naive fine costing diverged at JSON "
                 << "byte " << diverge << " (corpus of " << texts.size()
                 << " docs, " << optimized.templates.size() << " vs "
                 << naive.templates.size() << " templates)";
  }
  return 0;
}
