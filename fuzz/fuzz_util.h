// Shared scaffolding for the libFuzzer harnesses in fuzz/.
//
// Every harness defines LLVMFuzzerTestOneInput and is built twice: as a
// libFuzzer binary (clang, INFOSHIELD_FUZZ=ON) and as a plain replay
// runner (corpus_driver.cc main) that feeds the checked-in seed corpus
// through the same entry point as a ctest, so non-clang builds exercise
// every harness on every run.
//
// FuzzInput is a deterministic byte consumer in the spirit of LLVM's
// FuzzedDataProvider (which ships with clang only): harnesses decode
// their structured inputs through it so the same bytes mean the same
// test case under the fuzzer and the replay runner. Exhausted input
// yields zeros rather than failing — shorter inputs are simply simpler
// test cases.

#ifndef INFOSHIELD_FUZZ_FUZZ_UTIL_H_
#define INFOSHIELD_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace infoshield {
namespace fuzz {

class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  // One byte; 0 once the input is exhausted.
  uint8_t TakeByte() { return empty() ? 0 : data_[pos_++]; }

  // Little-endian u64 assembled from up to 8 remaining bytes.
  uint64_t TakeUint64() {
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<uint64_t>(TakeByte()) << (8 * b);
    }
    return v;
  }

  // Value in [0, max] (max inclusive; returns 0 when max == 0).
  size_t TakeBounded(size_t max) {
    if (max == 0) return 0;
    return static_cast<size_t>(TakeUint64() % (max + 1));
  }

  // Up to `max_len` raw bytes as a string.
  std::string TakeString(size_t max_len) {
    const size_t n = max_len < remaining() ? max_len : remaining();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  // Everything left as a string.
  std::string TakeRest() { return TakeString(remaining()); }

  // `count` values, each in [0, max_value].
  std::vector<uint32_t> TakeSequence(size_t count, uint32_t max_value) {
    std::vector<uint32_t> seq;
    seq.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      seq.push_back(static_cast<uint32_t>(TakeBounded(max_value)));
    }
    return seq;
  }

 private:
  // analyzer: borrows(data_) -- libFuzzer owns the input buffer for the
  // whole LLVMFuzzerTestOneInput call; FuzzInput is a stack-local cursor
  // over it and never outlives the callback.
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fuzz
}  // namespace infoshield

#endif  // INFOSHIELD_FUZZ_FUZZ_UTIL_H_
