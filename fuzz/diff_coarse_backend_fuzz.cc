// Harness (e5): differential fuzzing across coarse backends.
//
// The tf-idf graph backend and the MinHash/LSH backend are different
// candidate generators, but there is a regime where they MUST agree on
// the final partition: families of exact-duplicate documents over
// per-family disjoint vocabularies, plus noise documents over their own
// private vocabularies. Exact duplicates share every phrase (df >=
// family size, so tf-idf connects them) and have identical MinHash
// signatures (so every band bucket connects them); disjoint
// vocabularies mean no phrase and no shingle crosses family lines, so
// under both backends each family is one component and every noise
// document is a singleton. The harness decodes such a corpus from fuzz
// bytes (the fuzzer explores family count/size/length, noise, shingle
// length, and banding), runs both backends, and asserts identical
// clusters and singletons. It also asserts the LSH backend itself is
// byte-identical across the serial escape hatch and 1/4 worker threads,
// mirroring diff_coarse_fuzz's discipline for the tf-idf backend.

#include <cstdint>
#include <string>
#include <vector>

#include "coarse/coarse_clustering.h"
#include "fuzz_util.h"
#include "text/corpus.h"
#include "util/logging.h"

namespace {

using infoshield::CoarseBackend;
using infoshield::CoarseClustering;
using infoshield::CoarseOptions;
using infoshield::CoarseResult;
using infoshield::Corpus;

// The partition both backends must agree on. doc_top_phrases and
// num_edges legitimately differ (top tf-idf phrases vs LSH band keys).
std::string PartitionString(const CoarseResult& result) {
  std::string out = "clusters:";
  for (const auto& cluster : result.clusters) {
    out.push_back('[');
    for (infoshield::DocId d : cluster) {
      out += std::to_string(d);
      out.push_back(',');
    }
    out.push_back(']');
  }
  out += ";singletons:";
  for (infoshield::DocId d : result.singletons) {
    out += std::to_string(d);
    out.push_back(',');
  }
  return out;
}

// Everything the LSH backend promises to reproduce across thread counts.
std::string Canonical(const CoarseResult& result) {
  std::string out = PartitionString(result);
  out += ";top_phrases:";
  for (const auto& phrases : result.doc_top_phrases) {
    out.push_back('[');
    for (infoshield::PhraseHash h : phrases) {
      out += std::to_string(h);
      out.push_back(',');
    }
    out.push_back(']');
  }
  out += ";edges:" + std::to_string(result.num_edges);
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);

  CoarseOptions options;
  options.minhash.num_hashes = 32;
  options.minhash.shingle_k = 1 + in.TakeBounded(3);
  // Valid (bands, rows) factorizations of num_hashes only — invalid
  // combinations are rejected up front by LshParams::Validate (covered
  // in lsh_test), never explored at run time.
  switch (in.TakeBounded(3)) {
    case 0:
      options.lsh = {/*bands=*/8, /*rows=*/4};
      break;
    case 1:
      options.lsh = {/*bands=*/16, /*rows=*/2};
      break;
    case 2:
      options.lsh = {/*bands=*/4, /*rows=*/8};
      break;
    default:
      options.lsh = {/*bands=*/32, /*rows=*/1};
      break;
  }

  // Exact-duplicate families over disjoint vocabularies (see header
  // comment): family f draws words only from "f<f>w0..15", noise doc j
  // only from "n<j>w0..7".
  std::vector<std::string> texts;
  const size_t num_families = 1 + in.TakeBounded(3);
  for (size_t f = 0; f < num_families; ++f) {
    const size_t len = 3 + in.TakeBounded(7);
    std::string base;
    for (size_t i = 0; i < len; ++i) {
      if (!base.empty()) base.push_back(' ');
      base += "f" + std::to_string(f) + "w" + std::to_string(in.TakeBounded(15));
    }
    const size_t family_docs = 2 + in.TakeBounded(3);
    for (size_t d = 0; d < family_docs; ++d) {
      texts.push_back(base);
    }
  }
  const size_t num_noise = in.TakeBounded(3);
  for (size_t j = 0; j < num_noise; ++j) {
    const size_t len = 1 + in.TakeBounded(7);
    std::string text;
    for (size_t i = 0; i < len; ++i) {
      if (!text.empty()) text.push_back(' ');
      text += "n" + std::to_string(j) + "w" + std::to_string(in.TakeBounded(7));
    }
    texts.push_back(text);
  }

  Corpus corpus;
  for (const std::string& text : texts) corpus.Add(text);

  options.backend = CoarseBackend::kTfidfGraph;
  options.use_serial_coarse = true;
  options.num_threads = 1;
  const std::string tfidf_partition =
      PartitionString(CoarseClustering(options).Run(corpus));

  options.backend = CoarseBackend::kMinhashLsh;
  const CoarseResult lsh_serial = CoarseClustering(options).Run(corpus);
  CHECK(PartitionString(lsh_serial) == tfidf_partition)
      << "backends disagree on an exact-duplicate family corpus of "
      << texts.size() << " docs (shingle_k=" << options.minhash.shingle_k
      << ", bands=" << options.lsh.bands << ")";

  const std::string lsh_reference = Canonical(lsh_serial);
  options.use_serial_coarse = false;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    options.num_threads = threads;
    const std::string parallel =
        Canonical(CoarseClustering(options).Run(corpus));
    CHECK(parallel == lsh_reference)
        << "LSH backend diverged from its serial reference at " << threads
        << " thread(s) on a corpus of " << texts.size() << " docs";
  }
  return 0;
}
