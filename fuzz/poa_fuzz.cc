// Harness (d2): POA / profile MSA validity.
//
// Properties, after fusing each fuzzed sequence:
//  * PoaGraph::ValidateInvariants holds (DAG, consistent topological
//    order, mirrored edge lists, supports in [1, num_sequences]);
//  * Sel(A, h) is monotone: raising the support threshold never grows
//    the consensus, h = 0 selects every node, and h >= num_sequences
//    selects nothing;
//  * max_support never exceeds the number of fused sequences;
//  * ProfileMsa (the alternative MsaAligner) obeys the same Sel(A, h)
//    monotonicity on the same input — the fine stage may use either.

#include <cstdint>
#include <vector>

#include "fuzz_util.h"
#include "msa/poa.h"
#include "msa/profile_msa.h"
#include "text/vocabulary.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

using infoshield::PoaGraph;
using infoshield::ProfileMsa;
using infoshield::Status;
using infoshield::TokenId;

std::vector<std::vector<TokenId>> TakeSequences(
    infoshield::fuzz::FuzzInput& in) {
  const size_t count = 1 + in.TakeBounded(7);
  std::vector<std::vector<TokenId>> seqs(count);
  for (auto& seq : seqs) {
    const size_t len = in.TakeBounded(24);
    seq.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<TokenId>(in.TakeBounded(11)));
    }
  }
  return seqs;
}

template <typename Aligner>
void CheckConsensusMonotone(const Aligner& aligner) {
  const size_t n = aligner.num_sequences();
  size_t prev_size = aligner.ConsensusAtThreshold(0).size();
  for (size_t h = 1; h <= n; ++h) {
    const size_t cur_size = aligner.ConsensusAtThreshold(h).size();
    CHECK(cur_size <= prev_size)
        << "Sel(A, h) grew when h rose to " << h;
    prev_size = cur_size;
  }
  CHECK(aligner.ConsensusAtThreshold(n).empty())
      << "threshold >= num_sequences must select nothing";
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);
  const std::vector<std::vector<TokenId>> seqs = TakeSequences(in);

  PoaGraph graph(seqs[0]);
  Status st = graph.ValidateInvariants();
  CHECK(st.ok()) << st.ToString();
  for (size_t i = 1; i < seqs.size(); ++i) {
    graph.AddSequence(seqs[i]);
    st = graph.ValidateInvariants();
    CHECK(st.ok()) << "after fusing sequence " << i << ": "
                   << st.ToString();
  }
  CHECK(graph.num_sequences() == seqs.size());
  CHECK(graph.max_support() <= graph.num_sequences());
  CHECK(graph.ConsensusAtThreshold(0).size() == graph.node_count())
      << "h = 0 must select every node";
  CheckConsensusMonotone(graph);

  ProfileMsa profile(seqs[0]);
  for (size_t i = 1; i < seqs.size(); ++i) profile.AddSequence(seqs[i]);
  CHECK(profile.num_sequences() == seqs.size());
  CheckConsensusMonotone(profile);
  return 0;
}
