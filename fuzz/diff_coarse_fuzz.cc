// Harness (e2): differential fuzzing of the coarse stage.
//
// The sharded parallel coarse pipeline (ShardedPhraseCounter, per-chunk
// top-phrase fan-out, canonical edge replay) must be byte-identical to
// the serial reference at every thread count. This harness decodes fuzz
// bytes into a synthetic corpus, runs the coarse stage serially and with
// 1 and 4 worker threads, and asserts identical clusters, singletons,
// per-document top phrases, and edge counts.

#include <cstdint>
#include <string>
#include <vector>

#include "coarse/coarse_clustering.h"
#include "fuzz_util.h"
#include "synthetic_corpus.h"
#include "text/corpus.h"
#include "util/logging.h"

namespace {

using infoshield::CoarseClustering;
using infoshield::CoarseOptions;
using infoshield::CoarseResult;
using infoshield::Corpus;

// Canonical serialization of everything the coarse stage promises to
// reproduce across thread counts (stats deliberately excluded — timings
// and shard counters legitimately differ).
std::string Canonical(const CoarseResult& result) {
  std::string out;
  out += "clusters:";
  for (const auto& cluster : result.clusters) {
    out.push_back('[');
    for (infoshield::DocId d : cluster) {
      out += std::to_string(d);
      out.push_back(',');
    }
    out.push_back(']');
  }
  out += ";singletons:";
  for (infoshield::DocId d : result.singletons) {
    out += std::to_string(d);
    out.push_back(',');
  }
  out += ";top_phrases:";
  for (const auto& phrases : result.doc_top_phrases) {
    out.push_back('[');
    for (infoshield::PhraseHash h : phrases) {
      out += std::to_string(h);
      out.push_back(',');
    }
    out.push_back(']');
  }
  out += ";edges:" + std::to_string(result.num_edges);
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);

  CoarseOptions options;
  const uint8_t option_bits = in.TakeByte();
  if ((option_bits & 1) != 0) options.tfidf.min_ngram = 1;
  if ((option_bits & 2) != 0) options.tfidf.max_ngram = 3;
  if ((option_bits & 4) != 0) options.max_phrase_degree = 4;
  if ((option_bits & 8) != 0) options.min_cluster_size = 3;

  const std::vector<std::string> texts =
      infoshield::fuzz::DecodeSyntheticTexts(in, /*max_docs=*/16);
  const Corpus corpus = infoshield::fuzz::BuildSyntheticCorpus(texts);

  options.use_serial_coarse = true;
  options.num_threads = 1;
  const std::string serial = Canonical(CoarseClustering(options).Run(corpus));

  options.use_serial_coarse = false;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    options.num_threads = threads;
    const std::string parallel =
        Canonical(CoarseClustering(options).Run(corpus));
    CHECK(parallel == serial)
        << "coarse stage diverged from the serial reference at "
        << threads << " thread(s) on a corpus of " << texts.size()
        << " docs";
  }
  return 0;
}
