// Harness (e3): differential fuzzing of the incremental ingestion core.
//
// IncrementalInfoShield promises that after ANY sequence of IngestBatch
// calls, the emitted JSON byte-matches a fresh batch InfoShield::Run
// over the concatenated corpus (DESIGN.md §15). This harness decodes
// fuzz bytes into a synthetic corpus plus a random batch split of it,
// drives the incremental engine batch by batch, and after every prefix
// asserts byte equality against the batch oracle — so the fuzzer
// explores the fast-path/rebuild dichotomy, cache reuse, vocabulary
// growth, and degree-cap replays all at once.

#include <cstdint>
#include <string>
#include <vector>

#include "core/infoshield.h"
#include "fuzz_util.h"
#include "incremental/incremental_infoshield.h"
#include "io/json_writer.h"
#include "synthetic_corpus.h"
#include "text/corpus.h"
#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);

  infoshield::InfoShieldOptions options;
  const uint8_t option_bits = in.TakeByte();
  if ((option_bits & 1) != 0) options.coarse.tfidf.min_ngram = 1;
  if ((option_bits & 2) != 0) options.coarse.tfidf.max_ngram = 3;
  if ((option_bits & 4) != 0) options.coarse.max_phrase_degree = 4;
  if ((option_bits & 8) != 0) options.coarse.min_cluster_size = 3;
  if ((option_bits & 16) != 0) options.num_threads = 4;

  const std::vector<std::string> texts =
      infoshield::fuzz::DecodeSyntheticTexts(in, /*max_docs=*/12);

  // Batch boundaries: ascending cut positions decoded from the tail of
  // the input, end implied. A boundary equal to the previous one yields
  // an empty batch — deliberately kept, empty ingests must be no-ops.
  std::vector<size_t> ends;
  size_t at = 0;
  while (at < texts.size() && ends.size() < 6) {
    at += in.TakeBounded(texts.size() - at);
    ends.push_back(at);
    if (in.empty()) break;
  }
  if (ends.empty() || ends.back() != texts.size()) {
    ends.push_back(texts.size());
  }

  infoshield::IncrementalInfoShield engine(options);
  size_t begin = 0;
  for (size_t end : ends) {
    const infoshield::Result<infoshield::IngestStats> stats =
        engine.IngestBatch(std::vector<std::string>(texts.begin() + begin,
                                                    texts.begin() + end));
    CHECK(stats.ok()) << stats.status();
    const std::string incremental =
        infoshield::ResultToJson(engine.result(), engine.corpus());

    infoshield::Corpus oracle_corpus;
    oracle_corpus.AddBatch(
        std::vector<std::string>(texts.begin(), texts.begin() + end),
        options.num_threads);
    infoshield::InfoShield oracle(options);
    const std::string batch =
        infoshield::ResultToJson(oracle.Run(oracle_corpus), oracle_corpus);

    CHECK(incremental == batch)
        << "incremental engine diverged from the batch oracle after "
        << end << " of " << texts.size() << " docs (batch boundary at "
        << begin << ", option bits " << static_cast<int>(option_bits)
        << ")";
    begin = end;
  }
  return 0;
}
