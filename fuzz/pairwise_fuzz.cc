// Harness (d1): pairwise alignment validity + document-encoding cost
// identity.
//
// Properties:
//  * NeedlemanWunsch never crashes and its alignment replays back to
//    both input sequences exactly (AlignmentIsConsistent);
//  * alignment length obeys max(|a|,|b|) <= l̂ <= |a|+|b| and the op
//    counts are column-consistent;
//  * the workspace-reusing path is byte-identical to the allocating one,
//    including when the workspace is reused dirty across shapes;
//  * EncodeDocumentWithAlignment over a fuzzed slot mask passes
//    ValidateDocEncoding with the cost model attached — i.e. the edit
//    trace replays losslessly AND base_cost equals the Eq. 3 cost
//    recomputed from scratch;
//  * with default scoring, EncodeDocument (which re-aligns internally)
//    reproduces EncodeDocumentWithAlignment bit for bit.

#include <cstdint>
#include <vector>

#include "core/template.h"
#include "fuzz_util.h"
#include "mdl/cost_model.h"
#include "msa/pairwise.h"
#include "text/vocabulary.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

using infoshield::Alignment;
using infoshield::AlignmentIsConsistent;
using infoshield::AlignmentScoring;
using infoshield::AlignmentWorkspace;
using infoshield::CostModel;
using infoshield::DocEncoding;
using infoshield::EncodeDocument;
using infoshield::EncodeDocumentWithAlignment;
using infoshield::NeedlemanWunsch;
using infoshield::Status;
using infoshield::Template;
using infoshield::TokenId;
using infoshield::ValidateDocEncoding;

std::vector<TokenId> TakeTokens(infoshield::fuzz::FuzzInput& in,
                                size_t max_len) {
  const size_t len = in.TakeBounded(max_len);
  std::vector<TokenId> seq;
  seq.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // A small alphabet makes matches (and interesting alignments) common.
    seq.push_back(static_cast<TokenId>(in.TakeBounded(15)));
  }
  return seq;
}

bool SameOps(const Alignment& x, const Alignment& y) {
  return x.ops == y.ops;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);

  static const AlignmentScoring kScorings[] = {
      {1, -1, -1},  // default
      {2, -1, -2},
      {1, 0, -1},
      {3, -2, -1},
  };
  const size_t scoring_index = in.TakeBounded(3);
  const AlignmentScoring scoring = kScorings[scoring_index];

  const std::vector<TokenId> a = TakeTokens(in, 48);
  const std::vector<TokenId> b = TakeTokens(in, 48);

  const Alignment alignment = NeedlemanWunsch(a, b, scoring);
  CHECK(AlignmentIsConsistent(alignment, a, b))
      << "alignment does not replay to its inputs (|a|=" << a.size()
      << ", |b|=" << b.size() << ")";

  const size_t longer = a.size() > b.size() ? a.size() : b.size();
  CHECK(alignment.length() >= longer);
  CHECK(alignment.length() <= a.size() + b.size());
  CHECK(alignment.matches() + alignment.unmatched() == alignment.length());
  CHECK(alignment.substitutions() + alignment.insertions() +
            alignment.deletions() ==
        alignment.unmatched());

  // Workspace reuse must not change the result — including a dirty
  // workspace carried over from a differently-shaped problem.
  AlignmentWorkspace workspace;
  const Alignment with_ws = NeedlemanWunsch(a, b, scoring, &workspace);
  CHECK(SameOps(with_ws, alignment)) << "workspace path diverged";
  const Alignment reversed = NeedlemanWunsch(b, a, scoring, &workspace);
  CHECK(AlignmentIsConsistent(reversed, b, a));
  const Alignment dirty_ws = NeedlemanWunsch(a, b, scoring, &workspace);
  CHECK(SameOps(dirty_ws, alignment)) << "dirty workspace changed result";

  // Encoding cost identity under a fuzzed slot mask.
  Template tmpl(a);
  for (size_t gap = 0; gap <= a.size(); ++gap) {
    if (in.TakeByte() & 1) tmpl.SetSlotAtGap(gap, true);
  }
  const double lg_vocab = 4.0 + static_cast<double>(in.TakeBounded(12));
  const CostModel cost_model(lg_vocab);

  const DocEncoding encoding =
      EncodeDocumentWithAlignment(tmpl, alignment, cost_model);
  Status encoding_status = ValidateDocEncoding(tmpl, b, encoding,
                                               &cost_model);
  CHECK(encoding_status.ok())
      << "Eq. 3 cost identity violated: " << encoding_status.ToString();

  if (scoring_index == 0) {
    // EncodeDocument re-runs NW internally with default scoring; the
    // two entry points must agree bit for bit.
    const DocEncoding direct = EncodeDocument(tmpl, b, cost_model);
    CHECK(direct.base_cost == encoding.base_cost)
        << "EncodeDocument disagrees with EncodeDocumentWithAlignment";
    CHECK(direct.summary.alignment_length ==
          encoding.summary.alignment_length);
    CHECK(direct.slot_words == encoding.slot_words);
  }
  return 0;
}
