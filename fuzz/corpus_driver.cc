// Replay driver: turns any fuzz harness into a plain regression runner.
//
// Usage: fuzz_<name>_replay <corpus-dir-or-file>...
//
// Feeds every file under the given paths (recursively, in sorted order —
// deterministic across filesystems) through LLVMFuzzerTestOneInput,
// starting with the empty input. A harness failure is a CHECK/sanitizer
// abort, so a clean exit means every seed and every checked-in crasher
// passed. Registered as the fuzz_replay_<name> ctests by
// fuzz/CMakeLists.txt; runs in every build, no clang or libFuzzer
// required.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_util.h"

namespace {

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  bytes->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  return !in.bad();
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root.string());
    } else {
      std::fprintf(stderr, "fuzz replay: no such file or directory: %s\n",
                   argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // The empty input is always case #0: a harness must handle it.
  LLVMFuzzerTestOneInput(nullptr, 0);

  for (const std::string& path : files) {
    std::vector<uint8_t> bytes;
    if (!ReadFileBytes(path, &bytes)) {
      std::fprintf(stderr, "fuzz replay: cannot read %s\n", path.c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(bytes.empty() ? nullptr : bytes.data(),
                           bytes.size());
  }
  std::printf("fuzz replay: %zu corpus inputs passed (+ empty input)\n",
              files.size());
  return 0;
}
