// Harness (a): tokenizer UTF-8 robustness.
//
// Properties, for every option combination and arbitrary byte input:
//  * Tokenize never crashes (ASan/UBSan enforce memory safety);
//  * no emitted token is empty;
//  * no token contains a separator the options asked to split on;
//  * if the input was well-formed UTF-8, every token is well-formed
//    UTF-8 (malformed input may degrade bytes, valid input must not);
//  * fixed point: joining the tokens with single spaces and re-tokenizing
//    reproduces the token list exactly — tokenization is idempotent.

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "text/tokenizer.h"
#include "util/logging.h"

using infoshield::IsValidUtf8;
using infoshield::Tokenizer;
using infoshield::TokenizerOptions;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);
  const uint8_t opt_bits = in.TakeByte();
  TokenizerOptions options;
  options.lowercase = (opt_bits & 1) != 0;
  options.strip_punctuation = (opt_bits & 2) != 0;
  options.keep_digits = (opt_bits & 4) != 0;
  const Tokenizer tokenizer(options);

  const std::string text = in.TakeRest();
  const std::vector<std::string> tokens = tokenizer.Tokenize(text);

  const bool input_valid_utf8 = IsValidUtf8(text);
  std::string joined;
  for (const std::string& token : tokens) {
    CHECK(!token.empty()) << "tokenizer emitted an empty token";
    for (char c : token) {
      const unsigned char b = static_cast<unsigned char>(c);
      CHECK(b >= 0x80 || (c != ' ' && c != '\t' && c != '\n' && c != '\r' &&
                          c != '\f' && c != '\v'))
          << "token contains ASCII whitespace";
    }
    if (input_valid_utf8) {
      CHECK(IsValidUtf8(token))
          << "valid UTF-8 input produced an invalid UTF-8 token";
    }
    if (!joined.empty()) joined.push_back(' ');
    joined += token;
  }

  const std::vector<std::string> again = tokenizer.Tokenize(joined);
  CHECK(again == tokens)
      << "tokenization is not a fixed point: " << tokens.size()
      << " tokens re-tokenized into " << again.size();
  return 0;
}
