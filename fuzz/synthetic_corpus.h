// Structure-aware corpus decoder shared by the differential fuzzers.
//
// Deserializes fuzz bytes into a small synthetic ad corpus with the
// shape that matters to InfoShield: a few template families (near
// duplicate documents derived from a base phrase by substitutions,
// insertions, and deletions) plus unrelated noise documents. Byte-level
// mutations by the fuzzer then explore family count, document counts,
// mutation density, and token overlap — the axes the MDL model actually
// branches on.

#ifndef INFOSHIELD_FUZZ_SYNTHETIC_CORPUS_H_
#define INFOSHIELD_FUZZ_SYNTHETIC_CORPUS_H_

#include <string>
#include <vector>

#include "fuzz_util.h"
#include "text/corpus.h"

namespace infoshield {
namespace fuzz {

// Word the synthetic vocabulary maps id `w` to ("w0".."w15").
inline std::string SyntheticWord(size_t w) {
  return "w" + std::to_string(w % 16);
}

// Decodes up to `max_docs` documents (at least one). Every returned
// string is non-empty, lowercase, space-separated — already in the
// tokenizer's normal form, so the corpus content is exactly the decoded
// token sequences.
inline std::vector<std::string> DecodeSyntheticTexts(FuzzInput& in,
                                                     size_t max_docs) {
  std::vector<std::string> texts;
  const size_t num_families = 1 + in.TakeBounded(2);
  for (size_t f = 0; f < num_families && texts.size() < max_docs; ++f) {
    // Base phrase for this family.
    const size_t base_len = 3 + in.TakeBounded(9);
    std::vector<size_t> base;
    base.reserve(base_len);
    for (size_t i = 0; i < base_len; ++i) {
      base.push_back(in.TakeBounded(15));
    }
    const size_t family_docs = 2 + in.TakeBounded(3);
    for (size_t d = 0; d < family_docs && texts.size() < max_docs; ++d) {
      std::string text;
      for (size_t i = 0; i < base.size(); ++i) {
        const uint8_t mutation = in.TakeByte();
        size_t word = base[i];
        if ((mutation & 0x0F) == 1) continue;             // delete
        if ((mutation & 0x0F) == 2) word = in.TakeBounded(15);  // subst
        if (!text.empty()) text.push_back(' ');
        text += SyntheticWord(word);
        if ((mutation & 0xF0) == 0x10) {                  // insert after
          text.push_back(' ');
          text += SyntheticWord(in.TakeBounded(15));
        }
      }
      if (text.empty()) text = SyntheticWord(base[0]);
      texts.push_back(text);
    }
  }
  const size_t num_noise = in.TakeBounded(3);
  for (size_t d = 0; d < num_noise && texts.size() < max_docs; ++d) {
    const size_t len = 1 + in.TakeBounded(7);
    std::string text;
    for (size_t i = 0; i < len; ++i) {
      if (!text.empty()) text.push_back(' ');
      // Disjoint "z" vocabulary keeps noise from joining families by
      // accident only when the fuzzer doesn't ask for overlap.
      text += (in.TakeByte() & 1) ? ("z" + std::to_string(in.TakeBounded(9)))
                                  : SyntheticWord(in.TakeBounded(15));
    }
    texts.push_back(text);
  }
  return texts;
}

inline Corpus BuildSyntheticCorpus(const std::vector<std::string>& texts) {
  Corpus corpus;
  for (const std::string& text : texts) corpus.Add(text);
  return corpus;
}

}  // namespace fuzz
}  // namespace infoshield

#endif  // INFOSHIELD_FUZZ_SYNTHETIC_CORPUS_H_
