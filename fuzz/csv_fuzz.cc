// Harness (b): CSV parse -> write -> parse round trip.
//
// Three modes, selected by the first byte:
//  0: parse arbitrary bytes as one record; on success the fields must
//     survive FormatCsvLine -> ParseCsvLine byte-for-byte;
//  1: build arbitrary fields (NUL-separated fuzz bytes, so fields can
//     contain quotes, separators, newlines, CR), format, re-parse, and
//     require exact equality — the writer must quote everything the
//     reader needs;
//  2: stream arbitrary bytes through ReadCsvRecord (the multi-line
//     record assembler), which must terminate, never crash, and either
//     error (InvalidArgument inside an open quote) or yield records
//     whose own parse round-trips when it succeeds — covers embedded
//     newlines, CRLF terminators, and trailing-newline cases.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "io/csv.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

using infoshield::FormatCsvLine;
using infoshield::ParseCsvLine;
using infoshield::ReadCsvRecord;
using infoshield::Result;
using infoshield::StatusCode;

char PickSeparator(uint8_t b) {
  switch (b % 3) {
    case 0: return ',';
    case 1: return ';';
    default: return '\t';
  }
}

void RoundTripFields(const std::vector<std::string>& fields, char sep) {
  const std::string line = FormatCsvLine(fields, sep);
  Result<std::vector<std::string>> reparsed = ParseCsvLine(line, sep);
  CHECK(reparsed.ok()) << "formatted CSV failed to parse: "
                       << reparsed.status().ToString();
  CHECK(*reparsed == fields) << "CSV round trip changed " << fields.size()
                             << " fields";
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  infoshield::fuzz::FuzzInput in(data, size);
  const uint8_t mode = in.TakeByte();
  const char sep = PickSeparator(in.TakeByte());

  switch (mode % 3) {
    case 0: {
      const std::string line = in.TakeRest();
      Result<std::vector<std::string>> fields = ParseCsvLine(line, sep);
      if (!fields.ok()) {
        CHECK(fields.status().code() == StatusCode::kInvalidArgument)
            << "unexpected parse error code: "
            << fields.status().ToString();
        break;
      }
      RoundTripFields(*fields, sep);
      break;
    }
    case 1: {
      std::vector<std::string> fields(1);
      const std::string raw = in.TakeRest();
      for (char c : raw) {
        if (c == '\0') {
          fields.emplace_back();
        } else {
          fields.back().push_back(c);
        }
      }
      RoundTripFields(fields, sep);
      break;
    }
    default: {
      std::istringstream stream(in.TakeRest());
      std::string record;
      // The stream shrinks every iteration; the cap is sheer paranoia.
      for (int i = 0; i < 1 << 16; ++i) {
        Result<bool> more = ReadCsvRecord(stream, &record, sep);
        if (!more.ok()) {
          CHECK(more.status().code() == StatusCode::kInvalidArgument)
              << "unexpected record error code: "
              << more.status().ToString();
          break;
        }
        if (!*more) break;
        Result<std::vector<std::string>> fields = ParseCsvLine(record, sep);
        if (fields.ok()) RoundTripFields(*fields, sep);
      }
      break;
    }
  }
  return 0;
}
