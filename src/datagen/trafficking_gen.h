// Synthetic escort-ad corpus generator (substitute for Trafficking10k and
// the Cluster Trafficking dataset; see DESIGN.md §3). All wording is
// neutral spa/massage vocabulary; what matters to InfoShield is the
// *structure*: organized activity means one author writing many ads from
// one mental template with victim-specific details varied.
//
// Three ad populations (§V-A3):
//  * benign ads — independently written, no shared template;
//  * spam clusters — near-exact duplicates posted at high volume (the
//    paper's 6 spam clusters); low relative length, high count;
//  * HT clusters — organized-activity templates with structured slots
//    (name/time/price/contact). Two regimes as observed in Fig. 3(d):
//    near-duplicate clusters, and "outlier" clusters with heavy edits
//    that sit far from the relative-length lower bound.
//
// Annotated mode adds Trafficking10k-style noisy 0..6 expert scores,
// including label disagreement between exact duplicates (the paper found
// 40% of exact-duplicate ads had conflicting labels).

#ifndef INFOSHIELD_DATAGEN_TRAFFICKING_GEN_H_
#define INFOSHIELD_DATAGEN_TRAFFICKING_GEN_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"

namespace infoshield {

enum class AdType : uint8_t {
  kBenign = 0,
  kSpam = 1,
  kTrafficking = 2,
};

struct TraffickingGenOptions {
  size_t num_benign = 1000;

  size_t num_spam_clusters = 6;
  size_t spam_cluster_size_min = 60;
  size_t spam_cluster_size_max = 200;
  double spam_edit_prob = 0.005;  // near-exact duplicates

  size_t num_ht_clusters = 40;
  size_t ht_cluster_size_min = 4;
  size_t ht_cluster_size_max = 30;
  double ht_edit_prob = 0.04;
  // Fraction of HT clusters in the heavy-edit "outlier" regime.
  double ht_outlier_fraction = 0.25;
  double ht_outlier_edit_prob = 0.25;

  // Annotated mode (Trafficking10k-style noisy labels).
  // Probability an expert score lands on the wrong side of the HT /
  // not-HT boundary.
  double label_noise = 0.15;

  // Effective vocabulary size for free-text draws (benign ads, spam
  // masters, campaign wording, random edits); the base domain pools are
  // extended deterministically (PoolWord) so that independent campaigns
  // rarely collide on 5-grams, matching real corpora.
  size_t vocab_size = 4000;
};

struct LabeledAds {
  Corpus corpus;
  // Parallel to corpus documents:
  std::vector<AdType> type;
  // -1 for benign; otherwise a cluster id (spam and HT clusters share the
  // id space).
  std::vector<int64_t> cluster_label;
  // 0..6 noisy expert score (annotated mode); 0-3 = not HT, 4-6 = HT
  // following §V-A2's binarization.
  std::vector<int> expert_score;

  size_t CountType(AdType t) const;
};

class TraffickingGenerator {
 public:
  explicit TraffickingGenerator(TraffickingGenOptions options)
      : options_(options) {}

  LabeledAds Generate(uint64_t seed) const;

  const TraffickingGenOptions& options() const { return options_; }

 private:
  TraffickingGenOptions options_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_DATAGEN_TRAFFICKING_GEN_H_
