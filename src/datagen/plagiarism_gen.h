// Synthetic plagiarism corpus generator.
//
// Plagiarism detection is one of the paper's motivating applications
// (§I: "Finding related documents is a problem with numerous
// applications, such as search engines, plagiarism detection,
// mailing-address de-duplication"). This generator produces essays where
// some authors copy passages from source essays — verbatim or lightly
// paraphrased — so InfoShield's micro-cluster search doubles as a
// passage-level plagiarism detector (a copied essay and its source share
// long phrasing; independent essays do not).

#ifndef INFOSHIELD_DATAGEN_PLAGIARISM_GEN_H_
#define INFOSHIELD_DATAGEN_PLAGIARISM_GEN_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"

namespace infoshield {

struct PlagiarismGenOptions {
  // Independently written essays (potential sources).
  size_t num_original_essays = 40;
  size_t essay_length_min = 40;
  size_t essay_length_max = 90;

  // Plagiarized essays; each copies one passage from one source.
  size_t num_plagiarized = 12;
  // Length of the copied passage, in tokens.
  size_t passage_length_min = 15;
  size_t passage_length_max = 30;
  // The plagiarist's own prologue/epilogue around the passage, each.
  // Whole-document near-duplicate detection catches plagiarism when the
  // copied passage dominates the document; with large original margins,
  // detection requires passage-level chunking (out of scope here).
  size_t margin_length_min = 10;
  size_t margin_length_max = 25;
  // Per-token probability of paraphrasing (substitute/insert/delete)
  // within the copied passage.
  double paraphrase_prob = 0.05;

  double zipf_exponent = 1.05;
  size_t vocab_size = 12000;
};

struct PlagiarismCorpus {
  Corpus corpus;
  // -1 for original essays; for plagiarized essays, the DocId of the
  // source essay the passage was lifted from.
  std::vector<int64_t> source_of;

  bool IsPlagiarized(DocId d) const { return source_of[d] >= 0; }
};

class PlagiarismGenerator {
 public:
  explicit PlagiarismGenerator(PlagiarismGenOptions options)
      : options_(options) {}

  PlagiarismCorpus Generate(uint64_t seed) const;

  const PlagiarismGenOptions& options() const { return options_; }

 private:
  PlagiarismGenOptions options_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_DATAGEN_PLAGIARISM_GEN_H_
