#include "datagen/trafficking_gen.h"

#include <algorithm>
#include <string>

#include "datagen/wordlists.h"
#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

size_t LabeledAds::CountType(AdType t) const {
  size_t n = 0;
  for (AdType x : type) {
    if (x == t) ++n;
  }
  return n;
}

namespace {

struct PendingAd {
  std::string text;
  AdType type;
  int64_t cluster;
  int score;
};

void Append(std::string& s, const std::string& w) {
  if (!s.empty()) s.push_back(' ');
  s += w;
}

// A handful of words from one pool, drawing ranks over an extended pool
// (PoolWord) so that independent draws rarely repeat exact wording.
void AppendFromExtended(std::string& s, const std::vector<std::string>& pool,
                        size_t effective_size, size_t count, Rng& rng) {
  const size_t size = std::max(effective_size, pool.size());
  for (size_t i = 0; i < count; ++i) {
    Append(s, PoolWord(pool, rng.NextIndex(size)));
  }
}

std::string RandomPhone(Rng& rng) {
  std::string p = "555";
  for (int i = 0; i < 4; ++i) {
    p.push_back(static_cast<char>('0' + rng.NextIndex(10)));
  }
  return p;
}

// One author's mental template for a series of organized-activity ads:
// fixed segment wording, with functions generating the varied parts.
struct HtTemplate {
  std::string intro;    // constant
  std::string service;  // constant
  std::string contact;  // constant
};

HtTemplate MakeHtTemplate(size_t vocab_size, Rng& rng) {
  HtTemplate t;
  AppendFromExtended(t.intro, AdIntroWords(), vocab_size / 4,
                     4 + rng.NextIndex(3), rng);
  AppendFromExtended(t.service, AdServiceWords(), vocab_size / 4,
                     5 + rng.NextIndex(4), rng);
  AppendFromExtended(t.contact, AdContactWords(), vocab_size / 4,
                     3 + rng.NextIndex(3), rng);
  return t;
}

std::string InstantiateHtAd(const HtTemplate& t, Rng& rng) {
  // Slot content is high-cardinality, as in real ads (specific names,
  // "until 9pm" vs "9 P.M" style variation, exact prices, phone
  // numbers): drawn from extended pools so that two unrelated campaigns
  // rarely share slot n-grams.
  std::string ad = t.intro;
  // Name slot.
  Append(ad, PoolWord(FirstNames(), rng.NextIndex(500)));
  ad += " " + t.service;
  // Time slot (sometimes empty — Table XI shows empty slots).
  if (rng.NextBernoulli(0.8)) {
    AppendFromExtended(ad, AdTimeWords(), 300, 1 + rng.NextIndex(3), rng);
  }
  // Price slot.
  AppendFromExtended(ad, AdPriceWords(), 200, 1 + rng.NextIndex(2), rng);
  ad += " " + t.contact;
  // Contact slot: phone number.
  Append(ad, RandomPhone(rng));
  return ad;
}

// Applies per-token random edits drawing replacements from a pool.
std::string ApplyEdits(const std::string& text, double edit_prob,
                       const std::vector<std::string>& pool,
                       size_t effective_size, Rng& rng) {
  const size_t pool_size = std::max(effective_size, pool.size());
  std::string out;
  size_t start = 0;
  auto next_word = [&](std::string& w) -> bool {
    while (start < text.size() && text[start] == ' ') ++start;
    if (start >= text.size()) return false;
    size_t end = text.find(' ', start);
    if (end == std::string::npos) end = text.size();
    w.assign(text, start, end - start);
    start = end;
    return true;
  };
  std::string w;
  while (next_word(w)) {
    if (rng.NextBernoulli(edit_prob)) {
      switch (rng.NextIndex(3)) {
        case 0:  // delete
          break;
        case 1:  // substitute
          Append(out, PoolWord(pool, rng.NextIndex(pool_size)));
          break;
        default:  // insert before
          Append(out, PoolWord(pool, rng.NextIndex(pool_size)));
          Append(out, w);
          break;
      }
    } else {
      Append(out, w);
    }
  }
  if (out.empty()) out = w;
  return out;
}

// Union of the ad-domain pools, used for edits and benign ads.
const std::vector<std::string>& DomainPool() {
  static const auto& kPool = *new std::vector<std::string>([] {
    std::vector<std::string> all;
    for (const auto* pool :
         {&AdIntroWords(), &AdServiceWords(), &AdTimeWords(),
          &AdPriceWords(), &AdContactWords(), &CityNames()}) {
      all.insert(all.end(), pool->begin(), pool->end());
    }
    return all;
  }());
  return kPool;
}

int NoisyScore(bool is_ht, double noise, Rng& rng) {
  const bool flipped = rng.NextBernoulli(noise);
  const bool scored_ht = is_ht != flipped;
  // 4..6 reads as HT, 0..3 as not-HT (§V-A2).
  return scored_ht ? static_cast<int>(4 + rng.NextIndex(3))
                   : static_cast<int>(rng.NextIndex(4));
}

}  // namespace

LabeledAds TraffickingGenerator::Generate(uint64_t seed) const {
  const TraffickingGenOptions& o = options_;
  Rng rng(seed);
  std::vector<PendingAd> ads;
  int64_t next_cluster = 1;

  // Benign ads: independently written, varied length, no template.
  {
    Rng benign_rng = rng.Fork(1);
    const auto& pool = DomainPool();
    for (size_t i = 0; i < o.num_benign; ++i) {
      std::string text;
      AppendFromExtended(text, pool, o.vocab_size,
                         10 + benign_rng.NextIndex(20), benign_rng);
      ads.push_back(PendingAd{std::move(text), AdType::kBenign, -1,
                              NoisyScore(false, o.label_noise, benign_rng)});
    }
  }

  // Spam clusters: high-volume near-exact duplicates.
  {
    Rng spam_rng = rng.Fork(2);
    for (size_t c = 0; c < o.num_spam_clusters; ++c) {
      std::string master;
      AppendFromExtended(master, DomainPool(), o.vocab_size,
                         15 + spam_rng.NextIndex(15), spam_rng);
      const int64_t cluster = next_cluster++;
      const size_t size = static_cast<size_t>(spam_rng.NextInt(
          static_cast<int64_t>(o.spam_cluster_size_min),
          static_cast<int64_t>(o.spam_cluster_size_max)));
      for (size_t i = 0; i < size; ++i) {
        ads.push_back(PendingAd{
            ApplyEdits(master, o.spam_edit_prob, DomainPool(), o.vocab_size,
                       spam_rng),
            AdType::kSpam, cluster,
            NoisyScore(false, o.label_noise, spam_rng)});
      }
    }
  }

  // HT clusters: organized-activity templates with structured slots.
  {
    Rng ht_rng = rng.Fork(3);
    const size_t num_outliers = static_cast<size_t>(
        o.ht_outlier_fraction * static_cast<double>(o.num_ht_clusters));
    for (size_t c = 0; c < o.num_ht_clusters; ++c) {
      const HtTemplate tmpl = MakeHtTemplate(o.vocab_size, ht_rng);
      const bool outlier = c < num_outliers;
      const double edit_prob =
          outlier ? o.ht_outlier_edit_prob : o.ht_edit_prob;
      const int64_t cluster = next_cluster++;
      const size_t size = static_cast<size_t>(
          ht_rng.NextInt(static_cast<int64_t>(o.ht_cluster_size_min),
                         static_cast<int64_t>(o.ht_cluster_size_max)));
      for (size_t i = 0; i < size; ++i) {
        std::string text = InstantiateHtAd(tmpl, ht_rng);
        ads.push_back(
            PendingAd{ApplyEdits(text, edit_prob, DomainPool(),
                                 o.vocab_size, ht_rng),
                      AdType::kTrafficking, cluster,
                      NoisyScore(true, o.label_noise, ht_rng)});
      }
    }
  }

  rng.Shuffle(ads);

  LabeledAds out;
  out.type.reserve(ads.size());
  out.cluster_label.reserve(ads.size());
  out.expert_score.reserve(ads.size());
  for (PendingAd& ad : ads) {
    out.corpus.Add(ad.text);
    out.type.push_back(ad.type);
    out.cluster_label.push_back(ad.cluster);
    out.expert_score.push_back(ad.score);
  }
  CHECK_EQ(out.corpus.size(), out.type.size());
  return out;
}

}  // namespace infoshield
