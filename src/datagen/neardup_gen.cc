#include "datagen/neardup_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "datagen/wordlists.h"
#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

namespace {

struct PendingDoc {
  std::string text;
  int64_t family;
};

void Append(std::string& s, const std::string& w) {
  if (!s.empty()) s.push_back(' ');
  s += w;
}

// Free-text pool: the union of the ad-domain vocabularies, extended to
// options.vocab_size distinct words via PoolWord.
const std::vector<std::string>& BasePool() {
  static const auto& kPool = *new std::vector<std::string>([] {
    std::vector<std::string> all;
    for (const auto* pool :
         {&AdIntroWords(), &AdServiceWords(), &AdTimeWords(),
          &AdPriceWords(), &AdContactWords(), &CityNames()}) {
      all.insert(all.end(), pool->begin(), pool->end());
    }
    return all;
  }());
  return kPool;
}

std::string DrawWord(size_t vocab_size, Rng& rng) {
  const auto& pool = BasePool();
  return PoolWord(pool, rng.NextIndex(std::max(vocab_size, pool.size())));
}

}  // namespace

double SubstitutionProbForJaccard(double target_jaccard, size_t shingle_k) {
  CHECK(target_jaccard > 0.0 && target_jaccard <= 1.0)
      << "target_jaccard must be in (0, 1], got " << target_jaccard;
  CHECK_GE(shingle_k, 1u);
  // s = shared-shingle survival probability (1-p)^(2k); J = s / (2-s).
  const double s = 2.0 * target_jaccard / (1.0 + target_jaccard);
  return 1.0 - std::pow(s, 1.0 / (2.0 * static_cast<double>(shingle_k)));
}

NearDupCorpus GenerateNearDupFamilies(const NearDupGenOptions& options,
                                      uint64_t seed) {
  const NearDupGenOptions& o = options;
  CHECK_GE(o.template_tokens, 1u);
  CHECK_LE(o.family_size_min, o.family_size_max);
  CHECK_LE(o.noise_tokens_min, o.noise_tokens_max);
  const double sub_prob =
      SubstitutionProbForJaccard(o.target_jaccard, o.shingle_k);

  Rng rng(seed);
  std::vector<PendingDoc> docs;

  {
    Rng family_rng = rng.Fork(1);
    for (size_t f = 0; f < o.num_families; ++f) {
      std::vector<std::string> base;
      base.reserve(o.template_tokens);
      for (size_t t = 0; t < o.template_tokens; ++t) {
        base.push_back(DrawWord(o.vocab_size, family_rng));
      }
      const size_t size = static_cast<size_t>(
          family_rng.NextInt(static_cast<int64_t>(o.family_size_min),
                             static_cast<int64_t>(o.family_size_max)));
      for (size_t m = 0; m < size; ++m) {
        std::string text;
        for (const std::string& word : base) {
          if (family_rng.NextBernoulli(sub_prob)) {
            Append(text, DrawWord(o.vocab_size, family_rng));
          } else {
            Append(text, word);
          }
        }
        docs.push_back(PendingDoc{std::move(text), static_cast<int64_t>(f)});
      }
    }
  }

  {
    Rng noise_rng = rng.Fork(2);
    for (size_t i = 0; i < o.num_noise; ++i) {
      const size_t len = static_cast<size_t>(
          noise_rng.NextInt(static_cast<int64_t>(o.noise_tokens_min),
                            static_cast<int64_t>(o.noise_tokens_max)));
      std::string text;
      for (size_t t = 0; t < len; ++t) {
        Append(text, DrawWord(o.vocab_size, noise_rng));
      }
      docs.push_back(PendingDoc{std::move(text), -1});
    }
  }

  rng.Shuffle(docs);

  NearDupCorpus out;
  out.family.reserve(docs.size());
  std::vector<std::string> texts;
  texts.reserve(docs.size());
  for (PendingDoc& doc : docs) {
    texts.push_back(std::move(doc.text));
    out.family.push_back(doc.family);
  }
  // Batch interning: tokenization parallelizes inside AddBatch while the
  // resulting corpus stays byte-identical to serial Adds.
  out.corpus.AddBatch(texts, /*num_threads=*/0);
  CHECK_EQ(out.corpus.size(), out.family.size());
  return out;
}

}  // namespace infoshield
