// Synthetic Twitter-bot corpus generator (substitute for the Cresci'17
// datasets; see DESIGN.md §3).
//
// Genuine accounts post diverse tweets: tokens drawn from a Zipf
// distribution over the language vocabulary, biased toward a small
// per-account topic pool so accounts feel coherent without becoming
// near-duplicates. Bot (spambot) accounts run campaigns: each bot owns a
// campaign template (constant token sequence with slot positions) and
// every bot tweet is the template with fresh slot fills plus random token
// edits — exactly the near-duplicate structure InfoShield hunts for.
//
// Test-set composition mirrors §V-A1: a mix of genuine and bot accounts;
// ground-truth cluster labels are -1 for genuine tweets (each its own
// singleton) and the bot's account id otherwise.

#ifndef INFOSHIELD_DATAGEN_TWITTER_GEN_H_
#define INFOSHIELD_DATAGEN_TWITTER_GEN_H_

#include <cstdint>
#include <vector>

#include "datagen/wordlists.h"
#include "text/corpus.h"

namespace infoshield {

struct TwitterGenOptions {
  size_t num_genuine_accounts = 50;
  size_t tweets_per_genuine_min = 5;
  size_t tweets_per_genuine_max = 20;

  size_t num_bot_accounts = 50;
  size_t tweets_per_bot_min = 5;
  size_t tweets_per_bot_max = 20;

  // Campaign template shape.
  size_t template_length_min = 8;
  size_t template_length_max = 16;
  size_t template_slots_min = 1;
  size_t template_slots_max = 3;
  size_t slot_fill_words_min = 1;
  size_t slot_fill_words_max = 3;

  // Per-token probability of a random edit in a bot tweet
  // (insert/delete/substitute chosen uniformly). Spambots-#1-style sets
  // use a low value (heavy duplication); spambots-#3-style use higher.
  double bot_edit_prob = 0.03;

  // Genuine tweet shape.
  size_t genuine_length_min = 6;
  size_t genuine_length_max = 24;
  // Zipf exponent for token draws.
  double zipf_exponent = 1.05;
  // Effective vocabulary size per language; the base word pools are
  // extended deterministically (PoolWord) so that unrelated accounts
  // rarely collide on phrases, as in real corpora with 100k+ word
  // vocabularies.
  size_t vocab_size = 8000;
  // Per-account topic pool size; genuine tweets draw from the topic pool
  // with this probability, else from the full vocabulary.
  size_t topic_pool_size = 40;
  double topic_word_prob = 0.5;

  // Fraction of accounts tweeting in each language (normalized
  // internally). All-English by default.
  double english_fraction = 1.0;
  double spanish_fraction = 0.0;
  double italian_fraction = 0.0;
  double japanese_fraction = 0.0;
};

struct LabeledTweets {
  Corpus corpus;
  // Parallel to corpus documents:
  std::vector<int64_t> account_id;
  std::vector<bool> is_bot;
  // -1 for genuine tweets, the bot's account id otherwise (§V-A1's
  // ground-truth cluster construction).
  std::vector<int64_t> cluster_label;

  size_t num_bot_tweets() const;
};

class TwitterGenerator {
 public:
  explicit TwitterGenerator(TwitterGenOptions options) : options_(options) {}

  LabeledTweets Generate(uint64_t seed) const;

  const TwitterGenOptions& options() const { return options_; }

 private:
  TwitterGenOptions options_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_DATAGEN_TWITTER_GEN_H_
