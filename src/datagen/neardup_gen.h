// Near-duplicate family generator with controllable Jaccard similarity.
//
// The LSH recall benches and tests need ground-truth clusters whose
// pairwise similarity is a dial, not an accident of edit probabilities:
// each family draws a base template of `template_tokens` words, then
// every member independently substitutes each token with probability p,
// where p is derived from `target_jaccard` so that the EXPECTED
// k-shingle Jaccard between two members hits the target. Derivation: a
// k-shingle survives in both members iff its k positions are untouched
// in both, probability s = (1-p)^(2k); with |A ∩ B| ≈ s·S and
// |A ∪ B| ≈ (2-s)·S over S template shingles, J ≈ s / (2 - s), so
// s = 2J/(1+J) and p = 1 - s^(1/2k). The approximation ignores
// collisions between substituted tokens (drawn from a large extended
// pool, so negligible); neardup_gen_test verifies the measured Jaccard
// lands on target within sampling tolerance.
//
// Noise documents are independent free text over the same pools — the
// benign tail both backends must leave as singletons.

#ifndef INFOSHIELD_DATAGEN_NEARDUP_GEN_H_
#define INFOSHIELD_DATAGEN_NEARDUP_GEN_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"

namespace infoshield {

struct NearDupGenOptions {
  size_t num_families = 40;
  size_t family_size_min = 3;
  size_t family_size_max = 12;
  // Tokens per family template (members keep the template length:
  // substitution only, so shingle counts stay comparable).
  size_t template_tokens = 24;
  // Expected k-shingle Jaccard between two members of one family.
  double target_jaccard = 0.85;
  // The shingle length the similarity targets (match the MinHash
  // backend's shingle_k when generating for LSH benches).
  size_t shingle_k = 3;
  // Independent noise documents (no family).
  size_t num_noise = 200;
  size_t noise_tokens_min = 12;
  size_t noise_tokens_max = 32;
  // Effective vocabulary for template/noise/substitution draws. Keep it
  // large relative to the corpus (the benches scale it with document
  // count) so unrelated documents rarely share shingles — the regime
  // real 100k+-vocabulary corpora are in.
  size_t vocab_size = 20000;
};

struct NearDupCorpus {
  Corpus corpus;
  // Parallel to corpus documents: family id, or -1 for noise.
  std::vector<int64_t> family;
};

// Per-token substitution probability that hits `target_jaccard` for
// k-shingles (the derivation above). Exposed for tests.
double SubstitutionProbForJaccard(double target_jaccard, size_t shingle_k);

// Deterministic for a given (options, seed) pair.
NearDupCorpus GenerateNearDupFamilies(const NearDupGenOptions& options,
                                      uint64_t seed);

}  // namespace infoshield

#endif  // INFOSHIELD_DATAGEN_NEARDUP_GEN_H_
