#include "datagen/wordlists.h"

#include "util/logging.h"

namespace infoshield {

namespace {

// Function-local static references avoid static-destructor ordering
// issues (Google style: no non-trivially-destructible globals).
const std::vector<std::string>& EnglishWords() {
  static const auto& kWords = *new std::vector<std::string>{
      // ~400 common English words, roughly frequency-ordered.
      "the", "be", "to", "of", "and", "a", "in", "that", "have", "i",
      "it", "for", "not", "on", "with", "he", "as", "you", "do", "at",
      "this", "but", "his", "by", "from", "they", "we", "say", "her",
      "she", "or", "an", "will", "my", "one", "all", "would", "there",
      "their", "what", "so", "up", "out", "if", "about", "who", "get",
      "which", "go", "me", "when", "make", "can", "like", "time", "no",
      "just", "him", "know", "take", "people", "into", "year", "your",
      "good", "some", "could", "them", "see", "other", "than", "then",
      "now", "look", "only", "come", "its", "over", "think", "also",
      "back", "after", "use", "two", "how", "our", "work", "first",
      "well", "way", "even", "new", "want", "because", "any", "these",
      "give", "day", "most", "us", "great", "where", "through", "much",
      "before", "too", "very", "still", "being", "here", "why", "never",
      "world", "own", "same", "tell", "does", "part", "place", "while",
      "last", "might", "week", "story", "news", "today", "found", "best",
      "love", "home", "city", "always", "every", "again", "morning",
      "night", "keep", "long", "little", "big", "small", "house", "life",
      "hand", "high", "right", "left", "old", "young", "start", "show",
      "try", "call", "move", "live", "believe", "hold", "bring", "happen",
      "next", "without", "turn", "follow", "around", "between", "read",
      "write", "run", "play", "feel", "seem", "help", "talk", "stand",
      "watch", "water", "food", "music", "game", "team", "win", "lose",
      "free", "real", "full", "sure", "early", "late", "hard", "easy",
      "open", "close", "light", "dark", "warm", "cold", "happy", "sad",
      "friend", "family", "child", "woman", "man", "girl", "boy", "name",
      "word", "line", "side", "kind", "head", "eye", "face", "fact",
      "month", "lot", "point", "number", "group", "problem", "question",
      "money", "business", "service", "student", "school", "state",
      "country", "company", "system", "program", "government", "power",
      "car", "road", "door", "room", "book", "idea", "job", "area",
      "minute", "hour", "second", "moment", "summer", "winter", "spring",
      "travel", "trip", "photo", "video", "share", "post", "tweet",
      "online", "weekend", "coffee", "lunch", "dinner", "party", "movie",
      "song", "dance", "sun", "rain", "snow", "wind", "tree", "flower",
      "river", "mountain", "beach", "ocean", "sky", "star", "moon",
      "amazing", "awesome", "beautiful", "wonderful", "perfect", "nice",
      "crazy", "funny", "weird", "interesting", "boring", "tired",
      "excited", "proud", "lucky", "blessed", "grateful", "thanks",
      "thank", "please", "sorry", "hello", "goodbye", "yes", "maybe",
      "definitely", "probably", "actually", "finally", "already", "soon",
      "yesterday", "tomorrow", "tonight", "everyone", "someone", "anyone",
      "nothing", "something", "everything", "anywhere", "somewhere",
      "birthday", "holiday", "vacation", "weather", "season", "market",
      "store", "shop", "price", "deal", "sale", "buy", "sell", "pay",
      "cost", "cheap", "expensive", "quality", "brand", "style", "fashion",
      "health", "doctor", "sleep", "dream", "walk", "drive", "fly",
      "train", "plane", "bus", "station", "airport", "hotel", "ticket",
      "event", "concert", "festival", "club", "bar", "restaurant", "menu",
      "order", "table", "chair", "soap", "hat", "pen", "phone", "computer",
      "screen", "internet", "website", "link", "page", "article", "report",
      "study", "research", "science", "history", "culture", "language",
      "english", "learn", "teach", "class", "test", "paper", "project",
      "plan", "goal", "dream", "hope", "wish", "luck", "chance", "choice",
      "change", "future", "past", "present", "end", "begin", "middle",
      "top", "bottom", "front", "behind", "inside", "outside", "above",
      "below", "near", "far", "fast", "slow", "strong", "weak", "heavy",
      "popular", "famous", "local", "global", "public", "private",
      "special", "normal", "common", "rare", "simple", "complex", "clear",
      "clean", "dirty", "fresh", "sweet", "delicious", "favorite",
  };
  return kWords;
}

const std::vector<std::string>& SpanishWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "el", "la", "de", "que", "y", "a", "en", "un", "ser", "se",
      "no", "haber", "por", "con", "su", "para", "como", "estar",
      "tener", "le", "lo", "todo", "pero", "más", "hacer", "o", "poder",
      "decir", "este", "ir", "otro", "ese", "si", "me", "ya", "ver",
      "porque", "dar", "cuando", "muy", "sin", "vez", "mucho", "saber",
      "qué", "sobre", "mi", "alguno", "mismo", "también", "hasta",
      "año", "dos", "querer", "entre", "así", "primero", "desde",
      "grande", "eso", "ni", "nos", "llegar", "pasar", "tiempo", "ella",
      "sí", "día", "uno", "bien", "poco", "deber", "entonces", "poner",
      "cosa", "tanto", "hombre", "parecer", "nuestro", "tan", "donde",
      "ahora", "parte", "después", "vida", "quedar", "siempre", "creer",
      "hablar", "llevar", "dejar", "nada", "cada", "seguir", "menos",
      "nuevo", "encontrar", "algo", "solo", "pues", "casa", "mundo",
      "mujer", "caso", "país", "trabajo", "lugar", "persona", "hora",
      "noche", "forma", "agua", "ciudad", "hijo", "tierra", "mano",
      "momento", "manera", "semana", "historia", "gracias", "amigo",
      "amor", "fiesta", "música", "playa", "sol", "luna", "cielo",
      "temblor", "sismo", "richter", "magnitud", "sureste", "puerto",
      "escondido", "norte", "centro", "kilómetros", "región", "costa",
      "feliz", "bueno", "malo", "bonito", "pequeño", "rápido", "lento",
      "calle", "coche", "tren", "avión", "comida", "cena", "mañana",
      "tarde", "ayer", "hoy", "siempre", "nunca", "aquí", "allí",
  };
  return kWords;
}

const std::vector<std::string>& ItalianWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "il", "di", "che", "e", "la", "per", "un", "in", "non", "essere",
      "da", "si", "con", "avere", "su", "come", "lo", "ma", "le", "fare",
      "io", "questo", "a", "più", "o", "anche", "se", "tutto", "mi",
      "quello", "molto", "dire", "ci", "potere", "cosa", "volere", "bene",
      "sapere", "dovere", "uno", "vedere", "andare", "tempo", "quando",
      "grande", "stesso", "nostro", "casa", "anno", "giorno", "uomo",
      "donna", "vita", "mano", "volta", "parte", "mondo", "città",
      "paese", "lavoro", "momento", "notte", "acqua", "strada", "amico",
      "amore", "festa", "musica", "mare", "sole", "luna", "cielo",
      "bello", "buono", "nuovo", "vecchio", "piccolo", "veloce", "lento",
      "sempre", "mai", "oggi", "domani", "ieri", "adesso", "qui", "là",
      "grazie", "prego", "ciao", "sera", "mattina", "pranzo", "cena",
      "treno", "macchina", "aereo", "stazione", "albergo", "biglietto",
      "storia", "settimana", "mese", "ora", "minuto", "secondo", "prima",
      "dopo", "sopra", "sotto", "dentro", "fuori", "vicino", "lontano",
  };
  return kWords;
}

const std::vector<std::string>& JapaneseWords() {
  static const auto& kWords = *new std::vector<std::string>{
      // Romanized Japanese tokens.
      "watashi", "anata", "kore", "sore", "are", "desu", "masu", "suru",
      "naru", "aru", "iru", "iku", "kuru", "miru", "kiku", "hanasu",
      "taberu", "nomu", "kau", "uru", "yomu", "kaku", "omou", "shiru",
      "wakaru", "dekiru", "ii", "warui", "ookii", "chiisai", "atarashii",
      "furui", "takai", "yasui", "hayai", "osoi", "atsui", "samui",
      "kyou", "ashita", "kinou", "ima", "asa", "hiru", "yoru", "mainichi",
      "jikan", "fun", "byou", "shuu", "tsuki", "toshi", "hito", "tomodachi",
      "kazoku", "kodomo", "onna", "otoko", "namae", "kuni", "machi",
      "ie", "gakkou", "kaisha", "shigoto", "okane", "mise", "eki",
      "densha", "kuruma", "hikouki", "hon", "eiga", "ongaku", "uta",
      "gohan", "mizu", "ocha", "sakana", "niku", "yasai", "kudamono",
      "umi", "yama", "kawa", "sora", "hoshi", "tsuki", "taiyou", "ame",
      "yuki", "kaze", "hana", "ki", "inu", "neko", "arigatou", "sumimasen",
      "konnichiwa", "sayounara", "hai", "iie", "totemo", "sukoshi",
  };
  return kWords;
}

}  // namespace

const std::vector<std::string>& WordsFor(Language language) {
  switch (language) {
    case Language::kEnglish:
      return EnglishWords();
    case Language::kSpanish:
      return SpanishWords();
    case Language::kItalian:
      return ItalianWords();
    case Language::kJapanese:
      return JapaneseWords();
  }
  LOG(FATAL) << "unknown language";
  return EnglishWords();
}

const std::vector<std::string>& AdIntroWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "new", "sweet", "lovely", "relaxing", "grand", "opening", "best",
      "in", "town", "visit", "our", "friendly", "clean", "quiet", "place",
      "welcome", "to", "the", "finest", "spa", "studio", "come", "see",
      "us", "today", "professional", "experience", "stop", "by", "enjoy",
      "a", "wonderful", "session", "top", "rated", "private", "warm",
  };
  return kWords;
}

const std::vector<std::string>& AdServiceWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "massage", "therapy", "table", "shower", "deep", "tissue", "body",
      "relaxation", "session", "treatment", "full", "service", "hot",
      "stone", "foot", "back", "neck", "shoulder", "aroma", "oil",
      "swedish", "sports", "gentle", "strong", "skilled", "therapist",
      "staff", "young", "team", "new", "faces", "every", "week",
  };
  return kWords;
}

const std::vector<std::string>& AdTimeWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "open", "7", "days", "until", "9pm", "10pm", "11pm", "late",
      "night", "early", "morning", "9am", "10am", "walk", "ins",
      "welcome", "appointment", "only", "weekends", "weekdays", "daily",
      "hours", "flexible", "anytime", "24", "now", "available", "today",
  };
  return kWords;
}

const std::vector<std::string>& AdPriceWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "40", "50", "60", "70", "80", "90", "100", "120", "150", "200",
      "special", "price", "half", "hour", "full", "discount", "deal",
      "rate", "dollar", "per", "session", "new", "customer", "offer",
  };
  return kWords;
}

const std::vector<std::string>& AdContactWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "call", "text", "now", "ask", "for", "book", "today", "visit",
      "contact", "us", "phone", "number", "dont", "miss", "out", "see",
      "you", "soon", "no", "blocked", "calls", "please", "serious",
      "inquiries", "only",
  };
  return kWords;
}

const std::vector<std::string>& FirstNames() {
  static const auto& kWords = *new std::vector<std::string>{
      "amy",   "bella", "cici",  "dana",  "emma",  "gigi",  "holly",
      "iris",  "jenny", "kiki",  "lily",  "mia",   "nina",  "olivia",
      "penny", "queenie", "rosa", "sasha", "tina",  "uma",   "vivian",
      "wendy", "xena",  "yuki",  "zoe",   "anna",  "betty", "coco",
      "daisy", "elle",  "fifi",  "grace", "hanna", "ivy",   "jade",
  };
  return kWords;
}

std::string PoolWord(const std::vector<std::string>& base, size_t rank) {
  CHECK(!base.empty());
  const size_t wrap = rank / base.size();
  const std::string& word = base[rank % base.size()];
  if (wrap == 0) return word;
  return word + std::to_string(wrap + 1);
}

const std::vector<std::string>& CityNames() {
  static const auto& kWords = *new std::vector<std::string>{
      "springfield", "rivertown", "lakeside", "fairview", "brookhaven",
      "maplewood", "cedarville", "oakdale", "pinecrest", "elmhurst",
      "ashford", "briarwood", "clearwater", "dover", "easton",
      "fairmont", "glenville", "hillcrest", "kingsport", "linden",
      "midtown", "northgate", "overlook", "parkside", "quarry",
      "ridgeway", "stonebrook", "trenton", "union", "vista",
      "westfield", "yorktown",
  };
  return kWords;
}

}  // namespace infoshield
