#include "datagen/twitter_gen.h"

#include <algorithm>
#include <string>

#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

size_t LabeledTweets::num_bot_tweets() const {
  size_t n = 0;
  for (bool b : is_bot) {
    if (b) ++n;
  }
  return n;
}

namespace {

// Picks a language for an account given the (normalized) mix.
Language PickLanguage(const TwitterGenOptions& o, Rng& rng) {
  double total = o.english_fraction + o.spanish_fraction +
                 o.italian_fraction + o.japanese_fraction;
  if (total <= 0.0) return Language::kEnglish;
  double r = rng.NextDouble() * total;
  if ((r -= o.english_fraction) < 0.0) return Language::kEnglish;
  if ((r -= o.spanish_fraction) < 0.0) return Language::kSpanish;
  if ((r -= o.italian_fraction) < 0.0) return Language::kItalian;
  return Language::kJapanese;
}

std::string JoinTokens(const std::vector<std::string>& toks) {
  std::string out;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += toks[i];
  }
  return out;
}

}  // namespace

LabeledTweets TwitterGenerator::Generate(uint64_t seed) const {
  const TwitterGenOptions& o = options_;
  LabeledTweets out;
  Rng rng(seed);

  struct Account {
    int64_t id;
    bool bot;
    Language language;
  };
  std::vector<Account> accounts;
  int64_t next_id = 1;
  for (size_t i = 0; i < o.num_genuine_accounts; ++i) {
    accounts.push_back({next_id++, false, PickLanguage(o, rng)});
  }
  for (size_t i = 0; i < o.num_bot_accounts; ++i) {
    accounts.push_back({next_id++, true, PickLanguage(o, rng)});
  }
  // Interleave accounts so document order carries no label signal.
  rng.Shuffle(accounts);

  for (const Account& account : accounts) {
    Rng acct_rng = rng.Fork(static_cast<uint64_t>(account.id));
    const std::vector<std::string>& vocab = WordsFor(account.language);
    const size_t vocab_size = std::max(o.vocab_size, vocab.size());
    ZipfSampler zipf(vocab_size, o.zipf_exponent);

    if (!account.bot) {
      // Topic pool: a handful of words this account returns to.
      std::vector<size_t> topic;
      for (size_t i = 0; i < o.topic_pool_size; ++i) {
        topic.push_back(zipf.Sample(acct_rng));
      }
      const size_t num_tweets = static_cast<size_t>(acct_rng.NextInt(
          static_cast<int64_t>(o.tweets_per_genuine_min),
          static_cast<int64_t>(o.tweets_per_genuine_max)));
      for (size_t t = 0; t < num_tweets; ++t) {
        const size_t len = static_cast<size_t>(acct_rng.NextInt(
            static_cast<int64_t>(o.genuine_length_min),
            static_cast<int64_t>(o.genuine_length_max)));
        std::vector<std::string> toks;
        toks.reserve(len);
        for (size_t w = 0; w < len; ++w) {
          if (!topic.empty() && acct_rng.NextBernoulli(o.topic_word_prob)) {
            toks.push_back(
                PoolWord(vocab, topic[acct_rng.NextIndex(topic.size())]));
          } else {
            toks.push_back(PoolWord(vocab, zipf.Sample(acct_rng)));
          }
        }
        out.corpus.Add(JoinTokens(toks));
        out.account_id.push_back(account.id);
        out.is_bot.push_back(false);
        out.cluster_label.push_back(-1);
      }
      continue;
    }

    // Bot: build the campaign template (constants + slot gaps).
    const size_t tmpl_len = static_cast<size_t>(acct_rng.NextInt(
        static_cast<int64_t>(o.template_length_min),
        static_cast<int64_t>(o.template_length_max)));
    std::vector<std::string> constants;
    constants.reserve(tmpl_len);
    for (size_t w = 0; w < tmpl_len; ++w) {
      constants.push_back(PoolWord(vocab, zipf.Sample(acct_rng)));
    }
    const size_t num_slots = static_cast<size_t>(
        acct_rng.NextInt(static_cast<int64_t>(o.template_slots_min),
                         static_cast<int64_t>(o.template_slots_max)));
    std::vector<size_t> slot_gaps;
    for (size_t s = 0; s < num_slots; ++s) {
      slot_gaps.push_back(acct_rng.NextIndex(tmpl_len + 1));
    }
    std::sort(slot_gaps.begin(), slot_gaps.end());
    slot_gaps.erase(std::unique(slot_gaps.begin(), slot_gaps.end()),
                    slot_gaps.end());

    const size_t num_tweets = static_cast<size_t>(acct_rng.NextInt(
        static_cast<int64_t>(o.tweets_per_bot_min),
        static_cast<int64_t>(o.tweets_per_bot_max)));
    for (size_t t = 0; t < num_tweets; ++t) {
      // Instantiate: constants with fresh slot fills.
      std::vector<std::string> toks;
      size_t next_slot = 0;
      for (size_t w = 0; w <= tmpl_len; ++w) {
        if (next_slot < slot_gaps.size() && slot_gaps[next_slot] == w) {
          const size_t fill_len = static_cast<size_t>(acct_rng.NextInt(
              static_cast<int64_t>(o.slot_fill_words_min),
              static_cast<int64_t>(o.slot_fill_words_max)));
          for (size_t f = 0; f < fill_len; ++f) {
            toks.push_back(
                PoolWord(vocab, acct_rng.NextIndex(vocab_size)));
          }
          ++next_slot;
        }
        if (w < tmpl_len) toks.push_back(constants[w]);
      }
      // Random token edits.
      std::vector<std::string> edited;
      edited.reserve(toks.size() + 2);
      for (const std::string& tok : toks) {
        if (acct_rng.NextBernoulli(o.bot_edit_prob)) {
          switch (acct_rng.NextIndex(3)) {
            case 0:  // delete
              break;
            case 1:  // substitute
              edited.push_back(PoolWord(vocab, zipf.Sample(acct_rng)));
              break;
            default:  // insert before
              edited.push_back(PoolWord(vocab, zipf.Sample(acct_rng)));
              edited.push_back(tok);
              break;
          }
        } else {
          edited.push_back(tok);
        }
      }
      if (edited.empty()) edited.push_back(constants.front());
      out.corpus.Add(JoinTokens(edited));
      out.account_id.push_back(account.id);
      out.is_bot.push_back(true);
      out.cluster_label.push_back(account.id);
    }
  }

  CHECK_EQ(out.corpus.size(), out.account_id.size());
  return out;
}

}  // namespace infoshield
