// Word pools for the synthetic data generators.
//
// The paper's datasets (Cresci'17 Twitter sets, Trafficking10k, Cluster
// Trafficking) are gated; the generators substitute synthetic corpora
// built from these pools (see DESIGN.md §3). Pools exist for several
// languages because InfoShield is language-independent (paper §V-F) and
// the Twitter data contains Spanish, Italian, English and Japanese.
//
// The escort-ad domain pools are deliberately neutral (spa/massage
// wording) — they exercise the same structure (time/price/contact slots)
// without reproducing exploitative content.

#ifndef INFOSHIELD_DATAGEN_WORDLISTS_H_
#define INFOSHIELD_DATAGEN_WORDLISTS_H_

#include <string>
#include <vector>

namespace infoshield {

enum class Language {
  kEnglish = 0,
  kSpanish = 1,
  kItalian = 2,
  kJapanese = 3,  // romanized
};

// General vocabulary for a language, roughly frequency-ordered so a Zipf
// sampler over indices mimics natural token frequencies.
const std::vector<std::string>& WordsFor(Language language);

// Escort-ad domain pools (neutral wording).
const std::vector<std::string>& AdIntroWords();    // greetings/openers
const std::vector<std::string>& AdServiceWords();  // service descriptions
const std::vector<std::string>& AdTimeWords();     // availability phrases
const std::vector<std::string>& AdPriceWords();    // price phrases
const std::vector<std::string>& AdContactWords();  // call-to-action stems
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& CityNames();

// Deterministically extends a base pool to arbitrarily many distinct
// words: rank r maps to base[r % base.size()] suffixed with r / size when
// the pool wraps ("time", "time2", "time3", ...). Generators draw Zipf
// ranks over a large effective vocabulary so that unrelated documents
// rarely share phrases — the regime real corpora (100k+ word
// vocabularies) are in. Tiny pools would make independent campaigns
// collide on 5-grams by chance, which no real dataset exhibits.
std::string PoolWord(const std::vector<std::string>& base, size_t rank);

}  // namespace infoshield

#endif  // INFOSHIELD_DATAGEN_WORDLISTS_H_
