#include "datagen/plagiarism_gen.h"

#include <algorithm>

#include "datagen/wordlists.h"
#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

namespace {

std::vector<std::string> RandomEssay(size_t length, size_t vocab_size,
                                     double zipf_exponent, Rng& rng) {
  const auto& base = WordsFor(Language::kEnglish);
  ZipfSampler zipf(std::max(vocab_size, base.size()), zipf_exponent);
  std::vector<std::string> words;
  words.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    words.push_back(PoolWord(base, zipf.Sample(rng)));
  }
  return words;
}

std::string Join(const std::vector<std::string>& words) {
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += words[i];
  }
  return out;
}

}  // namespace

PlagiarismCorpus PlagiarismGenerator::Generate(uint64_t seed) const {
  const PlagiarismGenOptions& o = options_;
  CHECK_GT(o.num_original_essays, 0u);
  Rng rng(seed);
  PlagiarismCorpus out;

  // Originals first (sources must exist before they can be copied).
  std::vector<std::vector<std::string>> originals;
  originals.reserve(o.num_original_essays);
  for (size_t i = 0; i < o.num_original_essays; ++i) {
    const size_t len = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(o.essay_length_min),
                    static_cast<int64_t>(o.essay_length_max)));
    originals.push_back(
        RandomEssay(len, o.vocab_size, o.zipf_exponent, rng));
    out.corpus.Add(Join(originals.back()));
    out.source_of.push_back(-1);
  }

  // Plagiarized essays: own writing around a lifted passage.
  const auto& base = WordsFor(Language::kEnglish);
  for (size_t i = 0; i < o.num_plagiarized; ++i) {
    const size_t source = rng.NextIndex(originals.size());
    const std::vector<std::string>& src = originals[source];
    const size_t want = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(o.passage_length_min),
                    static_cast<int64_t>(o.passage_length_max)));
    const size_t passage_len = std::min(want, src.size());
    const size_t start = rng.NextIndex(src.size() - passage_len + 1);

    // Copy with light paraphrasing.
    std::vector<std::string> passage;
    for (size_t w = start; w < start + passage_len; ++w) {
      if (rng.NextBernoulli(o.paraphrase_prob)) {
        switch (rng.NextIndex(3)) {
          case 0:  // drop the word
            break;
          case 1:  // replace it
            passage.push_back(PoolWord(base, rng.NextIndex(o.vocab_size)));
            break;
          default:  // add one before it
            passage.push_back(PoolWord(base, rng.NextIndex(o.vocab_size)));
            passage.push_back(src[w]);
        }
      } else {
        passage.push_back(src[w]);
      }
    }

    // Fresh prologue and epilogue of the plagiarist's own words.
    auto margin_len = [&]() {
      return static_cast<size_t>(
          rng.NextInt(static_cast<int64_t>(o.margin_length_min),
                      static_cast<int64_t>(o.margin_length_max)));
    };
    std::vector<std::string> essay =
        RandomEssay(margin_len(), o.vocab_size, o.zipf_exponent, rng);
    essay.insert(essay.end(), passage.begin(), passage.end());
    std::vector<std::string> tail =
        RandomEssay(margin_len(), o.vocab_size, o.zipf_exponent, rng);
    essay.insert(essay.end(), tail.begin(), tail.end());

    out.corpus.Add(Join(essay));
    out.source_of.push_back(static_cast<int64_t>(source));
  }

  CHECK_EQ(out.corpus.size(), out.source_of.size());
  return out;
}

}  // namespace infoshield
