// Partial Order Alignment (POA) graph — Lee, Grasso & Sharlow (2002).
//
// A POA graph is a DAG whose nodes carry one token each; every aligned
// sequence is a path through the graph. Aligning a new sequence is a
// dynamic program over (graph node in topological order) x (sequence
// position); matched tokens fuse into existing nodes (raising their
// support count), everything else becomes fresh nodes, so the graph
// remains a lossless multiple sequence alignment.
//
// InfoShield-Fine uses the graph's per-node support counts to generate
// candidate consensus sequences: Sel(A, h) keeps the nodes visited by more
// than h sequences, in topological order (paper Eq. 6 / Algorithm 2).
//
// Acyclicity invariant: fusion only links nodes in increasing topological
// rank (a DP path follows existing edges), so added edges never create a
// cycle; this is CHECKed after every insertion in debug builds.

#ifndef INFOSHIELD_MSA_POA_H_
#define INFOSHIELD_MSA_POA_H_

#include <cstdint>
#include <vector>

#include "msa/aligner.h"
#include "msa/pairwise.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace infoshield {

class PoaGraph : public MsaAligner {
 public:
  // The graph must be seeded with a first sequence; an empty sequence is
  // allowed and yields an empty graph.
  explicit PoaGraph(const std::vector<TokenId>& first,
                    const AlignmentScoring& scoring = {});

  // Aligns `seq` against the current graph and fuses it in.
  void AddSequence(const std::vector<TokenId>& seq) override;

  // Tokens of all nodes with support > h, in topological order. h = 0
  // returns every node; h >= num_sequences() returns an empty sequence.
  std::vector<TokenId> ConsensusAtThreshold(size_t h) const override;

  size_t num_sequences() const override { return num_sequences_; }
  size_t node_count() const { return nodes_.size(); }

  // Highest support value of any node (0 for an empty graph).
  size_t max_support() const;

  // Support of each node, indexed by topological order (for tests).
  std::vector<uint32_t> SupportByTopoOrder() const;

  // Deep invariant audit (util/audit.h): the graph is a DAG, the stored
  // topo_order_/topo_rank_ form a consistent topological order (every
  // edge goes from lower to higher rank), in/out edge lists mirror each
  // other exactly, and node supports lie in [1, num_sequences]. Returns
  // OK or an Internal status listing every violation.
  Status ValidateInvariants() const;

 private:
  friend class PoaGraphTestPeer;

  struct Node {
    TokenId token;
    uint32_t support;
    std::vector<uint32_t> out;  // edges to successor nodes
    std::vector<uint32_t> in;   // edges from predecessor nodes
  };

  uint32_t NewNode(TokenId token);
  void AddEdge(uint32_t from, uint32_t to);
  void RecomputeTopoOrder();

  AlignmentScoring scoring_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> topo_order_;  // node ids, topologically sorted
  std::vector<uint32_t> topo_rank_;   // node id -> rank in topo_order_
  size_t num_sequences_ = 0;
};

}  // namespace infoshield

#endif  // INFOSHIELD_MSA_POA_H_
