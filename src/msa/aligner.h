// Abstract multiple-sequence-alignment interface.
//
// The paper (§IV-B) stresses that InfoShield-Fine "can co-work with any
// off-the-shelf MSA approach": the fine stage only needs (a) incremental
// fusion of sequences into an alignment and (b) threshold-based
// sub-alignment selection Sel(A, h) for the consensus search. Two
// implementations are provided: PoaGraph (partial order alignment, the
// paper's choice) and ProfileMsa (a Barton–Sternberg-style profile
// aligner, the classic alternative the paper contrasts in §II-D).

#ifndef INFOSHIELD_MSA_ALIGNER_H_
#define INFOSHIELD_MSA_ALIGNER_H_

#include <vector>

#include "text/vocabulary.h"

namespace infoshield {

class MsaAligner {
 public:
  virtual ~MsaAligner() = default;

  // Aligns one more sequence into the alignment.
  virtual void AddSequence(const std::vector<TokenId>& seq) = 0;

  // Sel(A, h): tokens supported by more than h of the aligned sequences,
  // in alignment order. h = 0 is the most inclusive selection.
  virtual std::vector<TokenId> ConsensusAtThreshold(size_t h) const = 0;

  // Number of sequences aligned so far (including the seed).
  virtual size_t num_sequences() const = 0;
};

}  // namespace infoshield

#endif  // INFOSHIELD_MSA_ALIGNER_H_
