#include "msa/pairwise.h"

#include <algorithm>

#include "util/logging.h"

namespace infoshield {

size_t Alignment::CountType(AlignOpType t) const {
  size_t n = 0;
  for (const AlignOp& op : ops) {
    if (op.type == t) ++n;
  }
  return n;
}

namespace {

enum Move : uint8_t { kFromDiag = 0, kFromUp = 1, kFromLeft = 2, kFromNone = 3 };

}  // namespace

// analyzer: hot
Alignment NeedlemanWunsch(const std::vector<TokenId>& a,
                          const std::vector<TokenId>& b,
                          const AlignmentScoring& scoring,
                          AlignmentWorkspace* workspace) {
  const size_t n = a.size();
  const size_t m = b.size();

  // Identical sequences align as all matches whenever matching scores at
  // least as well as mismatching and gaps are not rewarded: any
  // alignment of a against itself has at most n diagonal columns (each
  // scoring <= match) plus gap columns (each scoring <= 0), so the
  // all-match path is optimal, and the DP's tie-breaking (diagonal
  // first) reconstructs exactly it. Exact duplicates dominate real spam
  // campaigns, so this skips the O(n^2) table entirely for them.
  if (a == b && scoring.match >= scoring.mismatch && scoring.match >= 0 &&
      scoring.gap <= 0) {
    Alignment out;
    out.ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      AlignOp op;
      op.type = AlignOpType::kMatch;
      op.a_token = a[i];
      op.b_token = b[i];
      out.ops.push_back(op);
    }
    return out;
  }

  // Row-major (n+1) x (m+1) score and move tables.
  AlignmentWorkspace local;
  AlignmentWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.score.assign((n + 1) * (m + 1), 0);
  ws.move.assign((n + 1) * (m + 1), kFromNone);
  std::vector<int>& score = ws.score;
  std::vector<uint8_t>& move = ws.move;
  auto at = [m](size_t i, size_t j) { return i * (m + 1) + j; };

  for (size_t i = 1; i <= n; ++i) {
    score[at(i, 0)] = static_cast<int>(i) * scoring.gap;
    move[at(i, 0)] = kFromUp;
  }
  for (size_t j = 1; j <= m; ++j) {
    score[at(0, j)] = static_cast<int>(j) * scoring.gap;
    move[at(0, j)] = kFromLeft;
  }

  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int diag =
          score[at(i - 1, j - 1)] +
          (a[i - 1] == b[j - 1] ? scoring.match : scoring.mismatch);
      const int up = score[at(i - 1, j)] + scoring.gap;     // delete a[i-1]
      const int left = score[at(i, j - 1)] + scoring.gap;   // insert b[j-1]
      // Tie order: diagonal first (prefer aligning tokens), then delete,
      // then insert — fully deterministic.
      int best = diag;
      uint8_t mv = kFromDiag;
      if (up > best) {
        best = up;
        mv = kFromUp;
      }
      if (left > best) {
        best = left;
        mv = kFromLeft;
      }
      score[at(i, j)] = best;
      move[at(i, j)] = mv;
    }
  }

  Alignment out;
  out.ops.reserve(n + m);
  size_t i = n;
  size_t j = m;
  while (i > 0 || j > 0) {
    switch (move[at(i, j)]) {
      case kFromDiag: {
        AlignOp op;
        op.a_token = a[i - 1];
        op.b_token = b[j - 1];
        op.type = (a[i - 1] == b[j - 1]) ? AlignOpType::kMatch
                                         : AlignOpType::kSubstitute;
        out.ops.push_back(op);
        --i;
        --j;
        break;
      }
      case kFromUp: {
        AlignOp op;
        op.type = AlignOpType::kDelete;
        op.a_token = a[i - 1];
        out.ops.push_back(op);
        --i;
        break;
      }
      case kFromLeft: {
        AlignOp op;
        op.type = AlignOpType::kInsert;
        op.b_token = b[j - 1];
        out.ops.push_back(op);
        --j;
        break;
      }
      case kFromNone:
        LOG(FATAL) << "corrupt traceback at (" << i << "," << j << ")";
    }
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

bool AlignmentIsConsistent(const Alignment& alignment,
                           const std::vector<TokenId>& a,
                           const std::vector<TokenId>& b) {
  std::vector<TokenId> ra;
  std::vector<TokenId> rb;
  for (const AlignOp& op : alignment.ops) {
    switch (op.type) {
      case AlignOpType::kMatch:
        if (op.a_token != op.b_token) return false;
        ra.push_back(op.a_token);
        rb.push_back(op.b_token);
        break;
      case AlignOpType::kSubstitute:
        if (op.a_token == op.b_token) return false;
        ra.push_back(op.a_token);
        rb.push_back(op.b_token);
        break;
      case AlignOpType::kInsert:
        rb.push_back(op.b_token);
        break;
      case AlignOpType::kDelete:
        ra.push_back(op.a_token);
        break;
    }
  }
  return ra == a && rb == b;
}

}  // namespace infoshield
