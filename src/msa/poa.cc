#include "msa/poa.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/audit.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

enum Move : uint8_t { kDiag = 0, kSkipNode = 1, kInsertSeq = 2, kStart = 3 };

}  // namespace

PoaGraph::PoaGraph(const std::vector<TokenId>& first,
                   const AlignmentScoring& scoring)
    : scoring_(scoring) {
  if (!first.empty()) {
    uint32_t prev = kInvalidToken;
    for (TokenId t : first) {
      uint32_t id = NewNode(t);
      if (prev != kInvalidToken) AddEdge(prev, id);
      prev = id;
    }
  }
  num_sequences_ = 1;
  RecomputeTopoOrder();
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
}

uint32_t PoaGraph::NewNode(TokenId token) {
  nodes_.push_back(Node{token, 1, {}, {}});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void PoaGraph::AddEdge(uint32_t from, uint32_t to) {
  CHECK_NE(from, to);
  auto& out = nodes_[from].out;
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  nodes_[to].in.push_back(from);
}

void PoaGraph::RecomputeTopoOrder() {
  const size_t n = nodes_.size();
  topo_order_.clear();
  topo_order_.reserve(n);
  topo_rank_.assign(n, 0);
  std::vector<uint32_t> indegree(n);
  // Min-id priority queue makes the order deterministic and keeps the
  // first sequence's spine in creation order.
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> ready;
  for (uint32_t i = 0; i < n; ++i) {
    indegree[i] = static_cast<uint32_t>(nodes_[i].in.size());
    if (indegree[i] == 0) ready.push(i);
  }
  while (!ready.empty()) {
    uint32_t v = ready.top();
    ready.pop();
    topo_rank_[v] = static_cast<uint32_t>(topo_order_.size());
    topo_order_.push_back(v);
    for (uint32_t w : nodes_[v].out) {
      if (--indegree[w] == 0) ready.push(w);
    }
  }
  // Equality fails iff the graph has a cycle.
  CHECK_EQ(topo_order_.size(), n);
}

// analyzer: hot
void PoaGraph::AddSequence(const std::vector<TokenId>& seq) {
  ++num_sequences_;
  if (seq.empty()) return;
  if (nodes_.empty()) {
    uint32_t prev = kInvalidToken;
    for (TokenId t : seq) {
      uint32_t id = NewNode(t);
      if (prev != kInvalidToken) AddEdge(prev, id);
      prev = id;
    }
    RecomputeTopoOrder();
    INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
    return;
  }

  // DP over rows = {virtual start} + nodes in topological order, columns =
  // sequence prefix length. Row r >= 1 corresponds to topo_order_[r - 1].
  const size_t num_rows = topo_order_.size() + 1;
  const size_t m = seq.size();
  std::vector<int> score(num_rows * (m + 1), kNegInf);
  std::vector<uint8_t> move(num_rows * (m + 1), kStart);
  std::vector<uint32_t> from_row(num_rows * (m + 1), 0);
  auto at = [m](size_t r, size_t j) { return r * (m + 1) + j; };

  // Virtual start row: only sequence insertions can precede the graph.
  score[at(0, 0)] = 0;
  for (size_t j = 1; j <= m; ++j) {
    score[at(0, j)] = static_cast<int>(j) * scoring_.gap;
    move[at(0, j)] = kInsertSeq;
    from_row[at(0, j)] = 0;
  }

  // Predecessor-row scratch, hoisted out of the row loop and reused.
  std::vector<uint32_t> preds;
  for (size_t r = 1; r < num_rows; ++r) {
    const Node& v = nodes_[topo_order_[r - 1]];
    // Predecessor rows (virtual start if the node is a source).
    preds.clear();
    if (v.in.empty()) {
      preds.push_back(0);
    } else {
      preds.reserve(v.in.size());
      for (uint32_t p : v.in) preds.push_back(topo_rank_[p] + 1);
    }
    for (size_t j = 0; j <= m; ++j) {
      int best = kNegInf;
      uint8_t best_move = kStart;
      uint32_t best_from = 0;
      for (uint32_t p : preds) {
        // Skip this node (graph gap).
        int skip = score[at(p, j)] + scoring_.gap;
        if (skip > best) {
          best = skip;
          best_move = kSkipNode;
          best_from = p;
        }
        if (j >= 1) {
          int diag = score[at(p, j - 1)] +
                     (v.token == seq[j - 1] ? scoring_.match
                                            : scoring_.mismatch);
          if (diag > best) {
            best = diag;
            best_move = kDiag;
            best_from = p;
          }
        }
      }
      if (j >= 1) {
        int ins = score[at(r, j - 1)] + scoring_.gap;
        if (ins > best) {
          best = ins;
          best_move = kInsertSeq;
          best_from = static_cast<uint32_t>(r);
        }
      }
      score[at(r, j)] = best;
      move[at(r, j)] = best_move;
      from_row[at(r, j)] = best_from;
    }
  }

  // Alignment must consume the whole sequence and end at a sink node (or
  // the virtual start, if the graph were empty — excluded above).
  size_t best_row = 0;
  int best_score = score[at(0, m)];
  for (size_t r = 1; r < num_rows; ++r) {
    if (!nodes_[topo_order_[r - 1]].out.empty()) continue;
    if (score[at(r, m)] > best_score) {
      best_score = score[at(r, m)];
      best_row = r;
    }
  }

  // Backtrace into (move, row, column) steps, then replay forward.
  struct Step {
    uint8_t move;
    uint32_t row;  // row the move lands on
    size_t col;    // column the move lands on
  };
  std::vector<Step> steps;
  steps.reserve(num_rows + m);  // a step consumes a row or a column
  size_t r = best_row;
  size_t j = m;
  while (r != 0 || j != 0) {
    uint8_t mv = move[at(r, j)];
    CHECK_NE(mv, kStart);  // corrupt traceback otherwise
    steps.push_back(Step{mv, static_cast<uint32_t>(r), j});
    uint32_t pr = from_row[at(r, j)];
    switch (mv) {
      case kDiag:
        r = pr;
        --j;
        break;
      case kSkipNode:
        r = pr;
        break;
      case kInsertSeq:
        --j;
        break;
      default:
        LOG(FATAL) << "unreachable";
    }
  }
  std::reverse(steps.begin(), steps.end());

  // Fuse: matched tokens reuse nodes; everything else becomes new nodes.
  uint32_t prev_node = kInvalidToken;
  size_t col = 0;
  for (const Step& step : steps) {
    switch (step.move) {
      case kDiag: {
        uint32_t node_id = topo_order_[step.row - 1];
        uint32_t path_node;
        if (nodes_[node_id].token == seq[col]) {
          ++nodes_[node_id].support;
          path_node = node_id;
        } else {
          path_node = NewNode(seq[col]);
        }
        if (prev_node != kInvalidToken) AddEdge(prev_node, path_node);
        prev_node = path_node;
        ++col;
        break;
      }
      case kInsertSeq: {
        uint32_t path_node = NewNode(seq[col]);
        if (prev_node != kInvalidToken) AddEdge(prev_node, path_node);
        prev_node = path_node;
        ++col;
        break;
      }
      case kSkipNode:
        break;
      default:
        LOG(FATAL) << "unreachable";
    }
  }
  CHECK_EQ(col, m);
  RecomputeTopoOrder();
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
}

std::vector<TokenId> PoaGraph::ConsensusAtThreshold(size_t h) const {
  std::vector<TokenId> out;
  for (uint32_t id : topo_order_) {
    if (nodes_[id].support > h) out.push_back(nodes_[id].token);
  }
  return out;
}

size_t PoaGraph::max_support() const {
  size_t best = 0;
  for (const Node& n : nodes_) best = std::max<size_t>(best, n.support);
  return best;
}

Status PoaGraph::ValidateInvariants() const {
  audit::Auditor a("PoaGraph");
  const size_t n = nodes_.size();

  // Topological bookkeeping: topo_order_ is a permutation of the node ids
  // and topo_rank_ is its exact inverse.
  a.Expect(topo_order_.size() == n,
           StrFormat("topo_order_ has %zu entries for %zu nodes",
                     topo_order_.size(), n));
  a.Expect(topo_rank_.size() == n,
           StrFormat("topo_rank_ has %zu entries for %zu nodes",
                     topo_rank_.size(), n));
  if (topo_order_.size() == n && topo_rank_.size() == n) {
    std::vector<char> seen(n, 0);
    for (size_t i = 0; i < n; ++i) {
      uint32_t id = topo_order_[i];
      if (!a.Expect(id < n, StrFormat("topo_order_[%zu]=%u out of range",
                                      i, id))) {
        continue;
      }
      a.Expect(!seen[id], StrFormat("node %u appears twice in topo_order_",
                                    id));
      seen[id] = 1;
      a.Expect(topo_rank_[id] == i,
               StrFormat("topo_rank_[%u]=%u but topo_order_[%zu]=%u", id,
                         topo_rank_[id], i, id));
    }
  }

  const bool ranks_usable = topo_rank_.size() == n;
  for (uint32_t u = 0; u < n; ++u) {
    const Node& node = nodes_[u];
    a.Expect(node.support >= 1 && node.support <= num_sequences_,
             StrFormat("node %u support %u outside [1, %zu]", u,
                       node.support, num_sequences_));
    std::vector<uint32_t> sorted_out = node.out;
    std::sort(sorted_out.begin(), sorted_out.end());
    a.Expect(std::adjacent_find(sorted_out.begin(), sorted_out.end()) ==
                 sorted_out.end(),
             StrFormat("node %u has duplicate out-edges", u));
    for (uint32_t v : node.out) {
      a.Expect(v != u, StrFormat("node %u has a self-edge", u));
      if (!a.Expect(v < n, StrFormat("edge %u->%u points past %zu nodes",
                                     u, v, n))) {
        continue;
      }
      // Every out-edge is mirrored by exactly one in-edge.
      const auto& in = nodes_[v].in;
      a.Expect(std::count(in.begin(), in.end(), u) == 1,
               StrFormat("edge %u->%u not mirrored once in nodes_[%u].in",
                         u, v, v));
      // A true topological order: edges only go up in rank. This is also
      // the acyclicity proof — any cycle would need a rank-decreasing
      // edge.
      if (ranks_usable && v < n) {
        a.Expect(topo_rank_[u] < topo_rank_[v],
                 StrFormat("edge %u->%u violates topo order (rank %u >= %u)",
                           u, v, topo_rank_[u], topo_rank_[v]));
      }
    }
    for (uint32_t p : node.in) {
      if (!a.Expect(p < n, StrFormat("in-edge %u->%u points past %zu nodes",
                                     p, u, n))) {
        continue;
      }
      const auto& out = nodes_[p].out;
      a.Expect(std::count(out.begin(), out.end(), u) == 1,
               StrFormat("in-edge %u->%u not mirrored once in nodes_[%u].out",
                         p, u, p));
    }
  }
  return a.Finish();
}

std::vector<uint32_t> PoaGraph::SupportByTopoOrder() const {
  std::vector<uint32_t> out;
  out.reserve(topo_order_.size());
  for (uint32_t id : topo_order_) out.push_back(nodes_[id].support);
  return out;
}

}  // namespace infoshield
