#include "msa/profile_msa.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace infoshield {

uint32_t ProfileMsa::Column::CountOf(TokenId t) const {
  auto it = counts.find(t);
  return it == counts.end() ? 0 : it->second;
}

std::pair<TokenId, uint32_t> ProfileMsa::Column::Dominant() const {
  TokenId best_token = kInvalidToken;
  uint32_t best_count = 0;
  // determinism: argmax with a total tie-break (count desc, token asc),
  // so the winner is independent of iteration order.
  for (const auto& [token, count] : counts) {
    if (count > best_count ||
        (count == best_count && token < best_token)) {
      best_token = token;
      best_count = count;
    }
  }
  return {best_token, best_count};
}

uint32_t ProfileMsa::Column::Occupancy() const {
  uint32_t total = 0;
  // determinism: commutative integer sum; order cannot matter.
  for (const auto& [token, count] : counts) total += count;
  return total;
}

ProfileMsa::ProfileMsa(const std::vector<TokenId>& first,
                       const AlignmentScoring& scoring)
    : scoring_(scoring) {
  columns_.reserve(first.size());
  for (TokenId t : first) {
    Column col;
    col.counts.emplace(t, 1);
    columns_.push_back(std::move(col));
  }
  num_sequences_ = 1;
}

double ProfileMsa::ColumnScore(const Column& col, TokenId token) const {
  // Sum-of-pairs expectation against the sequences present in the
  // column; gaps in the column contribute the gap penalty.
  const uint32_t matches = col.CountOf(token);
  const uint32_t occupancy = col.Occupancy();
  const uint32_t mismatches = occupancy - matches;
  const uint32_t gaps = static_cast<uint32_t>(num_sequences_) - occupancy;
  const double total = static_cast<double>(num_sequences_);
  return (static_cast<double>(matches) * scoring_.match +
          static_cast<double>(mismatches) * scoring_.mismatch +
          static_cast<double>(gaps) * scoring_.gap) /
         total;
}

void ProfileMsa::AddSequence(const std::vector<TokenId>& seq) {
  const size_t n = columns_.size();
  const size_t m = seq.size();
  ++num_sequences_;
  if (m == 0) return;
  if (n == 0) {
    for (TokenId t : seq) {
      Column col;
      col.counts.emplace(t, 1);
      columns_.push_back(std::move(col));
    }
    return;
  }

  // NW over (profile columns) x (sequence positions).
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  enum Move : uint8_t { kDiag = 0, kUp = 1, kLeft = 2, kNone = 3 };
  std::vector<double> score((n + 1) * (m + 1), kNegInf);
  std::vector<uint8_t> move((n + 1) * (m + 1), kNone);
  auto at = [m](size_t i, size_t j) { return i * (m + 1) + j; };

  score[at(0, 0)] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    score[at(i, 0)] = score[at(i - 1, 0)] + scoring_.gap;
    move[at(i, 0)] = kUp;
  }
  for (size_t j = 1; j <= m; ++j) {
    score[at(0, j)] = score[at(0, j - 1)] + scoring_.gap;
    move[at(0, j)] = kLeft;
  }
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const double diag =
          score[at(i - 1, j - 1)] + ColumnScore(columns_[i - 1], seq[j - 1]);
      const double up = score[at(i - 1, j)] + scoring_.gap;
      const double left = score[at(i, j - 1)] + scoring_.gap;
      double best = diag;
      uint8_t mv = kDiag;
      if (up > best) {
        best = up;
        mv = kUp;
      }
      if (left > best) {
        best = left;
        mv = kLeft;
      }
      score[at(i, j)] = best;
      move[at(i, j)] = mv;
    }
  }

  // Backtrace into per-column actions, then rebuild the profile.
  struct Action {
    uint8_t move;
    size_t col;  // profile column consumed (kDiag / kUp)
    size_t pos;  // sequence position consumed (kDiag / kLeft)
  };
  std::vector<Action> actions;
  size_t i = n;
  size_t j = m;
  while (i > 0 || j > 0) {
    const uint8_t mv = move[at(i, j)];
    CHECK_NE(mv, kNone);
    switch (mv) {
      case kDiag:
        actions.push_back({mv, i - 1, j - 1});
        --i;
        --j;
        break;
      case kUp:
        actions.push_back({mv, i - 1, 0});
        --i;
        break;
      case kLeft:
        actions.push_back({mv, 0, j - 1});
        --j;
        break;
    }
  }
  std::reverse(actions.begin(), actions.end());

  std::vector<Column> next;
  next.reserve(n + m);
  for (const Action& a : actions) {
    switch (a.move) {
      case kDiag: {
        Column col = std::move(columns_[a.col]);
        ++col.counts[seq[a.pos]];
        next.push_back(std::move(col));
        break;
      }
      case kUp:
        // Sequence skips this column (gap for the new sequence).
        next.push_back(std::move(columns_[a.col]));
        break;
      case kLeft: {
        // New column occupied only by the new sequence.
        Column col;
        col.counts.emplace(seq[a.pos], 1);
        next.push_back(std::move(col));
        break;
      }
    }
  }
  columns_ = std::move(next);
}

std::vector<TokenId> ProfileMsa::ConsensusAtThreshold(size_t h) const {
  std::vector<TokenId> out;
  for (const Column& col : columns_) {
    auto [token, count] = col.Dominant();
    if (token != kInvalidToken && count > h) out.push_back(token);
  }
  return out;
}

}  // namespace infoshield
