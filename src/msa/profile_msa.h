// Profile-based multiple sequence alignment in the spirit of
// Barton & Sternberg (1987): the alignment is a sequence of columns,
// each holding per-token occupancy counts; every new sequence is aligned
// against the profile with dynamic programming using expected
// (sum-of-pairs style) column scores, then folded into the counts.
//
// The paper discusses this family in §II-D and notes its weakness —
// profiles blur alternatives that POA keeps as distinct branches — which
// is why InfoShield chooses POA. This implementation exists to back that
// comparison (bench_ablation) and to demonstrate the fine stage's
// MSA-backend independence.

#ifndef INFOSHIELD_MSA_PROFILE_MSA_H_
#define INFOSHIELD_MSA_PROFILE_MSA_H_

#include <unordered_map>
#include <vector>

#include "msa/aligner.h"
#include "msa/pairwise.h"
#include "text/vocabulary.h"

namespace infoshield {

class ProfileMsa : public MsaAligner {
 public:
  explicit ProfileMsa(const std::vector<TokenId>& first,
                      const AlignmentScoring& scoring = {});

  void AddSequence(const std::vector<TokenId>& seq) override;

  // A column contributes its most frequent token when that token occurs
  // in more than h sequences (ties broken toward the smaller token id).
  std::vector<TokenId> ConsensusAtThreshold(size_t h) const override;

  size_t num_sequences() const override { return num_sequences_; }
  size_t column_count() const { return columns_.size(); }

 private:
  struct Column {
    // token -> number of sequences carrying it in this column.
    std::unordered_map<TokenId, uint32_t> counts;

    uint32_t CountOf(TokenId t) const;
    // (token, count) with the highest count; kInvalidToken if empty.
    std::pair<TokenId, uint32_t> Dominant() const;
    uint32_t Occupancy() const;
  };

  // Expected score of aligning `token` against column `col`.
  double ColumnScore(const Column& col, TokenId token) const;

  AlignmentScoring scoring_;
  std::vector<Column> columns_;
  size_t num_sequences_ = 0;
};

}  // namespace infoshield

#endif  // INFOSHIELD_MSA_PROFILE_MSA_H_
