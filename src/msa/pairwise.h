// Pairwise global alignment (Needleman–Wunsch) over token-id sequences.
//
// Used in two places:
//  * Candidate Alignment (§IV-B1): C(d | d1) — can document d be encoded
//    cheaply against document d1?
//  * Cost evaluation: each document's encoding cost against a consensus /
//    template is derived from its alignment to the template's constant
//    tokens (Definition 3).
//
// Conventions: the first sequence `a` is the template/reference, the
// second `b` is the document. kDelete = reference token absent from the
// document; kInsert = document token absent from the reference.

#ifndef INFOSHIELD_MSA_PAIRWISE_H_
#define INFOSHIELD_MSA_PAIRWISE_H_

#include <cstdint>
#include <vector>

#include "text/vocabulary.h"

namespace infoshield {

enum class AlignOpType : uint8_t {
  kMatch = 0,
  kSubstitute = 1,
  kInsert = 2,
  kDelete = 3,
};

struct AlignOp {
  AlignOpType type;
  // Valid for kMatch / kSubstitute / kDelete.
  TokenId a_token = kInvalidToken;
  // Valid for kMatch / kSubstitute / kInsert.
  TokenId b_token = kInvalidToken;
};

inline bool operator==(const AlignOp& x, const AlignOp& y) {
  return x.type == y.type && x.a_token == y.a_token && x.b_token == y.b_token;
}

struct Alignment {
  std::vector<AlignOp> ops;

  // Number of alignment columns (l̂ in the paper's notation).
  size_t length() const { return ops.size(); }

  size_t CountType(AlignOpType t) const;
  size_t matches() const { return CountType(AlignOpType::kMatch); }
  size_t substitutions() const { return CountType(AlignOpType::kSubstitute); }
  size_t insertions() const { return CountType(AlignOpType::kInsert); }
  size_t deletions() const { return CountType(AlignOpType::kDelete); }

  // Unmatched columns: everything but matches (e_d in Definition 3).
  size_t unmatched() const { return ops.size() - matches(); }
};

struct AlignmentScoring {
  int match = 1;
  int mismatch = -1;
  int gap = -1;
};

// Reusable DP buffers for NeedlemanWunsch. The fine stage aligns every
// cluster member against every probed consensus; without reuse each call
// allocates (and faults in) two (|a|+1)·(|b|+1) tables. One workspace per
// calling loop amortizes that to high-water-mark allocations. A
// workspace must not be shared across threads.
struct AlignmentWorkspace {
  std::vector<int> score;
  std::vector<uint8_t> move;
};

// Global alignment of b against a. Deterministic tie-breaking
// (diagonal > delete > insert). O(|a|·|b|) time and space. `workspace`,
// when given, supplies the DP tables (contents are scratch); the result
// is identical with or without it.
Alignment NeedlemanWunsch(const std::vector<TokenId>& a,
                          const std::vector<TokenId>& b,
                          const AlignmentScoring& scoring = {},
                          AlignmentWorkspace* workspace = nullptr);

// Verifies that replaying `ops` reconstructs exactly (a, b); used by tests
// and debug checks.
bool AlignmentIsConsistent(const Alignment& alignment,
                           const std::vector<TokenId>& a,
                           const std::vector<TokenId>& b);

}  // namespace infoshield

#endif  // INFOSHIELD_MSA_PAIRWISE_H_
