#include "text/corpus.h"

#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace infoshield {

Status Corpus::CheckRoom(size_t additional) const {
  const size_t effective = docs_.size() + debug_size_offset_;
  if (additional <= kMaxDocuments && effective <= kMaxDocuments - additional) {
    return Status::Ok();
  }
  return Status::ResourceExhausted(
      StrFormat("corpus holds %zu documents; adding %zu would exceed the "
                "DocId capacity of %zu",
                effective, additional, kMaxDocuments));
}

DocId Corpus::Add(std::string_view text) {
  Status room = CheckRoom(1);
  CHECK(room.ok()) << room.ToString();
  Document d;
  d.id = static_cast<DocId>(docs_.size());
  d.raw.assign(text);
  for (const std::string& tok : tokenizer_.Tokenize(text)) {
    d.tokens.push_back(vocab_.Intern(tok));
  }
  docs_.push_back(std::move(d));
  return docs_.back().id;
}

Result<DocId> Corpus::TryAdd(std::string_view text) {
  INFOSHIELD_RETURN_IF_ERROR(CheckRoom(1));
  return Add(text);
}

DocId Corpus::AddBatch(const std::vector<std::string>& texts,
                       size_t num_threads) {
  Status room = CheckRoom(texts.size());
  CHECK(room.ok()) << room.ToString();
  const DocId first = static_cast<DocId>(docs_.size());
  // Tokenization touches no shared state; each worker writes only its
  // own token_lists slot. Interning below stays serial and in input
  // order, so token ids come out exactly as a sequential Add loop's.
  std::vector<std::vector<std::string>> token_lists(texts.size());
  ThreadPool::ParallelFor(num_threads, texts.size(), [&](size_t t) {
    token_lists[t] = tokenizer_.Tokenize(texts[t]);
  });
  for (size_t t = 0; t < texts.size(); ++t) {
    Document d;
    d.id = static_cast<DocId>(docs_.size());
    d.raw = texts[t];
    d.tokens.reserve(token_lists[t].size());
    for (const std::string& tok : token_lists[t]) {
      d.tokens.push_back(vocab_.Intern(tok));
    }
    docs_.push_back(std::move(d));
  }
  return first;
}

Result<DocId> Corpus::TryAddBatch(const std::vector<std::string>& texts,
                                  size_t num_threads) {
  INFOSHIELD_RETURN_IF_ERROR(CheckRoom(texts.size()));
  return AddBatch(texts, num_threads);
}

DocId Corpus::AddTokens(std::vector<TokenId> tokens, std::string raw) {
  Status room = CheckRoom(1);
  CHECK(room.ok()) << room.ToString();
  for (TokenId t : tokens) CHECK_LT(t, vocab_.size());
  Document d;
  d.id = static_cast<DocId>(docs_.size());
  d.tokens = std::move(tokens);
  d.raw = std::move(raw);
  docs_.push_back(std::move(d));
  return docs_.back().id;
}

const Document& Corpus::doc(DocId id) const {
  CHECK_LT(id, docs_.size());
  return docs_[id];
}

std::string Corpus::TokenText(DocId id) const {
  const Document& d = doc(id);
  std::string out;
  for (size_t i = 0; i < d.tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += vocab_.Word(d.tokens[i]);
  }
  return out;
}

}  // namespace infoshield
