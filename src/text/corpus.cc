#include "text/corpus.h"

#include "util/logging.h"

namespace infoshield {

DocId Corpus::Add(std::string_view text) {
  Document d;
  d.id = static_cast<DocId>(docs_.size());
  d.raw.assign(text);
  for (const std::string& tok : tokenizer_.Tokenize(text)) {
    d.tokens.push_back(vocab_.Intern(tok));
  }
  docs_.push_back(std::move(d));
  return docs_.back().id;
}

DocId Corpus::AddTokens(std::vector<TokenId> tokens, std::string raw) {
  for (TokenId t : tokens) CHECK_LT(t, vocab_.size());
  Document d;
  d.id = static_cast<DocId>(docs_.size());
  d.tokens = std::move(tokens);
  d.raw = std::move(raw);
  docs_.push_back(std::move(d));
  return docs_.back().id;
}

const Document& Corpus::doc(DocId id) const {
  CHECK_LT(id, docs_.size());
  return docs_[id];
}

std::string Corpus::TokenText(DocId id) const {
  const Document& d = doc(id);
  std::string out;
  for (size_t i = 0; i < d.tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += vocab_.Word(d.tokens[i]);
  }
  return out;
}

}  // namespace infoshield
