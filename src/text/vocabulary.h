// Token interning: bidirectional mapping between token strings and dense
// 32-bit ids. Document token sequences are stored as id vectors so that
// alignment and cost computation operate on integers.

#ifndef INFOSHIELD_TEXT_VOCABULARY_H_
#define INFOSHIELD_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace infoshield {

using TokenId = uint32_t;

inline constexpr TokenId kInvalidToken = 0xFFFFFFFFu;

class Vocabulary {
 public:
  Vocabulary() = default;

  // Returns the id for `token`, interning it if new.
  TokenId Intern(std::string_view token);

  // Returns the id for `token`, or kInvalidToken if not present.
  TokenId Find(std::string_view token) const;

  // Pre-condition: id < size(). Checked.
  const std::string& Word(TokenId id) const;

  size_t size() const { return words_.size(); }
  bool empty() const { return words_.empty(); }

  // lg V used throughout the MDL cost model; V clamped to >= 2 so the
  // per-word cost is never zero on degenerate corpora.
  double BitsPerWord() const;

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, TokenId> index_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_TEXT_VOCABULARY_H_
