#include "text/vocabulary.h"

#include <cmath>

#include "util/logging.h"

namespace infoshield {

TokenId Vocabulary::Intern(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(words_.size());
  words_.emplace_back(token);
  index_.emplace(words_.back(), id);
  return id;
}

TokenId Vocabulary::Find(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kInvalidToken : it->second;
}

const std::string& Vocabulary::Word(TokenId id) const {
  CHECK_LT(id, words_.size());
  return words_[id];
}

double Vocabulary::BitsPerWord() const {
  size_t v = words_.size() < 2 ? 2 : words_.size();
  return std::log2(static_cast<double>(v));
}

}  // namespace infoshield
