// N-gram ("phrase") extraction and hashing.
//
// InfoShield-Coarse works over phrases of 1..max_n consecutive tokens
// (paper §IV-A1, n <= 5 by default). Phrases are identified by a 64-bit
// hash of their token-id sequence; collisions at 64 bits are negligible at
// the corpus sizes involved and, in the worst case, only make the coarse
// stage slightly more permissive — which InfoShield-Fine then corrects.

#ifndef INFOSHIELD_TEXT_NGRAM_H_
#define INFOSHIELD_TEXT_NGRAM_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "text/vocabulary.h"

namespace infoshield {

using PhraseHash = uint64_t;

// FNV-1a over the token-id bytes, seeded with the n-gram length so that
// e.g. the unigram (5) and the bigram (5,0) cannot collide trivially.
PhraseHash HashNgram(const TokenId* tokens, size_t n);

struct NgramSpan {
  PhraseHash hash;
  uint32_t begin;  // token offset in the document
  uint32_t n;      // gram length
};

// All n-grams of lengths 1..max_n in a document, in document order.
std::vector<NgramSpan> ExtractNgrams(const Document& doc, size_t max_n);

}  // namespace infoshield

#endif  // INFOSHIELD_TEXT_NGRAM_H_
