// Document and Corpus: the in-memory representation every stage of the
// pipeline consumes. A Document is a tokenized, interned view of one input
// text; the Corpus owns the shared Vocabulary.

#ifndef INFOSHIELD_TEXT_CORPUS_H_
#define INFOSHIELD_TEXT_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace infoshield {

using DocId = uint32_t;

struct Document {
  // Position in the corpus.
  DocId id = 0;
  // Interned token sequence.
  std::vector<TokenId> tokens;
  // Original text as given (kept for visualization).
  std::string raw;

  size_t length() const { return tokens.size(); }
};

class Corpus {
 public:
  Corpus() = default;
  explicit Corpus(TokenizerOptions tokenizer_options)
      : tokenizer_(tokenizer_options) {}

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  // DocId is uint32_t, so the corpus can hold at most 2^32 - 1 documents
  // (the last representable id is reserved so "the next id" — what
  // AddBatch returns for an empty batch — always fits in a DocId).
  // Appending past this limit would silently wrap ids and corrupt the
  // doc–phrase graph; Add/AddBatch/AddTokens CHECK-fail instead, and the
  // TryAdd/TryAddBatch variants return ResourceExhausted for callers
  // (e.g. the incremental ingestion path) that must surface the error.
  static constexpr size_t kMaxDocuments =
      static_cast<size_t>(UINT32_MAX) - 1;

  // Tokenizes, interns, and appends a document; returns its DocId.
  // CHECK-fails when the corpus is full (see kMaxDocuments).
  DocId Add(std::string_view text);

  // As Add, but reports a full corpus as Status ResourceExhausted
  // instead of dying. On error the corpus is unchanged.
  Result<DocId> TryAdd(std::string_view text);

  // Tokenizes `texts` across `num_threads` workers (1 = sequential,
  // 0 = hardware concurrency), then interns and appends them in input
  // order. Tokenization is a pure per-text function and interning runs
  // serially in order, so the resulting documents, token ids, and
  // vocabulary are byte-identical to calling Add on each text in turn.
  // Returns the DocId of the first appended document (the rest follow
  // consecutively); returns the would-be next id when `texts` is empty.
  // CHECK-fails when the batch would overflow kMaxDocuments.
  DocId AddBatch(const std::vector<std::string>& texts, size_t num_threads);

  // As AddBatch, but reports an overflowing batch as ResourceExhausted
  // instead of dying. The check is all-or-nothing and happens before any
  // tokenization: on error the corpus is unchanged.
  Result<DocId> TryAddBatch(const std::vector<std::string>& texts,
                            size_t num_threads);

  // Appends a pre-tokenized document (token ids must be valid for the
  // corpus vocabulary — used by data generators that intern directly).
  DocId AddTokens(std::vector<TokenId> tokens, std::string raw);

  const Document& doc(DocId id) const;
  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  const std::vector<Document>& docs() const { return docs_; }
  const Vocabulary& vocab() const { return vocab_; }
  Vocabulary& mutable_vocab() { return vocab_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }

  // Reconstructs a document's tokens as a space-joined string.
  std::string TokenText(DocId id) const;

 private:
  friend class CorpusTestPeer;

  // OK iff `additional` more documents fit under kMaxDocuments. The test
  // peer raises debug_size_offset_ to exercise the limit without
  // materializing ~2^32 documents.
  Status CheckRoom(size_t additional) const;

  Tokenizer tokenizer_;
  Vocabulary vocab_;
  std::vector<Document> docs_;
  size_t debug_size_offset_ = 0;
};

}  // namespace infoshield

#endif  // INFOSHIELD_TEXT_CORPUS_H_
