#include "text/tokenizer.h"

namespace infoshield {

namespace {

inline bool IsAsciiAlpha(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

inline bool IsAsciiDigit(unsigned char c) { return c >= '0' && c <= '9'; }

inline bool IsAsciiSpace(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

size_t ValidUtf8SequenceLength(std::string_view text, size_t pos) {
  if (pos >= text.size()) return 0;
  const unsigned char lead = static_cast<unsigned char>(text[pos]);
  size_t len;
  // Second-byte range per lead (RFC 3629 table): the default 0x80..0xBF
  // tightens for the leads that would otherwise admit overlong forms
  // (E0, F0), surrogates (ED), or code points above U+10FFFF (F4).
  unsigned char lo = 0x80, hi = 0xBF;
  if ((lead & 0xE0) == 0xC0) {
    if (lead < 0xC2) return 0;  // C0/C1: overlong 2-byte forms
    len = 2;
  } else if ((lead & 0xF0) == 0xE0) {
    len = 3;
    if (lead == 0xE0) lo = 0xA0;        // overlong 3-byte forms
    else if (lead == 0xED) hi = 0x9F;   // UTF-16 surrogates
  } else if ((lead & 0xF8) == 0xF0) {
    if (lead > 0xF4) return 0;  // F5..F7: above U+10FFFF
    len = 4;
    if (lead == 0xF0) lo = 0x90;        // overlong 4-byte forms
    else if (lead == 0xF4) hi = 0x8F;   // above U+10FFFF
  } else {
    return 0;  // ASCII or a stray continuation byte
  }
  if (pos + len > text.size()) return 0;
  const unsigned char second = static_cast<unsigned char>(text[pos + 1]);
  if (second < lo || second > hi) return 0;
  for (size_t k = 2; k < len; ++k) {
    const unsigned char cont = static_cast<unsigned char>(text[pos + k]);
    if ((cont & 0xC0) != 0x80) return 0;
  }
  return len;
}

bool IsValidUtf8(std::string_view text) {
  size_t i = 0;
  while (i < text.size()) {
    if (static_cast<unsigned char>(text[i]) < 0x80) {
      ++i;
      continue;
    }
    const size_t len = ValidUtf8SequenceLength(text, i);
    if (len == 0) return false;
    i += len;
  }
  return true;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  size_t i = 0;
  bool in_url = false;

  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
    in_url = false;
  };

  while (i < text.size()) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (c >= 0x80) {
      // Multi-byte UTF-8 sequence: copy it whole as token content, but
      // only when it is well-formed per RFC 3629 (ValidUtf8SequenceLength
      // rejects truncation, bad continuation bytes, overlong encodings,
      // surrogates, and code points above U+10FFFF). Anything malformed
      // degrades to a single-byte copy so a bad lead byte can never
      // swallow the ASCII that follows it.
      size_t len = ValidUtf8SequenceLength(text, i);
      if (len == 0) len = 1;
      current.append(text.substr(i, len));
      i += len;
      continue;
    }
    if (IsAsciiSpace(c)) {
      flush();
      ++i;
      continue;
    }
    if (IsAsciiAlpha(c)) {
      char out = c;
      if (options_.lowercase && c >= 'A' && c <= 'Z') {
        out = static_cast<char>(c - 'A' + 'a');
      }
      current.push_back(out);
      // Detect the start of a URL so its punctuation is preserved.
      if (!in_url && (current == "http" || current == "https")) {
        // Confirmed a URL only once "://" follows; cheap lookahead.
        if (text.substr(i + 1, 3) == "://") in_url = true;
      }
      ++i;
      continue;
    }
    if (IsAsciiDigit(c)) {
      if (options_.keep_digits) {
        current.push_back(static_cast<char>(c));
      } else {
        flush();
      }
      ++i;
      continue;
    }
    // ASCII punctuation.
    if (in_url) {
      current.push_back(static_cast<char>(c));
    } else if (options_.strip_punctuation) {
      flush();
    } else {
      current.push_back(static_cast<char>(c));
    }
    ++i;
  }
  flush();
  return tokens;
}

}  // namespace infoshield
