#include "text/tokenizer.h"

namespace infoshield {

namespace {

inline bool IsAsciiAlpha(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

inline bool IsAsciiDigit(unsigned char c) { return c >= '0' && c <= '9'; }

inline bool IsAsciiSpace(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  size_t i = 0;
  bool in_url = false;

  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
    in_url = false;
  };

  while (i < text.size()) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (c >= 0x80) {
      // Multi-byte UTF-8 sequence: copy it whole as token content. The
      // lead byte only *claims* a length; every claimed continuation
      // byte must actually be one (10xxxxxx). A truncated or malformed
      // sequence degrades to a single-byte copy so a bad lead byte can
      // never swallow the ASCII that follows it — stray continuation
      // bytes and invalid leads (0xF8+) take the same one-byte path.
      size_t len = 1;
      if ((c & 0xE0) == 0xC0) len = 2;
      else if ((c & 0xF0) == 0xE0) len = 3;
      else if ((c & 0xF8) == 0xF0) len = 4;
      if (i + len > text.size()) {
        len = 1;
      } else {
        for (size_t k = 1; k < len; ++k) {
          unsigned char cont = static_cast<unsigned char>(text[i + k]);
          if ((cont & 0xC0) != 0x80) {
            len = 1;
            break;
          }
        }
      }
      current.append(text.substr(i, len));
      i += len;
      continue;
    }
    if (IsAsciiSpace(c)) {
      flush();
      ++i;
      continue;
    }
    if (IsAsciiAlpha(c)) {
      char out = c;
      if (options_.lowercase && c >= 'A' && c <= 'Z') {
        out = static_cast<char>(c - 'A' + 'a');
      }
      current.push_back(out);
      // Detect the start of a URL so its punctuation is preserved.
      if (!in_url && (current == "http" || current == "https")) {
        // Confirmed a URL only once "://" follows; cheap lookahead.
        if (text.substr(i + 1, 3) == "://") in_url = true;
      }
      ++i;
      continue;
    }
    if (IsAsciiDigit(c)) {
      if (options_.keep_digits) {
        current.push_back(static_cast<char>(c));
      } else {
        flush();
      }
      ++i;
      continue;
    }
    // ASCII punctuation.
    if (in_url) {
      current.push_back(static_cast<char>(c));
    } else if (options_.strip_punctuation) {
      flush();
    } else {
      current.push_back(static_cast<char>(c));
    }
    ++i;
  }
  flush();
  return tokens;
}

}  // namespace infoshield
