// Language-independent tokenizer.
//
// InfoShield is language-agnostic (paper §V-F, Advantage 1): no stop-word
// lists, no stemming, no language-specific rules. The tokenizer therefore
// only (a) lowercases ASCII letters, (b) treats runs of ASCII punctuation
// as separators, and (c) passes multi-byte UTF-8 sequences through intact
// so that Spanish/Italian accents and Japanese text survive as token
// characters. URLs ("http..."-prefixed runs) are kept as single tokens
// because they are strong near-duplicate evidence in spam campaigns.

#ifndef INFOSHIELD_TEXT_TOKENIZER_H_
#define INFOSHIELD_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace infoshield {

struct TokenizerOptions {
  // Lowercase ASCII letters (paper's preprocessing lowercases text).
  bool lowercase = true;
  // Treat ASCII punctuation as separators. When false, punctuation
  // characters become part of tokens (whitespace-only splitting).
  bool strip_punctuation = true;
  // Digits are token characters (prices, phone numbers matter for HT ads).
  bool keep_digits = true;
};

class Tokenizer {
 public:
  Tokenizer() = default;
  explicit Tokenizer(TokenizerOptions options) : options_(options) {}

  // Splits UTF-8 text into tokens per the options.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_TEXT_TOKENIZER_H_
