// Language-independent tokenizer.
//
// InfoShield is language-agnostic (paper §V-F, Advantage 1): no stop-word
// lists, no stemming, no language-specific rules. The tokenizer therefore
// only (a) lowercases ASCII letters, (b) treats runs of ASCII punctuation
// as separators, and (c) passes multi-byte UTF-8 sequences through intact
// so that Spanish/Italian accents and Japanese text survive as token
// characters. URLs ("http..."-prefixed runs) are kept as single tokens
// because they are strong near-duplicate evidence in spam campaigns.

#ifndef INFOSHIELD_TEXT_TOKENIZER_H_
#define INFOSHIELD_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace infoshield {

struct TokenizerOptions {
  // Lowercase ASCII letters (paper's preprocessing lowercases text).
  bool lowercase = true;
  // Treat ASCII punctuation as separators. When false, punctuation
  // characters become part of tokens (whitespace-only splitting).
  bool strip_punctuation = true;
  // Digits are token characters (prices, phone numbers matter for HT ads).
  bool keep_digits = true;
};

// Length (2..4) of the well-formed UTF-8 multi-byte sequence starting at
// text[pos], or 0 when text[pos] does not start one (ASCII byte, stray
// continuation byte, truncated sequence, overlong encoding, surrogate
// code point U+D800..U+DFFF, or a code point above U+10FFFF — RFC 3629).
// This is the exact acceptance test Tokenizer uses: sequences it rejects
// degrade to single-byte copies in token output.
size_t ValidUtf8SequenceLength(std::string_view text, size_t pos);

// True iff `text` is entirely well-formed UTF-8 (ASCII plus sequences
// accepted by ValidUtf8SequenceLength).
bool IsValidUtf8(std::string_view text);

class Tokenizer {
 public:
  Tokenizer() = default;
  explicit Tokenizer(TokenizerOptions options) : options_(options) {}

  // Splits UTF-8 text into tokens per the options.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_TEXT_TOKENIZER_H_
