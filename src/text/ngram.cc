#include "text/ngram.h"

namespace infoshield {

PhraseHash HashNgram(const TokenId* tokens, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL ^ (0x100000001b3ULL * n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t t = tokens[i];
    for (int b = 0; b < 4; ++b) {
      h ^= (t >> (8 * b)) & 0xFFu;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::vector<NgramSpan> ExtractNgrams(const Document& doc, size_t max_n) {
  std::vector<NgramSpan> out;
  const size_t len = doc.tokens.size();
  if (len == 0 || max_n == 0) return out;
  out.reserve(len * max_n);
  for (size_t begin = 0; begin < len; ++begin) {
    const size_t limit = std::min(max_n, len - begin);
    for (size_t n = 1; n <= limit; ++n) {
      out.push_back(NgramSpan{HashNgram(doc.tokens.data() + begin, n),
                              static_cast<uint32_t>(begin),
                              static_cast<uint32_t>(n)});
    }
  }
  return out;
}

}  // namespace infoshield
