// MinHash signatures over k-token shingles (DESIGN.md §16).
//
// The MinHash/LSH coarse backend replaces the tf-idf top-phrase graph
// with the standard sub-linear near-duplicate candidate generator: each
// document is reduced to a fixed-width signature whose j-th component is
// the minimum of a 64-bit multiply-shift hash h_j over the document's
// k-token shingle set. For two documents the probability that one
// signature component agrees equals their shingle-set Jaccard
// similarity, so the signature is an unbiased Jaccard sketch with
// Chernoff-bounded error O(1/sqrt(num_hashes)).
//
// Shingles reuse the existing tokenizer + n-gram machinery: a shingle is
// HashNgram over k consecutive TokenIds, so the backend sees exactly the
// token stream the tf-idf backend does. Signatures are a pure function
// of (tokens, params) — no document-frequency table, no global barrier —
// which is what lets the coarse stage scale past the df-freeze point.

#ifndef INFOSHIELD_LSH_MINHASH_H_
#define INFOSHIELD_LSH_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace infoshield {

struct MinHashParams {
  // Signature width. More hashes tighten the Jaccard estimate
  // (tolerance ~ sqrt(ln(2/delta) / (2 * num_hashes)) by Hoeffding) at
  // linear cost per shingle. Must equal LshParams::bands * rows.
  size_t num_hashes = 128;
  // Shingle length in tokens. k = 1 degenerates to bag-of-words overlap
  // (word order ignored); larger k makes the sketch order-sensitive and
  // sharper, at the cost of treating short edits as bigger differences.
  // Documents shorter than k tokens contribute one whole-document
  // shingle so they still carry a signature.
  size_t shingle_k = 3;
  // Seeds the multiply-shift hash family (SplitMix64 expansion). Two
  // runs with the same seed draw the same family, so signatures are
  // reproducible corpus-independently.
  uint64_t seed = 0x1f05a661u;

  // OK iff the parameters define a usable hash family
  // (InvalidArgument otherwise; never dies).
  Status Validate() const;
};

// One document's MinHash signature: exactly num_hashes 64-bit minima,
// or empty for a document with no tokens.
using MinHashSignature = std::vector<uint64_t>;

// The hash family: num_hashes (a, b) pairs for the multiply-shift
// h_j(x) = a_j * x + b_j over uint64 (a_j forced odd so the map is a
// bijection on Z/2^64 and the minimum is well distributed). Drawn once
// and shared by every signature computation in a run.
class MinHashFamily {
 public:
  // CHECK-fails on invalid params — callers validate first (the coarse
  // backend and CLI both call MinHashParams::Validate and surface the
  // Status; reaching here with bad params is a programming error).
  explicit MinHashFamily(const MinHashParams& params);

  const MinHashParams& params() const { return params_; }
  size_t num_hashes() const { return params_.num_hashes; }

  // The document's signature: per hash j, the minimum of h_j over the
  // k-shingle hashes of `tokens`. Empty input yields an empty
  // signature. Pure and thread-safe (the family is immutable).
  MinHashSignature Signature(const std::vector<TokenId>& tokens) const;

 private:
  MinHashParams params_;
  std::vector<uint64_t> mul_;  // a_j (odd)
  std::vector<uint64_t> add_;  // b_j
};

// Fraction of agreeing components — the unbiased Jaccard estimate.
// Signatures must be the same width; two empty signatures estimate 0
// (an empty document shares nothing).
double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b);

// All k-shingle hashes of a token sequence, in document order (shorter
// documents yield one whole-sequence shingle). Exposed for tests and
// for exact-Jaccard ground truth in the benches.
std::vector<uint64_t> ShingleHashes(const std::vector<TokenId>& tokens,
                                    size_t shingle_k);

}  // namespace infoshield

#endif  // INFOSHIELD_LSH_MINHASH_H_
