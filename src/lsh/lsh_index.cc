#include "lsh/lsh_index.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace infoshield {

Status LshParams::Validate(const MinHashParams& minhash) const {
  Status minhash_status = minhash.Validate();
  if (!minhash_status.ok()) return minhash_status;
  if (bands == 0) {
    return Status::InvalidArgument("LSH bands must be positive");
  }
  if (rows == 0) {
    return Status::InvalidArgument("LSH rows must be positive");
  }
  if (bands * rows != minhash.num_hashes) {
    return Status::InvalidArgument(
        "LSH banding must tile the signature exactly: bands * rows == "
        "num_hashes (got " +
        std::to_string(bands) + " * " + std::to_string(rows) +
        " != " + std::to_string(minhash.num_hashes) + ")");
  }
  return Status::Ok();
}

std::vector<uint64_t> BandKeys(const MinHashSignature& sig,
                               const LshParams& params) {
  std::vector<uint64_t> keys;
  if (sig.empty()) return keys;
  CHECK(sig.size() == params.bands * params.rows)
      << "signature width does not match the banding";
  keys.reserve(params.bands);
  for (size_t band = 0; band < params.bands; ++band) {
    // Chained SplitMix64 over the band's rows, seeded with the band
    // index so keys from different bands live in disjoint key spaces
    // (the HashNgram length-seeding trick).
    uint64_t h = 0x9e3779b97f4a7c15ull * (band + 1);
    for (size_t r = 0; r < params.rows; ++r) {
      uint64_t state = h ^ sig[band * params.rows + r];
      h = SplitMix64(state);
    }
    keys.push_back(h);
  }
  return keys;
}

void LshIndex::Build(const std::vector<MinHashSignature>& signatures,
                     size_t num_threads) {
  const size_t n = signatures.size();
  if (n == 0) return;
  const size_t threads = ThreadPool::ResolveNumThreads(num_threads);
  const size_t num_chunks = std::min(n, threads * 4);
  // Each worker owns a contiguous chunk of documents, accumulates its
  // bucket inserts into a private shard-partitioned buffer, and flushes
  // each shard under that shard's Mutex exactly once — the
  // ShardedPhraseCounter discipline, so lock traffic is O(shards) per
  // chunk instead of O(docs * bands).
  ThreadPool::ParallelFor(threads, num_chunks, [&](size_t chunk) {
    const size_t begin = chunk * n / num_chunks;
    const size_t end = (chunk + 1) * n / num_chunks;
    std::array<std::unordered_map<uint64_t, std::vector<DocId>>, kNumShards>
        local;
    // Most band keys are unique (non-duplicate documents never share
    // one), so size each local shard for the worst case up front —
    // growing a multi-million-entry map through rehashes dominates the
    // build otherwise.
    const size_t expected = (end - begin) * params_.bands / kNumShards + 1;
    // determinism: reserve() only — no elements exist yet, nothing to
    // observe in any order.
    for (auto& shard : local) shard.reserve(expected);
    for (size_t d = begin; d < end; ++d) {
      const std::vector<uint64_t> keys = BandKeys(signatures[d], params_);
      for (const uint64_t key : keys) {
        local[ShardOf(key)][key].push_back(static_cast<DocId>(d));
      }
    }
    for (size_t s = 0; s < kNumShards; ++s) {
      if (local[s].empty()) continue;
      MutexLock lock(&shards_[s].mu);
      // determinism: merge order only affects bucket-internal member
      // order, which no reader observes unsorted (see header).
      for (auto& [key, docs] : local[s]) {
        std::vector<DocId>& bucket = shards_[s].buckets[key];
        bucket.insert(bucket.end(), docs.begin(), docs.end());
      }
    }
  });
}

std::vector<DocId> LshIndex::Query(const MinHashSignature& sig) const {
  std::vector<DocId> out;
  const std::vector<uint64_t> keys = BandKeys(sig, params_);
  for (const uint64_t key : keys) {
    const Shard& shard = shards_[ShardOf(key)];
    MutexLock lock(&shard.mu);
    auto it = shard.buckets.find(key);
    if (it == shard.buckets.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

LshIndex::Stats LshIndex::ComputeStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    stats.num_buckets += shard.buckets.size();
    // determinism: commutative aggregation (sum/max) only; no element
    // order observed.
    for (const auto& [key, docs] : shard.buckets) {
      stats.max_bucket = std::max(stats.max_bucket, docs.size());
      stats.candidate_pairs += docs.size() * (docs.size() - 1) / 2;
    }
  }
  return stats;
}

}  // namespace infoshield
