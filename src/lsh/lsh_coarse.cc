#include "lsh/lsh_coarse.h"

#include <algorithm>
#include <vector>

#include "graph/union_find.h"
#include "lsh/lsh_index.h"
#include "lsh/minhash.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace infoshield {

// analyzer: hot
CoarseResult RunLshCoarse(const Corpus& corpus, const CoarseOptions& options,
                          size_t num_threads) {
  CHECK(options.lsh.Validate(options.minhash).ok())
      << "invalid MinHash/LSH parameters reached RunLshCoarse: "
      << options.lsh.Validate(options.minhash).ToString();

  CoarseResult result;
  const size_t n = corpus.size();
  if (n == 0) return result;
  const size_t threads = ThreadPool::ResolveNumThreads(num_threads);
  result.stats.parallel_threads = threads;

  // Signatures + band keys: a pure per-document function of (tokens,
  // hash family), so workers own contiguous chunks and write only their
  // chunk's slots — no shared mutable state, no df-style barrier, and
  // the result is independent of the thread count by construction.
  WallTimer timer;
  const MinHashFamily family(options.minhash);
  std::vector<MinHashSignature> signatures(n);
  result.doc_top_phrases.resize(n);
  const size_t num_chunks = std::min(n, threads * 4);
  ThreadPool::ParallelFor(threads, num_chunks, [&](size_t chunk) {
    const size_t begin = chunk * n / num_chunks;
    const size_t end = (chunk + 1) * n / num_chunks;
    for (size_t d = begin; d < end; ++d) {
      // analyzer: allow(hot-loop-alloc) -- Signature/BandKeys return
      // their per-document vectors by value (one move per document,
      // the API contract).
      signatures[d] = family.Signature(corpus.docs()[d].tokens);
      result.doc_top_phrases[d] = BandKeys(signatures[d], options.lsh);
    }
  });
  result.stats.signature_seconds = timer.ElapsedSeconds();

  // Banded bucketing, for the candidate-pair diagnostics the sub-linear
  // claim is measured by (and the Query primitive a serving layer
  // needs). The canonical replay below does NOT read the index — bucket
  // member order is scheduling-dependent and nothing deterministic may
  // come from it.
  timer.Restart();
  LshIndex index(options.minhash, options.lsh);
  index.Build(signatures, threads);
  const LshIndex::Stats bucket_stats = index.ComputeStats();
  result.stats.lsh_buckets = bucket_stats.num_buckets;
  result.stats.lsh_max_bucket = bucket_stats.max_bucket;
  result.stats.lsh_candidate_pairs = bucket_stats.candidate_pairs;
  result.stats.bucket_seconds = timer.ElapsedSeconds();

  // Canonical (doc, band-key) replay in ascending document order — the
  // band-key analogue of the tf-idf backend's (doc, phrase-rank) order.
  // Documents sharing a bucket key union through the key's anchor
  // document; max_phrase_degree caps bucket degree identically on every
  // path because the edge sequence is identical on every path.
  timer.Restart();
  UnionFind uf(n);
  CoarseEdgeAccumulator edges(options.max_phrase_degree, &uf);
  for (DocId d = 0; d < n; ++d) {
    for (const PhraseHash key : result.doc_top_phrases[d]) {
      ++result.num_edges;
      edges.Add(d, key);
    }
  }
  result.stats.graph_seconds = timer.ElapsedSeconds();

  timer.Restart();
  EmitCoarseComponents(uf, options, &result);
  result.stats.components_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace infoshield
