// MinHash/LSH coarse backend driver (DESIGN.md §16).
//
// Pipeline: tokenized corpus -> per-document MinHash signatures (pure,
// fanned across the thread pool) -> band bucket keys -> canonical
// doc-major edge replay through CoarseEdgeAccumulator -> connected
// components via EmitCoarseComponents. The replay consumes (doc, band
// key) edges in exactly the order the serial loop produces them, so —
// as with the tf-idf backend's (doc, phrase-rank) replay — output is
// byte-identical at any thread count and the max_phrase_degree hub cap
// drops the same edges on every path.
//
// CoarseResult::doc_top_phrases carries each document's band keys, so
// the fine stage's phrase-sharing neighbor seeding transparently
// becomes bucket-sharing neighbor seeding.

#ifndef INFOSHIELD_LSH_LSH_COARSE_H_
#define INFOSHIELD_LSH_LSH_COARSE_H_

#include <cstddef>

#include "coarse/coarse_clustering.h"
#include "text/corpus.h"

namespace infoshield {

// Runs the MinHash/LSH candidate generator with `num_threads` workers
// (1 = the serial reference; callers pass 1 to honor
// CoarseOptions::use_serial_coarse). CHECK-fails on invalid
// minhash/lsh parameters — validate with
// options.lsh.Validate(options.minhash) first where the parameters come
// from user input.
CoarseResult RunLshCoarse(const Corpus& corpus, const CoarseOptions& options,
                          size_t num_threads);

}  // namespace infoshield

#endif  // INFOSHIELD_LSH_LSH_COARSE_H_
