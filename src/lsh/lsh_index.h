// Banded LSH bucketing over MinHash signatures (DESIGN.md §16).
//
// A signature of bands * rows components is cut into `bands` contiguous
// bands; each band's rows are hashed (seeded with the band index, the
// same trick HashNgram uses with the gram length, so band 0's buckets
// can never collide with band 1's) into a 64-bit bucket key. Two
// documents become candidates iff they share at least one bucket key —
// probability 1 - (1 - J^rows)^bands for Jaccard J, the classic S-curve
// with threshold ~ (1/bands)^(1/rows).
//
// The index is the queryable side of the coarse backend: Build fans
// signature bucketing across workers into hash-sharded buckets (shard
// state GUARDED_BY its Mutex; each worker batches per shard so a flush
// takes every shard lock at most once, mirroring ShardedPhraseCounter),
// and Query returns the sorted candidate set for a probe signature.
// Insertion order inside a bucket is scheduling-dependent, so nothing
// deterministic may be derived from bucket member order — Query sorts,
// and the coarse backend never reads the index for its canonical edge
// replay (lsh_coarse.cc replays doc-major band keys instead).

#ifndef INFOSHIELD_LSH_LSH_INDEX_H_
#define INFOSHIELD_LSH_LSH_INDEX_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lsh/minhash.h"
#include "text/corpus.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace infoshield {

struct LshParams {
  // bands * rows must equal MinHashParams::num_hashes. The defaults
  // (32 bands of 4 rows over 128 hashes) put the detection threshold at
  // (1/32)^(1/4) ~ 0.42 Jaccard — low enough that near-duplicate
  // families (J >= 0.6) are caught with probability 1 - 3e-5 or better,
  // high enough that unrelated documents almost never collide.
  size_t bands = 32;
  size_t rows = 4;

  // OK iff the banding is usable and consistent with `minhash`
  // (InvalidArgument otherwise; never dies).
  Status Validate(const MinHashParams& minhash) const;
};

// The bands 64-bit bucket keys of one signature, band-major. Empty for
// an empty signature. Pure; shared by Build, Query, and the coarse
// backend's canonical replay.
std::vector<uint64_t> BandKeys(const MinHashSignature& sig,
                               const LshParams& params);

class LshIndex {
 public:
  // Sharded like ShardedPhraseCounter: power of two, selected by the
  // bucket key's top bits so shard choice stays independent of the
  // unordered_map's low-bit bucketing.
  static constexpr size_t kNumShards = 64;

  static constexpr size_t ShardOf(uint64_t key) {
    return static_cast<size_t>(key >> 58) & (kNumShards - 1);
  }

  struct Stats {
    // Distinct (band, bucket) keys holding at least one document.
    size_t num_buckets = 0;
    // Occupancy of the fullest bucket (hub diagnostic).
    size_t max_bucket = 0;
    // Sum over buckets of C(|bucket|, 2): the number of candidate pairs
    // banded LSH proposes, the quantity the sub-linear claim is about.
    size_t candidate_pairs = 0;
  };

  LshIndex(const MinHashParams& minhash, const LshParams& params)
      : minhash_(minhash), params_(params) {}

  LshIndex(const LshIndex&) = delete;
  LshIndex& operator=(const LshIndex&) = delete;

  // Buckets every signature (indexed by DocId) across `num_threads`
  // workers (1 = sequential, 0 = hardware concurrency). Signatures with
  // no components (empty documents) occupy no bucket. May be called
  // once per index.
  void Build(const std::vector<MinHashSignature>& signatures,
             size_t num_threads);

  // DocIds sharing at least one band bucket with `sig`, sorted
  // ascending, deduplicated. The probe itself is not inserted. This is
  // the primitive a serving layer's "does this new ad look like an
  // existing one" pre-filter uses.
  std::vector<DocId> Query(const MinHashSignature& sig) const;

  // Aggregate bucket statistics (scans all shards; call after Build).
  Stats ComputeStats() const;

  const MinHashParams& minhash_params() const { return minhash_; }
  const LshParams& params() const { return params_; }

 private:
  struct Shard {
    // mutable so Query/ComputeStats (logically const reads) can lock.
    mutable Mutex mu;
    std::unordered_map<uint64_t, std::vector<DocId>> buckets GUARDED_BY(mu);
  };

  MinHashParams minhash_;
  LshParams params_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_LSH_LSH_INDEX_H_
