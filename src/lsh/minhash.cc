#include "lsh/minhash.h"

#include <limits>

#include "text/ngram.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"

namespace infoshield {

Status MinHashParams::Validate() const {
  if (num_hashes == 0) {
    return Status::InvalidArgument("MinHash num_hashes must be positive");
  }
  if (shingle_k == 0) {
    return Status::InvalidArgument("MinHash shingle_k must be positive");
  }
  return Status::Ok();
}

MinHashFamily::MinHashFamily(const MinHashParams& params) : params_(params) {
  CHECK(params_.Validate().ok())
      << "invalid MinHashParams reached MinHashFamily: "
      << params_.Validate().ToString();
  mul_.reserve(params_.num_hashes);
  add_.reserve(params_.num_hashes);
  uint64_t state = params_.seed;
  for (size_t j = 0; j < params_.num_hashes; ++j) {
    // Odd multiplier => h_j is a bijection on Z/2^64, so distinct
    // shingles cannot collapse and the min is uniformly distributed.
    mul_.push_back(SplitMix64(state) | 1u);
    add_.push_back(SplitMix64(state));
  }
}

std::vector<uint64_t> ShingleHashes(const std::vector<TokenId>& tokens,
                                    size_t shingle_k) {
  std::vector<uint64_t> shingles;
  if (tokens.empty() || shingle_k == 0) return shingles;
  if (tokens.size() < shingle_k) {
    // Whole-document shingle so short documents still sketch; exact
    // duplicates of any length keep identical signatures.
    shingles.push_back(HashNgram(tokens.data(), tokens.size()));
    return shingles;
  }
  shingles.reserve(tokens.size() - shingle_k + 1);
  for (size_t i = 0; i + shingle_k <= tokens.size(); ++i) {
    shingles.push_back(HashNgram(tokens.data() + i, shingle_k));
  }
  return shingles;
}

// analyzer: hot
MinHashSignature MinHashFamily::Signature(
    const std::vector<TokenId>& tokens) const {
  MinHashSignature sig;
  if (tokens.empty()) return sig;
  // analyzer: allow(hot-loop-alloc) -- one shingle buffer per document
  // (the API returns by value); reused across all hash rows below.
  const std::vector<uint64_t> shingles =
      ShingleHashes(tokens, params_.shingle_k);
  sig.assign(params_.num_hashes, std::numeric_limits<uint64_t>::max());
  // Row-major over hashes so mul_[j]/add_[j] stay in registers through
  // the shingle sweep; the whole computation is O(shingles * hashes)
  // with no allocation.
  for (size_t j = 0; j < params_.num_hashes; ++j) {
    const uint64_t a = mul_[j];
    const uint64_t b = add_[j];
    uint64_t min_h = std::numeric_limits<uint64_t>::max();
    for (const uint64_t s : shingles) {
      const uint64_t h = a * s + b;
      if (h < min_h) min_h = h;
    }
    sig[j] = min_h;
  }
  return sig;
}

double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b) {
  CHECK(a.size() == b.size()) << "signatures from different families";
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j] == b[j]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace infoshield
