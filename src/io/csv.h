// RFC-4180-style CSV reading/writing and corpus loading, so users can run
// InfoShield on their own ad/tweet dumps.

#ifndef INFOSHIELD_IO_CSV_H_
#define INFOSHIELD_IO_CSV_H_

#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "text/corpus.h"
#include "util/status.h"

namespace infoshield {

// Parses one CSV record (no trailing newline) honoring double-quote
// escaping ("" inside a quoted field is a literal quote). Strict
// RFC-4180: a quote opens a field only at the field's start, a closed
// quoted field must be followed by the separator or the end of the
// record, and a bare quote inside an unquoted field is an error.
// Returns InvalidArgument (with the offending byte offset) instead of
// guessing on malformed input.
[[nodiscard]] Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char sep = ',');

// Quotes a field if it contains the separator, a quote, or a newline.
std::string EscapeCsvField(std::string_view field, char sep = ',');

// Joins fields into one CSV record (no trailing newline).
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char sep = ',');

// Reads one logical CSV record from `in` into `*record`, continuing
// across physical lines while inside a quoted field (so embedded
// newlines survive; the physical CRLF/LF record terminator is not part
// of the record). Returns true when a record was read, false at a clean
// end of input, and InvalidArgument when the input ends inside an open
// quoted field.
[[nodiscard]] Result<bool> ReadCsvRecord(std::istream& in, std::string* record,
                           char sep = ',');

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  // Column index by header name, or -1.
  int ColumnIndex(std::string_view name) const;
};

// Reads a whole CSV file; the first record is the header. Quoted fields
// may contain embedded newlines (records are assembled by
// ReadCsvRecord). Malformed quoting fails with the record number.
[[nodiscard]] Result<CsvTable> ReadCsvFile(const std::string& path, char sep = ',');

[[nodiscard]] Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char sep = ',');

// Loads a corpus from a CSV file: each row's `text_column` becomes a
// document. Fails if the column is missing.
[[nodiscard]] Result<Corpus> LoadCorpusFromCsv(const std::string& path,
                                 const std::string& text_column,
                                 char sep = ',');

}  // namespace infoshield

#endif  // INFOSHIELD_IO_CSV_H_
