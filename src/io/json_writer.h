// Minimal streaming JSON writer plus a cluster-report serializer, so
// downstream tooling (dashboards, case-management systems) can consume
// InfoShield results.

#ifndef INFOSHIELD_IO_JSON_WRITER_H_
#define INFOSHIELD_IO_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/fine_clustering.h"
#include "core/infoshield.h"
#include "text/corpus.h"
#include "util/status.h"

namespace infoshield {

// Writes well-formed JSON with proper string escaping. The caller drives
// the structure; nesting correctness is CHECKed.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // Stack of container states: 'o' = object, 'a' = array.
  std::vector<char> stack_;
  bool need_comma_ = false;
  bool pending_key_ = false;
};

std::string EscapeJsonString(std::string_view s);

// Serializes an InfoShield run: templates with slots, member documents,
// and per-cluster compression stats.
std::string ResultToJson(const InfoShieldResult& result,
                         const Corpus& corpus);

// Writes a serialized JSON document to `path` (binary mode, no BOM).
// IoError when the file cannot be opened or the write fails.
[[nodiscard]] Status WriteJsonFile(const std::string& path,
                                   std::string_view json);

}  // namespace infoshield

#endif  // INFOSHIELD_IO_JSON_WRITER_H_
