#include "io/json_writer.h"

#include <cmath>
#include <fstream>

#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

std::string EscapeJsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    CHECK(stack_.back() == 'a') << "value without key inside object";
  }
  if (need_comma_) out_.push_back(',');
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back('o');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CHECK(!stack_.empty() && stack_.back() == 'o');
  CHECK(!pending_key_) << "dangling key";
  stack_.pop_back();
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back('a');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CHECK(!stack_.empty() && stack_.back() == 'a');
  stack_.pop_back();
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  CHECK(!stack_.empty() && stack_.back() == 'o') << "key outside object";
  CHECK(!pending_key_) << "two keys in a row";
  if (need_comma_) out_.push_back(',');
  out_.push_back('"');
  out_ += EscapeJsonString(key);
  out_ += "\":";
  pending_key_ = true;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_ += EscapeJsonString(value);
  out_.push_back('"');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.6g", value);
  } else {
    out_ += "null";
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

std::string ResultToJson(const InfoShieldResult& result,
                         const Corpus& corpus) {
  const Vocabulary& vocab = corpus.vocab();
  JsonWriter w;
  w.BeginObject();
  w.Key("num_documents").Int(static_cast<int64_t>(corpus.size()));
  w.Key("num_templates").Int(static_cast<int64_t>(result.templates.size()));
  w.Key("num_suspicious").Int(static_cast<int64_t>(result.num_suspicious()));
  w.Key("num_coarse_clusters")
      .Int(static_cast<int64_t>(result.num_coarse_clusters));

  w.Key("templates").BeginArray();
  for (size_t t = 0; t < result.templates.size(); ++t) {
    const TemplateCluster& tc = result.templates[t];
    w.BeginObject();
    w.Key("id").Int(static_cast<int64_t>(t));
    w.Key("text").String(tc.tmpl.ToString(vocab));
    w.Key("num_slots").Int(static_cast<int64_t>(tc.tmpl.num_slots()));
    w.Key("members").BeginArray();
    for (DocId d : tc.members) w.Int(d);
    w.EndArray();
    w.Key("slot_fills").BeginArray();
    for (size_t m = 0; m < tc.encodings.size(); ++m) {
      w.BeginArray();
      for (const auto& words : tc.encodings[m].slot_words) {
        std::string fill;
        for (size_t i = 0; i < words.size(); ++i) {
          if (i > 0) fill.push_back(' ');
          fill += vocab.Word(words[i]);
        }
        w.String(fill);
      }
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("clusters").BeginArray();
  for (const ClusterStats& s : result.cluster_stats) {
    w.BeginObject();
    w.Key("coarse_cluster").Int(static_cast<int64_t>(s.coarse_cluster_index));
    w.Key("num_docs").Int(static_cast<int64_t>(s.num_docs));
    w.Key("num_templates").Int(static_cast<int64_t>(s.num_templates));
    w.Key("relative_length").Double(s.relative_length);
    w.Key("lower_bound").Double(s.lower_bound);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str();
}

Status WriteJsonFile(const std::string& path, std::string_view json) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace infoshield
