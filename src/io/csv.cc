#include "io/csv.h"
#include "util/status.h"

#include <fstream>
#include <sstream>

namespace infoshield {

std::vector<std::string> ParseCsvLine(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(std::string_view field, char sep) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvLine(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += EscapeCsvField(fields[i], sep);
  }
  return out;
}

int CsvTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Splits file content into CSV records, letting quoted fields span lines.
std::vector<std::string> SplitRecords(const std::string& content) {
  std::vector<std::string> records;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes && (c == '\n' || c == '\r')) {
      if (c == '\r' && i + 1 < content.size() && content[i + 1] == '\n') {
        ++i;
      }
      records.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) records.push_back(std::move(current));
  return records;
}

}  // namespace

Result<CsvTable> ReadCsvFile(const std::string& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  CsvTable table;
  bool first = true;
  for (const std::string& record : SplitRecords(content)) {
    if (record.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(record, sep);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::IoError("empty CSV file: " + path);
  return table;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char sep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << FormatCsvLine(table.header, sep) << "\n";
  for (const auto& row : table.rows) {
    out << FormatCsvLine(row, sep) << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Corpus> LoadCorpusFromCsv(const std::string& path,
                                 const std::string& text_column, char sep) {
  Result<CsvTable> table = ReadCsvFile(path, sep);
  if (!table.ok()) return table.status();
  const int col = table->ColumnIndex(text_column);
  if (col < 0) {
    return Status::InvalidArgument("no column named '" + text_column +
                                   "' in " + path);
  }
  Corpus corpus;
  for (const auto& row : table->rows) {
    if (static_cast<size_t>(col) < row.size()) {
      corpus.Add(row[static_cast<size_t>(col)]);
    } else {
      corpus.Add("");
    }
  }
  return corpus;
}

}  // namespace infoshield
