#include "io/csv.h"

#include <fstream>
#include <istream>
#include <string>

#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char sep) {
  std::vector<std::string> fields;
  std::string current;
  // RFC-4180 field state machine. `quoted` marks a field that OPENED
  // with a quote; once its closing quote is seen, only the separator or
  // the end of the record may follow.
  bool quoted = false;      // current field opened with '"'
  bool in_quotes = false;   // currently inside the quoted section
  bool at_field_start = true;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (quoted) {
      // The quoted section closed; only the separator may follow.
      if (c != sep) {
        return Status::InvalidArgument(
            StrFormat("CSV: unexpected character after closing quote at "
                      "byte %zu",
                      i));
      }
      fields.push_back(std::move(current));
      current.clear();
      quoted = false;
      at_field_start = true;
    } else if (c == '"') {
      if (!at_field_start) {
        return Status::InvalidArgument(StrFormat(
            "CSV: quote inside unquoted field at byte %zu", i));
      }
      quoted = true;
      in_quotes = true;
      at_field_start = false;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
      at_field_start = true;
    } else {
      current.push_back(c);
      at_field_start = false;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(std::string_view field, char sep) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvLine(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += EscapeCsvField(fields[i], sep);
  }
  return out;
}

Result<bool> ReadCsvRecord(std::istream& in, std::string* record, char sep) {
  (void)sep;  // quoting, not separators, decides record boundaries
  record->clear();
  std::string line;
  bool any = false;
  bool in_quotes = false;
  while (std::getline(in, line)) {
    any = true;
    // Quote parity decides whether the newline getline consumed was a
    // record terminator or content of a quoted field; escaped "" pairs
    // toggle twice, so parity is unaffected by them.
    for (char c : line) {
      if (c == '"') in_quotes = !in_quotes;
    }
    if (in_quotes) {
      record->append(line);
      record->push_back('\n');
      continue;
    }
    // CRLF input: getline stripped the '\n'; the '\r' it left behind
    // belongs to the terminator, not the record.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    record->append(line);
    return true;
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        "CSV: input ended inside a quoted field");
  }
  return any;
}

int CsvTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ReadCsvFile(const std::string& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);

  CsvTable table;
  bool first = true;
  std::string record;
  size_t record_number = 0;
  while (true) {
    Result<bool> more = ReadCsvRecord(in, &record, sep);
    if (!more.ok()) {
      return Status::InvalidArgument(more.status().message() + " in " +
                                     path);
    }
    if (!*more) break;
    ++record_number;
    if (record.empty()) continue;
    Result<std::vector<std::string>> fields = ParseCsvLine(record, sep);
    if (!fields.ok()) {
      return Status::InvalidArgument(
          fields.status().message() +
          StrFormat(" (record %zu of %s)", record_number, path.c_str()));
    }
    if (first) {
      table.header = std::move(*fields);
      first = false;
    } else {
      table.rows.push_back(std::move(*fields));
    }
  }
  if (first) return Status::IoError("empty CSV file: " + path);
  return table;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char sep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << FormatCsvLine(table.header, sep) << "\n";
  for (const auto& row : table.rows) {
    out << FormatCsvLine(row, sep) << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Corpus> LoadCorpusFromCsv(const std::string& path,
                                 const std::string& text_column, char sep) {
  Result<CsvTable> table = ReadCsvFile(path, sep);
  if (!table.ok()) return table.status();
  const int col = table->ColumnIndex(text_column);
  if (col < 0) {
    return Status::InvalidArgument("no column named '" + text_column +
                                   "' in " + path);
  }
  Corpus corpus;
  for (const auto& row : table->rows) {
    if (static_cast<size_t>(col) < row.size()) {
      corpus.Add(row[static_cast<size_t>(col)]);
    } else {
      corpus.Add("");
    }
  }
  return corpus;
}

}  // namespace infoshield
