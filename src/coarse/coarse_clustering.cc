#include "coarse/coarse_clustering.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/connected_components.h"
#include "graph/union_find.h"
#include "lsh/lsh_coarse.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace infoshield {

namespace {

// One bipartite document->phrase edge. Workers emit edges into
// per-chunk buffers; the graph phase replays them in canonical
// (document, phrase-rank) order — the order the serial reference
// produces them in.
struct CoarseEdge {
  DocId doc;
  PhraseHash phrase;
};

}  // namespace

void EmitCoarseComponents(UnionFind& uf, const CoarseOptions& options,
                          CoarseResult* result) {
  Components components = ExtractComponents(uf, /*min_component_size=*/1);
  for (auto& group : components.groups) {
    if (group.size() < options.min_cluster_size) {
      for (uint32_t id : group) result->singletons.push_back(id);
    } else {
      result->clusters.push_back(std::move(group));
    }
  }
  // Canonical emission order: undersized groups arrive sorted by their
  // first member, so their documents interleave; sort so the singleton
  // list is the same ascending sequence however the groups fell out.
  std::sort(result->singletons.begin(), result->singletons.end());
}

CoarseResult CoarseClustering::Run(const Corpus& corpus) const {
  const size_t threads = ThreadPool::ResolveNumThreads(options_.num_threads);
  const bool serial =
      options_.use_serial_coarse || threads <= 1 || corpus.size() < 2;
  if (options_.backend == CoarseBackend::kMinhashLsh) {
    return RunLshCoarse(corpus, options_, serial ? 1 : threads);
  }
  if (serial) {
    return RunSerial(corpus);
  }
  return RunParallel(corpus, threads);
}

// analyzer: hot
CoarseResult CoarseClustering::RunSerial(const Corpus& corpus) const {
  CoarseResult result;
  const size_t n = corpus.size();
  if (n == 0) return result;

  WallTimer timer;
  TfidfIndex index;
  index.Build(corpus, options_.tfidf);
  result.stats.index_seconds = timer.ElapsedSeconds();

  // Top-phrase selection: pure per-document scoring against the frozen
  // df table.
  timer.Restart();
  result.doc_top_phrases.resize(n);
  for (const Document& doc : corpus.docs()) {
    // analyzer: allow(hot-loop-alloc) -- TopPhrases returns its scored
    // list by value (one move per document, the API contract).
    const std::vector<ScoredPhrase> scored = index.TopPhrases(doc);
    std::vector<PhraseHash>& top = result.doc_top_phrases[doc.id];
    top.reserve(scored.size());
    for (const ScoredPhrase& phrase : scored) {
      ++result.num_edges;
      top.push_back(phrase.hash);
    }
  }
  result.stats.top_phrase_seconds = timer.ElapsedSeconds();

  timer.Restart();
  UnionFind uf(n);
  CoarseEdgeAccumulator edges(options_.max_phrase_degree, &uf);
  for (DocId d = 0; d < n; ++d) {
    for (PhraseHash phrase : result.doc_top_phrases[d]) {
      edges.Add(d, phrase);
    }
  }
  result.stats.graph_seconds = timer.ElapsedSeconds();

  timer.Restart();
  EmitCoarseComponents(uf, options_, &result);
  result.stats.components_seconds = timer.ElapsedSeconds();
  return result;
}

// analyzer: hot
CoarseResult CoarseClustering::RunParallel(const Corpus& corpus,
                                           size_t threads) const {
  CoarseResult result;
  const size_t n = corpus.size();

  WallTimer timer;
  TfidfIndex index;
  index.Build(corpus, options_.tfidf, threads);
  result.stats.index_seconds = timer.ElapsedSeconds();
  result.stats.shard_flushes = index.build_stats().shard_flushes;
  result.stats.shard_contended = index.build_stats().shard_contended;
  result.stats.parallel_threads = threads;

  // Per-document top-phrase selection + edge generation: df is frozen,
  // so TopPhrases is a pure function of the document. Workers own
  // contiguous document chunks and write only their chunk's
  // doc_top_phrases slots and their chunk's private edge buffer — no
  // shared mutable state.
  timer.Restart();
  result.doc_top_phrases.resize(n);
  const size_t num_chunks = std::min(n, threads * 4);
  std::vector<std::vector<CoarseEdge>> chunk_edges(num_chunks);
  ThreadPool::ParallelFor(threads, num_chunks, [&](size_t chunk) {
    const size_t begin = chunk * n / num_chunks;
    const size_t end = (chunk + 1) * n / num_chunks;
    std::vector<CoarseEdge>& edges = chunk_edges[chunk];
    for (size_t d = begin; d < end; ++d) {
      const Document& doc = corpus.docs()[d];
      // analyzer: allow(hot-loop-alloc) -- TopPhrases returns by value
      // (one move per document, the API contract).
      const std::vector<ScoredPhrase> scored = index.TopPhrases(doc);
      std::vector<PhraseHash>& top = result.doc_top_phrases[d];
      top.reserve(scored.size());
      for (const ScoredPhrase& phrase : scored) {
        top.push_back(phrase.hash);
        // analyzer: allow(hot-loop-alloc) -- the chunk edge buffer grows
        // amortized across all documents in the chunk; a per-document
        // reserve would be quadratic in re-walked capacity.
        edges.push_back(CoarseEdge{doc.id, phrase.hash});
      }
    }
  });
  result.stats.top_phrase_seconds = timer.ElapsedSeconds();

  // Deterministic sort-and-union. Concatenating the chunk buffers in
  // chunk order already yields ascending document ids (chunks are
  // contiguous ranges); the stable sort re-asserts the canonical
  // (document, phrase-rank) order independently of how the buffers were
  // produced — stability preserves each document's phrase-rank order
  // because all of one document's edges sit in one buffer, appended in
  // TopPhrases order. The replay therefore consumes the exact edge
  // sequence the serial path does, so the degree cap, anchors, and
  // unions behave identically and the components come out byte-equal.
  timer.Restart();
  size_t total_edges = 0;
  for (const std::vector<CoarseEdge>& edges : chunk_edges) {
    total_edges += edges.size();
  }
  std::vector<CoarseEdge> all_edges;
  all_edges.reserve(total_edges);
  for (std::vector<CoarseEdge>& edges : chunk_edges) {
    all_edges.insert(all_edges.end(), edges.begin(), edges.end());
    edges.clear();
    edges.shrink_to_fit();
  }
  std::stable_sort(all_edges.begin(), all_edges.end(),
                   [](const CoarseEdge& a, const CoarseEdge& b) {
                     return a.doc < b.doc;
                   });
  result.num_edges = all_edges.size();
  UnionFind uf(n);
  CoarseEdgeAccumulator acc(options_.max_phrase_degree, &uf);
  for (const CoarseEdge& e : all_edges) {
    acc.Add(e.doc, e.phrase);
  }
  result.stats.graph_seconds = timer.ElapsedSeconds();

  timer.Restart();
  EmitCoarseComponents(uf, options_, &result);
  result.stats.components_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace infoshield
