#include "coarse/coarse_clustering.h"

#include <algorithm>
#include <unordered_map>

#include "graph/connected_components.h"
#include "graph/union_find.h"

namespace infoshield {

CoarseResult CoarseClustering::Run(const Corpus& corpus) const {
  CoarseResult result;
  const size_t n = corpus.size();
  if (n == 0) return result;

  TfidfIndex index;
  index.Build(corpus, options_.tfidf);

  // Instead of materializing phrase vertices, union documents that share a
  // top phrase: the first document seen with each phrase acts as the
  // phrase's anchor. This yields exactly the connected components of the
  // bipartite graph restricted to document vertices.
  std::unordered_map<PhraseHash, DocId> anchor;
  std::unordered_map<PhraseHash, uint32_t> degree;
  UnionFind uf(n);

  result.doc_top_phrases.resize(n);
  for (const Document& doc : corpus.docs()) {
    for (const ScoredPhrase& phrase : index.TopPhrases(doc)) {
      ++result.num_edges;
      result.doc_top_phrases[doc.id].push_back(phrase.hash);
      if (options_.max_phrase_degree > 0) {
        uint32_t d = ++degree[phrase.hash];
        if (d > options_.max_phrase_degree) continue;
      }
      auto [it, inserted] = anchor.emplace(phrase.hash, doc.id);
      if (!inserted) uf.Union(it->second, doc.id);
    }
  }

  Components components = ExtractComponents(uf, /*min_component_size=*/1);
  for (auto& group : components.groups) {
    if (group.size() < options_.min_cluster_size) {
      for (uint32_t id : group) result.singletons.push_back(id);
    } else {
      result.clusters.push_back(std::move(group));
    }
  }
  // Canonical emission order: undersized groups arrive sorted by their
  // first member, so their documents interleave; sort so the singleton
  // list is the same ascending sequence however the groups fell out.
  std::sort(result.singletons.begin(), result.singletons.end());
  return result;
}

}  // namespace infoshield
