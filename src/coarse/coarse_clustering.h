// InfoShield-Coarse (paper §IV-A, Algorithm 1).
//
// Builds a bipartite document–phrase graph: an edge (d, p) exists iff p is
// one of d's top tf-idf phrases. Coarse clusters are the connected
// components of that graph; components of size one (documents sharing no
// important phrase with anyone) are eliminated.
//
// The stage is intentionally permissive — one shared important phrase is
// enough to connect two documents — because InfoShield-Fine refines and,
// if necessary, splits each coarse cluster. Quasi-linear in the input
// (Lemma 2).

#ifndef INFOSHIELD_COARSE_COARSE_CLUSTERING_H_
#define INFOSHIELD_COARSE_COARSE_CLUSTERING_H_

#include <vector>

#include "text/corpus.h"
#include "text/ngram.h"
#include "tfidf/tfidf_index.h"

namespace infoshield {

struct CoarseOptions {
  TfidfOptions tfidf;
  // Components smaller than this are dropped (2 = eliminate singletons).
  size_t min_cluster_size = 2;
  // Safety valve against degenerate giant components: phrases connecting
  // more than this many documents are ignored as hubs (0 = no cap). The
  // paper relies on tf-idf making such phrases low-scored; the cap guards
  // pathological inputs without affecting normal runs.
  size_t max_phrase_degree = 0;
};

struct CoarseResult {
  // Candidate clusters: lists of DocIds, deterministic order.
  std::vector<std::vector<DocId>> clusters;
  // Documents eliminated as singletons.
  std::vector<DocId> singletons;
  // Each document's kept top phrases (indexed by DocId). The fine stage
  // uses these to seed candidate sets from phrase-sharing neighbors,
  // which keeps the pipeline quasi-linear even when a coarse component
  // over-merges (the paper leans on the fine stage to split such
  // components; near-duplicates always share top phrases directly, so
  // neighbor seeding loses nothing).
  std::vector<std::vector<PhraseHash>> doc_top_phrases;
  // Bipartite edge count (for diagnostics / scaling studies).
  size_t num_edges = 0;
};

class CoarseClustering {
 public:
  CoarseClustering() = default;
  explicit CoarseClustering(CoarseOptions options)
      : options_(options) {}

  CoarseResult Run(const Corpus& corpus) const;

  const CoarseOptions& options() const { return options_; }

 private:
  CoarseOptions options_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_COARSE_COARSE_CLUSTERING_H_
