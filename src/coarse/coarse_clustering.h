// InfoShield-Coarse (paper §IV-A, Algorithm 1).
//
// Builds a bipartite document–phrase graph: an edge (d, p) exists iff p is
// one of d's top tf-idf phrases. Coarse clusters are the connected
// components of that graph; components of size one (documents sharing no
// important phrase with anyone) are eliminated.
//
// The stage is intentionally permissive — one shared important phrase is
// enough to connect two documents — because InfoShield-Fine refines and,
// if necessary, splits each coarse cluster. Quasi-linear in the input
// (Lemma 2).

#ifndef INFOSHIELD_COARSE_COARSE_CLUSTERING_H_
#define INFOSHIELD_COARSE_COARSE_CLUSTERING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/union_find.h"
#include "lsh/lsh_index.h"
#include "lsh/minhash.h"
#include "text/corpus.h"
#include "text/ngram.h"
#include "tfidf/tfidf_index.h"

namespace infoshield {

// Which candidate generator connects documents into coarse components.
//
//  * kTfidfGraph — the paper-faithful doc–phrase bipartite graph over
//    tf-idf top phrases (§IV-A). Quasi-linear, but the df table forces
//    a global freeze barrier and its constant is large.
//  * kMinhashLsh — shingled MinHash signatures + banded LSH buckets
//    (DESIGN.md §16). No global state, O(docs * num_hashes) candidate
//    generation; the standard sub-linear generator for near-duplicate
//    structure. Components are the connected components of the
//    "shares a band bucket" relation.
//
// Both backends emit through the same CoarseEdgeAccumulator replay and
// EmitCoarseComponents, so downstream fine-stage code is untouched and
// both are byte-identical across thread counts.
enum class CoarseBackend : uint8_t {
  kTfidfGraph = 0,
  kMinhashLsh = 1,
};

struct CoarseOptions {
  TfidfOptions tfidf;
  // Candidate-generation backend; tfidf/max_phrase_degree apply to
  // kTfidfGraph, minhash/lsh to kMinhashLsh (where max_phrase_degree
  // caps bucket degree instead of phrase degree — same hub guard).
  CoarseBackend backend = CoarseBackend::kTfidfGraph;
  // MinHash/LSH parameters (kMinhashLsh only). Callers surface
  // lsh.Validate(minhash) before running; Run CHECK-fails on invalid
  // combinations.
  MinHashParams minhash;
  LshParams lsh;
  // Components smaller than this are dropped (2 = eliminate singletons).
  size_t min_cluster_size = 2;
  // Safety valve against degenerate giant components: phrases connecting
  // more than this many documents are ignored as hubs (0 = no cap). The
  // paper relies on tf-idf making such phrases low-scored; the cap guards
  // pathological inputs without affecting normal runs.
  size_t max_phrase_degree = 0;
  // Worker threads for the coarse pipeline (1 = sequential, 0 = hardware
  // concurrency). The parallel path shards the tf-idf df accumulation by
  // PhraseHash, fans per-document top-phrase selection and bipartite-edge
  // generation across the pool, and replays the collected edges in
  // canonical (document, phrase-rank) order — output is byte-identical
  // to the serial path for any value (DESIGN.md §11).
  size_t num_threads = 1;
  // Escape hatch mirroring FineOptions::use_naive_costing: run the
  // single-threaded reference implementation regardless of num_threads.
  // Exists to cross-check the parallel path (determinism_test) and to
  // measure the win (bench_coarse reports both).
  bool use_serial_coarse = false;
};

// Per-phase wall-clock breakdown and shard diagnostics for one coarse
// run. Deliberately not part of the canonical JSON output: the serial
// and parallel paths must emit byte-identical results while reporting
// very different timings.
struct CoarseStageStats {
  // tokenize_seconds is filled by callers that build the corpus from raw
  // text (e.g. via Corpus::AddBatch) — tokenization has already happened
  // by the time CoarseClustering::Run sees the documents. The remaining
  // phases are timed by Run itself.
  double tokenize_seconds = 0.0;
  // Document-frequency accumulation (TfidfIndex::Build).
  double index_seconds = 0.0;
  // Per-document top-phrase selection + bipartite-edge generation.
  double top_phrase_seconds = 0.0;
  // Canonical-order edge replay into the UnionFind.
  double graph_seconds = 0.0;
  // Component extraction and cluster/singleton emission.
  double components_seconds = 0.0;
  // Sharded df-index merge diagnostics (0 on the serial path).
  size_t shard_flushes = 0;
  size_t shard_contended = 0;
  // Worker count the run actually used (1 = serial path ran).
  size_t parallel_threads = 1;
  // MinHash/LSH backend phases and bucket diagnostics (all 0 on the
  // tf-idf backend; index/top_phrase are 0 on the LSH backend).
  double signature_seconds = 0.0;  // MinHash signature computation
  double bucket_seconds = 0.0;     // banded bucketing (LshIndex::Build)
  size_t lsh_buckets = 0;          // distinct occupied (band, bucket) keys
  size_t lsh_max_bucket = 0;       // fullest bucket (hub diagnostic)
  size_t lsh_candidate_pairs = 0;  // sum over buckets of C(size, 2)

  double total_seconds() const {
    return index_seconds + top_phrase_seconds + signature_seconds +
           bucket_seconds + graph_seconds + components_seconds;
  }
};

struct CoarseResult {
  // Candidate clusters: lists of DocIds, deterministic order.
  std::vector<std::vector<DocId>> clusters;
  // Documents eliminated as singletons.
  std::vector<DocId> singletons;
  // Each document's kept top phrases (indexed by DocId). The fine stage
  // uses these to seed candidate sets from phrase-sharing neighbors,
  // which keeps the pipeline quasi-linear even when a coarse component
  // over-merges (the paper leans on the fine stage to split such
  // components; near-duplicates always share top phrases directly, so
  // neighbor seeding loses nothing). Under kMinhashLsh the entries are
  // the document's LSH band bucket keys instead — "shares a bucket"
  // replaces "shares a top phrase" and the fine stage's neighbor
  // seeding works unchanged.
  // analyzer: allow(race-infer) -- coarse workers fill disjoint
  // per-DocId slots fork-join; afterwards the fine stage only reads it
  // (RunOnCluster takes const*, the flagged write is that &-arg)
  std::vector<std::vector<PhraseHash>> doc_top_phrases;
  // Bipartite edge count (for diagnostics / scaling studies).
  size_t num_edges = 0;
  // Per-phase timings + shard counters (never serialized into the
  // canonical JSON).
  CoarseStageStats stats;
};

// The anchor/degree/union pass over bipartite edges in canonical
// (document, phrase-rank) order, shared by the serial and parallel
// batch paths — and, statefully, by the incremental ingest path — so
// none of them can drift. Instead of materializing phrase vertices,
// documents sharing a top phrase are unioned directly: the first
// document seen with each phrase acts as the phrase's anchor. This
// yields exactly the connected components of the bipartite graph
// restricted to document vertices, provided edges are replayed in the
// canonical order (the degree cap drops the same edges only then).
class CoarseEdgeAccumulator {
 public:
  CoarseEdgeAccumulator(size_t max_phrase_degree, UnionFind* uf)
      : max_phrase_degree_(max_phrase_degree), uf_(uf) {}

  void Add(DocId doc, PhraseHash phrase) {
    if (max_phrase_degree_ > 0) {
      uint32_t d = ++degree_[phrase];
      if (d > max_phrase_degree_) return;
    }
    auto [it, inserted] = anchor_.emplace(phrase, doc);
    if (!inserted) uf_->Union(it->second, doc);
  }

  // Drops all anchor/degree state and rebinds to `uf` (which the caller
  // has reset to all-singletons). The incremental path uses this when a
  // top-phrase set shrank and the graph must be replayed from scratch;
  // between rebuilds it keeps one live accumulator and feeds it only the
  // newly added edges.
  void Reset(UnionFind* uf) {
    uf_ = uf;
    anchor_.clear();
    degree_.clear();
  }

 private:
  const size_t max_phrase_degree_;
  // analyzer: borrows(uf_) -- rebound per shard via Reset(); the
  // UnionFind lives in CoarseClustering::Run's frame, which strictly
  // encloses every accumulator that points at it.
  UnionFind* uf_;
  std::unordered_map<PhraseHash, DocId> anchor_;
  std::unordered_map<PhraseHash, uint32_t> degree_;
};

// Component extraction + canonical cluster/singleton emission into
// `result`, shared by the batch paths and the incremental assembly:
// components below min_cluster_size spill into result->singletons
// (sorted ascending), the rest append to result->clusters in
// smallest-member order.
void EmitCoarseComponents(UnionFind& uf, const CoarseOptions& options,
                          CoarseResult* result);

class CoarseClustering {
 public:
  CoarseClustering() = default;
  explicit CoarseClustering(CoarseOptions options)
      : options_(options) {}

  // Dispatches on options().backend: the tf-idf graph backend goes to
  // the serial reference path (use_serial_coarse, or an effective
  // thread count of 1) or the sharded parallel path; kMinhashLsh goes
  // to RunLshCoarse (lsh/lsh_coarse.h), forced to one worker under the
  // same use_serial_coarse escape hatch. Every path produces
  // byte-identical results at any thread count (enforced by
  // determinism_test, bench_coarse, and bench_lsh).
  CoarseResult Run(const Corpus& corpus) const;

  const CoarseOptions& options() const { return options_; }

 private:
  CoarseResult RunSerial(const Corpus& corpus) const;
  CoarseResult RunParallel(const Corpus& corpus, size_t threads) const;

  CoarseOptions options_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_COARSE_COARSE_CLUSTERING_H_
