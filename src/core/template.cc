#include "core/template.h"

#include <algorithm>

#include "util/logging.h"

namespace infoshield {

Template::Template(std::vector<TokenId> constant_tokens)
    : tokens(std::move(constant_tokens)) {
  slot_at_gap.assign(tokens.size() + 1, 0);
}

size_t Template::num_slots() const {
  return static_cast<size_t>(
      std::count(slot_at_gap.begin(), slot_at_gap.end(), 1));
}

bool Template::HasSlotAtGap(size_t gap) const {
  if (slot_at_gap.empty()) return false;
  CHECK_LT(gap, slot_at_gap.size());
  return slot_at_gap[gap] != 0;
}

void Template::SetSlotAtGap(size_t gap, bool enabled) {
  if (slot_at_gap.empty()) slot_at_gap.assign(tokens.size() + 1, 0);
  CHECK_LT(gap, slot_at_gap.size());
  slot_at_gap[gap] = enabled ? 1 : 0;
}

std::vector<size_t> Template::SlotGaps() const {
  std::vector<size_t> gaps;
  for (size_t g = 0; g < slot_at_gap.size(); ++g) {
    if (slot_at_gap[g]) gaps.push_back(g);
  }
  return gaps;
}

std::string Template::ToString(const Vocabulary& vocab) const {
  std::string out;
  auto append = [&out](const std::string& piece) {
    if (!out.empty()) out.push_back(' ');
    out += piece;
  };
  for (size_t i = 0; i <= tokens.size(); ++i) {
    if (HasSlotAtGap(i)) append("*");
    if (i < tokens.size()) append(vocab.Word(tokens[i]));
  }
  return out;
}

DocEncoding EncodeDocument(const Template& tmpl,
                           const std::vector<TokenId>& doc_tokens,
                           const CostModel& cost_model) {
  Alignment alignment = NeedlemanWunsch(tmpl.tokens, doc_tokens);
  return EncodeDocumentWithAlignment(tmpl, alignment, cost_model);
}

DocEncoding EncodeDocumentWithAlignment(const Template& tmpl,
                                        const Alignment& alignment,
                                        const CostModel& cost_model) {
  DocEncoding enc;
  const std::vector<size_t> slot_gaps = tmpl.SlotGaps();
  enc.slot_words.resize(slot_gaps.size());
  // gap -> dense slot index.
  auto slot_index_of_gap = [&slot_gaps](size_t gap) -> int {
    auto it = std::lower_bound(slot_gaps.begin(), slot_gaps.end(), gap);
    if (it == slot_gaps.end() || *it != gap) return -1;
    return static_cast<int>(it - slot_gaps.begin());
  };

  // Walk the alignment; gap counter x advances on matched and deleted
  // columns (Algorithm 3).
  size_t x = 0;
  for (const AlignOp& op : alignment.ops) {
    switch (op.type) {
      case AlignOpType::kMatch: {
        enc.columns.push_back(AnnotatedColumn{ColumnKind::kConstant,
                                              op.a_token, op.b_token,
                                              static_cast<uint32_t>(x)});
        ++x;
        break;
      }
      case AlignOpType::kDelete: {
        enc.columns.push_back(AnnotatedColumn{ColumnKind::kDeletion,
                                              op.a_token, kInvalidToken,
                                              static_cast<uint32_t>(x)});
        ++x;
        break;
      }
      case AlignOpType::kInsert: {
        int slot = slot_index_of_gap(x);
        if (slot >= 0) {
          enc.slot_words[static_cast<size_t>(slot)].push_back(op.b_token);
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kSlotFill,
                                                kInvalidToken, op.b_token,
                                                static_cast<uint32_t>(x)});
        } else {
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kInsertion,
                                                kInvalidToken, op.b_token,
                                                static_cast<uint32_t>(x)});
        }
        break;
      }
      case AlignOpType::kSubstitute: {
        int slot = slot_index_of_gap(x);
        if (slot >= 0) {
          // Document word joins the slot; the constant token becomes a
          // residual deletion so decoding stays lossless.
          enc.slot_words[static_cast<size_t>(slot)].push_back(op.b_token);
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kSlotFill,
                                                kInvalidToken, op.b_token,
                                                static_cast<uint32_t>(x)});
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kDeletion,
                                                op.a_token, kInvalidToken,
                                                static_cast<uint32_t>(x)});
        } else {
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kSubstitution,
                                                op.a_token, op.b_token,
                                                static_cast<uint32_t>(x)});
        }
        break;
      }
    }
  }

  // Build the cost summary. Slot fills are decoded from slot contents,
  // so they are not alignment columns; everything else is.
  EncodingSummary& s = enc.summary;
  for (const AnnotatedColumn& col : enc.columns) {
    switch (col.kind) {
      case ColumnKind::kConstant:
        ++s.alignment_length;
        break;
      case ColumnKind::kSlotFill:
        break;
      case ColumnKind::kInsertion:
      case ColumnKind::kSubstitution:
        ++s.alignment_length;
        ++s.unmatched;
        ++s.inserted_or_substituted;
        break;
      case ColumnKind::kDeletion:
        ++s.alignment_length;
        ++s.unmatched;
        break;
    }
  }
  s.slot_word_counts.reserve(enc.slot_words.size());
  for (const auto& words : enc.slot_words) {
    s.slot_word_counts.push_back(words.size());
  }

  enc.base_cost = cost_model.AlignmentCostBase(s);
  return enc;
}

}  // namespace infoshield
