#include "core/template.h"

#include <algorithm>
#include <cmath>

#include "util/audit.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

Template::Template(std::vector<TokenId> constant_tokens)
    : tokens(std::move(constant_tokens)) {
  slot_at_gap.assign(tokens.size() + 1, 0);
}

size_t Template::num_slots() const {
  return static_cast<size_t>(
      std::count(slot_at_gap.begin(), slot_at_gap.end(), 1));
}

bool Template::HasSlotAtGap(size_t gap) const {
  if (slot_at_gap.empty()) return false;
  CHECK_LT(gap, slot_at_gap.size());
  return slot_at_gap[gap] != 0;
}

void Template::SetSlotAtGap(size_t gap, bool enabled) {
  if (slot_at_gap.empty()) slot_at_gap.assign(tokens.size() + 1, 0);
  CHECK_LT(gap, slot_at_gap.size());
  slot_at_gap[gap] = enabled ? 1 : 0;
}

std::vector<size_t> Template::SlotGaps() const {
  std::vector<size_t> gaps;
  for (size_t g = 0; g < slot_at_gap.size(); ++g) {
    if (slot_at_gap[g]) gaps.push_back(g);
  }
  return gaps;
}

std::string Template::ToString(const Vocabulary& vocab) const {
  std::string out;
  auto append = [&out](const std::string& piece) {
    if (!out.empty()) out.push_back(' ');
    out += piece;
  };
  for (size_t i = 0; i <= tokens.size(); ++i) {
    if (HasSlotAtGap(i)) append("*");
    if (i < tokens.size()) append(vocab.Word(tokens[i]));
  }
  return out;
}

DocEncoding EncodeDocument(const Template& tmpl,
                           const std::vector<TokenId>& doc_tokens,
                           const CostModel& cost_model) {
  Alignment alignment = NeedlemanWunsch(tmpl.tokens, doc_tokens);
  return EncodeDocumentWithAlignment(tmpl, alignment, cost_model);
}

DocEncoding EncodeDocumentWithAlignment(const Template& tmpl,
                                        const Alignment& alignment,
                                        const CostModel& cost_model) {
  DocEncoding enc;
  const std::vector<size_t> slot_gaps = tmpl.SlotGaps();
  enc.slot_words.resize(slot_gaps.size());
  // gap -> dense slot index.
  auto slot_index_of_gap = [&slot_gaps](size_t gap) -> int {
    auto it = std::lower_bound(slot_gaps.begin(), slot_gaps.end(), gap);
    if (it == slot_gaps.end() || *it != gap) return -1;
    return static_cast<int>(it - slot_gaps.begin());
  };

  // Walk the alignment; gap counter x advances on matched and deleted
  // columns (Algorithm 3).
  size_t x = 0;
  for (const AlignOp& op : alignment.ops) {
    switch (op.type) {
      case AlignOpType::kMatch: {
        enc.columns.push_back(AnnotatedColumn{ColumnKind::kConstant,
                                              op.a_token, op.b_token,
                                              static_cast<uint32_t>(x)});
        ++x;
        break;
      }
      case AlignOpType::kDelete: {
        enc.columns.push_back(AnnotatedColumn{ColumnKind::kDeletion,
                                              op.a_token, kInvalidToken,
                                              static_cast<uint32_t>(x)});
        ++x;
        break;
      }
      case AlignOpType::kInsert: {
        int slot = slot_index_of_gap(x);
        if (slot >= 0) {
          enc.slot_words[static_cast<size_t>(slot)].push_back(op.b_token);
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kSlotFill,
                                                kInvalidToken, op.b_token,
                                                static_cast<uint32_t>(x)});
        } else {
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kInsertion,
                                                kInvalidToken, op.b_token,
                                                static_cast<uint32_t>(x)});
        }
        break;
      }
      case AlignOpType::kSubstitute: {
        int slot = slot_index_of_gap(x);
        if (slot >= 0) {
          // Document word joins the slot; the constant token becomes a
          // residual deletion so decoding stays lossless.
          enc.slot_words[static_cast<size_t>(slot)].push_back(op.b_token);
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kSlotFill,
                                                kInvalidToken, op.b_token,
                                                static_cast<uint32_t>(x)});
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kDeletion,
                                                op.a_token, kInvalidToken,
                                                static_cast<uint32_t>(x)});
        } else {
          enc.columns.push_back(AnnotatedColumn{ColumnKind::kSubstitution,
                                                op.a_token, op.b_token,
                                                static_cast<uint32_t>(x)});
        }
        break;
      }
    }
  }

  // Build the cost summary. Slot fills are decoded from slot contents,
  // so they are not alignment columns; everything else is.
  EncodingSummary& s = enc.summary;
  for (const AnnotatedColumn& col : enc.columns) {
    switch (col.kind) {
      case ColumnKind::kConstant:
        ++s.alignment_length;
        break;
      case ColumnKind::kSlotFill:
        break;
      case ColumnKind::kInsertion:
      case ColumnKind::kSubstitution:
        ++s.alignment_length;
        ++s.unmatched;
        ++s.inserted_or_substituted;
        break;
      case ColumnKind::kDeletion:
        ++s.alignment_length;
        ++s.unmatched;
        break;
    }
  }
  s.slot_word_counts.reserve(enc.slot_words.size());
  for (const auto& words : enc.slot_words) {
    s.slot_word_counts.push_back(words.size());
  }

  enc.base_cost = cost_model.AlignmentCostBase(s);
#if defined(INFOSHIELD_AUDIT)
  if (audit::AuditingEnabled()) {
    // Recover the document from the alignment's b-side tokens so the
    // replay check can run without the caller's original sequence.
    std::vector<TokenId> doc_tokens;
    for (const AlignOp& op : alignment.ops) {
      if (op.type != AlignOpType::kDelete) doc_tokens.push_back(op.b_token);
    }
    INFOSHIELD_AUDIT_INVARIANTS(
        ValidateDocEncoding(tmpl, doc_tokens, enc, &cost_model));
  }
#endif
  return enc;
}

Status Template::ValidateInvariants() const {
  audit::Auditor a("Template");
  a.Expect(slot_at_gap.empty() || slot_at_gap.size() == tokens.size() + 1,
           StrFormat("slot table has %zu entries for %zu tokens",
                     slot_at_gap.size(), tokens.size()));
  for (size_t g = 0; g < slot_at_gap.size(); ++g) {
    a.Expect(slot_at_gap[g] == 0 || slot_at_gap[g] == 1,
             StrFormat("slot_at_gap[%zu] is %u, not 0/1", g,
                       unsigned{slot_at_gap[g]}));
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    a.Expect(tokens[i] != kInvalidToken,
             StrFormat("constant token #%zu is the invalid sentinel", i));
  }
  return a.Finish();
}

Status ValidateDocEncoding(const Template& tmpl,
                           const std::vector<TokenId>& doc_tokens,
                           const DocEncoding& enc,
                           const CostModel* cost_model) {
  INFOSHIELD_RETURN_IF_ERROR(tmpl.ValidateInvariants());
  audit::Auditor a("DocEncoding");

  // Replay the columns: template tokens are consumed in order by
  // constant, deletion, and substitution columns; document tokens are
  // reproduced in order by constant, slot-fill, insertion, and
  // substitution columns. Gap attribution may only step forward, by one,
  // after a constant or deletion column (Algorithm 3).
  size_t t_cursor = 0;
  std::vector<TokenId> replayed;
  replayed.reserve(doc_tokens.size());
  std::vector<std::vector<TokenId>> fills_by_gap(tmpl.length() + 1);
  uint32_t prev_gap = 0;
  ColumnKind prev_kind = ColumnKind::kConstant;
  for (size_t i = 0; i < enc.columns.size(); ++i) {
    const AnnotatedColumn& col = enc.columns[i];
    if (!a.Expect(col.gap <= tmpl.length(),
                  StrFormat("column #%zu gap %u past template length %zu", i,
                            col.gap, tmpl.length()))) {
      break;
    }
    if (i > 0) {
      const uint32_t step = col.gap - prev_gap;
      const bool advanced_legally =
          step == 0 || (step == 1 && (prev_kind == ColumnKind::kConstant ||
                                      prev_kind == ColumnKind::kDeletion));
      a.Expect(col.gap >= prev_gap && advanced_legally,
               StrFormat("column #%zu gap %u does not follow %u legally", i,
                         col.gap, prev_gap));
    }
    const bool consumes_template = col.kind == ColumnKind::kConstant ||
                                   col.kind == ColumnKind::kDeletion ||
                                   col.kind == ColumnKind::kSubstitution;
    if (consumes_template) {
      if (!a.Expect(t_cursor < tmpl.length(),
                    StrFormat("column #%zu consumes a template token past "
                              "the end",
                              i))) {
        break;
      }
      a.Expect(col.template_token == tmpl.tokens[t_cursor],
               StrFormat("column #%zu template token mismatch at "
                         "position %zu",
                         i, t_cursor));
      ++t_cursor;
    }
    switch (col.kind) {
      case ColumnKind::kConstant:
        a.Expect(col.doc_token == col.template_token,
                 StrFormat("constant column #%zu carries a different "
                           "document token",
                           i));
        replayed.push_back(col.doc_token);
        break;
      case ColumnKind::kSlotFill:
        a.Expect(tmpl.HasSlotAtGap(col.gap),
                 StrFormat("slot fill at gap %u, but the template has no "
                           "slot there",
                           col.gap));
        fills_by_gap[col.gap].push_back(col.doc_token);
        replayed.push_back(col.doc_token);
        break;
      case ColumnKind::kInsertion:
      case ColumnKind::kSubstitution:
        replayed.push_back(col.doc_token);
        break;
      case ColumnKind::kDeletion:
        break;
    }
    prev_gap = col.gap;
    prev_kind = col.kind;
  }
  a.Expect(t_cursor == tmpl.length(),
           StrFormat("columns consume %zu of %zu template tokens", t_cursor,
                     tmpl.length()));
  a.Expect(replayed == doc_tokens,
           StrFormat("edit trace replays to %zu tokens that differ from "
                     "the %zu-token document",
                     replayed.size(), doc_tokens.size()));

  // Slot bookkeeping: one word list per enabled gap, ascending, matching
  // the slot-fill columns exactly.
  const std::vector<size_t> slot_gaps = tmpl.SlotGaps();
  a.Expect(enc.slot_words.size() == slot_gaps.size(),
           StrFormat("%zu slot word lists for %zu enabled slots",
                     enc.slot_words.size(), slot_gaps.size()));
  if (enc.slot_words.size() == slot_gaps.size()) {
    for (size_t s = 0; s < slot_gaps.size(); ++s) {
      a.Expect(enc.slot_words[s] == fills_by_gap[slot_gaps[s]],
               StrFormat("slot %zu (gap %zu) word list disagrees with the "
                         "slot-fill columns",
                         s, slot_gaps[s]));
    }
  }

  // The cost summary must recount from the columns.
  EncodingSummary recount;
  for (const AnnotatedColumn& col : enc.columns) {
    switch (col.kind) {
      case ColumnKind::kConstant:
        ++recount.alignment_length;
        break;
      case ColumnKind::kSlotFill:
        break;
      case ColumnKind::kInsertion:
      case ColumnKind::kSubstitution:
        ++recount.alignment_length;
        ++recount.unmatched;
        ++recount.inserted_or_substituted;
        break;
      case ColumnKind::kDeletion:
        ++recount.alignment_length;
        ++recount.unmatched;
        break;
    }
  }
  a.Expect(enc.summary.alignment_length == recount.alignment_length &&
               enc.summary.unmatched == recount.unmatched &&
               enc.summary.inserted_or_substituted ==
                   recount.inserted_or_substituted,
           "summary counters do not recount from the columns");
  std::vector<size_t> slot_counts;
  slot_counts.reserve(enc.slot_words.size());
  for (const auto& words : enc.slot_words) slot_counts.push_back(words.size());
  a.Expect(enc.summary.slot_word_counts == slot_counts,
           "summary slot word counts disagree with slot_words");
  INFOSHIELD_RETURN_IF_ERROR(ValidateEncodingSummary(enc.summary));

  a.Expect(std::isfinite(enc.base_cost) && enc.base_cost >= 0.0,
           "base_cost is negative or non-finite");
  if (cost_model != nullptr) {
    a.Expect(std::abs(enc.base_cost -
                      cost_model->AlignmentCostBase(enc.summary)) <= 1e-9,
             "base_cost disagrees with AlignmentCostBase(summary)");
  }
  return a.Finish();
}

}  // namespace infoshield
